#!/usr/bin/env python
"""A file server on the big disk, serving a diskless client (section 5.2).

Two of the paper's configurations in one scenario:

* "a file server program that uses only the non-standard big disk
  nevertheless uses the standard disk stream package" -- the server is the
  `repro.server` engine running a completely standard FileSystem over the
  Diablo-44-class drive (through the write-back cache, so every poll
  cycle's writes drain in one elevator sweep); and
* "The display, keyboard, and storage-allocation packages have been
  assembled to form an operating system for use without a disk, used to
  support ... programs that depend on network communications rather than on
  local disk storage" -- the last client is that diskless assembly,
  fetching a file over the wire and painting it on its display.

The wire format is the framed protocol of SERVER.md: 7-word headers,
request ids, batched READs, an at-most-once replay cache behind every
retry.  Openness means nothing in the system had to change to support any
of it -- the server is user code above the Junta.
"""

from repro import DiskImage, FileSystem, diablo44
from repro.disk.cache import CachedDrive
from repro.errors import RequestFailed
from repro.net import PacketNetwork
from repro.os import DisklessOS
from repro.server import FileClient, FileServer

SERVER = "fileserver"


def main() -> None:
    # --- the server machine: standard software, non-standard big disk -------
    big_disk = DiskImage(diablo44())
    fs = FileSystem.format(CachedDrive(big_disk, cache_sectors=512))
    print(f"server pack: {big_disk.shape.name}, "
          f"{big_disk.shape.capacity_bytes():,} bytes")

    network = PacketNetwork(clock=fs.drive.clock)
    network.attach(SERVER, queue_limit=4096)
    server = FileServer(fs, network)

    # --- two workstations upload their files through the engine -------------
    stations = []
    for host in ("ws000", "ws001"):
        network.attach(host)
        stations.append(FileClient(network, host, pump=server.poll))

    uploads = {
        "readme.txt": b"files live on the big disk; clients have none at all",
        "sources.bcpl": b"get Streams.bcpl\nget Disks.bcpl\nget Juntas.bcpl",
    }
    for station, (name, data) in zip(stations, uploads.items()):
        station.write_file(name, data)
        print(f"{station.host} uploaded {name} ({len(data)} bytes)")

    print("server sees:", ", ".join(sorted(
        n for n in stations[0].listdir() if not n.endswith("Dir") and n != "DiskDescriptor")))

    # --- the diskless client fetches a file and displays it ------------------
    diskless = DisklessOS(network=network, host="diskless")
    network.attach(diskless.host)
    fetcher = FileClient(network, diskless.host, pump=server.poll)

    for name in ("readme.txt", "missing.txt"):
        try:
            data = fetcher.read_file(name)
            diskless.display.write(f"--- {name} ---\n"
                                   f"{data.decode('ascii', 'replace')}\n")
        except RequestFailed as exc:
            diskless.display.write(f"?no such file: {name} ({exc.status})\n")

    stats = server.stats()
    print(f"requests served: {stats['server.requests']}, "
          f"flushes: {stats['server.flushes']}, "
          f"pages written: {stats['server.pages_written']}")
    print(f"network: {network.delivered} packets delivered")
    print()
    print("client display:")
    for line in diskless.display.visible_lines():
        print("  |", line)


if __name__ == "__main__":
    main()
