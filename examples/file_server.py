#!/usr/bin/env python
"""A file server on the big disk, serving a diskless client (section 5.2).

Two of the paper's configurations in one scenario:

* "a file server program that uses only the non-standard big disk
  nevertheless uses the standard disk stream package" -- the server runs a
  completely standard FileSystem over the Diablo-44-class drive; and
* "The display, keyboard, and storage-allocation packages have been
  assembled to form an operating system for use without a disk, used to
  support ... programs that depend on network communications rather than on
  local disk storage" -- the client is that diskless assembly, fetching
  files over the wire into zone storage.

The request protocol is deliberately homemade (an afternoon's user code):
openness means nothing in the system had to change to support it.
"""

from repro import DiskDrive, DiskImage, FileSystem, diablo44
from repro.errors import FileNotFound
from repro.net import Packet, PacketNetwork, TYPE_CONTROL, network_read_stream, network_write_stream
from repro.os import DisklessOS
from repro.streams import open_read_stream, open_write_stream
from repro.words import bytes_to_words, string_to_words, words_to_bytes, words_to_string

SERVER = "fileserver"
CLIENT = "workstation"


class FileServer:
    """Serves GET <name> requests from its (big-disk) file system."""

    def __init__(self, fs: FileSystem, network: PacketNetwork, host: str = SERVER) -> None:
        self.fs = fs
        self.network = network
        self.host = host
        self.requests_served = 0

    def poll(self) -> int:
        """Handle every pending request; returns requests served."""
        served = 0
        while True:
            packet = self.network.receive(self.host)
            if packet is None:
                return served
            if packet.ptype != TYPE_CONTROL:
                continue
            name = words_to_string(list(packet.payload))
            self._serve(packet.source, name)
            served += 1
            self.requests_served += 1

    def _serve(self, client: str, name: str) -> None:
        try:
            file = self.fs.open_file(name)
            source = open_read_stream(file, update_dates=False)
            data = bytearray()
            while not source.endof():
                data.append(source.get())
            source.close()
            data = bytes(data)
        except FileNotFound:
            data = f"?no such file: {name}".encode()
        # Length-prefixed reply: byte count (2 words), then the data words,
        # streamed straight off the standard disk stream package.
        reply = network_write_stream(self.network, self.host, client)
        reply.put(len(data) >> 16)
        reply.put(len(data) & 0xFFFF)
        for word in bytes_to_words(data):
            reply.put(word)
        reply.close()


def fetch(client: DisklessOS, network: PacketNetwork, name: str, server: FileServer) -> bytes:
    """The diskless client's side: request, let the server run, read."""
    # Requests travel as control packets so data packets stay clean.
    network.send(Packet(client.host, SERVER, TYPE_CONTROL,
                        tuple(string_to_words(name))))
    server.poll()

    incoming = network_read_stream(network, client.host)
    high, low = incoming.get(), incoming.get()
    nbytes = (high << 16) | low
    words = []
    while not incoming.endof():
        words.append(incoming.get())
    return words_to_bytes(words, nbytes=min(nbytes, len(words) * 2))


def main() -> None:
    # --- the server machine: standard software, non-standard big disk --------
    big_disk = DiskImage(diablo44())
    server_fs = FileSystem.format(DiskDrive(big_disk))
    print(f"server pack: {big_disk.shape.name}, {big_disk.shape.capacity_bytes():,} bytes")

    for name, text in {
        "readme.txt": "files live on the big disk; clients have none at all",
        "sources.bcpl": "get Streams.bcpl\nget Disks.bcpl\nget Juntas.bcpl",
    }.items():
        stream = open_write_stream(server_fs.create_file(name))
        for b in text.encode():
            stream.put(b)
        stream.close()

    # --- the wire and the diskless client -------------------------------------
    network = PacketNetwork(clock=server_fs.drive.clock)
    network.attach(SERVER)
    network.attach(CLIENT)
    server = FileServer(server_fs, network)
    client = DisklessOS(network=network, host=CLIENT)

    # --- fetch files across; display them on the client's screen ---------------
    for name in ("readme.txt", "sources.bcpl", "missing.txt"):
        data = fetch(client, network, name, server)
        client.display.write(f"--- {name} ---\n{data.decode('ascii', 'replace')}\n")

    print(f"requests served: {server.requests_served}")
    print(f"network: {network.delivered} packets delivered")
    print()
    print("client display:")
    for line in client.display.visible_lines():
        print("  |", line)


if __name__ == "__main__":
    main()
