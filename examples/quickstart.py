#!/usr/bin/env python
"""Quickstart: a whole Alto in a few dozen lines.

Formats a simulated Diablo-31 pack, boots the operating system, runs an
Executive session, uses streams directly, breaks the disk, and lets the
Scavenger put it back together.  Run with:

    python examples/quickstart.py
"""

from repro import (
    AltoOS,
    DiskDrive,
    DiskImage,
    FaultInjector,
    diablo31,
    open_read_stream,
    read_string,
)


def main() -> None:
    # --- 1. A fresh pack, a drive, a formatted file system, a booted OS ----
    image = DiskImage(diablo31())
    drive = DiskDrive(image)
    os = AltoOS.format(drive)
    print(f"formatted {image.shape.name}: {image.shape.capacity_bytes():,} bytes, "
          f"{os.fs.free_pages()} free pages")

    # --- 2. An Executive session (type-ahead, echo, Com.cm protocol) -------
    display = os.run_executive(
        "write todo.txt buy more removable packs\n"
        "write memo.txt the scavenger takes about a minute\n"
        "ls\n"
        "type memo.txt\n"
        "free\n"
        "quit\n"
    )
    print("\n--- Executive session " + "-" * 40)
    print(display)

    # --- 3. The same files through the raw stream API -----------------------
    stream = open_read_stream(os.fs.open_file("memo.txt"))
    print("--- via stream API:", repr(read_string(stream)))
    stream.close()

    # --- 4. Vandalize the disk, then scavenge --------------------------------
    injector = FaultInjector(image, seed=1979)
    for address in injector.random_in_use_addresses(8):
        injector.scramble_links(address)          # corrupt hint links
    injector.swap_sectors(*injector.random_in_use_addresses(2))
    print("--- corrupted 8 link pairs and swapped two sectors behind the OS's back")

    report = os.scavenge()
    print(f"--- scavenge: {report.sectors_swept} sectors in {report.elapsed_s:.1f} "
          f"simulated seconds, {report.links_repaired} links repaired, "
          f"{report.entries_fixed} directory hints fixed")

    # --- 5. Everything still there -------------------------------------------
    stream = open_read_stream(os.fs.open_file("memo.txt"))
    print("--- after recovery:", repr(read_string(stream)))
    stream.close()
    print(f"--- total simulated time: {drive.clock.now_s:.1f}s "
          f"({drive.stats.commands} disk commands)")


if __name__ == "__main__":
    main()
