#!/usr/bin/env python
"""The printing server of section 4: activity switching by world swap.

Two tasks share one machine by saving and restoring whole machine states:
the spooler accepts files from the network and queues them on disk; the
printer drains the queue onto the hardware.  Each switch is a real
InLoad/OutLoad pair costing about a second of simulated disk time -- watch
the printer interrupt a long job the moment new network traffic arrives.
"""

from repro import DiskDrive, DiskImage, FileSystem, Machine, ProgramRegistry, WorldEngine, diablo31
from repro.net import (
    PacketNetwork,
    Packet,
    PrinterDevice,
    SHUTDOWN_WORD,
    TYPE_CONTROL,
    bootstrap_printer_state,
    build_printing_server,
    send_file,
)

HOST = "printserver"


def main() -> None:
    image = DiskImage(diablo31())
    drive = DiskDrive(image)
    fs = FileSystem.format(drive)
    machine = Machine()
    registry = ProgramRegistry()

    network = PacketNetwork(clock=drive.clock)
    for host in (HOST, "lampson", "sproull", "mcdaniel"):
        network.attach(host)
    printer = PrinterDevice(drive.clock, ms_per_line=25.0)
    build_printing_server(registry, network, printer, host=HOST)

    engine = WorldEngine(machine, fs, registry)
    bootstrap_printer_state(engine)

    # Three users submit jobs; the last arrives while printing is underway
    # (it is already queued on the wire when the server starts).
    send_file(network, "lampson", HOST, "osreview",
              "\n".join(f"page {i}: on the openness of systems" for i in range(12)).encode())
    send_file(network, "sproull", HOST, "figures",
              b"figure 1: the label\nfigure 2: the ladder\nfigure 3: the junta")
    send_file(network, "mcdaniel", HOST, "patch",
              b"please reprint page 7\n")
    network.send(Packet("lampson", HOST, TYPE_CONTROL, (SHUTDOWN_WORD,)))

    watch = drive.clock.stopwatch()
    outcome, jobs = engine.run("spooler")
    elapsed = watch.elapsed_s
    breakdown = watch.breakdown_ms()

    print(f"server outcome: {outcome}")
    print("jobs printed (title, lines):")
    for title, lines in jobs:
        print(f"  {title:10s} {lines} lines")
    print(f"world transfers: {len(engine.transfer_log)} "
          f"({' -> '.join(engine.transfer_log)})")
    print(f"OutLoads: {engine.swapper.outloads}, InLoads: {engine.swapper.inloads}")
    disk_ms = sum(breakdown.get(c, 0.0) for c in ("disk.seek", "disk.rotation", "disk.transfer"))
    print(f"simulated time: {elapsed:.1f}s "
          f"(printing {breakdown.get('printer', 0.0)/1000:.1f}s, disk {disk_ms/1000:.1f}s)")
    print()
    print("printed output:")
    for line in printer.output:
        print("  |", line)


if __name__ == "__main__":
    main()
