#!/usr/bin/env python
"""The installed-program pattern of section 3.6.

"Many programs use a collection of auxiliary files to which they need rapid
access.  The editor, for example, uses two scratch files, a journal file, a
file of messages etc.  When these programs are 'installed', they create the
necessary files and store hints for them in a data structure that is then
written onto a state file.  Subsequently the program can start up, read the
state file, and access all its auxiliary files at maximum disk speed.  If a
hint fails, e.g. because a scratch file got deleted or moved, the program
must repeat the installation phase."

This example builds exactly that editor: install once, start up fast from
hints, then have a hint invalidated by a compaction and watch the editor
notice and reinstall -- the *proper* recovery, not the "Hint failed, please
reinstall" crash the paper's conclusion complains about.
"""

from repro import DiskDrive, DiskImage, FileSystem, FullName, diablo31, Compactor
from repro.errors import FileNotFound, HintFailed
from repro.streams import open_read_stream, open_write_stream, read_string, write_string
from repro.world.statefile import full_name_from_words, full_name_to_words
from repro.words import bytes_to_words, words_to_bytes

AUXILIARY_FILES = ("Editor.scratch1", "Editor.scratch2", "Editor.journal", "Editor.messages")
STATE_FILE = "Editor.install"


class Editor:
    """A tiny editor that starts up from stored hints."""

    def __init__(self, fs: FileSystem) -> None:
        self.fs = fs
        self.files = {}
        self.installed_fresh = False
        self.startup_commands = 0

    # -- installation (slow path) ------------------------------------------------

    def install(self) -> None:
        """Create the auxiliary files and write their full names (hints
        included) onto the state file."""
        self.installed_fresh = True
        words = []
        for name in AUXILIARY_FILES:
            try:
                file = self.fs.open_file(name)
            except FileNotFound:
                file = self.fs.create_file(name)
            self.files[name] = file
            words.extend(full_name_to_words(file.full_name()))
        try:
            state = self.fs.open_file(STATE_FILE)
        except FileNotFound:
            state = self.fs.create_file(STATE_FILE)
        state.write_data(words_to_bytes(words))

    # -- startup (fast path) --------------------------------------------------------

    def start(self) -> str:
        """Open every auxiliary file from the state-file hints alone --
        no directory lookups.  On any hint failure, reinstall and retry."""
        commands_before = self.fs.drive.stats.commands
        try:
            state = self.fs.open_file(STATE_FILE)
            words = bytes_to_words(state.read_data())
            if len(words) != 4 * len(AUXILIARY_FILES):
                raise HintFailed("state file malformed")
            from repro.fs.file import AltoFile

            for i, name in enumerate(AUXILIARY_FILES):
                full_name = full_name_from_words(words[4 * i : 4 * i + 4])
                file = AltoFile.open(self.fs.page_io, self.fs.allocator, full_name)
                if file.name != name:
                    raise HintFailed(f"hint for {name} leads to {file.name}")
                self.files[name] = file
            self.installed_fresh = False
            path = "hints"
        except (FileNotFound, HintFailed):
            self.install()
            path = "reinstall"
        self.startup_commands = self.fs.drive.stats.commands - commands_before
        return path

    # -- editing --------------------------------------------------------------------

    def journal(self, text: str) -> None:
        stream = open_write_stream(self.files["Editor.journal"], append=True)
        write_string(stream, text + "\n")
        stream.close()


def main() -> None:
    image = DiskImage(diablo31())
    drive = DiskDrive(image)
    fs = FileSystem.format(drive)

    # Fill the disk a bit so installation means something.
    for i in range(20):
        fs.create_file(f"doc{i:02}.txt").write_data(f"document {i}\n".encode() * 40)

    editor = Editor(fs)
    editor.install()
    editor.journal("installed")
    print("installed; auxiliary files:", sorted(editor.files))

    # Fast startup: hints only.
    editor2 = Editor(fs)
    path = editor2.start()
    print(f"startup via {path}: {editor2.startup_commands} disk commands")
    assert path == "hints"

    # A compaction moves files; stored hint addresses go stale.
    report = Compactor(drive).compact()
    print(f"compaction moved {report.pages_moved} pages "
          f"({report.elapsed_s:.1f} simulated seconds)")

    fs2 = FileSystem.mount(DiskDrive(image, clock=drive.clock))
    editor3 = Editor(fs2)
    path = editor3.start()
    print(f"startup after compaction via {path}: {editor3.startup_commands} disk commands")
    editor3.journal("survived the compaction")

    # And the journal is intact, through every move.
    stream = open_read_stream(fs2.open_file("Editor.journal"))
    print("journal contents:", repr(read_string(stream)))
    stream.close()


if __name__ == "__main__":
    main()
