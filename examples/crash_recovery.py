#!/usr/bin/env python
"""Crash recovery: the robustness story of sections 3.3, 3.5, and 6.

A power failure tears a write mid-sector; the allocation map is left
lying; labels and links get scrambled by cosmic rays; a whole directory is
destroyed.  After each disaster the Scavenger reconstructs every hint from
the absolutes, and -- the paper's headline claim -- *no user data is lost*:
"The incidence of complaints about lost information is negligible."
"""

from repro import DiskDrive, DiskImage, FaultInjector, FileSystem, Scavenger, diablo31
from repro.errors import TornWriteError


def checksums(fs, names):
    return {name: fs.open_file(name).read_data() for name in names}


def main() -> None:
    image = DiskImage(diablo31())
    drive = DiskDrive(image)
    fs = FileSystem.format(drive)

    names = []
    for i in range(30):
        name = f"archive{i:02}.dat"
        fs.create_file(name).write_data(bytes([i]) * (137 * (i + 1)))
        names.append(name)
    fs.sync()
    before = checksums(fs, names)
    print(f"wrote {len(names)} files, {sum(len(v) for v in before.values()):,} bytes")

    # --- Disaster 1: power failure mid-write -------------------------------------
    injector = FaultInjector(image, seed=7)
    drive.fault_injector = injector
    injector.schedule_power_failure(after_writes=3)
    try:
        fs.open_file("archive05.dat").write_data(b"NEW CONTENTS " * 200)
        print("write completed?!")
    except TornWriteError as exc:
        print(f"power failed: {exc}")

    # The machine rebooted; mount the pack fresh and scavenge.
    drive = DiskDrive(image, clock=drive.clock)
    report = Scavenger(drive).scavenge()
    print(f"scavenge 1: {report.elapsed_s:.1f}s, repairs={report.repairs_made()}, "
          f"truncated={len(report.truncated_files)}, ragged={len(report.ragged_last_pages)}")
    fs = FileSystem.mount(drive)
    survivors = checksums(fs, [n for n in names if n != "archive05.dat"])
    assert all(survivors[n] == before[n] for n in survivors)
    print("all 29 untouched files byte-identical; the torn file is detected, not silently wrong")

    # --- Disaster 2: scrambled labels and a lying map ------------------------------
    injector = FaultInjector(image, seed=11)
    victims = injector.random_in_use_addresses(3)
    for address in victims:
        injector.scramble_links(address)
    # Make the map lie: mark 50 busy pages "free".
    for address in injector.random_in_use_addresses(50):
        fs.allocator.mark_free(address)
    fs.sync()

    drive = DiskDrive(image, clock=drive.clock)
    report = Scavenger(drive).scavenge()
    print(f"scavenge 2: links repaired={report.links_repaired}, "
          f"free pages recomputed={report.free_pages}")
    fs = FileSystem.mount(drive)

    # Even BEFORE scavenging, a lying map cannot corrupt data: the claim
    # protocol label-checks every allocation (demonstrated by the counter).
    print(f"allocation-map lies caught by label checks so far: {fs.allocator.map_lies}")

    # --- Disaster 3: a directory page destroyed --------------------------------------
    injector = FaultInjector(image, seed=13)
    root_data_page = fs.root.file.page_name(1).address
    injector.scramble_label(root_data_page)
    print("destroyed the root directory's data page label")

    drive = DiskDrive(image, clock=drive.clock)
    report = Scavenger(drive).scavenge()
    print(f"scavenge 3: orphans rescued by leader name: {len(report.orphans_rescued)}")
    fs = FileSystem.mount(drive)
    after = checksums(fs, [n for n in names if n != "archive05.dat"])
    assert all(after[n] == before[n] for n in after)
    print("every file re-entered in the main directory under its leader name; data intact")

    print(f"\ntotal simulated time: {drive.clock.now_s:.1f}s")


if __name__ == "__main__":
    main()
