#!/usr/bin/env python
"""Debugging by world swap (section 4).

"When a breakpoint is encountered or when the user strikes a special DEBUG
key on the keyboard, the state of the machine is written on a disk file,
and the machine state is restored from a file that contains the debugger.
The debugging program may examine or alter the state of the faulty program
by reading or writing portions of the file that was written as a result of
the breakpoint.  The debugger can later resume execution of the original
program by restoring the machine state from the file.  The original program
and the debugger thus operate as coroutines."

The buggy program below computes a checksum over a table in simulated
memory but was "linked" with a wrong table length.  At its breakpoint it
OutLoads itself and InLoads the debugger, which patches the length word
*in the state file on disk* -- never touching the live machine -- and
resumes the victim.
"""

from repro import (
    DiskDrive,
    DiskImage,
    FileSystem,
    Halt,
    Machine,
    ProgramRegistry,
    Transfer,
    WorldEngine,
    WorldProgram,
    diablo31,
)
from repro.world.statefile import unpack_state, pack_state
from repro.world.machine import REGISTER_COUNT

TABLE_BASE = 0x2000
TABLE_LENGTH_WORD = 0x1FFF  # the "linked-in" length, one word below the table
VICTIM_STATE = "Victim.state"
DEBUGGER_STATE = "Debugger.state"

registry = ProgramRegistry()


@registry.register
class Victim(WorldProgram):
    name = "victim"

    def phase_start(self, ctx, message):
        memory = ctx.machine.memory
        memory.write_block(TABLE_BASE, list(range(1, 101)))  # 100 entries
        memory[TABLE_LENGTH_WORD] = 75  # BUG: linked with the wrong length
        return self.phase_checksum(ctx, message)

    def phase_checksum(self, ctx, message):
        memory = ctx.machine.memory
        length = memory[TABLE_LENGTH_WORD]
        total = sum(memory.read_block(TABLE_BASE, length)) & 0xFFFF
        expected = sum(range(1, 101)) & 0xFFFF
        if total != expected:
            # Breakpoint: save the world, summon the debugger.
            print(f"victim: checksum {total} != {expected}; hitting breakpoint")
            ctx.outload(VICTIM_STATE, "checksum")
            return Transfer(DEBUGGER_STATE, message=[length])
        print(f"victim: checksum {total} correct, halting")
        return Halt(total)


@registry.register
class Debugger(WorldProgram):
    name = "debugger"

    def phase_start(self, ctx, message):
        reported_length = message[0] if message else None
        print(f"debugger: victim reported table length {reported_length}")
        # Examine and alter the VICTIM'S STATE FILE, not live memory.
        state_file = ctx.fs.open_file(VICTIM_STATE)
        memory_words, registers, program, phase, typeahead = unpack_state(
            state_file.read_data()
        )
        print(f"debugger: state file holds program {program!r} at phase {phase!r}")
        print(f"debugger: table[0..3] in the image: {memory_words[TABLE_BASE:TABLE_BASE+4]}")
        memory_words[TABLE_LENGTH_WORD] = 100  # the patch
        state_file.write_data(
            pack_state(memory_words, registers, program, phase, typeahead)
        )
        print("debugger: patched length word in the state file; resuming victim")
        ctx.outload(DEBUGGER_STATE, "start")
        return Transfer(VICTIM_STATE)


def main() -> None:
    image = DiskImage(diablo31())
    drive = DiskDrive(image)
    fs = FileSystem.format(drive)
    engine = WorldEngine(Machine(), fs, registry)
    # The debugger must exist as a world before anyone can InLoad it.
    engine.swapper.outload(DEBUGGER_STATE, "debugger", "start")

    result = engine.run("victim")
    print(f"final result: {result} after {len(engine.transfer_log)} world transfers")
    assert result == sum(range(1, 101)) & 0xFFFF


if __name__ == "__main__":
    main()
