"""The numpy-absent machine, simulated on a machine that has numpy.

The ``pure`` leg of ``numpy_mode`` exercises the pure-Python branches by
*flag* (``force_pure_python``); this module goes further and makes the
import itself fail, the way a genuinely numpy-less machine would: a
``sys.modules`` entry of ``None`` makes ``import numpy`` raise
``ImportError``, and :func:`repro.fastpath.reset` forgets the cached module
so the gate re-probes and finds nothing.
"""

import random
import sys

import pytest

from repro import fastpath
from repro.reference import (
    bytes_to_words_reference,
    checksum_reference,
    random_bytes_reference,
    words_to_bytes_reference,
)
from repro.words import (
    WORD_MASK,
    bytes_to_words,
    checksum,
    random_bytes,
    words_to_bytes,
)
from repro.words import _NUMPY_MIN_ITEMS


@pytest.fixture
def numpy_hidden(monkeypatch):
    """numpy uninstalled, as far as any ``import numpy`` can tell."""
    for name in [m for m in sys.modules if m == "numpy" or m.startswith("numpy.")]:
        monkeypatch.delitem(sys.modules, name)
    monkeypatch.setitem(sys.modules, "numpy", None)  # import -> ImportError
    fastpath.reset()
    yield
    fastpath.reset()  # re-probe with the real sys.modules restored


def test_gate_degrades_cleanly(numpy_hidden):
    assert fastpath.numpy() is None
    assert not fastpath.numpy_available()
    with pytest.raises(ImportError):
        import numpy  # noqa: F401 - proving the hiding works


def test_equivalence_holds_without_numpy(numpy_hidden):
    """The full word-substrate equivalence slice, import genuinely failing.

    Sizes above ``_NUMPY_MIN_ITEMS`` matter most: those are the calls that
    would have taken the numpy branch and now must fall through.
    """
    rng = random.Random(41)
    for n in (0, 1, 7, _NUMPY_MIN_ITEMS - 1, _NUMPY_MIN_ITEMS, _NUMPY_MIN_ITEMS + 9):
        data = [rng.randrange(WORD_MASK + 1) for _ in range(n)]
        assert checksum(data) == checksum_reference(data)
        assert words_to_bytes(data) == words_to_bytes_reference(data)
        raw = bytes(rng.randrange(256) for _ in range(n + 1))  # odd length
        assert bytes_to_words(raw, 0x5A) == bytes_to_words_reference(raw, 0x5A)

    a, b = random.Random(1979), random.Random(1979)
    assert random_bytes(a, 4000) == random_bytes_reference(b, 4000)
    assert a.getrandbits(64) == b.getrandbits(64)


def test_workload_digest_identical_without_numpy(numpy_hidden):
    """A full golden workload on the no-numpy path pins the same digest."""
    from .test_golden_images import GOLDEN_PATH, WORKLOADS
    import json, os

    if os.environ.get("REPRO_UPDATE_GOLDENS") or not GOLDEN_PATH.exists():
        pytest.skip("goldens being regenerated")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert WORKLOADS["mount_write"]() == golden["mount_write"]
