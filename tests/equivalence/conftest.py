"""Every equivalence test runs on both sides of the numpy gate.

The ``numpy_mode`` fixture parametrizes the whole package over
``["numpy", "pure"]``: the first leg runs with the accelerated branch (and
skips on machines without numpy), the second forces the pure-Python branch
through :func:`repro.fastpath.force_pure_python`.  Both legs must produce
identical results -- the golden digests are shared, not per-leg.
"""

import pytest

from repro import fastpath


@pytest.fixture(params=["numpy", "pure"])
def numpy_mode(request):
    """Run the test under the requested fast-path branch; restore after."""
    if request.param == "numpy":
        if not fastpath.numpy_available():
            pytest.skip("numpy not installed; pure-Python leg covers this run")
        yield "numpy"
    else:
        fastpath.force_pure_python(True)
        try:
            yield "pure"
        finally:
            fastpath.force_pure_python(False)
