"""The differential equivalence harness.

Every bulk fast path in the tree keeps its original word-at-a-time form in
:mod:`repro.reference`; the tests in this package run both and assert the
outcomes are observationally identical -- same values, same exceptions,
same counters, same simulated microseconds, byte-identical pack images.

Three layers:

* ``test_words_equivalence.py`` -- hypothesis properties, fast == reference
  on arbitrary inputs (WORD_MASK edges, odd byte lengths, error cases).
* ``test_drive_equivalence.py`` -- identical command sequences replayed
  through the fast drive and the reference drive (including torn writes
  and checksum-bad sectors), compared outcome-for-outcome.
* ``test_golden_images.py`` -- pinned seed workloads
  (mount -> write -> scavenge -> compact -> serve) against checked-in
  digests: the permanent regression tripwire.

Every test here runs twice, with and without numpy (see ``conftest.py``),
so both branches of every fast path are exercised in one suite run.
"""
