"""Identical command sequences through the fast drive and the reference drive.

:func:`repro.reference.make_reference_drive` builds a ``DiskDrive`` subclass
whose per-part loops are the original word-at-a-time forms, and whose type
keeps it off every fast route (the direct-dispatch gate requires an exact
``DiskDrive``).  These tests replay one script on both and require the
complete observable record to match: return values, exception types and
messages, counter snapshots, simulated microseconds, and the pack digest.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.clock import SimClock
from repro.disk import DiskDrive, DiskImage, FaultPlan, tiny_test_disk
from repro.disk.sector import Label
from repro.errors import (
    LabelCheckError,
    SectorChecksumError,
    TornWriteError,
)
from repro.reference import make_reference_drive
from repro.words import WORD_MASK

#: The numpy_mode fixture just toggles a global flag -- identical for
#: every generated example -- so the function-scoped-fixture check is moot.
eq_settings = settings(suppress_health_check=[HealthCheck.function_scoped_fixture], deadline=None)


def make_pair(cylinders=6, fault_seed=None):
    """Two factory-fresh packs with their fast and reference drives."""
    pairs = []
    for build in (lambda img, plan: DiskDrive(img, fault_injector=plan),
                  lambda img, plan: make_reference_drive(img, fault_injector=plan)):
        image = DiskImage(tiny_test_disk(cylinders=cylinders))
        plan = FaultPlan(image, seed=fault_seed) if fault_seed is not None else None
        pairs.append(build(image, plan))
    return pairs


def observe(fn):
    """Run *fn*; capture (kind, value) where kind is 'ok' or 'raise'."""
    try:
        return ("ok", fn())
    except Exception as exc:  # noqa: BLE001 - parity includes any exception
        return ("raise", type(exc).__name__, str(exc))


def run_script(drive, script):
    """Replay *script* (a list of op tuples) and record every outcome."""
    outcomes = []
    for op in script:
        kind, args = op[0], op[1:]
        if kind == "write":
            address, label, value = args
            outcomes.append(observe(lambda: drive.write_label_value(address, label, value)))
        elif kind == "check_write":
            address, expected, value = args
            outcomes.append(observe(
                lambda: drive.check_label_write_value(address, expected, value)))
        elif kind == "check_rewrite":
            address, expected, new_label = args
            outcomes.append(observe(
                lambda: drive.check_label_then_rewrite(address, expected, new_label)))
        elif kind == "read":
            address, = args
            result = observe(lambda: drive.read_sector(address))
            if result[0] == "ok":
                r = result[1]
                result = ("ok", (r.header, r.label, tuple(r.value)))
            outcomes.append(result)
        elif kind == "read_label":
            address, = args
            outcomes.append(observe(lambda: drive.read_label(address)))
        elif kind == "check":
            address, expected = args
            result = observe(lambda: drive.check_label(address, expected))
            if result[0] == "ok":
                result = ("ok", tuple(result[1].label))
            outcomes.append(result)
        outcomes.append(drive.clock.now_us)
    return outcomes


def assert_identical(fast, reference, script):
    fast_record = run_script(fast, script)
    reference_record = run_script(reference, script)
    assert fast_record == reference_record
    assert fast.clock.now_us == reference.clock.now_us
    assert fast.stats.snapshot() == reference.stats.snapshot()
    assert fast.image.digest() == reference.image.digest()


def in_use_label(serial=0x1000, version=1, page=0, length=512, nl=WORD_MASK, pl=WORD_MASK):
    return Label(serial=serial, version=version, page_number=page,
                 length=length, next_link=nl, prev_link=pl)


class TestScriptedParity:
    def test_write_check_read_cycle(self, numpy_mode):
        fast, reference = make_pair()
        label = in_use_label()
        script = [
            ("write", 3, label, list(range(256))),
            ("check", 3, label),
            ("read", 3),
            ("check_write", 3, label, [WORD_MASK] * 256),
            ("check_rewrite", 3, label, in_use_label(version=2)),
            ("read_label", 3),
            ("read", 3),
        ]
        assert_identical(fast, reference, script)

    def test_failed_check_aborts_identically(self, numpy_mode):
        fast, reference = make_pair()
        label = in_use_label()
        wrong = in_use_label(serial=0x2000)
        script = [
            ("write", 5, label, [7] * 256),
            # Mismatched serial: LabelCheckError, and the scheduled write
            # after the check must not have happened on either drive.
            ("check_write", 5, wrong, [9] * 256),
            ("read", 5),
        ]
        assert_identical(fast, reference, script)
        assert fast.stats.label_check_failures == 1

    def test_wildcard_zero_matches_anything(self, numpy_mode):
        fast, reference = make_pair()
        label = in_use_label(serial=0x1234, version=5, page=3)
        wildcard = Label(serial=0, version=0, page_number=3,
                         length=0, next_link=0, prev_link=0)
        script = [
            ("write", 2, label, [1] * 256),
            ("check", 2, wildcard),
            ("check_write", 2, wildcard, [2] * 256),
            ("check_rewrite", 2, wildcard, in_use_label(version=6)),
            ("read", 2),
        ]
        assert_identical(fast, reference, script)

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.data())
    def test_arbitrary_scripts(self, numpy_mode, data):
        fast, reference = make_pair(cylinders=4)
        total = fast.shape.total_sectors()
        addresses = st.integers(min_value=0, max_value=total - 1)
        serials = st.sampled_from([0x1000, 0x2000, 0])  # 0: wildcard/free
        rng = random.Random(17)

        script = []
        for _ in range(data.draw(st.integers(min_value=1, max_value=12))):
            kind = data.draw(st.sampled_from(
                ["write", "check", "check_write", "read", "read_label"]))
            address = data.draw(addresses)
            label = Label(serial=data.draw(serials), version=data.draw(st.integers(0, 3)),
                          page_number=0, length=512,
                          next_link=WORD_MASK, prev_link=WORD_MASK)
            value = [rng.randrange(WORD_MASK + 1) for _ in range(256)]
            if kind == "write":
                script.append(("write", address, label, value))
            elif kind == "check":
                script.append(("check", address, label))
            elif kind == "check_write":
                script.append(("check_write", address, label, value))
            else:
                script.append((kind, address))
        assert_identical(fast, reference, script)


class TestFaultParity:
    def test_torn_write_and_checksum_bad_sector(self, numpy_mode):
        fast, reference = make_pair(fault_seed=1979)
        label = in_use_label()
        records = []
        for drive in (fast, reference):
            drive.write_label_value(1, label, [3] * 256)
            # Tear the next (3rd) part write: the label of the second
            # command lands, the value write is interrupted mid-sector.
            drive.fault_injector.tear_at_write(3)
            with pytest.raises(TornWriteError) as torn:
                drive.check_label_write_value(1, label, [4] * 256)
            drive.fault_injector.revive()
            # The torn part never got its checksum: reads fail until rewritten.
            with pytest.raises(SectorChecksumError):
                drive.read_sector(1)
            records.append((str(torn.value), drive.clock.now_us,
                            drive.stats.snapshot(), drive.image.digest(),
                            sorted(drive.image.checksum_bad)))
        assert records[0] == records[1]

    def test_transient_read_retries(self, numpy_mode):
        fast, reference = make_pair(fault_seed=7)
        label = in_use_label()
        records = []
        for drive in (fast, reference):
            drive.write_label_value(0, label, [1] * 256)
            drive.fault_injector.schedule_transient_reads(times=2)
            result = drive.read_sector(0)
            records.append((tuple(result.value), drive.clock.now_us,
                            drive.stats.snapshot(), drive.image.digest()))
        assert records[0] == records[1]
        assert records[0][2]["transient_read_errors"] == 2


class TestSharedClockParity:
    def test_reference_drive_with_explicit_clock(self, numpy_mode):
        # Both drives on caller-supplied clocks: parity must not depend on
        # the default-clock path.
        records = []
        for build in (DiskDrive, make_reference_drive):
            clock = SimClock()
            image = DiskImage(tiny_test_disk(cylinders=5))
            drive = build(image, clock)
            label = in_use_label()
            drive.write_label_value(4, label, list(range(256)))
            with pytest.raises(LabelCheckError):
                drive.check_label(4, in_use_label(serial=0x3000))
            records.append((clock.now_us, drive.image.digest(),
                            drive.stats.snapshot()))
        assert records[0] == records[1]
