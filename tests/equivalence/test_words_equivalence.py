"""Fast == reference for the word-substrate primitives.

Hypothesis drives arbitrary inputs through each bulk operation and its
word-at-a-time twin from :mod:`repro.reference`; deterministic cases pin
the sizes that straddle the numpy threshold (``_NUMPY_MIN_ITEMS``), where
the bulk implementation switches strategies mid-function.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.reference import (
    bytes_to_words_reference,
    checksum_reference,
    merge_check_reference,
    random_bytes_reference,
    words_to_bytes_reference,
)
from repro.words import (
    WORD_MASK,
    bytes_to_words,
    checksum,
    random_bytes,
    words_to_bytes,
)
from repro.words import _NUMPY_MIN_ITEMS
from repro.disk.drive import merge_check

#: The numpy_mode fixture just toggles a global flag -- identical for
#: every generated example -- so the function-scoped-fixture check is moot.
eq_settings = settings(suppress_health_check=[HealthCheck.function_scoped_fixture], deadline=None)

words_lists = st.lists(st.integers(min_value=0, max_value=WORD_MASK), max_size=600)

#: Sizes that bracket every strategy switch inside the bulk paths.
THRESHOLD_SIZES = [0, 1, 2, 3, 127, 128, 129,
                   _NUMPY_MIN_ITEMS - 1, _NUMPY_MIN_ITEMS, _NUMPY_MIN_ITEMS + 1,
                   2 * _NUMPY_MIN_ITEMS + 3]


class TestChecksum:
    @eq_settings
    @given(words_lists)
    def test_arbitrary(self, numpy_mode, data):
        assert checksum(data) == checksum_reference(data)

    def test_threshold_sizes(self, numpy_mode):
        rng = random.Random(7)
        for n in THRESHOLD_SIZES:
            data = [rng.randrange(WORD_MASK + 1) for _ in range(n)]
            assert checksum(data) == checksum_reference(data)

    def test_all_word_mask(self, numpy_mode):
        data = [WORD_MASK] * (_NUMPY_MIN_ITEMS + 5)
        assert checksum(data) == checksum_reference(data)


class TestBytesToWords:
    @eq_settings
    @given(st.binary(max_size=600), st.integers(min_value=0, max_value=255))
    def test_arbitrary(self, numpy_mode, data, pad):
        assert bytes_to_words(data, pad) == bytes_to_words_reference(data, pad)

    def test_threshold_sizes_odd_and_even(self, numpy_mode):
        rng = random.Random(11)
        for n in THRESHOLD_SIZES:
            for extra in (0, 1):  # even and odd byte counts
                data = bytes(rng.randrange(256) for _ in range(n + extra))
                assert bytes_to_words(data, 0xAB) == bytes_to_words_reference(data, 0xAB)

    def test_exotic_input_degrades_to_reference(self, numpy_mode):
        # A plain list of ints is not a buffer; both forms must agree anyway.
        data = [0x41, 0x42, 0x43]
        assert bytes_to_words(data) == bytes_to_words_reference(bytes(data))


class TestWordsToBytes:
    @eq_settings
    @given(words_lists, st.integers(min_value=-1, max_value=1300))
    def test_arbitrary(self, numpy_mode, data, nbytes):
        if nbytes > 2 * len(data):
            with pytest.raises(ValueError):
                words_to_bytes(data, nbytes)
            with pytest.raises(ValueError):
                words_to_bytes_reference(data, nbytes)
        else:
            assert words_to_bytes(data, nbytes) == words_to_bytes_reference(data, nbytes)

    def test_threshold_sizes(self, numpy_mode):
        rng = random.Random(13)
        for n in THRESHOLD_SIZES:
            data = [rng.randrange(WORD_MASK + 1) for _ in range(n)]
            assert words_to_bytes(data) == words_to_bytes_reference(data)
            if n:  # odd truncation exercises the nbytes path
                assert words_to_bytes(data, 2 * n - 1) == words_to_bytes_reference(data, 2 * n - 1)

    @eq_settings
    @given(st.lists(st.integers(min_value=-(2 ** 20), max_value=2 ** 20), min_size=1, max_size=50))
    def test_out_of_range_words_match_reference_masking(self, numpy_mode, data):
        # Out-of-range and negative words take the historical masking path
        # ((w >> 8) & 0xFF, w & 0xFF) in both implementations.
        assert words_to_bytes(data) == words_to_bytes_reference(data)

    @pytest.mark.parametrize("nbytes", [-2, -100])
    def test_negative_nbytes_rejected_before_work(self, numpy_mode, nbytes):
        with pytest.raises(ValueError, match="nbytes must be -1"):
            words_to_bytes([1, 2, 3], nbytes)
        with pytest.raises(ValueError, match="nbytes must be -1"):
            words_to_bytes_reference([1, 2, 3], nbytes)


class TestRandomBytes:
    """Stream-position equivalence: same draws, same leftover RNG state."""

    @pytest.mark.parametrize("count", [0, 1, 127, 128, 129, 1000, 5000])
    def test_same_bytes_and_same_stream_position(self, numpy_mode, count):
        a, b = random.Random(1979), random.Random(1979)
        assert random_bytes(a, count) == random_bytes_reference(b, count)
        # The next draw from each RNG must agree: the bulk form consumed
        # exactly as many Mersenne Twister outputs as the loop.
        assert a.getrandbits(64) == b.getrandbits(64)

    @eq_settings
    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(min_value=0, max_value=400))
    def test_arbitrary_seeds(self, numpy_mode, seed, count):
        a, b = random.Random(seed), random.Random(seed)
        assert random_bytes(a, count) == random_bytes_reference(b, count)
        assert a.random() == b.random()


class TestMergeCheck:
    words_256 = st.lists(st.integers(min_value=0, max_value=WORD_MASK), min_size=7, max_size=7)

    @eq_settings
    @given(words_256, words_256)
    def test_arbitrary(self, numpy_mode, expected, disk_words):
        assert merge_check(expected, disk_words) == merge_check_reference(expected, disk_words)

    @eq_settings
    @given(words_256, st.data())
    def test_wildcards_and_forced_match(self, numpy_mode, disk_words, data):
        # Build an expected buffer that matches except where wildcarded,
        # with an optional planted mismatch: all three regimes in one case.
        expected = list(disk_words)
        for i in data.draw(st.sets(st.integers(min_value=0, max_value=6))):
            expected[i] = 0  # wildcard
        mismatch_at = data.draw(st.none() | st.integers(min_value=0, max_value=6))
        if mismatch_at is not None and expected[mismatch_at] != 0:
            expected[mismatch_at] = (disk_words[mismatch_at] ^ 1) or 1
        assert merge_check(expected, disk_words) == merge_check_reference(expected, disk_words)

    def test_exact_equality_fast_path(self, numpy_mode):
        words = [1, 2, 3, 4, 5, 6, 7]
        assert merge_check(words, list(words)) == merge_check_reference(words, words)
