"""The golden-image suite: pinned workloads against checked-in digests.

Each workload builds a pack from a fixed seed, drives it through a slice of
the system (mount -> write -> scavenge -> compact -> serve -> crash), and
reports the pack's SHA-256 digest plus the simulated microseconds consumed.
The expected values live in ``golden_digests.json`` next to this file; any
change to a fast path, the timing model, the allocator, or the on-disk
format that alters either number trips these tests.

That is the point: the digests are a regression tripwire for *observational
equivalence*.  A legitimate change to the simulation (a new timing charge, a
format change) must regenerate them consciously:

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/equivalence/test_golden_images.py

and the diff of golden_digests.json becomes part of the review.  Both numpy
legs assert against the *same* pinned values -- the accelerated and pure
branches may not disagree even in their last bit.
"""

import json
import os
import random
from pathlib import Path

import pytest

from repro.disk import CachedDrive, DiskDrive, DiskImage, FaultPlan, tiny_test_disk
from repro.errors import PowerFailure, ReproError
from repro.fs import FileSystem
from repro.fs.compactor import compact
from repro.fs.scavenger import scavenge
from repro.net import PacketNetwork
from repro.server import FileClient, FileServer
from repro.words import random_bytes

GOLDEN_PATH = Path(__file__).with_name("golden_digests.json")

SEED = 1979


def _fresh(cylinders=20, cached=False, fault_seed=None):
    image = DiskImage(tiny_test_disk(cylinders=cylinders))
    plan = FaultPlan(image, seed=fault_seed) if fault_seed is not None else None
    drive = (CachedDrive if cached else DiskDrive)(image, fault_injector=plan)
    return image, drive


def _populate(fs, rng, files=10):
    for i in range(files):
        data = random_bytes(rng, rng.randrange(0, 2200))
        fs.create_file(f"file{i:02}.dat").write_data(data)
    for i in (2, 5):
        fs.delete_file(f"file{i:02}.dat")
    sub = fs.create_directory("Sub")
    fs.create_file("nested.txt", directory=sub).write_data(b"nested data")
    fs.sync()


# -- the pinned workloads -----------------------------------------------------
# Each returns {"digest": ..., "simulated_us": ...}; keep them deterministic:
# every random draw flows from SEED, nothing reads the wall clock.


def workload_format():
    """Bare format: descriptor, root directory, boot page."""
    image, drive = _fresh()
    FileSystem.format(drive)
    return {"digest": image.digest(), "simulated_us": drive.clock.now_us}


def workload_mount_write():
    """Format, populate with seeded files/deletes/subdir, remount, reread."""
    image, drive = _fresh()
    fs = FileSystem.format(drive)
    _populate(fs, random.Random(SEED))
    remounted = FileSystem.mount(drive)
    total = sum(len(remounted.open_file(n).read_data())
                for n in remounted.list_files() if n.endswith(".dat"))
    return {"digest": image.digest(), "simulated_us": drive.clock.now_us,
            "bytes_reread": total}


def workload_scavenge():
    """Populate then scavenge a healthy pack (the no-repairs sweep)."""
    image, drive = _fresh()
    fs = FileSystem.format(drive)
    _populate(fs, random.Random(SEED))
    report = scavenge(drive)
    return {"digest": image.digest(), "simulated_us": drive.clock.now_us,
            "files_swept": report.files_found}


def workload_compact():
    """Populate (with deletions, so there are gaps) then compact."""
    image, drive = _fresh()
    fs = FileSystem.format(drive)
    _populate(fs, random.Random(SEED))
    report = compact(drive)
    return {"digest": image.digest(), "simulated_us": drive.clock.now_us,
            "pages_moved": report.pages_moved}


def workload_serve():
    """Write and read files through the network file server."""
    image, drive = _fresh(cached=True)
    fs = FileSystem.format(drive)
    network = PacketNetwork(clock=drive.clock)
    network.attach("fileserver", queue_limit=4096)
    server = FileServer(fs, network)
    network.attach("ws")
    client = FileClient(network, "ws", pump=server.poll)
    rng = random.Random(SEED)
    for i in range(4):
        client.write_file(f"served{i}.bin", random_bytes(rng, 600 + 700 * i))
    reread = sum(len(client.read_file(f"served{i}.bin")) for i in range(4))
    return {"digest": image.digest(), "simulated_us": drive.clock.now_us,
            "bytes_served": reread}


def workload_crash_recover():
    """Tear a write mid-workload, scavenge, remount: recovery is pinned too."""
    image, drive = _fresh(fault_seed=SEED)
    fs = FileSystem.format(drive)
    _populate(fs, random.Random(SEED))
    # tear_at_write counts absolutely; tear the 5th part-write of the
    # in-flight file (mid-way through its page chain).
    drive.fault_injector.tear_at_write(drive.fault_injector.writes_seen + 5)
    try:
        fs.create_file("victim.dat").write_data(random_bytes(random.Random(SEED + 1), 3000))
    except (PowerFailure, ReproError):
        pass
    drive.fault_injector.revive()
    scavenge(drive)
    remounted = FileSystem.mount(drive)
    survivors = sorted(n for n in remounted.list_files() if n.endswith(".dat"))
    return {"digest": image.digest(), "simulated_us": drive.clock.now_us,
            "survivors": survivors}


WORKLOADS = {
    "format": workload_format,
    "mount_write": workload_mount_write,
    "scavenge": workload_scavenge,
    "compact": workload_compact,
    "serve": workload_serve,
    "crash_recover": workload_crash_recover,
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_golden(name, numpy_mode):
    observed = WORKLOADS[name]()
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        goldens = json.loads(GOLDEN_PATH.read_text()) if GOLDEN_PATH.exists() else {}
        goldens[name] = observed
        GOLDEN_PATH.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden for {name!r} updated; commit golden_digests.json")
    assert GOLDEN_PATH.exists(), (
        "golden_digests.json missing; regenerate with REPRO_UPDATE_GOLDENS=1")
    golden = json.loads(GOLDEN_PATH.read_text())[name]
    assert observed == golden, (
        f"workload {name!r} diverged from its golden record.\n"
        f"  expected: {golden}\n"
        f"  observed: {observed}\n"
        "If this change to the simulation is intentional, regenerate with "
        "REPRO_UPDATE_GOLDENS=1 and review the golden diff.")


def test_workloads_are_deterministic(numpy_mode):
    """Two runs of one workload agree with each other (pre-golden sanity)."""
    first = workload_mount_write()
    second = workload_mount_write()
    assert first == second
