"""Unit tests for the 16-bit word discipline."""

import pytest
from hypothesis import given, strategies as st

from repro import words
from repro.words import (
    bytes_to_words,
    check_word,
    checksum,
    from_double_word,
    ones_words,
    string_to_words,
    string_word_count,
    to_double_word,
    word,
    words_to_bytes,
    words_to_string,
    zero_words,
)


class TestWordBasics:
    def test_word_masks_to_16_bits(self):
        assert word(0x1_2345) == 0x2345
        assert word(-1) == 0xFFFF
        assert word(0xFFFF) == 0xFFFF

    def test_check_word_accepts_range(self):
        assert check_word(0) == 0
        assert check_word(0xFFFF) == 0xFFFF

    @pytest.mark.parametrize("bad", [-1, 0x10000, 1.5, "3", None])
    def test_check_word_rejects(self, bad):
        with pytest.raises(ValueError):
            check_word(bad)

    def test_is_word(self):
        assert words.is_word(0) and words.is_word(0xFFFF)
        assert not words.is_word(-1)
        assert not words.is_word(0x10000)
        assert not words.is_word("x")

    def test_page_constants(self):
        assert words.PAGE_DATA_WORDS == 256
        assert words.PAGE_DATA_BYTES == 512


class TestDoubleWords:
    def test_round_trip(self):
        high, low = to_double_word(0x1234_5678)
        assert (high, low) == (0x1234, 0x5678)
        assert from_double_word(high, low) == 0x1234_5678

    def test_extremes(self):
        assert to_double_word(0) == (0, 0)
        assert to_double_word(0xFFFF_FFFF) == (0xFFFF, 0xFFFF)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            to_double_word(0x1_0000_0000)
        with pytest.raises(ValueError):
            to_double_word(-1)

    @given(st.integers(min_value=0, max_value=0xFFFF_FFFF))
    def test_round_trip_property(self, value):
        assert from_double_word(*to_double_word(value)) == value


class TestBytePacking:
    def test_even_bytes(self):
        assert bytes_to_words(b"\x01\x02\x03\x04") == [0x0102, 0x0304]

    def test_odd_bytes_padded(self):
        assert bytes_to_words(b"\x01\x02\x03") == [0x0102, 0x0300]
        assert bytes_to_words(b"\x01\x02\x03", pad=0xFF) == [0x0102, 0x03FF]

    def test_empty(self):
        assert bytes_to_words(b"") == []
        assert words_to_bytes([]) == b""

    def test_words_to_bytes_truncation(self):
        assert words_to_bytes([0x4142, 0x4300], nbytes=3) == b"ABC"

    def test_truncation_beyond_available_rejected(self):
        with pytest.raises(ValueError):
            words_to_bytes([0x4142], nbytes=3)

    def test_negative_nbytes_rejected_up_front(self):
        # -1 is the "no truncation" sentinel; anything else negative is an
        # error, reported before any byte is packed.
        with pytest.raises(ValueError, match="nbytes must be -1"):
            words_to_bytes([0x4142, 0x4344], nbytes=-2)
        with pytest.raises(ValueError, match="got -100"):
            words_to_bytes([0x4142], nbytes=-100)

    def test_overflow_nbytes_error_names_the_shortfall(self):
        with pytest.raises(ValueError, match="asked for 5 bytes from 4 available"):
            words_to_bytes([0x4142, 0x4344], nbytes=5)
        # Boundary: exactly 2 * len(words) is fine, one more is not.
        assert words_to_bytes([0x4142, 0x4344], nbytes=4) == b"ABCD"
        with pytest.raises(ValueError):
            words_to_bytes([], nbytes=1)

    def test_nbytes_zero_is_valid(self):
        assert words_to_bytes([0x4142], nbytes=0) == b""

    @given(st.binary(max_size=600))
    def test_round_trip_property(self, data):
        assert words_to_bytes(bytes_to_words(data), nbytes=len(data)) == data


class TestBcplStrings:
    def test_round_trip(self):
        for text in ("", "a", "hello", "x" * 255):
            assert words_to_string(string_to_words(text)) == text

    def test_length_limit(self):
        with pytest.raises(ValueError):
            string_to_words("x" * 256)

    def test_custom_limit(self):
        with pytest.raises(ValueError):
            string_to_words("hello", max_bytes=4)

    def test_word_count(self):
        assert string_word_count("") == 1  # length byte + pad
        assert string_word_count("abc") == 2

    def test_corrupt_length_byte(self):
        # Claims 10 chars but only 1 byte follows.
        with pytest.raises(ValueError):
            words_to_string([0x0A41])

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=200))
    def test_round_trip_property(self, text):
        assert words_to_string(string_to_words(text)) == text


class TestFillsAndChecksum:
    def test_zero_and_ones(self):
        assert zero_words(3) == [0, 0, 0]
        assert ones_words(2) == [0xFFFF, 0xFFFF]

    def test_checksum_detects_change(self):
        data = list(range(100))
        base = checksum(data)
        data[50] ^= 0x0400
        assert checksum(data) != base

    def test_checksum_of_empty(self):
        assert checksum([]) == 0xFFFF

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=64))
    def test_checksum_is_a_word(self, data):
        assert 0 <= checksum(data) <= 0xFFFF
