"""Tests for buffered disk file streams."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.errors import EndOfStream, StreamError
from repro.fs import FileSystem
from repro.streams import (
    WORD_ITEMS,
    open_read_stream,
    open_write_stream,
    read_string,
    write_string,
)


@pytest.fixture
def file(fs):
    return fs.create_file("stream.dat")


class TestWriteThenRead:
    def test_byte_round_trip(self, file):
        ws = open_write_stream(file)
        write_string(ws, "the quick brown fox " * 40)  # 800 bytes
        ws.close()
        rs = open_read_stream(file)
        assert read_string(rs) == "the quick brown fox " * 40
        rs.close()

    def test_word_round_trip(self, file):
        ws = open_write_stream(file, items=WORD_ITEMS)
        for w in range(300):
            ws.put(w * 3)
        ws.close()
        rs = open_read_stream(file, items=WORD_ITEMS)
        assert [rs.get() for _ in range(300)] == [w * 3 for w in range(300)]
        assert rs.endof()

    def test_empty_write(self, file):
        open_write_stream(file).close()
        rs = open_read_stream(file)
        assert rs.endof()

    def test_exact_page_boundary(self, file):
        ws = open_write_stream(file)
        for i in range(512):
            ws.put(i % 256)
        ws.close()
        assert file.byte_length == 512
        rs = open_read_stream(file)
        assert len(read_string(rs)) == 512

    def test_append_mode(self, file):
        ws = open_write_stream(file)
        write_string(ws, "first")
        ws.close()
        ws = open_write_stream(file, append=True)
        write_string(ws, "|second")
        ws.close()
        rs = open_read_stream(file)
        assert read_string(rs) == "first|second"

    def test_append_across_page_boundary(self, file):
        ws = open_write_stream(file)
        write_string(ws, "x" * 500)
        ws.close()
        ws = open_write_stream(file, append=True)
        write_string(ws, "y" * 100)
        ws.close()
        rs = open_read_stream(file)
        data = read_string(rs)
        assert data == "x" * 500 + "y" * 100

    def test_item_validation(self, file):
        ws = open_write_stream(file)
        with pytest.raises(StreamError):
            ws.put(256)
        ws_words = open_write_stream(file, items=WORD_ITEMS)
        with pytest.raises(StreamError):
            ws_words.put(0x10000)

    def test_unknown_item_kind(self, file):
        with pytest.raises(StreamError):
            open_read_stream(file, items="dword")


class TestPositioning:
    def test_set_position(self, file):
        ws = open_write_stream(file)
        write_string(ws, "0123456789" * 120)  # 1200 bytes
        ws.close()
        rs = open_read_stream(file)
        rs.call("set_position", 1000)
        assert read_string(rs, 5) == "0123"[0:4] + "4"  # position 1000 => digit 0
        assert rs.call("read_position") == 1005

    def test_length_operation(self, file):
        ws = open_write_stream(file)
        write_string(ws, "abc")
        ws.close()
        rs = open_read_stream(file)
        assert rs.call("length") == 3

    def test_word_alignment_enforced(self, file):
        ws = open_write_stream(file, items=WORD_ITEMS)
        ws.put(1)
        ws.close()
        rs = open_read_stream(file, items=WORD_ITEMS)
        with pytest.raises(StreamError):
            rs.call("set_position", 1)

    def test_reset(self, file):
        ws = open_write_stream(file)
        write_string(ws, "abcdef")
        ws.close()
        rs = open_read_stream(file)
        rs.get()
        rs.reset()
        assert rs.get() == ord("a")


class TestDates:
    def test_close_updates_dates(self, fs, file):
        ws = open_write_stream(file, now=1000)
        write_string(ws, "z")
        ws.close()
        assert file.leader.written == 1000
        rs = open_read_stream(file, now=2000)
        rs.get()
        rs.close()
        assert file.leader.read == 2000

    def test_dates_can_be_left_alone(self, fs, file):
        before = file.leader.read
        rs = open_read_stream(file, update_dates=False)
        rs.close()
        assert file.leader.read == before


class TestCrashWindow:
    def test_unclosed_write_stream_loses_only_the_tail(self, fs, file):
        """A crash before close loses the buffered partial page; the file
        structure stays consistent (mountable, scavenger finds nothing)."""
        ws = open_write_stream(file)
        for i in range(512 + 100):  # one full page flushed + 100 buffered
            ws.put(i % 256)
        # No close: the machine dies here.
        from repro.fs.scavenger import Scavenger

        report = Scavenger(DiskDrive(fs.drive.image)).scavenge()
        assert report.links_repaired == 0
        fs2 = FileSystem.mount(DiskDrive(fs.drive.image))
        data = fs2.open_file("stream.dat").read_data()
        assert len(data) == 512  # the flushed page survived; the tail is gone


class TestStreamProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=1500))
    def test_any_payload_round_trips(self, payload):
        drive = DiskDrive(DiskImage(tiny_test_disk(cylinders=30)))
        fs = FileSystem.format(drive)
        file = fs.create_file("prop.dat")
        ws = open_write_stream(file)
        for b in payload:
            ws.put(b)
        ws.close()
        rs = open_read_stream(file)
        out = bytes(rs.get() for _ in range(len(payload)))
        assert out == payload
        assert rs.endof()
