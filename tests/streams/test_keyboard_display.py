"""Tests for keyboard and display devices and their streams."""

import pytest

from repro.errors import EndOfStream
from repro.streams import (
    DEBUG_KEY,
    DisplayDevice,
    KeyboardDevice,
    copy_stream,
    display_stream,
    keyboard_stream,
)


class TestKeyboardDevice:
    def test_type_ahead(self):
        kbd = KeyboardDevice()
        kbd.type_text("abc")
        assert kbd.available() == 3
        assert kbd.read_key() == "a"
        assert kbd.peek() == "b"
        assert kbd.available() == 2

    def test_empty_read(self):
        with pytest.raises(EndOfStream):
            KeyboardDevice().read_key()
        assert KeyboardDevice().peek() is None

    def test_overflow_drops(self):
        kbd = KeyboardDevice(capacity=3)
        kbd.type_text("abcdef")
        assert kbd.available() == 3
        assert kbd.dropped == 3

    def test_snapshot_restore(self):
        kbd = KeyboardDevice()
        kbd.type_text("hello")
        snap = kbd.snapshot()
        kbd.flush()
        kbd.restore(snap)
        assert kbd.read_key() == "h"

    def test_debug_key_invokes_handler(self):
        """Section 4: "the user strikes a special DEBUG key"."""
        kbd = KeyboardDevice()
        fired = []
        kbd.debug_handler = lambda: fired.append(True)
        kbd.type_text("a" + DEBUG_KEY + "b")
        assert fired == [True]
        assert kbd.available() == 2  # DEBUG key not buffered

    def test_debug_key_buffered_without_handler(self):
        kbd = KeyboardDevice()
        kbd.key_down(DEBUG_KEY)
        assert kbd.available() == 1


class TestKeyboardStream:
    def test_get_and_endof(self):
        kbd = KeyboardDevice()
        stream = keyboard_stream(kbd)
        assert stream.endof()
        kbd.type_text("xy")
        assert not stream.endof()
        assert stream.get() == "x"
        assert stream.call("peek") == "y"
        assert stream.call("available") == 1

    def test_reset_flushes(self):
        kbd = KeyboardDevice()
        kbd.type_text("junk")
        stream = keyboard_stream(kbd)
        stream.reset()
        assert stream.endof()


class TestDisplayDevice:
    def test_basic_write(self):
        disp = DisplayDevice(columns=10, lines=3)
        disp.write("hi\nthere")
        assert disp.visible_lines() == ["hi", "there"]
        assert disp.current_line() == "there"

    def test_wrap_at_columns(self):
        disp = DisplayDevice(columns=4, lines=5)
        disp.write("abcdef")
        assert disp.visible_lines() == ["abcd", "ef"]

    def test_scrolling(self):
        disp = DisplayDevice(columns=10, lines=2)
        disp.write("1\n2\n3\n")
        assert len(disp.visible_lines()) == 2
        assert disp.scrolled == 2
        assert "3" in disp.text()
        assert "1" not in disp.text()

    def test_control_characters(self):
        disp = DisplayDevice(columns=10, lines=4)
        disp.write("abc\rxy")  # carriage return rewrites the line
        assert disp.current_line() == "xy"
        disp.write("\bz")  # backspace
        assert disp.current_line() == "xz"
        disp.write("\f")  # form feed clears
        assert disp.text() == ""

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            DisplayDevice(columns=0)


class TestDisplayStream:
    def test_put_chars_and_codes(self):
        disp = DisplayDevice()
        stream = display_stream(disp)
        stream.put("A")
        stream.put(66)  # byte code
        assert disp.text() == "AB"
        assert stream.call("text") == "AB"

    def test_keyboard_to_display_copy(self):
        kbd = KeyboardDevice()
        kbd.type_text("echo!\n")
        disp = DisplayDevice()
        copy_stream(keyboard_stream(kbd), display_stream(disp))
        assert disp.text() == "echo!\n".replace("\n", "\n")
