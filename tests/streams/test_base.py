"""Tests for the stream protocol: slots, replacement, non-standard ops."""

import pytest

from repro.errors import EndOfStream, OperationNotSupported
from repro.streams import Stream, copy_stream, byte_read_stream, byte_write_stream


class TestProtocol:
    def test_unset_operations_raise(self):
        stream = Stream()
        with pytest.raises(OperationNotSupported):
            stream.get()
        with pytest.raises(OperationNotSupported):
            stream.put(1)
        with pytest.raises(OperationNotSupported):
            stream.reset()

    def test_slot_receives_the_stream_record(self):
        """Section 2: "the procedure receives the record which represents
        the stream as an argument, and can store any permanent state
        information in that record"."""
        def get(stream):
            stream.state["calls"] = stream.state.get("calls", 0) + 1
            return stream.state["calls"]

        stream = Stream(get=get)
        assert stream.get() == 1
        assert stream.get() == 2
        assert stream.state["calls"] == 2

    def test_operations_replaceable_at_runtime(self):
        """"the procedures ... can change from time to time, even for a
        particular stream"."""
        stream = Stream(get=lambda s: "old")
        assert stream.get() == "old"
        stream.set_operation("get", lambda s: "new")
        assert stream.get() == "new"

    def test_non_standard_operations(self):
        stream = Stream()
        stream.set_operation("set_buffer_size", lambda s, n: s.state.__setitem__("buf", n))
        stream.call("set_buffer_size", 42)
        assert stream.state["buf"] == 42
        assert stream.supports("set_buffer_size")
        with pytest.raises(OperationNotSupported):
            stream.call("read_position")

    def test_close_idempotent(self):
        closes = []
        stream = Stream(close=lambda s: closes.append(1))
        stream.close()
        stream.close()
        assert closes == [1]

    def test_close_without_slot_is_fine(self):
        Stream().close()

    def test_context_manager(self):
        closes = []
        with Stream(close=lambda s: closes.append(1)) as stream:
            pass
        assert closes == [1]

    def test_iteration(self):
        stream = byte_read_stream(b"abc")
        assert list(stream) == [97, 98, 99]


class TestCopyStream:
    def test_copies_all(self):
        src = byte_read_stream(b"hello")
        dst = byte_write_stream()
        assert copy_stream(src, dst) == 5
        assert dst.call("bytes") == b"hello"

    def test_copies_count(self):
        src = byte_read_stream(b"hello")
        dst = byte_write_stream()
        assert copy_stream(src, dst, count=3) == 3
        assert dst.call("bytes") == b"hel"

    def test_empty_source(self):
        assert copy_stream(byte_read_stream(b""), byte_write_stream()) == 0
