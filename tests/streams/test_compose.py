"""Tests for stream combinators."""

import pytest

from repro.errors import EndOfStream
from repro.streams import (
    byte_read_stream,
    byte_write_stream,
    concatenate_read_streams,
    copy_stream,
    counting_stream,
    filter_read_stream,
    map_read_stream,
    map_write_stream,
    tee_stream,
    vector_read_stream,
    vector_write_stream,
)


class TestTee:
    def test_fans_out(self):
        a, b = vector_write_stream(), vector_write_stream()
        tee = tee_stream(a, b)
        tee.put(1)
        tee.put(2)
        assert a.call("contents") == [1, 2]
        assert b.call("contents") == [1, 2]

    def test_reset_propagates(self):
        a = vector_write_stream()
        tee = tee_stream(a)
        tee.put(1)
        tee.reset()
        assert a.call("contents") == []


class TestMapStreams:
    def test_map_read(self):
        stream = map_read_stream(vector_read_stream([1, 2, 3]), lambda x: x * 10)
        assert list(stream) == [10, 20, 30]

    def test_map_write(self):
        sink = vector_write_stream()
        stream = map_write_stream(sink, str.upper)
        stream.put("a")
        assert sink.call("contents") == ["A"]


class TestFilter:
    def test_keeps_matching(self):
        stream = filter_read_stream(vector_read_stream(range(10)), lambda x: x % 3 == 0)
        assert list(stream) == [0, 3, 6, 9]

    def test_endof_looks_ahead(self):
        stream = filter_read_stream(vector_read_stream([1, 2, 4]), lambda x: x % 3 == 0)
        assert stream.endof()
        with pytest.raises(EndOfStream):
            stream.get()

    def test_reset(self):
        stream = filter_read_stream(vector_read_stream([3, 5, 6]), lambda x: x % 3 == 0)
        assert stream.get() == 3
        stream.reset()
        assert list(stream) == [3, 6]


class TestCounting:
    def test_counts_both_directions(self):
        src = counting_stream(byte_read_stream(b"ab"))
        dst = counting_stream(byte_write_stream())
        copy_stream(src, dst)
        assert src.call("counts") == (2, 0)
        assert dst.call("counts") == (0, 2)

    def test_only_wraps_supported_ops(self):
        wrapped = counting_stream(byte_read_stream(b"a"))
        assert not wrapped.supports("put")


class TestConcatenate:
    def test_in_order(self):
        stream = concatenate_read_streams([
            vector_read_stream([1, 2]),
            vector_read_stream([]),
            vector_read_stream([3]),
        ])
        assert list(stream) == [1, 2, 3]

    def test_reset_all(self):
        stream = concatenate_read_streams([vector_read_stream([1]), vector_read_stream([2])])
        assert list(stream) == [1, 2]
        stream.reset()
        assert list(stream) == [1, 2]

    def test_empty(self):
        stream = concatenate_read_streams([])
        assert stream.endof()
        with pytest.raises(EndOfStream):
            stream.get()
