"""Tests for the memory-resident display raster."""

import pytest

from repro.memory import Memory
from repro.streams.raster import MemoryRaster, raster_stream, raster_words


@pytest.fixture
def setup():
    memory = Memory(0x4000)
    raster = MemoryRaster(memory.region(0x1000, raster_words(20, 4)), columns=20, lines=4)
    return memory, raster


class TestRaster:
    def test_write_and_read(self, setup):
        memory, raster = setup
        raster.write("hello\nworld")
        assert raster.visible_lines()[:2] == ["hello", "world"]

    def test_wrap(self, setup):
        memory, raster = setup
        raster.write("x" * 25)
        assert raster.line_text(0) == "x" * 20
        assert raster.line_text(1) == "x" * 5

    def test_scroll(self, setup):
        memory, raster = setup
        raster.write("1\n2\n3\n4\n5\n")
        lines = [l for l in raster.visible_lines() if l]
        assert lines == ["3", "4", "5"]

    def test_control_characters(self, setup):
        memory, raster = setup
        raster.write("abc\rX")
        assert raster.line_text(0) == "Xbc"
        raster.write("\b")
        assert raster.line_text(0) == " bc"  # backspace blanked the X at column 0

    def test_form_feed_clears(self, setup):
        memory, raster = setup
        raster.write("junk\f")
        assert raster.text() == ""

    def test_geometry_validation(self):
        memory = Memory(0x100)
        with pytest.raises(ValueError):
            MemoryRaster(memory.region(0, 10), columns=20, lines=4)
        with pytest.raises(ValueError):
            MemoryRaster(memory.region(0, 100), columns=0, lines=1)

    def test_cells_really_live_in_memory(self, setup):
        memory, raster = setup
        raster.write("A")
        assert ord("A") in memory.read_block(0x1000, raster_words(20, 4))


class TestScreenTravelsWithTheWorld:
    def test_memory_dump_carries_the_screen(self, setup):
        """The Alto property: the screen image is part of the world."""
        memory, raster = setup
        raster.write("before the swap")
        image = memory.dump()
        raster.clear()
        raster.write("other program's screen")
        memory.load(image)
        assert raster.line_text(0) == "before the swap"

    def test_full_world_swap_restores_the_screen(self):
        from repro.disk import DiskDrive, DiskImage, tiny_test_disk
        from repro.fs import FileSystem
        from repro.world import Machine, WorldSwapper

        drive = DiskDrive(DiskImage(tiny_test_disk(cylinders=60)))
        fs = FileSystem.format(drive)
        machine = Machine()
        raster = MemoryRaster(machine.memory.region(0x4000, raster_words(40, 8)),
                              columns=40, lines=8)
        raster.write("editor screen contents")
        swapper = WorldSwapper(fs, machine)
        swapper.outload("editor.world", "editor", "resume")
        raster.clear()
        raster.write("debugger took over")
        swapper.inload("editor.world")
        assert raster.line_text(0) == "editor screen contents"


class TestRasterStream:
    def test_stream_protocol(self, setup):
        memory, raster = setup
        stream = raster_stream(raster)
        stream.put("H")
        stream.put(105)  # 'i'
        assert stream.call("text") == "Hi"
        stream.reset()
        assert stream.call("text") == ""
