"""Tests for random-access update streams."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.errors import EndOfStream, StreamError
from repro.fs import FileSystem
from repro.streams import open_read_stream, open_write_stream, read_string, write_string
from repro.streams.update_stream import open_update_stream


@pytest.fixture
def file(fs):
    f = fs.create_file("doc.dat")
    f.write_data(b"0123456789" * 130)  # 1300 bytes, crosses 2 page boundaries
    return f


def contents(file):
    stream = open_read_stream(file, update_dates=False)
    data = bytes(stream.get() for _ in range(stream.call("length")))
    stream.close()
    return data


class TestReadModifyWrite:
    def test_overwrite_middle(self, file):
        stream = open_update_stream(file)
        stream.call("set_position", 700)
        for b in b"PATCH":
            stream.put(b)
        stream.close()
        data = contents(file)
        assert data[700:705] == b"PATCH"
        assert data[:700] == (b"0123456789" * 130)[:700]
        assert data[705:] == (b"0123456789" * 130)[705:]
        assert len(data) == 1300

    def test_patch_across_page_boundary(self, file):
        stream = open_update_stream(file)
        stream.call("set_position", 508)
        for b in b"SPANNING":  # bytes 508..515 cross the 512 boundary
            stream.put(b)
        stream.close()
        assert contents(file)[508:516] == b"SPANNING"

    def test_read_back_through_same_stream(self, file):
        stream = open_update_stream(file)
        stream.call("set_position", 10)
        stream.put(ord("X"))
        stream.call("set_position", 10)
        assert stream.get() == ord("X")
        stream.close()

    def test_interleaved_reads_and_writes(self, file):
        stream = open_update_stream(file)
        total = stream.call("length")
        # Uppercase every '0' in place.
        stream.call("set_position", 0)
        position = 0
        while position < total:
            byte = stream.get()
            if byte == ord("0"):
                stream.call("set_position", position)
                stream.put(ord("O"))
            position += 1
        stream.close()
        assert contents(file) == b"O123456789" * 130


class TestGrowth:
    def test_append_at_end(self, file):
        stream = open_update_stream(file)
        stream.call("set_position", stream.call("length"))
        for b in b"+tail":
            stream.put(b)
        stream.close()
        assert contents(file).endswith(b"9+tail")
        assert file.byte_length == 1305

    def test_grow_from_empty_across_pages(self, fs):
        f = fs.create_file("empty.dat")
        stream = open_update_stream(f)
        for i in range(1200):
            stream.put(i % 256)
        stream.close()
        assert contents(f) == bytes(i % 256 for i in range(1200))

    def test_no_holes(self, file):
        stream = open_update_stream(file)
        with pytest.raises(StreamError):
            stream.call("set_position", 5000)

    def test_get_past_end(self, fs):
        f = fs.create_file("tiny.dat")
        f.write_data(b"a")
        stream = open_update_stream(f)
        stream.get()
        assert stream.endof()
        with pytest.raises(EndOfStream):
            stream.get()


class TestDurability:
    def test_flush_makes_writes_visible(self, fs, file):
        stream = open_update_stream(file)
        stream.call("set_position", 3)
        stream.put(ord("Z"))
        stream.call("flush")
        # Another reader sees it before close.
        assert contents(file)[3] == ord("Z")
        stream.close()

    def test_close_updates_written_date(self, fs, file):
        stream = open_update_stream(file, now=4321)
        stream.put(ord("q"))
        stream.close()
        assert file.leader.written == 4321


class TestUpdateStreamProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=1500),
                      st.integers(min_value=0, max_value=255)),
            min_size=1,
            max_size=30,
        )
    )
    def test_random_patches_match_a_bytearray_model(self, patches):
        drive = DiskDrive(DiskImage(tiny_test_disk(cylinders=30)))
        fs = FileSystem.format(drive)
        file = fs.create_file("prop.dat")
        base = bytes(range(256)) * 5  # 1280 bytes
        file.write_data(base)
        model = bytearray(base)
        stream = open_update_stream(file)
        for position, value in patches:
            position = min(position, len(model))  # clamp to append-at-end
            stream.call("set_position", position)
            stream.put(value)
            if position == len(model):
                model.append(value)
            else:
                model[position] = value
        stream.close()
        again = FileSystem.mount(DiskDrive(drive.image, clock=drive.clock))
        assert again.open_file("prop.dat").read_data() == bytes(model)
