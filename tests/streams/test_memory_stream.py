"""Tests for in-memory streams."""

import pytest

from repro.errors import EndOfStream
from repro.streams import (
    byte_read_stream,
    byte_write_stream,
    null_stream,
    string_read_stream,
    string_write_stream,
    vector_read_stream,
    vector_write_stream,
)


class TestVectorStreams:
    def test_read_in_order(self):
        stream = vector_read_stream([1, "two", [3]])
        assert stream.get() == 1
        assert stream.get() == "two"
        assert stream.get() == [3]
        assert stream.endof()
        with pytest.raises(EndOfStream):
            stream.get()

    def test_reset_returns_to_start(self):
        stream = vector_read_stream([1, 2])
        stream.get()
        stream.reset()
        assert stream.get() == 1

    def test_positioning(self):
        stream = vector_read_stream([10, 20, 30])
        stream.call("set_position", 2)
        assert stream.get() == 30
        assert stream.call("read_position") == 3
        stream.call("set_position", 99)  # clamped
        assert stream.endof()

    def test_write_collects(self):
        stream = vector_write_stream()
        stream.put("a")
        stream.put("b")
        assert stream.call("contents") == ["a", "b"]
        assert not stream.endof()  # write streams never end
        stream.reset()
        assert stream.call("contents") == []


class TestByteAndStringStreams:
    def test_byte_round_trip(self):
        src = byte_read_stream(b"\x00\xff")
        assert [src.get(), src.get()] == [0, 255]
        dst = byte_write_stream()
        dst.put(65)
        dst.put(66)
        assert dst.call("bytes") == b"AB"

    def test_string_round_trip(self):
        src = string_read_stream("hi")
        dst = string_write_stream()
        dst.put(src.get())
        dst.put(src.get())
        assert dst.call("string") == "hi"


class TestNullStream:
    def test_swallows_and_produces_nothing(self):
        stream = null_stream()
        stream.put("anything")
        assert stream.endof()
        with pytest.raises(EndOfStream):
            stream.get()
        stream.reset()
