"""Properties of the write-back sector cache at the drive-command level.

The contract under test: a :class:`CachedDrive` is observationally
equivalent to a plain :class:`DiskDrive` -- every command returns the same
result, and after ``flush()`` the platter is byte-identical -- while
serving repeated traffic from memory.  Hypothesis drives random command
interleavings; a stateful machine exercises the LRU/pinning/dirty
machinery against a model.
"""

import pytest

from repro.disk import (
    Action,
    CachedDrive,
    DiskDrive,
    DiskImage,
    Label,
    PartCommand,
    RequestScheduler,
    tiny_test_disk,
)
from repro.disk.sector import VALUE_WORDS
from repro.errors import LabelCheckError

try:
    from hypothesis import given, settings, strategies as st
    from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

pytestmark = pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")

ADDRESSES = list(range(24))
SERIAL = 0x4000_0001


def page_label(idx: int, length: int = 512) -> Label:
    return Label(serial=SERIAL, version=1, page_number=idx + 1, length=length)


def value_for(seed: int):
    return [(seed * 7 + i) & 0xFFFF for i in range(VALUE_WORDS)]


# An op is (kind, address-index, seed); the interpreter below applies it to
# any drive, tracking claimed-ness itself so both drives see the same ops.
op_strategy = st.tuples(
    st.sampled_from(["claim", "write", "read", "check_read", "relabel", "free"]),
    st.sampled_from(range(len(ADDRESSES))),
    st.integers(min_value=0, max_value=999),
)


def apply_ops(drive, ops):
    """Run the op list; returns (observations, claimed-set)."""
    claimed = {}
    observations = []
    for kind, idx, seed in ops:
        address = ADDRESSES[idx]
        if kind == "claim" and idx not in claimed:
            drive.check_label_then_rewrite(
                address, Label.free(), page_label(idx), value_for(seed)
            )
            claimed[idx] = page_label(idx)
        elif kind == "write" and idx in claimed:
            drive.check_label_write_value(address, claimed[idx], value_for(seed))
        elif kind == "read" and idx in claimed:
            result = drive.check_label_read_value(address, claimed[idx])
            observations.append((kind, idx, tuple(result.value)))
        elif kind == "check_read" and idx in claimed:
            # Wildcard check: zeros match anything; yields the true label.
            wildcard = [SERIAL >> 16, SERIAL & 0xFFFF, 0, 0, 0, 0, 0]
            result = drive.transfer(address, label=PartCommand(Action.CHECK, wildcard))
            observations.append((kind, idx, tuple(result.label)))
        elif kind == "relabel" and idx in claimed:
            new = page_label(idx, length=seed % 513)
            drive.check_label_then_rewrite(address, claimed[idx], new)
            claimed[idx] = new
        elif kind == "free" and idx in claimed:
            from repro.words import ones_words

            drive.check_label_then_rewrite(
                address, claimed[idx], Label.free(), ones_words(VALUE_WORDS)
            )
            del claimed[idx]
    return observations, claimed


def images_identical(a: DiskImage, b: DiskImage) -> bool:
    return all(
        s1.header.pack() == s2.header.pack()
        and s1.label.pack() == s2.label.pack()
        and list(s1.value) == list(s2.value)
        for s1, s2 in zip(a.sectors(), b.sectors())
    )


class TestCommandEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(ops=st.lists(op_strategy, min_size=1, max_size=40),
           capacity=st.sampled_from([0, 2, 5, 128]))
    def test_cached_drive_observationally_equals_plain(self, ops, capacity):
        """Same commands, same results; after flush(), same platter --
        at every cache size including pathologically small and off."""
        plain_image = DiskImage(tiny_test_disk())
        cached_image = DiskImage(tiny_test_disk())
        plain = DiskDrive(plain_image)
        cached = CachedDrive(cached_image, cache_sectors=capacity)

        plain_obs, _ = apply_ops(plain, ops)
        cached_obs, _ = apply_ops(cached, ops)
        assert plain_obs == cached_obs

        cached.flush()
        assert images_identical(plain_image, cached_image)
        assert len(cached.scheduler) == 0

    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(op_strategy, min_size=1, max_size=30))
    def test_cached_drive_never_writes_more_label_commands(self, ops):
        """Label writes are write-through, never amplified: the cached run
        issues exactly the label writes the plain run issues."""
        plain = DiskDrive(DiskImage(tiny_test_disk()))
        cached = CachedDrive(DiskImage(tiny_test_disk()))
        apply_ops(plain, ops)
        apply_ops(cached, ops)
        cached.flush()
        assert cached.stats.label_writes == plain.stats.label_writes
        assert cached.stats.value_writes <= plain.stats.value_writes
        assert cached.clock.now_us <= plain.clock.now_us

    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(op_strategy, min_size=1, max_size=30),
           seed=st.integers(min_value=0, max_value=999))
    def test_current_value_tracks_buffered_writes(self, ops, seed):
        drive = CachedDrive(DiskImage(tiny_test_disk()))
        _, claimed = apply_ops(drive, ops)
        for idx, label in claimed.items():
            address = ADDRESSES[idx]
            drive.check_label_write_value(address, label, value_for(seed))
            assert drive.current_value(address) == value_for(seed)
        drive.flush()
        for idx in claimed:
            address = ADDRESSES[idx]
            assert drive.current_value(address) == list(
                drive.image.sector(address).value
            )


class CacheMachine(RuleBasedStateMachine):
    """Eviction/pinning state machine against a shadow model.

    The model is the logical content of each claimed sector (what a read
    must return) plus the pin ledger; the invariants pin down the LRU
    bookkeeping: capacity is respected modulo pins, dirty entries and the
    elevator queue agree, pinned sectors survive any amount of traffic.
    """

    CAPACITY = 4

    def __init__(self):
        super().__init__()
        self.drive = CachedDrive(
            DiskImage(tiny_test_disk()), cache_sectors=self.CAPACITY
        )
        self.labels = {}
        self.contents = {}
        self.pins = {}

    @rule(idx=st.sampled_from(range(12)))
    def claim(self, idx):
        if idx in self.labels:
            return
        self.drive.check_label_then_rewrite(
            ADDRESSES[idx], Label.free(), page_label(idx), value_for(idx)
        )
        self.labels[idx] = page_label(idx)
        self.contents[idx] = value_for(idx)

    @rule(idx=st.sampled_from(range(12)), seed=st.integers(0, 999))
    def write(self, idx, seed):
        if idx not in self.labels:
            return
        self.drive.check_label_write_value(
            ADDRESSES[idx], self.labels[idx], value_for(seed)
        )
        self.contents[idx] = value_for(seed)

    @rule(idx=st.sampled_from(range(12)))
    def read(self, idx):
        if idx not in self.labels:
            return
        result = self.drive.check_label_read_value(ADDRESSES[idx], self.labels[idx])
        assert list(result.value) == self.contents[idx]

    @rule(idx=st.sampled_from(range(12)))
    def pin(self, idx):
        self.drive.pin(ADDRESSES[idx])
        self.pins[idx] = self.pins.get(idx, 0) + 1

    @rule(idx=st.sampled_from(range(12)))
    def unpin(self, idx):
        self.drive.unpin(ADDRESSES[idx])
        self.pins[idx] = max(0, self.pins.get(idx, 0) - 1)

    @rule()
    def flush(self):
        self.drive.flush()
        assert len(self.drive.scheduler) == 0

    @rule(idx=st.sampled_from(range(12)))
    def invalidate_clean(self, idx):
        # Only model-safe invalidation: flush first so no write is lost.
        self.drive.flush()
        self.drive.invalidate(ADDRESSES[idx])

    @invariant()
    def reads_always_see_the_model(self):
        for idx, label in self.labels.items():
            result = self.drive.check_label_read_value(ADDRESSES[idx], label)
            assert list(result.value) == self.contents[idx], f"sector {idx}"

    @invariant()
    def dirty_set_equals_elevator_queue(self):
        dirty = {
            address
            for address, entry in self.drive._entries.items()
            if entry.dirty
        }
        assert dirty == set(self.drive.scheduler.pending())

    @invariant()
    def capacity_respected_modulo_pins(self):
        # Pins can force the cache past capacity (it grows rather than
        # deadlocks), but never by more than one unpinned entry beyond the
        # peak pinned population; absent pin pressure it stays at CAPACITY.
        pinned = sum(
            1 for e in self.drive._entries.values() if e.pins > 0
        )
        self.max_pinned = max(getattr(self, "max_pinned", 0), pinned)
        assert self.drive.cached_sectors() <= max(
            self.CAPACITY, self.max_pinned + 1
        )

    @invariant()
    def pin_ledger_matches(self):
        for idx, count in self.pins.items():
            if count > 0:
                entry = self.drive._entries.get(ADDRESSES[idx])
                assert entry is not None and entry.pins == count


CacheMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=20, deadline=None
)
TestCacheMachine = CacheMachine.TestCase


class TestScheduler:
    @settings(max_examples=50, deadline=None)
    @given(addresses=st.lists(st.integers(0, 719), unique=True, min_size=1, max_size=40),
           start=st.integers(0, 29))
    def test_elevator_services_everything_exactly_once(self, addresses, start):
        shape = tiny_test_disk(cylinders=30)
        scheduler = RequestScheduler(shape)
        for address in addresses:
            scheduler.enqueue(address)
        order = []
        cylinder = start
        while True:
            nxt = scheduler.next_address(cylinder)
            if nxt is None:
                break
            order.append(nxt)
            cylinder, _, _ = shape.decompose(nxt)
            scheduler.mark_serviced(nxt)
        assert sorted(order) == sorted(addresses)
        assert scheduler.stats.serviced == len(addresses)

    @settings(max_examples=50, deadline=None)
    @given(addresses=st.lists(st.integers(0, 719), unique=True, min_size=2, max_size=40),
           start=st.integers(0, 29))
    def test_elevator_never_reverses_mid_sweep(self, addresses, start):
        """Cylinder deltas change sign at most once per direction reversal,
        and reversals only happen when nothing lies ahead -- SCAN, not
        shortest-seek starvation."""
        shape = tiny_test_disk(cylinders=30)
        scheduler = RequestScheduler(shape)
        for address in addresses:
            scheduler.enqueue(address)
        cylinder = start
        reversals = 0
        direction = 1  # the scheduler starts ascending
        while True:
            nxt = scheduler.next_address(cylinder)
            if nxt is None:
                break
            target, _, _ = shape.decompose(nxt)
            delta = target - cylinder
            if delta * direction < 0:
                reversals += 1
                direction = -direction
            cylinder = target
            scheduler.mark_serviced(nxt)
        assert reversals <= 1 + scheduler.stats.sweeps


class TestStaleCleanEntries:
    def test_stale_clean_entry_is_dropped_and_platter_wins(self):
        """A second writer mutates the platter beneath the cache; the next
        guarded command whose check disagrees with the stale copy must fall
        through to the platter, not fail from memory (the cache is a
        hint)."""
        image = DiskImage(tiny_test_disk())
        cached = CachedDrive(image)
        cached.check_label_then_rewrite(5, Label.free(), page_label(5), value_for(1))
        cached.check_label_read_value(5, page_label(5))  # warms a clean entry

        # A foreign (uncached) writer relabels the sector directly.
        foreign = DiskDrive(image, clock=cached.clock)
        new_label = page_label(5, length=100)
        foreign.check_label_then_rewrite(5, page_label(5), new_label, value_for(2))

        # Checking against the NEW label fails on the stale cached copy,
        # drops it, and succeeds against the platter.
        result = cached.check_label_read_value(5, new_label)
        assert list(result.value) == value_for(2)

        # Checking against the OLD label now fails for real.
        with pytest.raises(LabelCheckError):
            cached.check_label_read_value(5, page_label(5))
