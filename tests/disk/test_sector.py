"""Unit tests for sector structure: headers, labels, values."""

import pytest
from hypothesis import given, strategies as st

from repro.disk.geometry import NIL
from repro.disk.sector import (
    DIRECTORY_SERIAL_FLAG,
    HEADER_WORDS,
    LABEL_WORDS,
    SERIAL_BAD,
    SERIAL_FREE,
    VALUE_WORDS,
    Header,
    Label,
    Sector,
    value_words,
)


class TestHeader:
    def test_pack_unpack(self):
        header = Header(pack_id=3, address=42)
        assert Header.unpack(header.pack()) == header

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            Header.unpack([1])


class TestLabel:
    def test_seven_words(self):
        """Section 3.1 enumerates exactly seven label words."""
        assert LABEL_WORDS == 7
        assert len(Label().pack()) == 7

    def test_pack_unpack_round_trip(self):
        label = Label(serial=0x4001_0002, version=3, page_number=5, length=100,
                      next_link=9, prev_link=7)
        assert Label.unpack(label.pack()) == label

    def test_free_label_is_all_ones(self):
        """Freeing writes ones into the label (section 3.3)."""
        assert Label.free().pack() == [0xFFFF] * 7
        assert Label.free().is_free
        assert not Label.free().in_use

    def test_bad_label(self):
        label = Label.bad()
        assert label.is_bad and not label.is_free and not label.in_use
        assert label.serial == SERIAL_BAD

    def test_directory_flag(self):
        plain = Label(serial=0x4000_0001, version=1, page_number=1, length=0)
        directory = Label(serial=0x4000_0001 | DIRECTORY_SERIAL_FLAG, version=1,
                          page_number=1, length=0)
        assert not plain.is_directory
        assert directory.is_directory

    def test_free_and_bad_are_never_directories(self):
        assert not Label.free().is_directory
        assert not Label.bad().is_directory

    def test_is_last(self):
        assert Label(serial=0x4000_0001, version=1, page_number=1, length=0).is_last
        assert not Label(serial=0x4000_0001, version=1, page_number=1, length=0,
                         next_link=5).is_last

    def test_with_links(self):
        label = Label(serial=0x4000_0001, version=1, page_number=1, length=0)
        linked = label.with_links(next_link=3, prev_link=4)
        assert (linked.next_link, linked.prev_link) == (3, 4)
        assert (label.next_link, label.prev_link) == (NIL, NIL)  # original intact
        only_next = label.with_links(next_link=8)
        assert (only_next.next_link, only_next.prev_link) == (8, NIL)

    def test_absolute_key_orders_by_fv_then_page(self):
        a = Label(serial=0x4000_0001, version=1, page_number=2, length=0)
        b = Label(serial=0x4000_0001, version=1, page_number=3, length=0)
        c = Label(serial=0x4000_0002, version=1, page_number=0, length=0)
        assert sorted([c, b, a], key=Label.absolute_key) == [a, b, c]

    def test_wrong_word_count_rejected(self):
        with pytest.raises(ValueError):
            Label.unpack([0] * 6)

    @given(
        st.integers(min_value=0x4000_0001, max_value=0xBFFF_FFFF),
        st.integers(min_value=1, max_value=0xFFFE),
        st.integers(min_value=1, max_value=0xFFFE),
        st.integers(min_value=0, max_value=512),
    )
    def test_round_trip_property(self, serial, version, page, length):
        label = Label(serial=serial, version=version, page_number=page, length=length)
        assert Label.unpack(label.pack()) == label


class TestSector:
    def test_fresh_sector_is_free(self):
        sector = Sector.fresh(pack_id=1, address=10)
        assert sector.label.is_free
        assert sector.value == [0xFFFF] * VALUE_WORDS
        assert sector.header == Header(1, 10)

    def test_copy_is_deep_for_value(self):
        sector = Sector.fresh(1, 0)
        clone = sector.copy()
        clone.value[0] = 0
        assert sector.value[0] == 0xFFFF

    def test_wrong_value_size_rejected(self):
        with pytest.raises(ValueError):
            Sector(header=Header(1, 0), value=[0] * 10)


class TestValueWords:
    def test_pads_to_full_value(self):
        padded = value_words([1, 2, 3])
        assert len(padded) == VALUE_WORDS
        assert padded[:3] == [1, 2, 3]
        assert padded[3] == 0

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            value_words([0] * (VALUE_WORDS + 1))

    def test_non_word_rejected(self):
        with pytest.raises(ValueError):
            value_words([0x1_0000])
