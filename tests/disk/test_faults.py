"""Unit tests for the fault injector."""

import pytest

from repro.disk import DiskDrive, DiskImage, FaultInjector, Label, tiny_test_disk, value_words
from repro.errors import BadSectorError, TornWriteError


@pytest.fixture
def image():
    return DiskImage(tiny_test_disk())


@pytest.fixture
def drive(image):
    injector = FaultInjector(image, seed=42)
    d = DiskDrive(image, fault_injector=injector)
    d.injector = injector
    return d


def in_use(serial=0x4000_0001, page=1):
    return Label(serial=serial, version=1, page_number=page, length=0)


class TestTornWrites:
    def test_power_failure_tears_the_scheduled_write(self, drive):
        drive.injector.schedule_power_failure(after_writes=1)
        with pytest.raises(TornWriteError):
            drive.check_label_then_rewrite(3, Label.free(), in_use(), value_words([]))
        assert drive.injector.torn_writes == 1

    def test_later_write_scheduling(self, drive):
        drive.check_label_then_rewrite(3, Label.free(), in_use(), value_words([]))
        drive.injector.schedule_power_failure(after_writes=3)
        # Write 1 and 2 (label + value of one rewrite) succeed, 3 tears.
        drive.check_label_then_rewrite(
            3, in_use(), in_use().with_links(next_link=5)
        )
        with pytest.raises(TornWriteError):
            drive.check_label_write_value(3, in_use().with_links(next_link=5), value_words([1]))

    def test_cancel(self, drive):
        drive.injector.schedule_power_failure(after_writes=1)
        drive.injector.cancel_power_failure()
        drive.check_label_then_rewrite(3, Label.free(), in_use(), value_words([]))

    def test_bad_schedule_rejected(self, drive):
        with pytest.raises(ValueError):
            drive.injector.schedule_power_failure(after_writes=0)


class TestDirectCorruption:
    def test_decay_and_heal(self, drive):
        drive.injector.decay_sector(5)
        with pytest.raises(BadSectorError):
            drive.read_sector(5)
        drive.injector.heal_sector(5)
        drive.read_sector(5)

    def test_scramble_label_returns_old(self, drive):
        drive.check_label_then_rewrite(4, Label.free(), in_use(), value_words([]))
        old = drive.injector.scramble_label(4)
        assert old == in_use()
        assert drive.image.sector(4).label != in_use()

    def test_scramble_links_keeps_absolutes(self, drive):
        drive.check_label_then_rewrite(4, Label.free(), in_use(), value_words([]))
        drive.injector.scramble_links(4)
        label = drive.image.sector(4).label
        assert label.serial == 0x4000_0001 and label.page_number == 1

    def test_scramble_value_changes_words(self, drive):
        drive.check_label_then_rewrite(4, Label.free(), in_use(), value_words([0] * 256))
        drive.injector.scramble_value(4, nwords=8)
        assert any(w != 0 for w in drive.image.sector(4).value)

    def test_swap_sectors_keeps_headers(self, drive):
        drive.check_label_then_rewrite(4, Label.free(), in_use(page=1), value_words([1]))
        drive.check_label_then_rewrite(9, Label.free(), in_use(page=2), value_words([2]))
        drive.injector.swap_sectors(4, 9)
        assert drive.image.sector(4).header.address == 4
        assert drive.image.sector(9).header.address == 9
        assert drive.image.sector(4).label.page_number == 2

    def test_random_in_use_sampling(self, drive):
        for address, page in ((2, 1), (6, 2), (10, 3)):
            drive.check_label_then_rewrite(
                address, Label.free(), in_use(page=page), value_words([])
            )
        sample = drive.injector.random_in_use_addresses(2)
        assert len(sample) == 2 and set(sample) <= {2, 6, 10}
        with pytest.raises(ValueError):
            drive.injector.random_in_use_addresses(4)

    def test_reproducible_with_same_seed(self, image):
        a = FaultInjector(image, seed=5)
        b = FaultInjector(image, seed=5)
        assert a.rng.random() == b.rng.random()
