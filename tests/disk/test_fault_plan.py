"""FaultPlan: the deterministic crash/fault schedule (ISSUE 1 tentpole).

Everything here drives a raw drive -- no file system -- so each fault's
hardware-level semantics can be pinned exactly: which parts landed, what
the checksum state is, and that the machine stays down until revived.
"""

import pytest

from repro.disk import (
    Action,
    DiskDrive,
    DiskImage,
    FaultPlan,
    Header,
    Label,
    PartCommand,
    TRACE_POINTS,
    check_point,
    tiny_test_disk,
)
from repro.errors import (
    PowerFailure,
    ReadRetriesExhausted,
    SectorChecksumError,
    TornWriteError,
)
from repro.words import ones_words
from repro.disk.sector import VALUE_WORDS


def full_write(drive, address, pack_id=7, fill=0o1234):
    drive.write_header_label_value(
        address, Header(pack_id, address), Label.free(), [fill] * VALUE_WORDS
    )


class TestCleanCrash:
    def test_crash_at_write_boundary(self, image, planned_drive, fault_plan):
        fault_plan.crash_at_write(2)
        with pytest.raises(PowerFailure):
            full_write(planned_drive, 5)
        # Write 1 (header) landed; write 2 (label) and after did not.
        assert image.sector(5).header.pack_id == 7
        assert image.sector(5).label.is_free
        assert image.sector(5).value == ones_words(VALUE_WORDS)  # untouched
        assert fault_plan.crashed

    def test_machine_stays_down_until_revived(self, planned_drive, fault_plan):
        fault_plan.crash_at_write(1)
        with pytest.raises(PowerFailure):
            full_write(planned_drive, 5)
        with pytest.raises(PowerFailure):
            planned_drive.read_label(0)
        fault_plan.revive()
        planned_drive.read_label(0)  # boots again

    def test_crash_point_counts_are_absolute(self, planned_drive, fault_plan):
        full_write(planned_drive, 3)
        assert fault_plan.writes_seen == 3
        with pytest.raises(ValueError):
            fault_plan.crash_at_write(2)  # already in the past
        fault_plan.crash_at_write(5)
        with pytest.raises(PowerFailure):
            full_write(planned_drive, 4)
        # header (4) landed, label (5) did not.
        assert image_header_pack_id(planned_drive, 4) == 7


def image_header_pack_id(drive, address):
    return drive.image.sector(address).header.pack_id


class TestTornWrite:
    def test_torn_value_fails_checksum_until_rewritten(
        self, image, planned_drive, fault_plan
    ):
        fault_plan.tear_at_write(3)
        with pytest.raises(TornWriteError):
            full_write(planned_drive, 5)
        assert (5, "value") in image.checksum_bad
        fault_plan.revive()

        # The torn part is unreadable; the others are fine.
        with pytest.raises(SectorChecksumError):
            planned_drive.read_sector(5)
        planned_drive.read_label(5)

        # Rewriting the part lays down a fresh checksum.
        planned_drive.transfer(
            5, value=PartCommand(Action.WRITE, ones_words(VALUE_WORDS))
        )
        assert (5, "value") not in image.checksum_bad
        planned_drive.read_sector(5)

    def test_torn_value_is_prefix_plus_garbage(self, image, planned_drive, fault_plan):
        fault_plan.tear_at_write(3)
        with pytest.raises(TornWriteError):
            full_write(planned_drive, 5, fill=0o4242)
        value = image.sector(5).value
        # Some (possibly empty) prefix of the new words landed.
        prefix = 0
        while prefix < VALUE_WORDS and value[prefix] == 0o4242:
            prefix += 1
        assert prefix < VALUE_WORDS  # the tail is garbage, not the new data

    def test_tear_is_deterministic_given_seed(self):
        def torn_value(seed):
            image = DiskImage(tiny_test_disk(cylinders=30))
            plan = FaultPlan(image, seed=seed).tear_at_write(3)
            drive = DiskDrive(image, fault_injector=plan)
            with pytest.raises(TornWriteError):
                full_write(drive, 5)
            return list(image.sector(5).value)

        assert torn_value(11) == torn_value(11)
        assert torn_value(11) != torn_value(12)

    def test_tear_between_label_and_value(self, image, planned_drive, fault_plan):
        old_value = [0o777] * VALUE_WORDS
        new_label = Label(serial=0x40000001, version=1, page_number=1, length=512)
        planned_drive.transfer(
            4,
            label=PartCommand(Action.WRITE, Label.free().pack()),
            value=PartCommand(Action.WRITE, old_value),
        )
        fault_plan.tear_between_label_and_value()
        with pytest.raises(PowerFailure):
            planned_drive.transfer(
                4,
                label=PartCommand(Action.WRITE, new_label.pack()),
                value=PartCommand(Action.WRITE, [0o111] * VALUE_WORDS),
            )
        # New identity on disk, old data: the exact inconsistency the
        # scavenger's label discipline is designed to survive.
        assert image.sector(4).label.pack() == new_label.pack()
        assert image.sector(4).value == old_value


class TestTracePoints:
    def test_crash_at_named_point(self, planned_drive, fault_plan):
        fault_plan.crash_at_point("value:write", occurrence=2)
        full_write(planned_drive, 1)  # first value:write passes
        with pytest.raises(PowerFailure):
            full_write(planned_drive, 2)
        # Second command's header and label landed, value did not.
        assert planned_drive.image.sector(2).header.pack_id == 7
        assert planned_drive.image.sector(2).value == ones_words(VALUE_WORDS)

    def test_point_counts(self, planned_drive, fault_plan):
        full_write(planned_drive, 1)
        planned_drive.read_label(1)
        assert fault_plan.point_count("value:write") == 1
        assert fault_plan.point_count("label:read") == 1
        assert fault_plan.point_count("header:check") == 0

    def test_point_names_validated(self):
        assert "label:write" in TRACE_POINTS
        with pytest.raises(ValueError):
            check_point("label:wrote")


class TestTransientReads:
    def test_bounded_retry_absorbs_transients(self, planned_drive, fault_plan):
        full_write(planned_drive, 5, fill=0o555)
        clean_us = planned_drive.clock.now_us
        planned_drive.read_label(5)
        clean_read_us = planned_drive.clock.now_us - clean_us

        fault_plan.schedule_transient_reads(3)
        t0 = planned_drive.clock.now_us
        result = planned_drive.read_sector(5)
        assert result.value == [0o555] * VALUE_WORDS
        assert planned_drive.stats.transient_read_errors == 3
        assert planned_drive.stats.read_retries == 3
        # The backoff charged real (simulated) time: revolutions, not magic.
        assert planned_drive.clock.now_us - t0 > clean_read_us

    def test_retries_exhaust_into_typed_error(self, planned_drive, fault_plan):
        full_write(planned_drive, 5)
        fault_plan.schedule_transient_reads(100)
        with pytest.raises(ReadRetriesExhausted) as info:
            planned_drive.read_label(5)
        assert info.value.address == 5
        assert info.value.attempts == planned_drive.max_read_retries + 1

    def test_targeted_transients_only_hit_their_address(
        self, planned_drive, fault_plan
    ):
        full_write(planned_drive, 5)
        full_write(planned_drive, 6)
        fault_plan.schedule_transient_reads(2, address=6)
        planned_drive.read_label(5)
        assert planned_drive.stats.transient_read_errors == 0
        planned_drive.read_label(6)
        assert planned_drive.stats.transient_read_errors == 2


class TestDirectCorruption:
    def test_flip_bits_round_trip(self, image, planned_drive, fault_plan):
        full_write(planned_drive, 5, fill=0)
        fault_plan.flip_bits(5, "value", 10, 0b101)
        assert image.sector(5).value[10] == 0b101
        fault_plan.flip_bits(5, "value", 10, 0b101)
        assert image.sector(5).value[10] == 0

    def test_pending_faults_and_clear(self, fault_plan):
        assert not fault_plan.pending_faults()
        fault_plan.crash_at_write(9).schedule_transient_reads(1)
        assert fault_plan.pending_faults()
        fault_plan.clear()
        assert not fault_plan.pending_faults()
