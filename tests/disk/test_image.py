"""Unit tests for the platter state."""

import pytest

from repro.disk import DiskImage, Label, Sector, tiny_test_disk
from repro.errors import AddressOutOfRange


@pytest.fixture
def image():
    return DiskImage(tiny_test_disk())


class TestAccess:
    def test_every_sector_fresh(self, image):
        assert len(image) == image.shape.total_sectors()
        assert all(s.label.is_free for s in image.sectors())

    def test_headers_match_addresses(self, image):
        for address in image.shape.addresses():
            assert image.sector(address).header.address == address

    def test_out_of_range(self, image):
        with pytest.raises(AddressOutOfRange):
            image.sector(len(image))

    def test_set_sector(self, image):
        sector = Sector.fresh(image.pack_id, 3)
        sector.value[0] = 42
        image.set_sector(3, sector)
        assert image.sector(3).value[0] == 42


class TestSnapshots:
    def test_snapshot_is_independent(self, image):
        snap = image.snapshot()
        image.sector(0).value[0] = 123
        assert snap.sector(0).value[0] == 0xFFFF

    def test_restore(self, image):
        snap = image.snapshot()
        image.sector(5).label = Label(serial=0x4000_0001, version=1, page_number=1, length=0)
        image.bad_media.add(7)
        image.restore(snap)
        assert image.sector(5).label.is_free
        assert not image.bad_media

    def test_restore_rejects_different_shape(self, image):
        other = DiskImage(tiny_test_disk(cylinders=9))
        with pytest.raises(ValueError):
            image.restore(other)


class TestStatistics:
    def test_counts(self, image):
        total = len(image)
        assert image.count_free() == total
        image.sector(0).label = Label(serial=0x4000_0001, version=1, page_number=1, length=0)
        image.sector(1).label = Label.bad()
        assert image.count_in_use() == 1
        assert image.count_bad() == 1
        assert image.count_free() == total - 2

    def test_labels_by_serial(self, image):
        for address, pn in ((0, 1), (4, 2)):
            image.sector(address).label = Label(
                serial=0x4000_0009, version=1, page_number=pn, length=0
            )
        grouped = image.labels_by_serial()
        assert len(grouped) == 1
        assert len(grouped[0x4000_0009]) == 2
