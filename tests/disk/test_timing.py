"""Timing-model tests: the costs the paper states must emerge from the model."""

import pytest

from repro.disk import Action, DiskDrive, DiskImage, Label, PartCommand, diablo31, tiny_test_disk, value_words
from repro.disk.timing import ROTATION, SEEK, TRANSFER


@pytest.fixture
def drive():
    return DiskDrive(DiskImage(tiny_test_disk(cylinders=40)))


def in_use_label(serial=0x4000_0001, page=1):
    return Label(serial=serial, version=1, page_number=page, length=0)


class TestPositioningCosts:
    def test_seek_charged_on_cylinder_change(self, drive):
        drive.read_sector(0)
        before = drive.clock.tally_us(SEEK)
        drive.read_sector(drive.shape.sectors_per_cylinder() * 5)  # cylinder 5
        assert drive.clock.tally_us(SEEK) > before

    def test_no_seek_within_cylinder(self, drive):
        drive.read_sector(0)
        before = drive.clock.tally_us(SEEK)
        drive.read_sector(1)
        assert drive.clock.tally_us(SEEK) == before

    def test_chained_sequential_reads_ride_the_rotation(self, drive):
        """Reading a whole track of labels back-to-back costs one revolution
        of rotation at most -- the scavenger sweep depends on this."""
        drive.read_sector(0)  # position at track start
        rotation_before = drive.clock.tally_us(ROTATION)
        for sector in range(1, drive.shape.sectors_per_track):
            drive.transfer(sector, label=PartCommand(Action.READ))
        extra_rotation = drive.clock.tally_us(ROTATION) - rotation_before
        assert extra_rotation == 0  # perfectly chained

    def test_rereading_same_sector_costs_a_revolution(self, drive):
        drive.read_sector(3)
        watch = drive.clock.stopwatch()
        drive.read_sector(3)
        rotation_ms = watch.category_delta_us(ROTATION) / 1000
        sector_ms = drive.shape.sector_time_ms()
        assert rotation_ms == pytest.approx(drive.shape.rotation_ms - sector_ms, rel=0.01)

    def test_transfer_charged_per_sector(self, drive):
        watch = drive.clock.stopwatch()
        drive.read_sector(0)
        drive.read_sector(1)
        assert watch.category_delta_us(TRANSFER) / 1000 == pytest.approx(
            2 * drive.shape.sector_time_ms(), rel=1e-3
        )


class TestPaperCosts:
    def test_allocate_costs_about_one_revolution(self, drive):
        """Section 3.3: "This scheme costs a disk revolution each time a
        page is allocated or freed."  The claim (check-free then write
        label) must wait for the sector to come around again."""
        drive.read_sector(7)  # park so the check pass chains with no wait
        watch = drive.clock.stopwatch()
        drive.check_label_then_rewrite(8, Label.free(), in_use_label(), value_words([]))
        rotation_ms = watch.category_delta_us(ROTATION) / 1000
        revolution = drive.shape.rotation_ms
        # The label has passed under the head; the rewrite waits almost a
        # full revolution (one sector short) for it to come around again.
        assert 0.8 * revolution <= rotation_ms <= 1.0 * revolution

    def test_ordinary_write_label_check_is_free(self, drive):
        """"On any other write the label is checked, at no cost in time."""
        label = in_use_label()
        drive.check_label_then_rewrite(8, Label.free(), label, value_words([]))
        drive.read_sector(7)  # park just before sector 8
        watch = drive.clock.stopwatch()
        drive.check_label_write_value(8, label, value_words([1]))
        # One chained sector: no rotational wait at all.
        assert watch.category_delta_us(ROTATION) == 0

    def test_raw_transfer_rate_matches_the_paper(self):
        """Section 2: the disk "can transfer 64k words in about one second"."""
        drive = DiskDrive(DiskImage(diablo31()))
        label = in_use_label()
        # Consecutive pre-claimed sectors, then a timed sequential read.
        labels = []
        for address in range(256):
            lbl = Label(serial=0x4000_0001, version=1, page_number=address + 1, length=0)
            drive.check_label_then_rewrite(address, Label.free(), lbl, value_words([]))
            labels.append(lbl)
        watch = drive.clock.stopwatch()
        for address in range(256):  # 256 sectors * 256 words = 64k words
            drive.check_label_read_value(address, labels[address])
        assert 0.7 < watch.elapsed_s < 1.3

    def test_revolutions_waited_accounting(self, drive):
        drive.read_sector(3)
        drive.read_sector(3)
        assert drive.timer.revolutions_waited() > 0.8
