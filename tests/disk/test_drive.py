"""Unit tests for the drive's hardware contract (section 3.3)."""

import pytest

from repro.clock import SimClock
from repro.disk import (
    Action,
    DiskDrive,
    DiskImage,
    Header,
    Label,
    PartCommand,
    tiny_test_disk,
    value_words,
)
from repro.errors import AddressOutOfRange, BadSectorError, CheckError, LabelCheckError


@pytest.fixture
def drive():
    return DiskDrive(DiskImage(tiny_test_disk()))


def in_use_label(serial=0x4000_0001, page=1, **kw):
    return Label(serial=serial, version=1, page_number=page, length=0, **kw)


def claim(drive, address, label, data=()):
    drive.check_label_then_rewrite(address, Label.free(), label, value_words(list(data)))


class TestPartActions:
    def test_read_fresh_sector(self, drive):
        result = drive.read_sector(5)
        assert result.header_object() == Header(1, 5)
        assert result.label_object().is_free
        assert result.value == [0xFFFF] * 256

    def test_write_then_read_value(self, drive):
        label = in_use_label()
        claim(drive, 5, label, [10, 20, 30])
        result = drive.check_label_read_value(5, label)
        assert result.value[:3] == [10, 20, 30]

    def test_read_label_only(self, drive):
        label = in_use_label()
        claim(drive, 7, label)
        assert drive.read_label(7) == label

    def test_independent_part_actions(self, drive):
        """Header read + label check + value write in one command."""
        label = in_use_label()
        claim(drive, 3, label)
        result = drive.transfer(
            3,
            header=PartCommand(Action.READ),
            label=PartCommand(Action.CHECK, label.pack()),
            value=PartCommand(Action.WRITE, value_words([1])),
        )
        assert result.header_object().address == 3

    def test_label_object_requires_label_read(self, drive):
        result = drive.transfer(3, value=PartCommand(Action.READ))
        with pytest.raises(ValueError):
            result.label_object()


class TestCheckSemantics:
    def test_check_mismatch_aborts(self, drive):
        label = in_use_label()
        claim(drive, 4, label, [5])
        wrong = in_use_label(serial=0x4000_0002)
        with pytest.raises(LabelCheckError):
            drive.check_label_read_value(4, wrong)

    def test_zero_word_is_wildcard_and_replaced(self, drive):
        """Section 3.3: "If a memory word is 0, however, it is replaced by
        the corresponding disk word"."""
        label = in_use_label(next_link=9, prev_link=8)
        claim(drive, 4, label)
        pattern = label.pack()
        pattern[5] = 0  # wildcard the next link
        pattern[6] = 0  # and the previous link
        result = drive.transfer(4, label=PartCommand(Action.CHECK, pattern))
        effective = result.label_object()
        assert effective.next_link == 9 and effective.prev_link == 8

    def test_check_failure_aborts_before_write(self, drive):
        """"a subsequent write operation can be aborted before anything is
        written" -- a failed label check must leave the value untouched."""
        label = in_use_label()
        claim(drive, 4, label, [111])
        wrong = in_use_label(page=2)
        with pytest.raises(LabelCheckError):
            drive.check_label_write_value(4, wrong, value_words([222]))
        assert drive.check_label_read_value(4, label).value[0] == 111

    def test_value_check(self, drive):
        label = in_use_label()
        claim(drive, 4, label, [7, 8, 9])
        drive.transfer(4, value=PartCommand(Action.CHECK, value_words([7, 8, 9])))
        with pytest.raises(CheckError):
            drive.transfer(4, value=PartCommand(Action.CHECK, value_words([7, 8, 1])))

    def test_check_error_carries_location(self, drive):
        label = in_use_label()
        claim(drive, 4, label)
        wrong = in_use_label(serial=0x4000_0002)
        with pytest.raises(LabelCheckError) as excinfo:
            drive.check_label_read_value(4, wrong)
        assert excinfo.value.part == "label"
        assert excinfo.value.index == 1  # serial low word differs

    def test_stats_count_check_failures(self, drive):
        label = in_use_label()
        claim(drive, 4, label)
        before = drive.stats.label_check_failures
        with pytest.raises(LabelCheckError):
            drive.check_label_read_value(4, in_use_label(page=3))
        assert drive.stats.label_check_failures == before + 1


class TestWriteContinuation:
    """"once a write is begun, it must continue through the rest of the
    sector"."""

    def test_label_write_requires_value_write(self, drive):
        with pytest.raises(ValueError):
            drive.transfer(3, label=PartCommand(Action.WRITE, Label.free().pack()))

    def test_header_write_requires_all_writes(self, drive):
        with pytest.raises(ValueError):
            drive.transfer(
                3,
                header=PartCommand(Action.WRITE, Header(1, 3).pack()),
                label=PartCommand(Action.READ),
                value=PartCommand(Action.WRITE, value_words([])),
            )

    def test_full_format_write_allowed(self, drive):
        drive.write_header_label_value(3, Header(1, 3), in_use_label(), value_words([1]))
        assert drive.read_label(3) == in_use_label()

    def test_check_then_write_later_parts_allowed(self, drive):
        label = in_use_label()
        claim(drive, 3, label)
        drive.transfer(
            3,
            label=PartCommand(Action.CHECK, label.pack()),
            value=PartCommand(Action.WRITE, value_words([5])),
        )


class TestBufferValidation:
    def test_wrong_buffer_sizes_rejected(self, drive):
        with pytest.raises(ValueError):
            drive.transfer(3, label=PartCommand(Action.CHECK, [0] * 6))
        with pytest.raises(ValueError):
            drive.transfer(3, value=PartCommand(Action.WRITE, [0] * 255))

    def test_check_and_write_need_data(self):
        with pytest.raises(ValueError):
            PartCommand(Action.CHECK)
        with pytest.raises(ValueError):
            PartCommand(Action.WRITE)

    def test_bad_address_rejected(self, drive):
        with pytest.raises(AddressOutOfRange):
            drive.read_sector(drive.shape.total_sectors())


class TestBadMedia:
    def test_bad_sector_raises(self, drive):
        drive.image.bad_media.add(9)
        with pytest.raises(BadSectorError):
            drive.read_sector(9)

    def test_bad_sector_still_charges_time(self, drive):
        drive.image.bad_media.add(9)
        before = drive.clock.now_us
        with pytest.raises(BadSectorError):
            drive.read_sector(9)
        assert drive.clock.now_us > before


class TestConvenienceCommands:
    def test_check_label_then_rewrite_preserves_value_by_default(self, drive):
        label = in_use_label()
        claim(drive, 6, label, [42, 43])
        relabeled = label.with_links(next_link=11)
        drive.check_label_then_rewrite(6, label, relabeled)
        result = drive.check_label_read_value(6, relabeled)
        assert result.value[:2] == [42, 43]

    def test_free_then_reclaim(self, drive):
        label = in_use_label()
        claim(drive, 6, label, [1])
        drive.check_label_then_rewrite(6, label, Label.free(), [0xFFFF] * 256)
        assert drive.read_label(6).is_free
        claim(drive, 6, in_use_label(serial=0x4000_0003), [2])

    def test_reclaim_of_busy_sector_fails(self, drive):
        claim(drive, 6, in_use_label())
        with pytest.raises(LabelCheckError):
            claim(drive, 6, in_use_label(serial=0x4000_0004))
