"""Tests for the disk-activity trace."""

import pytest

from repro.disk import DiskDrive, DiskImage, DiskTrace, Label, tiny_test_disk, value_words
from repro.fs import FileSystem


@pytest.fixture
def traced():
    drive = DiskDrive(DiskImage(tiny_test_disk(cylinders=20)))
    trace = DiskTrace().attach(drive)
    return drive, trace


def in_use(page=1):
    return Label(serial=0x4000_0001, version=1, page_number=page, length=0)


class TestRecording:
    def test_records_commands(self, traced):
        drive, trace = traced
        drive.read_sector(0)
        drive.read_label(5)
        assert len(trace) == 2
        assert trace.records[0].address == 0
        assert trace.records[1].did("label", "read")
        assert not trace.records[1].did("value", "read")

    def test_records_part_actions(self, traced):
        drive, trace = traced
        drive.check_label_then_rewrite(4, Label.free(), in_use(), value_words([]))
        by = trace.commands_by_part_action()
        assert by[("label", "check")] == 1
        assert by[("label", "write")] == 1
        assert by[("value", "write")] == 1

    def test_timing_is_unchanged_by_tracing(self):
        plain = DiskDrive(DiskImage(tiny_test_disk(cylinders=20)))
        traced_drive = DiskDrive(DiskImage(tiny_test_disk(cylinders=20)))
        DiskTrace().attach(traced_drive)
        for drive in (plain, traced_drive):
            for address in (0, 30, 7, 200):
                drive.read_sector(address)
        assert plain.clock.now_us == traced_drive.clock.now_us

    def test_detach_and_clear(self, traced):
        drive, trace = traced
        drive.read_sector(0)
        DiskTrace.detach(drive)
        drive.read_sector(1)
        assert len(trace) == 1
        trace.clear()
        assert len(trace) == 0


class TestSummaries:
    def test_arm_travel_and_seeks(self, traced):
        drive, trace = traced
        per_cyl = drive.shape.sectors_per_cylinder()
        drive.read_sector(0)                # cylinder 0
        drive.read_sector(5 * per_cyl)      # cylinder 5
        drive.read_sector(2 * per_cyl)      # cylinder 2
        assert trace.seek_count() == 2
        assert trace.arm_travel() == 8

    def test_sequentiality(self, traced):
        drive, trace = traced
        for address in range(10):
            drive.read_sector(address)
        assert trace.sequentiality() == 1.0
        drive.read_sector(100)
        assert trace.sequentiality() < 1.0

    def test_hottest_addresses(self, traced):
        drive, trace = traced
        for _ in range(3):
            drive.read_sector(7)
        drive.read_sector(2)
        assert trace.hottest_addresses(1) == [(7, 4 - 1)]

    def test_summary_text(self, traced):
        drive, trace = traced
        drive.read_sector(0)
        text = trace.summary()
        assert "1 commands" in text and "sequentiality" in text


class TestTraceOnRealWorkloads:
    def test_scavenge_sweep_is_sequential(self):
        """The trace confirms the sweep's physical-order access pattern."""
        from repro.fs import Scavenger

        image = DiskImage(tiny_test_disk(cylinders=20))
        fs = FileSystem.format(DiskDrive(image))
        fs.create_file("a.dat").write_data(b"z" * 2000)
        fs.sync()
        drive = DiskDrive(image)
        trace = DiskTrace().attach(drive)
        Scavenger(drive).scavenge()
        sweep = trace.records[: image.shape.total_sectors()]
        addresses = [r.address for r in sweep]
        assert addresses == sorted(addresses)
        assert trace.sequentiality() > 0.8

    def test_scattered_vs_compacted_read_patterns(self):
        from repro.fs import Compactor

        image = DiskImage(tiny_test_disk(cylinders=30))
        fs = FileSystem.format(DiskDrive(image))
        fs.create_file("seq.dat").write_data(b"q" * 4000)
        Compactor(fs.drive).compact()
        fs2 = FileSystem.mount(DiskDrive(image))
        trace = DiskTrace().attach(fs2.drive)
        fs2.open_file("seq.dat").read_data()
        assert trace.sequentiality() > 0.5  # consecutive pages, few jumps
