"""Unit tests for disk shapes and addresses."""

import pytest
from hypothesis import given, strategies as st

from repro.disk.geometry import NIL, DiskShape, diablo31, diablo44, tiny_test_disk
from repro.errors import AddressOutOfRange


class TestShapes:
    def test_diablo31_matches_the_paper(self):
        """Section 2: 2.5 MB per pack, 64k words in about one second."""
        shape = diablo31()
        assert shape.total_sectors() == 4872
        assert 2.4e6 < shape.capacity_bytes() < 2.6e6
        seconds_for_64k_words = 65536 / shape.words_per_second()
        assert 0.7 < seconds_for_64k_words < 1.3

    def test_diablo44_is_about_twice_the_size_and_performance(self):
        """Section 2: "about twice the size and performance"."""
        small, big = diablo31(), diablo44()
        assert 1.8 < big.capacity_bytes() / small.capacity_bytes() < 2.2
        assert big.words_per_second() > 1.4 * small.words_per_second()

    def test_degenerate_shapes_rejected(self):
        with pytest.raises(ValueError):
            DiskShape(cylinders=0)
        with pytest.raises(ValueError):
            DiskShape(heads=0)
        with pytest.raises(ValueError):
            DiskShape(sectors_per_track=0)

    def test_too_large_for_one_word_addresses(self):
        with pytest.raises(ValueError):
            DiskShape(cylinders=4000, heads=2, sectors_per_track=12)

    def test_sector_time(self):
        shape = diablo31()
        assert shape.sector_time_ms() == pytest.approx(40.0 / 12)


class TestSeekModel:
    def test_zero_distance_is_free(self):
        assert diablo31().seek_time_ms(10, 10) == 0.0

    def test_track_to_track(self):
        assert diablo31().seek_time_ms(10, 11) == pytest.approx(15.0)

    def test_full_stroke(self):
        shape = diablo31()
        assert shape.seek_time_ms(0, shape.cylinders - 1) == pytest.approx(135.0)

    def test_monotone_in_distance(self):
        shape = diablo31()
        times = [shape.seek_time_ms(0, d) for d in range(1, shape.cylinders)]
        assert times == sorted(times)

    def test_symmetric(self):
        shape = diablo31()
        assert shape.seek_time_ms(5, 60) == shape.seek_time_ms(60, 5)


class TestAddressMapping:
    def test_compose_decompose_round_trip(self):
        shape = tiny_test_disk()
        for address in shape.addresses():
            assert shape.compose(*shape.decompose(address)) == address

    def test_cylinder_major_order(self):
        shape = tiny_test_disk()
        assert shape.decompose(0) == (0, 0, 0)
        assert shape.decompose(shape.sectors_per_track) == (0, 1, 0)
        assert shape.decompose(shape.sectors_per_cylinder()) == (1, 0, 0)

    def test_out_of_range_rejected(self):
        shape = tiny_test_disk()
        with pytest.raises(AddressOutOfRange):
            shape.check_address(shape.total_sectors())
        with pytest.raises(AddressOutOfRange):
            shape.check_address(NIL)
        with pytest.raises(ValueError):
            shape.check_address(-1)

    def test_compose_bounds(self):
        shape = tiny_test_disk()
        with pytest.raises(ValueError):
            shape.compose(shape.cylinders, 0, 0)
        with pytest.raises(ValueError):
            shape.compose(0, shape.heads, 0)
        with pytest.raises(ValueError):
            shape.compose(0, 0, shape.sectors_per_track)

    @given(st.integers(min_value=0, max_value=4871))
    def test_decompose_in_bounds_property(self, address):
        shape = diablo31()
        cylinder, head, sector = shape.decompose(address)
        assert 0 <= cylinder < shape.cylinders
        assert 0 <= head < shape.heads
        assert 0 <= sector < shape.sectors_per_track
