"""Openness tests (section 1): the on-disk representation is the interface.

"programs written in radically different languages ... share the same file
system" because "it is the representation of files on the disk ... that
[is] standardized."  We prove it by accessing one pack through two
independently constructed software stacks, and by rebuilding system
facilities from the small components alone.
"""

import pytest

from repro.disk import DiskDrive, DiskImage, Label, tiny_test_disk
from repro.disk.geometry import NIL
from repro.fs import FileSystem, FullName
from repro.fs.allocator import PageAllocator
from repro.fs.file import AltoFile
from repro.fs.names import FileId, page_number_from_label
from repro.fs.page import PageIO
from repro.streams import Stream, open_read_stream, read_string


class TestForeignEnvironment:
    def test_second_stack_reads_files_written_by_the_first(self, image):
        """A 'Lisp system' with its own drive object and FS code mounts the
        same pack and reads a file made by the 'BCPL system'."""
        bcpl_fs = FileSystem.format(DiskDrive(image))
        bcpl_fs.create_file("shared.txt").write_data(b"written by BCPL")
        bcpl_fs.sync()

        # A completely separate stack: new clock, new drive, new everything.
        lisp_drive = DiskDrive(image)
        lisp_fs = FileSystem.mount(lisp_drive)
        assert lisp_fs.open_file("shared.txt").read_data() == b"written by BCPL"

        lisp_fs.open_file("shared.txt").write_data(b"annotated by Lisp")
        lisp_fs.sync()
        assert bcpl_fs.open_file("shared.txt").read_data() == b"annotated by Lisp"

    def test_raw_page_access_without_any_file_system(self, image):
        """A program may reject the file package entirely and still follow
        the on-disk structure by labels alone."""
        fs = FileSystem.format(DiskDrive(image))
        target = fs.create_file("target.dat")
        target.write_data(bytes(range(200)))
        leader_address = target.leader_address()

        raw = DiskDrive(image)  # no FileSystem at all
        label = raw.read_label(leader_address)
        fid = FileId.from_label(label)
        # Walk the chain by links, collecting data pages.
        data = bytearray()
        address = label.next_link
        while address != NIL:
            result = raw.read_sector(address)
            page_label = result.label_object()
            assert FileId.from_label(page_label) == fid
            from repro.words import words_to_bytes

            data += words_to_bytes(result.value, nbytes=page_label.length)
            address = page_label.next_link
        assert bytes(data) == bytes(range(200))

    def test_user_written_directory_replacement(self, image):
        """Section 3.5: "he is free to ... write his own" directory system.
        A user keeps (name, full name) pairs in an ordinary file of their
        own format; the system files are untouched."""
        fs = FileSystem.format(DiskDrive(image))
        a = fs.create_file("hidden-a")
        a.write_data(b"AAA")
        fs.root.remove("hidden-a")  # reject the system directory

        # The user's own "directory": a pickle-free, homemade format.
        from repro.world.statefile import full_name_to_words, full_name_from_words
        from repro.words import words_to_bytes, bytes_to_words

        my_dir = fs.create_file("MyDir.custom")
        my_dir.write_data(words_to_bytes(full_name_to_words(a.full_name())))

        # Later, a fresh mount resolves through the homemade directory.
        fs2 = FileSystem.mount(DiskDrive(image))
        words = bytes_to_words(fs2.open_file("MyDir.custom").read_data())
        found = AltoFile.open(fs2.page_io, fs2.allocator, full_name_from_words(words))
        assert found.read_data() == b"AAA"


class TestComponentReuse:
    def test_stream_protocol_over_a_user_device(self):
        """Any object with the operation slots is a stream; the system
        neither knows nor cares (section 2)."""
        log = []
        stream = Stream(put=lambda s, item: log.append(item), endof=lambda s: False)
        from repro.streams import copy_stream, byte_read_stream

        copy_stream(byte_read_stream(b"ok"), stream)
        assert log == [111, 107]

    def test_private_allocator_over_a_disk_region(self, image):
        """A program builds its own page allocator restricted to half the
        disk -- the system allocator is just one client of the labels."""
        fs = FileSystem.format(DiskDrive(image))
        total = image.shape.total_sectors()
        # A map covering only the second half of the disk.
        mine = PageAllocator(image.shape, [a >= total // 2 for a in range(total)])
        pio = PageIO(fs.drive)
        fid = fs.new_fid()
        address = mine.allocate(pio, fid.label_for(0, length=512), [1, 2, 3])
        assert address >= total // 2
        # The system's map doesn't know, but its claims are label-checked,
        # so nothing can collide.
        fs.create_file("system-file").write_data(b"x" * 2000)
        assert pio.read(FullName(fid, 0, address)).value[:3] == [1, 2, 3]


class TestSharedDiskDifferentClocks:
    def test_time_is_per_stack_but_data_is_shared(self, image):
        fs1 = FileSystem.format(DiskDrive(image))
        fs1.create_file("x").write_data(b"1")
        fs1.sync()
        drive2 = DiskDrive(image)
        fs2 = FileSystem.mount(drive2)
        assert drive2.clock.now_s < fs1.drive.clock.now_s
        assert fs2.open_file("x").read_data() == b"1"
