"""Stateful property test: the file system against a dict-of-bytes model.

Any interleaving of creates, writes, appends, truncates, deletes, renames,
and syncs must (a) behave like a plain ``{name: bytes}`` dict, and (b)
leave the on-disk image fully consistent per the read-only checker --
after every single step.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.errors import DirectoryError, FileNotFound
from repro.fs import FileSystem
from repro.fs.fsck import check_image

NAMES = [f"f{i}.dat" for i in range(6)]


class FileSystemMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.image = DiskImage(tiny_test_disk(cylinders=30))
        self.fs = FileSystem.format(DiskDrive(self.image))
        self.model = {}

    @rule(name=st.sampled_from(NAMES))
    def create(self, name):
        if name in self.model:
            with pytest.raises(DirectoryError):
                self.fs.create_file(name)
        else:
            self.fs.create_file(name)
            self.model[name] = b""

    @rule(name=st.sampled_from(NAMES), size=st.integers(min_value=0, max_value=1600),
          seed=st.integers(min_value=0, max_value=255))
    def write(self, name, size, seed):
        data = bytes((seed + i) % 256 for i in range(size))
        if name in self.model:
            self.fs.open_file(name).write_data(data)
            self.model[name] = data
        else:
            with pytest.raises(FileNotFound):
                self.fs.open_file(name)

    @rule(name=st.sampled_from(NAMES), tail=st.binary(min_size=1, max_size=300))
    def append(self, name, tail):
        if name not in self.model:
            return
        from repro.streams import open_write_stream

        stream = open_write_stream(self.fs.open_file(name), append=True)
        for b in tail:
            stream.put(b)
        stream.close()
        self.model[name] += tail

    @rule(name=st.sampled_from(NAMES))
    def delete(self, name):
        if name in self.model:
            self.fs.delete_file(name)
            del self.model[name]
        else:
            with pytest.raises(FileNotFound):
                self.fs.delete_file(name)

    @rule(source=st.sampled_from(NAMES), dest=st.sampled_from(NAMES))
    def rename(self, source, dest):
        if source not in self.model or source == dest:
            return
        if dest in self.model:
            with pytest.raises(DirectoryError):
                self.fs.rename_file(source, dest)
        else:
            self.fs.rename_file(source, dest)
            self.model[dest] = self.model.pop(source)

    @rule()
    def sync(self):
        self.fs.sync()

    @invariant()
    def contents_match_the_model(self):
        listed = {n for n in self.fs.list_files() if n in NAMES}
        assert listed == set(self.model)
        for name, data in self.model.items():
            assert self.fs.open_file(name).read_data() == data

    @invariant()
    def image_is_consistent(self):
        self.fs.sync()  # freshen the (hint) map so fsck sees no stale bits
        report = check_image(self.image)
        assert report.clean, [str(i) for i in report.issues]


FileSystemMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=12, deadline=None
)
TestFileSystemModel = FileSystemMachine.TestCase


class TestSeededOpSequence:
    """The same model comparison, driven by one long seeded random walk
    instead of hypothesis: deterministic given --repro-seed, so it doubles
    as a cheap regression anchor (and runs with hypothesis absent)."""

    OPS = ("create", "write", "delete", "rename", "sync")

    def test_long_random_walk_matches_dict_model(self, fs, rng):
        model = {}
        for step in range(120):
            op = rng.choice(self.OPS)
            name = rng.choice(NAMES)
            if op == "create":
                if name not in model:
                    fs.create_file(name)
                    model[name] = b""
            elif op == "write":
                if name in model:
                    data = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 1600)))
                    fs.open_file(name).write_data(data)
                    model[name] = data
            elif op == "delete":
                if name in model:
                    fs.delete_file(name)
                    del model[name]
            elif op == "rename":
                dest = rng.choice(NAMES)
                if name in model and dest not in model and name != dest:
                    fs.rename_file(name, dest)
                    model[dest] = model.pop(name)
            elif op == "sync":
                fs.sync()

            # Compared after EVERY step, not just at the end.
            listed = {n for n in fs.list_files() if n in NAMES}
            assert listed == set(model), f"step {step}: {op} {name}"
            for fname, data in model.items():
                assert fs.open_file(fname).read_data() == data, f"step {step}"

        fs.sync()
        report = check_image(fs.drive.image)
        assert report.clean, [str(i) for i in report.issues]
