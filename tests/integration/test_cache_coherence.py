"""Whole-file-system coherence: cached and uncached mounts are equivalent.

The drive-level equivalence tests (tests/disk/test_cache_props.py) prove
the cache honours individual commands; these tests prove the property the
file system actually needs: a random workload of creates, writes, reads,
renames, and deletes produces *byte-identical packs* on a cached and an
uncached mount once both have synced, and every read along the way returns
the same bytes.

One subtlety: leader pages stamp creation/write/read dates from the
simulated clock, and the whole point of the cache is that its clock runs
faster.  Each workload step therefore re-aligns both clocks to the next
whole simulated second before acting, so date words agree and "identical"
really means identical -- any residual diff is a coherence bug, not a
timestamp artifact.
"""

import pytest

from repro.disk import CachedDrive, DiskDrive, DiskImage, tiny_test_disk
from repro.fs import FileSystem, Scavenger
from repro.fs.fsck import check_image

try:
    from hypothesis import HealthCheck, given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

pytestmark = pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")

NAMES = [f"f{i}.dat" for i in range(8)]
SECOND_US = 1_000_000


def align_clocks(*drives) -> None:
    """Advance every drive's clock to the same next-second boundary."""
    target = max(d.clock.now_us for d in drives)
    target = (target // SECOND_US + 1) * SECOND_US
    for d in drives:
        d.clock.advance_us(target - d.clock.now_us, "align")


def payload_for(seed: int) -> bytes:
    return bytes((seed * 31 + i) & 0xFF for i in range((seed * 97) % 2600))


def images_identical(a: DiskImage, b: DiskImage):
    """Return the first differing sector address, or None if identical."""
    for s1, s2 in zip(a.sectors(), b.sectors()):
        if (
            s1.header.pack() != s2.header.pack()
            or s1.label.pack() != s2.label.pack()
            or list(s1.value) != list(s2.value)
        ):
            return s1.header.address
    return None


# A workload step: (kind, name-index, name-index-2, payload-seed).
op_strategy = st.tuples(
    st.sampled_from(["create", "rewrite", "read", "delete", "rename", "sync"]),
    st.sampled_from(range(len(NAMES))),
    st.sampled_from(range(len(NAMES))),
    st.integers(min_value=1, max_value=999),
)


def apply_op(fs: FileSystem, op, live: set):
    """Apply one step; mutates *live* (the same decision path on any mount
    because *live* is shared per-mount state that evolves identically)."""
    kind, idx, idx2, seed = op
    name, other = NAMES[idx], NAMES[idx2]
    if kind == "create" and name not in live:
        fs.create_file(name).write_data(payload_for(seed))
        live.add(name)
    elif kind == "rewrite" and name in live:
        fs.open_file(name).write_data(payload_for(seed + 1))
    elif kind == "read" and name in live:
        return fs.open_file(name).read_data()
    elif kind == "delete" and name in live:
        fs.delete_file(name)
        live.discard(name)
    elif kind == "rename" and name in live and other not in live and name != other:
        fs.rename_file(name, other)
        live.discard(name)
        live.add(other)
    elif kind == "sync":
        fs.sync()
    return None


class TestMountCoherence:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=st.lists(op_strategy, min_size=1, max_size=25))
    def test_random_workload_packs_identical_after_sync(self, ops):
        plain_image = DiskImage(tiny_test_disk(cylinders=30))
        cached_image = DiskImage(tiny_test_disk(cylinders=30))
        plain_drive = DiskDrive(plain_image)
        cached_drive = CachedDrive(cached_image, cache_sectors=32)

        align_clocks(plain_drive, cached_drive)
        plain_fs = FileSystem.format(plain_drive)
        cached_fs = FileSystem.format(cached_drive)

        plain_live, cached_live = set(), set()
        for op in ops:
            align_clocks(plain_drive, cached_drive)
            plain_seen = apply_op(plain_fs, op, plain_live)
            cached_seen = apply_op(cached_fs, op, cached_live)
            assert plain_seen == cached_seen, f"read diverged at {op}"
        assert plain_live == cached_live

        align_clocks(plain_drive, cached_drive)
        plain_fs.sync()
        cached_fs.sync()
        diff = images_identical(plain_image, cached_image)
        assert diff is None, f"packs differ first at sector {diff}"
        assert len(cached_drive.scheduler) == 0

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=st.lists(op_strategy, min_size=1, max_size=20))
    def test_sync_makes_cached_state_durable_for_foreign_mounts(self, ops):
        """After sync(), a cold uncached mount of the same image -- the
        moral equivalent of pulling the pack and spinning it up elsewhere --
        sees every file and every byte the cached mount saw."""
        image = DiskImage(tiny_test_disk(cylinders=30))
        fs = FileSystem.format(CachedDrive(image, cache_sectors=32))
        live = set()
        for op in ops:
            apply_op(fs, op, live)
        fs.sync()

        foreign = FileSystem.mount(DiskDrive(image))
        assert set(foreign.list_files()) >= live
        for name in live:
            assert (
                foreign.open_file(name).read_data()
                == fs.open_file(name).read_data()
            ), name

    def test_scavenge_settles_the_cache_first(self, cached_fs):
        """Scavenging through a cached drive flushes and drops the cache
        before sweeping, so it judges the platter, not the buffer -- and the
        image it leaves behind is fully consistent."""
        payloads = {}
        for i in range(6):
            name = f"s{i}.dat"
            data = payload_for(i + 1)
            cached_fs.create_file(name).write_data(data)
            payloads[name] = data
        cached_fs.sync()
        drive = cached_fs.drive
        # Dirty the cache again so the scavenger has something to settle.
        cached_fs.open_file("s1.dat").write_data(b"rewritten under cache")
        payloads["s1.dat"] = b"rewritten under cache"

        Scavenger(drive).scavenge()
        assert not list(drive.dirty_addresses())

        fsck = check_image(drive.image)
        assert not fsck.issues, [str(i) for i in fsck.issues]
        remounted = FileSystem.mount(DiskDrive(drive.image))
        for name, data in payloads.items():
            assert remounted.open_file(name).read_data() == data
