"""Property-based crash/corruption campaign.

The paper's headline (section 6): "The measures taken to make the file
system robust, in which the label checking is crucial, have worked
extremely well. ... The incidence of complaints about lost information is
negligible."

Hypothesis drives random corruption campaigns; the invariant is always the
same: after one scavenge, the file system mounts, is internally consistent,
and every file whose pages were untouched by the corruption is
byte-identical.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.disk import DiskDrive, DiskImage, FaultInjector, tiny_test_disk
from repro.fs import FileSystem, Scavenger

FAULT_KINDS = ("links", "label", "swap", "decay", "value")


def build_populated_image(seed: int):
    image = DiskImage(tiny_test_disk(cylinders=30))
    fs = FileSystem.format(DiskDrive(image))
    rng = random.Random(seed)
    payloads = {}
    serial_to_name = {}
    for i in range(10):
        name = f"f{i:02}.dat"
        data = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 2200)))
        file = fs.create_file(name)
        file.write_data(data)
        payloads[name] = data
        serial_to_name[file.fid.serial] = name
    fs.sync()
    return image, payloads, serial_to_name


def apply_fault(injector, image, rng, kind, damaged, serial_to_name):
    in_use = [s.header.address for s in image.sectors() if s.label.in_use]
    if kind == "links":
        address = rng.choice(in_use)
        injector.scramble_links(address)
        # Link corruption never loses data.
    elif kind == "label":
        address = rng.choice(in_use)
        # Attribute the damage by the owner at fault time (swaps may have
        # moved pages since creation).
        damaged.add(serial_to_name.get(image.sector(address).label.serial))
        injector.scramble_label(address)
    elif kind == "swap":
        a, b = rng.sample(in_use, 2)
        injector.swap_sectors(a, b)
    elif kind == "decay":
        free = [s.header.address for s in image.sectors() if s.label.is_free]
        if free:
            injector.decay_sector(rng.choice(free))
    elif kind == "value":
        # Corrupt a free sector's stale value: must be invisible.
        free = [s.header.address for s in image.sectors() if s.label.is_free]
        if free:
            injector.scramble_value(rng.choice(free))


class TestCrashMatrix:
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        faults=st.lists(st.sampled_from(FAULT_KINDS), min_size=1, max_size=6),
    )
    def test_scavenge_always_restores_consistency(self, seed, faults):
        image, payloads, serial_to_name = build_populated_image(seed)
        rng = random.Random(seed + 1)
        injector = FaultInjector(image, seed=seed + 2)
        damaged_files = set()
        for kind in faults:
            apply_fault(injector, image, rng, kind, damaged_files, serial_to_name)

        report = Scavenger(DiskDrive(image)).scavenge()
        fs = FileSystem.mount(DiskDrive(image))

        for name, data in payloads.items():
            if name in damaged_files:
                continue  # that file legitimately lost a page
            # The file must be reachable (root or rescued) and identical.
            found = None
            for candidate in fs.list_files():
                if candidate == name or candidate.startswith(name + "!"):
                    found = candidate
                    break
            assert found is not None, f"{name} unreachable after scavenge"
            assert fs.open_file(found).read_data() == data

        # The recovered image passes the full read-only consistency check.
        # One detected-but-unrepairable residue is allowed: a file truncated
        # at a corruption gap keeps L=512 on its new last page ("ragged
        # end"), because L is absolute and the scavenger will not invent
        # data lengths -- the paper leaves inconsistency *handling* out of
        # scope (section 3.5).
        from repro.fs.fsck import check_image

        fsck = check_image(image)
        residue = [i for i in fsck.issues if i.kind != "ragged-end"]
        assert not residue, [str(i) for i in residue]
        # ...and a second scavenge is a no-op: the first one converged.
        second = Scavenger(DiskDrive(image)).scavenge()
        assert second.links_repaired == 0
        assert second.garbage_labels_freed == 0
        assert second.entries_nulled == 0

    def test_root_and_descriptor_leaders_both_destroyed(self):
        """Regression: found by hypothesis (seed=9999).

        When *both* the descriptor's and the root directory's leader labels
        are destroyed, the scavenger recreates the root first and may place
        its new leader on the pack's first free sector -- which is exactly
        the standard descriptor address.  Recreating the descriptor then
        evicts that leader; the rewritten descriptor must carry the moved
        address, not the stale one, or the next mount fails its label check.
        """
        from repro.fs.descriptor import DESCRIPTOR_LEADER_ADDRESS

        image, payloads, _ = build_populated_image(seed=9999)
        injector = FaultInjector(image, seed=1)
        # The descriptor's leader sits at the one absolute address; the
        # root directory's leader is the in-use directory page right after
        # the descriptor's chain (label page number 1 == file page 0).
        root_leader = next(
            s.header.address for s in image.sectors()
            if s.label.is_directory and s.label.page_number == 1
        )
        injector.scramble_label(DESCRIPTOR_LEADER_ADDRESS)
        injector.scramble_label(root_leader)

        Scavenger(DiskDrive(image)).scavenge()
        fs = FileSystem.mount(DiskDrive(image))  # must not raise HintFailed
        for name, data in payloads.items():
            found = next(
                (c for c in fs.list_files()
                 if c == name or c.startswith(name + "!")), None)
            assert found is not None, f"{name} unreachable after scavenge"
            assert fs.open_file(found).read_data() == data


class TestCrashPointSweep:
    """Exhaustive crash-point enumeration (the ISSUE 1 tentpole applied).

    The canonical workload rewrites, grows, shrinks, creates, deletes, and
    renames files; the sweep crashes it once at *every* part-write boundary
    and runs the full recovery-invariant check each time.  Deterministic
    given --repro-seed, so any failure replays exactly.
    """

    def test_clean_crash_at_every_write_recovers(self, crash_sweeper):
        result = crash_sweeper()
        assert result.total_writes >= 50, result.total_writes
        assert result.points_tested == result.total_writes
        assert result.ok, "\n".join(str(r) for r in result.failures)

    def test_torn_write_at_every_write_recovers(self, crash_sweeper):
        result = crash_sweeper(tear=True)
        assert result.total_writes >= 50, result.total_writes
        assert result.ok, "\n".join(str(r) for r in result.failures)

    def test_every_crash_point_actually_fired(self, crash_sweeper):
        result = crash_sweeper()
        assert all(r.crash_reason for r in result.reports)
        assert len({r.crash_point for r in result.reports}) == result.total_writes


class TestCachedCrashPointSweep:
    """The same exhaustive sweeps with the write-back cache in the loop.

    The workload runs on a :class:`~repro.disk.cache.CachedDrive`, so crash
    points also land inside elevator flush drains, and whatever the cache
    had buffered at the crash is lost with the machine.  The invariant is
    unchanged: every crash point recovers via one scavenge, because label
    writes are never deferred -- the on-disk label order is the uncached
    order, and a lost buffered data write just leaves the page's previous
    (or zero) contents under an unchanged label, a state
    ``prefix_consistent`` already accepts.
    """

    def test_clean_crash_at_every_write_recovers_cached(self, crash_sweeper):
        result = crash_sweeper(cached=True)
        assert result.total_writes >= 50, result.total_writes
        assert result.points_tested == result.total_writes
        assert result.ok, "\n".join(str(r) for r in result.failures)

    def test_torn_write_at_every_write_recovers_cached(self, crash_sweeper):
        result = crash_sweeper(tear=True, cached=True)
        assert result.total_writes >= 50, result.total_writes
        assert result.ok, "\n".join(str(r) for r in result.failures)

    def test_cache_defers_writes_so_the_sweep_is_shorter(self, crash_sweeper):
        """The cached workload must actually exercise write-back: deferral
        and coalescing reach the platter as fewer part-writes than the
        uncached run of the identical workload."""
        plain = crash_sweeper(points=[1])
        cached = crash_sweeper(points=[1], cached=True)
        assert 0 < cached.total_writes < plain.total_writes
