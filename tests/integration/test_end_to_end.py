"""End-to-end integration: the whole system working together."""

import pytest

from repro.disk import DiskDrive, DiskImage, diablo31, tiny_test_disk
from repro.fs import Compactor, FileSystem
from repro.os import AltoOS, CodeFile, write_code_file
from repro.streams import open_read_stream, read_string
from repro.world import Halt, WorldProgram, create_boot_file, hardware_boot


class TestFullSessions:
    def test_executive_session_then_remount(self, image, drive):
        os = AltoOS.format(drive)
        os.run_executive(
            "write report.txt the label check is crucial\n"
            "write notes.txt hints are only hints\n"
            "quit\n"
        )
        os.fs.sync()
        os2 = AltoOS.mount(DiskDrive(image))
        out = os2.run_executive("type report.txt\nquit\n")
        assert "the label check is crucial" in out

    def test_program_junta_counterjunta_cycle(self, drive):
        """A program takes the machine with Junta, uses the space, returns
        via CounterJunta, and the Executive continues."""
        os = AltoOS.format(drive)

        def greedy(o, args):
            freed = o.call_junta(4)
            from repro.memory import Zone

            zone = Zone(freed, "greedy")
            zone.allocate(5000)  # use the system's memory for ourselves
            o.call_counter_junta()
            return "had the machine"

        os.executables.register("Greedy", greedy)
        write_code_file(os.fs, "greedy.run", CodeFile(entry="Greedy", code=[0]))
        out = os.run_executive("greedy\nls\nquit\n")
        assert "had the machine" in out
        assert os.junta.retained_level() == 13

    def test_scavenge_compact_remount_boot(self, image):
        """Format, fill, corrupt, scavenge, compact, install a boot world,
        press the button."""
        drive = DiskDrive(image)
        os = AltoOS.format(drive)
        for i in range(6):
            ws = os.write_stream(f"doc{i}.txt")
            for b in (f"document {i} " * 30).encode():
                ws.put(b)
            ws.close()
        os.fs.sync()

        from repro.disk import FaultInjector

        injector = FaultInjector(image, seed=99)
        for address in injector.random_in_use_addresses(5):
            injector.scramble_links(address)
        os.scavenge()
        Compactor(os.drive).compact()

        fs = FileSystem.mount(DiskDrive(image, clock=drive.clock))
        os2 = AltoOS.mount(DiskDrive(image, clock=drive.clock))

        class Greeter(WorldProgram):
            name = "greeter"

            def phase_saved(self, ctx, message):
                return Halt("booted")

        os2.programs.register(Greeter)
        create_boot_file(os2.fs)
        os2.engine.swapper.outload("Sys.boot", "greeter", "saved")
        assert hardware_boot(os2.engine) == "booted"

    def test_two_thousand_operations(self, rng):
        """A long random workload keeps the file system coherent."""
        drive = DiskDrive(DiskImage(tiny_test_disk(cylinders=40)))
        fs = FileSystem.format(drive)
        shadow = {}
        for step in range(300):
            op = rng.choice(["create", "write", "read", "delete", "rename"])
            if op == "create" and len(shadow) < 20:
                name = f"f{step}.dat"
                fs.create_file(name)
                shadow[name] = b""
            elif op == "write" and shadow:
                name = rng.choice(sorted(shadow))
                data = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 1600)))
                fs.open_file(name).write_data(data)
                shadow[name] = data
            elif op == "read" and shadow:
                name = rng.choice(sorted(shadow))
                assert fs.open_file(name).read_data() == shadow[name]
            elif op == "delete" and shadow:
                name = rng.choice(sorted(shadow))
                fs.delete_file(name)
                del shadow[name]
            elif op == "rename" and shadow:
                name = rng.choice(sorted(shadow))
                new = f"r{step}.dat"
                fs.rename_file(name, new)
                shadow[new] = shadow.pop(name)
        # Everything still reads back, even after a scavenge.
        from repro.fs import Scavenger

        Scavenger(DiskDrive(drive.image, clock=drive.clock)).scavenge()
        fs2 = FileSystem.mount(DiskDrive(drive.image, clock=drive.clock))
        for name, data in shadow.items():
            assert fs2.open_file(name).read_data() == data


class TestPaperScaleNumbers:
    def test_full_disk_scavenge_time_is_about_a_minute(self):
        """Section 3.5: "it takes about a minute for a 2.5 megabyte disk".
        Same order of magnitude required here (the bench reports exactly)."""
        drive = DiskDrive(DiskImage(diablo31()))
        fs = FileSystem.format(drive)
        for i in range(40):
            fs.create_file(f"file{i:03}.dat").write_data(bytes([i]) * (i * 211 % 4096))
        fs.sync()
        from repro.fs import Scavenger

        report = Scavenger(DiskDrive(drive.image)).scavenge()
        assert 15.0 < report.elapsed_s < 120.0

    def test_memory_is_never_exceeded_by_the_table(self):
        """48 bits/sector must fit in 64k words for the standard disk."""
        from repro.memory.core import MEMORY_WORDS

        assert 3 * diablo31().total_sectors() <= MEMORY_WORDS
