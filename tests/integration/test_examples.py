"""Smoke tests: every shipped example must run to completion.

Each example is a narrative script with its own assertions; here we import
and execute each ``main()`` with stdout captured, so a regression anywhere
in the library shows up as a broken example, not a stale one.
"""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    out = io.StringIO()
    with redirect_stdout(out):
        module.main()
    return out.getvalue()


def test_examples_exist():
    assert len(EXAMPLES) >= 3, f"expected at least three examples, found {EXAMPLES}"
    assert "quickstart" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    output = run_example(name)
    assert output.strip(), f"{name} produced no output"


def test_quickstart_tells_the_whole_story():
    output = run_example("quickstart")
    assert "formatted Diablo-31" in output
    assert "scavenge" in output
    assert "after recovery" in output


def test_crash_recovery_reports_no_loss():
    output = run_example("crash_recovery")
    assert "byte-identical" in output
    assert "data intact" in output


def test_printing_server_prints_everything():
    output = run_example("printing_server")
    assert "osreview" in output and "figures" in output and "patch" in output


def test_debugger_fixes_the_victim():
    output = run_example("debugger")
    assert "patched" in output
    assert "5050 correct" in output
