"""Cross-subsystem interplay: world swaps vs Junta, printing vs crashes.

These are the scenarios where two of the paper's mechanisms touch: a world
image carries the Junta level contents (they are just memory); a crashed
print server resumes from its state files; type-ahead crosses a swap.
"""

import pytest

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.fs import FileSystem, Scavenger
from repro.net import (
    PacketNetwork,
    PrinterDevice,
    bootstrap_printer_state,
    build_printing_server,
    read_queue,
    send_file,
    write_queue,
)
from repro.os import AltoOS
from repro.os.levels import fill_pattern
from repro.world import Halt, Machine, ProgramRegistry, Transfer, WorldEngine, WorldProgram


@pytest.fixture
def big_drive():
    return DiskDrive(DiskImage(tiny_test_disk(cylinders=80)))


class TestJuntaMeetsWorldSwap:
    def test_world_image_carries_the_junta_state(self, big_drive):
        """A program that juntas to level 4, saves itself, and is later
        restored comes back with the levels still gone -- they are memory,
        and the memory came from the image."""
        os = AltoOS.format(big_drive)

        level8 = os.junta.regions[8]
        os.call_junta(4)
        level8.fill(0x1234)  # the program reuses the freed storage
        os.engine.swapper.outload("took-over.world", "prog", "resume")

        os.call_counter_junta()  # the live machine gets its system back
        assert os.junta.level_intact(8)

        os.engine.swapper.inload("took-over.world")
        # The restored memory shows the junta'd world again.
        assert level8.read(0) == 0x1234
        assert not os.junta.level_intact(8)
        # CounterJunta repairs it, as the paper's program-exit path does.
        os.call_counter_junta()
        assert os.junta.level_intact(8)

    def test_type_ahead_crosses_a_world_swap(self, big_drive):
        """Section 5.2: characters typed at one program are interpreted by
        the next -- even when "the next" arrives by InLoad."""
        os = AltoOS.format(big_drive)
        os.type_ahead("ls\nquit\n")  # typed at program A, unconsumed
        snapshot = os.keyboard_process.contents()
        os.engine.swapper.outload("a.world", "a", "x")

        os.keyboard_process.initialize()  # program B drained/cleared it
        assert os.keyboard_process.contents() == ""

        os.engine.swapper.inload("a.world")
        assert os.keyboard_process.contents() == snapshot
        out = os.run_executive()  # the Executive now interprets it
        assert "SysDir" in out


class TestPrintServerCrashResume:
    def test_queued_jobs_survive_a_crash(self, big_drive):
        """The queue is a disk file: a server that dies mid-operation
        resumes from its state files after a scavenge and finishes the
        work (the whole point of splitting spooler/printer over files)."""
        fs = FileSystem.format(big_drive)
        machine = Machine()
        registry = ProgramRegistry()
        network = PacketNetwork(clock=big_drive.clock)
        network.attach("printserver")
        network.attach("client")
        printer = PrinterDevice(big_drive.clock, ms_per_line=1.0)
        build_printing_server(registry, network, printer)
        engine = WorldEngine(machine, fs, registry)
        bootstrap_printer_state(engine)

        # A job arrives and gets spooled; the server idles (saving state).
        send_file(network, "client", "printserver", "memo", b"only line")
        # Spool manually: run the spooler with an empty printer queue...
        # Simplest crash model: spool the job into the queue files directly
        # through the same helpers the spooler uses.
        job = fs.create_file("Spool.job.1.memo")
        job.write_data(b"only line")
        write_queue(fs, ["Spool.job.1.memo"])
        engine.swapper.outload("Spooler.state", "spooler", "resumed")

        # CRASH: new machine, scavenged pack, fresh engine.
        image = big_drive.image
        Scavenger(DiskDrive(image, clock=big_drive.clock)).scavenge()
        fs2 = FileSystem.mount(DiskDrive(image, clock=big_drive.clock))
        engine2 = WorldEngine(Machine(), fs2, registry)
        outcome, jobs = engine2.run_from_file("Spooler.state")
        # The pending network packets were lost with the crash, but the
        # disk-queued job printed.
        assert ("memo", 1) in jobs
        assert read_queue(fs2) == []


class TestScavengeDuringOperation:
    def test_open_files_survive_scavenge_via_reopen(self, big_drive):
        """A program holding stale AltoFile handles across a scavenge
        recovers by reopening through names -- the documented discipline."""
        os = AltoOS.format(big_drive)
        f = os.fs.create_file("held.txt")
        f.write_data(b"held data")
        report = os.scavenge()  # remounts; old handles point at old fs
        again = os.fs.open_file("held.txt")
        assert again.read_data() == b"held data"
