"""Packet network tests."""

import pytest

from repro.clock import SimClock
from repro.net import (
    MAX_PAYLOAD_WORDS,
    NetworkError,
    Packet,
    PacketNetwork,
    TYPE_DATA,
    TYPE_END_OF_FILE,
    send_file,
)
from repro.words import words_to_bytes, words_to_string


@pytest.fixture
def net():
    network = PacketNetwork()
    network.attach("a")
    network.attach("b")
    return network


class TestDelivery:
    def test_send_receive(self, net):
        net.send(Packet("a", "b", TYPE_DATA, (1, 2, 3)))
        packet = net.receive("b")
        assert packet.payload == (1, 2, 3)
        assert packet.source == "a"
        assert net.receive("b") is None

    def test_fifo_order(self, net):
        for i in range(5):
            net.send(Packet("a", "b", TYPE_DATA, (i,)))
        assert [net.receive("b").payload[0] for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_unknown_host(self, net):
        with pytest.raises(NetworkError):
            net.send(Packet("a", "nowhere", TYPE_DATA))
        with pytest.raises(NetworkError):
            net.receive("nowhere")
        with pytest.raises(NetworkError):
            net.pending("nowhere")

    def test_double_attach(self, net):
        with pytest.raises(NetworkError):
            net.attach("a")

    def test_queue_limit_drops(self):
        network = PacketNetwork()
        network.attach("x", queue_limit=2)
        network.attach("y")
        assert network.send(Packet("y", "x", TYPE_DATA))
        assert network.send(Packet("y", "x", TYPE_DATA))
        assert not network.send(Packet("y", "x", TYPE_DATA))
        assert network.dropped == 1
        assert network.delivered == 2

    def test_wire_time_charged(self):
        clock = SimClock()
        network = PacketNetwork(clock=clock)
        network.attach("a")
        network.attach("b")
        network.send(Packet("a", "b", TYPE_DATA, tuple(range(100))))
        assert clock.tally_us("net.wire") > 0


class TestPackets:
    def test_payload_limit(self):
        with pytest.raises(NetworkError):
            Packet("a", "b", TYPE_DATA, tuple(range(MAX_PAYLOAD_WORDS + 1)))

    def test_payload_word_range(self):
        with pytest.raises(ValueError):
            Packet("a", "b", TYPE_DATA, (0x10000,))


class TestSendFile:
    def test_chunking_and_trailer(self, net):
        data = bytes(range(256)) * 3  # 768 bytes = 384 words: 2 packets + EOF
        count = send_file(net, "a", "b", "report", data)
        assert count == 3
        first = net.receive("b")
        assert first.ptype == TYPE_DATA and len(first.payload) == MAX_PAYLOAD_WORDS
        second = net.receive("b")
        assert second.ptype == TYPE_DATA
        trailer = net.receive("b")
        assert trailer.ptype == TYPE_END_OF_FILE
        assert words_to_string(list(trailer.payload[:-2])) == "report"
        nbytes = (trailer.payload[-2] << 16) | trailer.payload[-1]
        assert nbytes == 768

    def test_empty_file(self, net):
        send_file(net, "a", "b", "empty", b"")
        assert net.receive("b").ptype == TYPE_DATA  # one empty data packet
        assert net.receive("b").ptype == TYPE_END_OF_FILE
