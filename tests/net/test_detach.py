"""Detach semantics: unplugging a host and what dies with its queue."""

import pytest

from repro.net import PacketNetwork
from repro.net.network import NetworkError, Packet, TYPE_DATA


def test_detach_drops_the_queue_and_reports_dead_packets():
    net = PacketNetwork()
    net.attach("a")
    net.attach("b")
    for _ in range(3):
        assert net.send(Packet("a", "b", TYPE_DATA, (1,)))
    assert net.detach("b") == 3
    assert not net.attached("b")
    with pytest.raises(NetworkError):
        net.send(Packet("a", "b", TYPE_DATA, (2,)))
    with pytest.raises(NetworkError):
        net.receive("b")


def test_detach_unknown_host_is_an_error():
    net = PacketNetwork()
    with pytest.raises(NetworkError):
        net.detach("ghost")


def test_detach_releases_the_bound_clock_and_the_name():
    from repro.clock import SimClock

    net = PacketNetwork()
    own = SimClock()
    net.attach("a", clock=own)
    assert net.host_clock("a") is own
    assert net.detach("a") == 0
    assert net.host_clock("a") is None
    net.attach("a")                                      # the name is free again
    assert net.attached("a")
    assert net.host_clock("a") is None                   # old binding gone


def test_detached_host_can_still_be_a_source():
    """Datagram semantics: a frame already holds its source name; only
    the *destination* needs a live queue."""
    net = PacketNetwork()
    net.attach("a")
    net.attach("b")
    net.detach("a")
    assert net.send(Packet("a", "b", TYPE_DATA, (9,)))
    assert net.receive("b").payload == (9,)
