"""Edge cases of the packet substrate: boundary payloads, unknown hosts,
and the exact semantics of per-host receive-queue overflow.

These pin the datagram contract the file server's retry machinery is
built on: drops are silent to the sender beyond the ``False`` return, a
dropped packet still costs wire time, and a drained queue accepts again.
"""

import pytest

from repro.net.network import (
    MAX_PAYLOAD_WORDS,
    NetworkError,
    Packet,
    PacketNetwork,
    TYPE_DATA,
)


@pytest.fixture
def net():
    network = PacketNetwork()
    network.attach("a")
    network.attach("b")
    return network


# -- payload boundaries -------------------------------------------------------


def test_payload_at_exact_limit_is_accepted(net):
    packet = Packet("a", "b", TYPE_DATA, tuple([7] * MAX_PAYLOAD_WORDS))
    assert net.send(packet)
    assert net.receive("b").payload == packet.payload


def test_payload_one_word_over_limit_is_rejected():
    with pytest.raises(NetworkError):
        Packet("a", "b", TYPE_DATA, tuple([7] * (MAX_PAYLOAD_WORDS + 1)))


def test_empty_payload_is_a_valid_packet(net):
    assert net.send(Packet("a", "b", TYPE_DATA, ()))
    assert net.receive("b").payload == ()


@pytest.mark.parametrize("bad_word", [-1, 0x10000])
def test_out_of_range_payload_word_is_rejected(bad_word):
    with pytest.raises(Exception):
        Packet("a", "b", TYPE_DATA, (bad_word,))


# -- unknown hosts ------------------------------------------------------------


def test_send_to_detached_destination_raises(net):
    with pytest.raises(NetworkError):
        net.send(Packet("a", "ghost", TYPE_DATA, (1,)))


def test_unknown_source_is_not_validated(net):
    """Sources are labels, not registrations -- a spoofed source delivers
    (the server's sessions are keyed by whatever the packet claims)."""
    assert net.send(Packet("nobody", "b", TYPE_DATA, (1,)))
    assert net.receive("b").source == "nobody"


def test_receive_and_pending_require_attachment(net):
    with pytest.raises(NetworkError):
        net.receive("ghost")
    with pytest.raises(NetworkError):
        net.pending("ghost")


# -- receive-queue overflow ---------------------------------------------------


def test_overflow_keeps_the_oldest_packets(net):
    net.attach("tiny", queue_limit=2)
    sent = [net.send(Packet("a", "tiny", TYPE_DATA, (n,))) for n in range(4)]
    assert sent == [True, True, False, False]
    assert net.delivered == 2 and net.dropped == 2
    assert [net.receive("tiny").payload[0] for _ in range(2)] == [0, 1]
    assert net.receive("tiny") is None


def test_dropped_packet_still_costs_wire_time(net):
    net.attach("tiny", queue_limit=1)
    net.send(Packet("a", "tiny", TYPE_DATA, (1, 2)))
    before = net.clock.now_us
    assert not net.send(Packet("a", "tiny", TYPE_DATA, (1, 2)))
    assert net.clock.now_us - before == (2 + 4) * PacketNetwork.WIRE_US_PER_WORD


def test_drained_queue_accepts_again(net):
    net.attach("tiny", queue_limit=1)
    assert net.send(Packet("a", "tiny", TYPE_DATA, (1,)))
    assert not net.send(Packet("a", "tiny", TYPE_DATA, (2,)))
    assert net.receive("tiny").payload == (1,)
    assert net.send(Packet("a", "tiny", TYPE_DATA, (3,)))
    assert net.receive("tiny").payload == (3,)


def test_zero_limit_queue_drops_everything(net):
    net.attach("blackhole", queue_limit=0)
    assert not net.send(Packet("a", "blackhole", TYPE_DATA, ()))
    assert net.pending("blackhole") == 0


def test_overflow_is_per_host_not_global(net):
    net.attach("tiny", queue_limit=1)
    net.send(Packet("a", "tiny", TYPE_DATA, (1,)))
    assert not net.send(Packet("a", "tiny", TYPE_DATA, (2,)))
    assert net.send(Packet("a", "b", TYPE_DATA, (3,)))   # other hosts unaffected
    assert net.pending("b") == 1
