"""Printing-server tests: activity switching by world swap (section 4)."""

import pytest

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.fs import FileSystem
from repro.net import (
    PRINTER_STATE,
    Packet,
    PacketNetwork,
    PrinterDevice,
    QUEUE_FILE,
    SHUTDOWN_WORD,
    SPOOLER_STATE,
    TYPE_CONTROL,
    bootstrap_printer_state,
    build_printing_server,
    read_queue,
    send_file,
    write_queue,
)
from repro.world import Machine, ProgramRegistry, WorldEngine

HOST = "printserver"


@pytest.fixture
def server():
    drive = DiskDrive(DiskImage(tiny_test_disk(cylinders=80)))
    fs = FileSystem.format(drive)
    machine = Machine()
    registry = ProgramRegistry()
    network = PacketNetwork(clock=drive.clock)
    network.attach(HOST)
    network.attach("client")
    printer = PrinterDevice(drive.clock, ms_per_line=1.0)
    build_printing_server(registry, network, printer, host=HOST)
    engine = WorldEngine(machine, fs, registry)
    bootstrap_printer_state(engine)
    return fs, network, printer, engine


def shutdown(network):
    network.send(Packet("client", HOST, TYPE_CONTROL, (SHUTDOWN_WORD,)))


class TestQueueFile:
    def test_round_trip(self, fs):
        assert read_queue(fs) == []
        write_queue(fs, ["Spool.job.1.memo", "Spool.job.2.poem"])
        assert read_queue(fs) == ["Spool.job.1.memo", "Spool.job.2.poem"]
        write_queue(fs, [])
        assert read_queue(fs) == []


class TestServer:
    def test_prints_submitted_jobs(self, server):
        fs, network, printer, engine = server
        send_file(network, "client", HOST, "memo", b"line one\nline two")
        shutdown(network)
        outcome, jobs = engine.run("spooler")
        assert outcome == "printed"
        assert jobs == [("memo", 2)]
        assert printer.output == ["line one", "line two"]

    def test_multiple_jobs_in_order(self, server):
        fs, network, printer, engine = server
        send_file(network, "client", HOST, "first", b"1")
        send_file(network, "client", HOST, "second", b"2")
        shutdown(network)
        outcome, jobs = engine.run("spooler")
        assert [title for title, _lines in jobs] == ["first", "second"]

    def test_queue_drained_and_cleaned(self, server):
        fs, network, printer, engine = server
        send_file(network, "client", HOST, "memo", b"x")
        shutdown(network)
        engine.run("spooler")
        assert read_queue(fs) == []
        assert not [n for n in fs.list_files() if n.startswith("Spool.job")]

    def test_idle_server_halts_politely(self, server):
        fs, network, printer, engine = server
        outcome, jobs = engine.run("spooler")
        assert outcome == "idle"
        assert jobs == []

    def test_large_job_spans_packets(self, server):
        fs, network, printer, engine = server
        text = "\n".join(f"line {i}" for i in range(100)).encode()
        send_file(network, "client", HOST, "big", text)
        shutdown(network)
        outcome, jobs = engine.run("spooler")
        assert jobs == [("big", 100)]

    def test_printer_interrupted_by_new_traffic(self, server):
        """"This scheme easily allows printing to be interrupted in order
        to respond quickly to incoming files": traffic queued behind the
        first job forces a printer -> spooler world swap."""
        fs, network, printer, engine = server
        send_file(network, "client", HOST, "early", b"a\nb")
        shutdown(network)

        # Inject a late job the moment the printer starts (wrap print_job).
        original = printer.print_job
        injected = []

        def print_and_inject(title, text):
            result = original(title, text)
            if not injected:
                injected.append(True)
                send_file(network, "client", HOST, "late", b"c")
                shutdown(network)
            return result

        printer.print_job = print_and_inject
        outcome, jobs = engine.run("spooler")
        assert [t for t, _l in jobs] == ["early", "late"]
        # The swap back to the spooler really happened.
        assert engine.transfer_log.count(SPOOLER_STATE) >= 1
        assert engine.transfer_log.count(PRINTER_STATE) >= 2

    def test_state_persists_across_sessions(self, server):
        """A job queued but unprinted survives a shutdown: booting the
        spooler world later prints it (shared state lives on disk)."""
        fs, network, printer, engine = server
        send_file(network, "client", HOST, "memo", b"z")
        # Spool only: the spooler will transfer to the printer, which
        # prints; instead, test queue persistence by writing the queue
        # directly and running a fresh engine.
        outcome, jobs = engine.run("spooler")
        assert jobs == [("memo", 1)]
