"""Shared fixtures: small disks are enough for almost every behaviour.

Reproducibility: every source of randomness in the suite flows from one
seed, settable with ``--repro-seed`` (default 1979).  When a test that used
the seed fails, the seed is printed alongside the failure so the exact run
can be replayed with ``pytest --repro-seed <N> <nodeid>``.
"""

import os
import random

import pytest

from repro.clock import SimClock
from repro.disk import (
    CachedDrive,
    DiskDrive,
    DiskImage,
    FaultInjector,
    FaultPlan,
    tiny_test_disk,
)
from repro.fs import FileSystem

try:
    from hypothesis import settings as _hyp_settings, HealthCheck as _HealthCheck

    _hyp_settings.register_profile("default", max_examples=100)
    _hyp_settings.register_profile(
        "smoke",
        max_examples=15,
        suppress_health_check=[_HealthCheck.too_slow],
        deadline=None,
    )
    _hyp_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
except ImportError:  # pragma: no cover - hypothesis tests skip themselves
    pass


def pytest_addoption(parser):
    parser.addoption(
        "--repro-seed",
        type=int,
        default=1979,
        help="seed for every rng/fault-plan fixture (printed on failure)",
    )


@pytest.fixture
def repro_seed(request):
    """The suite-wide seed; fixtures derive all randomness from it."""
    return request.config.getoption("--repro-seed")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed and "repro_seed" in item.fixturenames:
        seed = item.config.getoption("--repro-seed")
        report.sections.append(
            (
                "repro seed",
                f"this test derives its randomness from --repro-seed {seed}; "
                f"replay with: pytest --repro-seed {seed} {item.nodeid!r}",
            )
        )


@pytest.fixture
def shape():
    return tiny_test_disk(cylinders=30)  # 720 sectors


@pytest.fixture
def image(shape):
    return DiskImage(shape)


@pytest.fixture
def drive(image):
    return DiskDrive(image)


@pytest.fixture
def fs(drive):
    return FileSystem.format(drive)


@pytest.fixture
def cached_drive(image):
    return CachedDrive(image)


@pytest.fixture
def cached_fs(cached_drive):
    return FileSystem.format(cached_drive)


@pytest.fixture
def injector(image, repro_seed):
    return FaultInjector(image, seed=repro_seed)


@pytest.fixture
def fault_plan(image, repro_seed):
    """A FaultPlan not yet attached to a drive; pair with ``planned_drive``."""
    return FaultPlan(image, seed=repro_seed)


@pytest.fixture
def planned_drive(image, fault_plan):
    """A drive whose fault injector is the ``fault_plan`` fixture."""
    return DiskDrive(image, fault_injector=fault_plan)


@pytest.fixture
def crash_sweeper(repro_seed):
    """Run the canonical crash-point sweep (see repro.fs.check), seeded by
    --repro-seed so every failure is replayable."""
    from repro.fs.check import canonical_build, canonical_workload, crash_point_sweep

    def sweep(points=None, tear=False, seed=None, cylinders=20, cached=False):
        chosen = repro_seed if seed is None else seed
        make_drive = None
        if cached:
            make_drive = lambda image, plan: CachedDrive(image, fault_injector=plan)
        return crash_point_sweep(
            canonical_build(chosen, cylinders=cylinders),
            canonical_workload(chosen),
            seed=chosen,
            points=points,
            tear=tear,
            make_drive=make_drive,
        )

    return sweep


@pytest.fixture
def rng(repro_seed):
    return random.Random(repro_seed)


@pytest.fixture
def populated_fs(fs, rng):
    """A file system with a spread of files (and some deletions)."""
    payloads = {}
    for i in range(12):
        name = f"file{i:02}.dat"
        data = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 2500)))
        fs.create_file(name).write_data(data)
        payloads[name] = data
    for i in (3, 7):
        fs.delete_file(f"file{i:02}.dat")
        del payloads[f"file{i:02}.dat"]
    sub = fs.create_directory("Sub")
    fs.create_file("nested.txt", directory=sub).write_data(b"nested data")
    payloads["nested.txt"] = b"nested data"
    fs.sync()
    fs.payloads = payloads
    return fs
