"""Shared fixtures: small disks are enough for almost every behaviour."""

import random

import pytest

from repro.clock import SimClock
from repro.disk import DiskDrive, DiskImage, FaultInjector, tiny_test_disk
from repro.fs import FileSystem


@pytest.fixture
def shape():
    return tiny_test_disk(cylinders=30)  # 720 sectors


@pytest.fixture
def image(shape):
    return DiskImage(shape)


@pytest.fixture
def drive(image):
    return DiskDrive(image)


@pytest.fixture
def fs(drive):
    return FileSystem.format(drive)


@pytest.fixture
def injector(image):
    return FaultInjector(image, seed=1979)


@pytest.fixture
def rng():
    return random.Random(1979)


@pytest.fixture
def populated_fs(fs, rng):
    """A file system with a spread of files (and some deletions)."""
    payloads = {}
    for i in range(12):
        name = f"file{i:02}.dat"
        data = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 2500)))
        fs.create_file(name).write_data(data)
        payloads[name] = data
    for i in (3, 7):
        fs.delete_file(f"file{i:02}.dat")
        del payloads[f"file{i:02}.dat"]
    sub = fs.create_directory("Sub")
    fs.create_file("nested.txt", directory=sub).write_data(b"nested data")
    payloads["nested.txt"] = b"nested data"
    fs.sync()
    fs.payloads = payloads
    return fs
