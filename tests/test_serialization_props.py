"""Property-based round-trips for every on-disk serialization (ISSUE 1
satellite).

Each structure that crosses the disk boundary -- word/byte/string packing,
sector labels and headers, leader pages, the disk descriptor, and whole
files through an image -- must decode back to exactly what was encoded,
for arbitrary valid inputs.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st

from repro.disk import DiskDrive, DiskImage, Header, Label, tiny_test_disk
from repro.fs import FileSystem
from repro.fs.descriptor import DiskDescriptor
from repro.fs.leader import LeaderPage, MAX_NAME_LENGTH
from repro.fs.names import FileId, FullName
from repro.words import (
    WORD_MASK,
    bytes_to_words,
    from_double_word,
    string_to_words,
    to_double_word,
    words_to_bytes,
    words_to_string,
)

words_st = st.integers(min_value=0, max_value=WORD_MASK)
double_st = st.integers(min_value=0, max_value=0xFFFFFFFF)
ascii_st = st.text(
    alphabet=st.characters(min_codepoint=1, max_codepoint=127), max_size=255
)
name_st = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.-",
    min_size=1,
    max_size=MAX_NAME_LENGTH,
)


class TestWordPacking:
    @given(st.binary(max_size=600))
    def test_bytes_round_trip(self, data):
        assert words_to_bytes(bytes_to_words(data), nbytes=len(data)) == data

    @given(st.lists(words_st, max_size=300))
    def test_words_round_trip(self, words):
        assert bytes_to_words(words_to_bytes(words)) == words

    @given(double_st)
    def test_double_word_round_trip(self, value):
        assert from_double_word(*to_double_word(value)) == value

    @given(ascii_st)
    def test_bcpl_string_round_trip(self, text):
        assert words_to_string(string_to_words(text)) == text


class TestSectorStructures:
    @given(pack_id=words_st, address=words_st)
    def test_header_round_trip(self, pack_id, address):
        header = Header(pack_id, address)
        assert Header.unpack(header.pack()) == header

    @given(
        serial=double_st,
        version=words_st,
        page_number=words_st,
        length=words_st,
        next_link=words_st,
        prev_link=words_st,
    )
    def test_label_round_trip(self, serial, version, page_number, length,
                              next_link, prev_link):
        label = Label(
            serial=serial,
            version=version,
            page_number=page_number,
            length=length,
            next_link=next_link,
            prev_link=prev_link,
        )
        assert Label.unpack(label.pack()) == label


class TestLeaderPage:
    @given(
        name=name_st,
        created=double_st,
        written=double_st,
        read=double_st,
        last_page_number=words_st,
        last_page_address=words_st,
        maybe_consecutive=st.booleans(),
    )
    def test_leader_round_trip(self, name, created, written, read,
                               last_page_number, last_page_address,
                               maybe_consecutive):
        leader = LeaderPage(
            name=name,
            created=created,
            written=written,
            read=read,
            last_page_number=last_page_number,
            last_page_address=last_page_address,
            maybe_consecutive=maybe_consecutive,
        )
        assert LeaderPage.unpack(leader.pack()) == leader


class TestDiskDescriptor:
    # Valid FileIds carry the ordinary-serial marker and a 1..0xFFFE version.
    serial_st = st.integers(min_value=0, max_value=0x3FFF_FFFF).map(
        lambda c: 0x4000_0000 | c
    )
    version_st = st.integers(min_value=1, max_value=WORD_MASK - 1)

    @given(
        serial_counter=double_st,
        root_serial=serial_st,
        root_version=version_st,
        root_address=words_st,
        free_map=st.lists(words_st, max_size=64),
    )
    def test_descriptor_round_trip(self, serial_counter, root_serial,
                                   root_version, root_address, free_map):
        shape = tiny_test_disk(cylinders=30)
        descriptor = DiskDescriptor(
            shape=shape,
            serial_counter=serial_counter,
            root_directory=FullName(
                FileId(root_serial, root_version),
                page_number=0,
                address=root_address,
            ),
            free_map_words=free_map,
        )
        decoded = DiskDescriptor.unpack(shape, descriptor.pack())
        assert decoded.serial_counter == descriptor.serial_counter
        assert decoded.root_directory == descriptor.root_directory
        assert decoded.free_map_words == descriptor.free_map_words


class TestFileThroughDisk:
    """The heaviest round trip: bytes -> pages on a disk image -> fresh
    mount (no shared caches or hints) -> bytes."""

    @given(data=st.binary(max_size=3000))
    def test_file_survives_a_fresh_mount(self, data):
        image = DiskImage(tiny_test_disk(cylinders=30))
        fs = FileSystem.format(DiskDrive(image))
        fs.create_file("roundtrip.dat").write_data(data)
        fs.sync()
        fresh = FileSystem.mount(DiskDrive(image))
        assert fresh.open_file("roundtrip.dat").read_data() == data
