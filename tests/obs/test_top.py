"""``repro top``: the renderer is a pure function, the dashboard a driver.

The renderer goes from a flat stats snapshot to one text frame; these
tests feed it hand-built and real (loadgen) snapshots and check the
content.  The dashboard tests drive :class:`TopDashboard` against a
``StringIO`` exactly as ``python -m repro top`` does.
"""

import io

from repro.obs import MetricsRegistry, TopDashboard, render_top
from repro.server.loadgen import LoadGenerator, build_system


def sample_stats():
    registry = MetricsRegistry()
    hist = registry.histogram("server.request_us")
    for value in (800, 1_200, 2_000, 50_000):
        hist.observe(value)
    registry.histogram("router.scatter_fanout").observe(4)
    registry.counter("server.requests").inc(4)
    registry.counter("server.flushes").inc(2)
    stats = registry.snapshot()
    stats["clock.now_us"] = 2_000_000
    stats["server.queue.depth.high_water"] = 3
    return stats


class TestRenderTop:
    def test_header_counts_and_throughput(self):
        frame = render_top(sample_stats(), title="unit top")
        head = frame.splitlines()[0]
        assert "unit top" in head
        assert "2.000s" in head
        assert "4 requests" in head
        assert "2.0 req/s" in head

    def test_latency_rows_show_quantiles(self):
        frame = render_top(sample_stats())
        (row,) = [l for l in frame.splitlines() if "server.request_us" in l]
        assert "p99.9" in frame
        # count, mean, and humanised microsecond quantiles
        assert row.split()[1] == "4"
        assert "ms" in row

    def test_non_time_histograms_print_plain_numbers(self):
        frame = render_top(sample_stats())
        (row,) = [l for l in frame.splitlines()
                  if "router.scatter_fanout" in l]
        assert "us" not in row.replace("router.scatter_fanout", "")

    def test_counters_and_high_water_tail(self):
        frame = render_top(sample_stats())
        assert "requests=4" in frame
        assert "flushes=2" in frame
        assert "queue depth high-water 3" in frame

    def test_empty_snapshot_renders_a_header(self):
        frame = render_top({})
        assert frame.startswith("repro top")
        assert "0 requests" in frame

    def test_extra_lines_are_appended(self):
        frame = render_top({}, extra=["round 3/5"])
        assert frame.rstrip().endswith("round 3/5")


class TestTopDashboard:
    def test_tick_redraws_every_interval(self):
        out = io.StringIO()
        frames = []
        dashboard = TopDashboard(lambda: sample_stats(), interval=10,
                                 live=False, out=out)
        for completed in range(0, 35):
            dashboard.tick(completed)
            frames.append(dashboard.frames)
        assert dashboard.frames == 3  # at 10, 20, 30
        assert out.getvalue().count("repro top --") == 3

    def test_live_mode_clears_between_frames(self):
        out = io.StringIO()
        dashboard = TopDashboard(lambda: sample_stats(), live=True, out=out)
        dashboard.refresh()
        assert out.getvalue().startswith("\x1b[2J\x1b[H")

    def test_non_live_mode_appends_frames(self):
        out = io.StringIO()
        dashboard = TopDashboard(lambda: sample_stats(), live=False, out=out)
        dashboard.refresh()
        dashboard.refresh()
        assert "\x1b" not in out.getvalue()
        assert dashboard.frames == 2

    def test_drives_a_real_loadgen_run(self):
        """The ``python -m repro top`` wiring: snapshot callable over the
        live system, tick as the progress callback."""
        out = io.StringIO()
        system = build_system(clients=2, tiny=True)
        dashboard = TopDashboard(system.stats, interval=4, live=False,
                                 out=out, title="loadgen top")
        result = LoadGenerator(system, file_bytes=700,
                               read_rounds=1).run(progress=dashboard.tick)
        dashboard.refresh()
        assert result.requests > 0
        assert dashboard.frames >= 2
        final = out.getvalue().rsplit("loadgen top", 1)[1]
        assert "server.request_us" in final
        assert "loadgen.request_us" in final
