"""Property tests: log-bucket quantiles bracket the true nearest-rank value.

The histogram's contract (``SUB_BUCKET_BITS = 3``): for any stream of
non-negative integer samples and any quantile ``q``, the estimate ``e``
and the true nearest-rank sample ``v`` (rank ``ceil(q * n)``) satisfy

    v <= e <= v * (1 + 2**-SUB_BUCKET_BITS)

-- the estimate never undershoots and overshoots by at most one bucket's
relative width.  Hypothesis sweeps arbitrary streams; the edge cases
(empty, single sample, huge overflow-octave values) get explicit tests.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    SUB_BUCKET_BITS,
    Histogram,
    MetricsRegistry,
    bucket_bounds,
    bucket_index,
    merge_stats,
    snapshot_quantiles,
)

RELATIVE_ERROR = 2 ** -SUB_BUCKET_BITS

samples = st.lists(st.integers(min_value=0, max_value=2 ** 48), min_size=1,
                   max_size=200)
quantiles = st.sampled_from([0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0])


def true_nearest_rank(values, q):
    ordered = sorted(values)
    rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
    return ordered[rank - 1]


@settings(max_examples=200, deadline=None)
@given(samples, quantiles)
def test_estimate_brackets_true_nearest_rank(values, q):
    hist = Histogram("h")
    for value in values:
        hist.observe(value)
    estimate = hist.quantile(q)
    true_value = true_nearest_rank(values, q)
    assert true_value <= estimate <= true_value * (1 + RELATIVE_ERROR)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 60))
def test_bucket_bounds_bracket_every_value(value):
    lower, upper = bucket_bounds(bucket_index(value))
    assert lower <= value <= upper
    assert upper - lower <= max(0, lower >> SUB_BUCKET_BITS)


@settings(max_examples=50, deadline=None)
@given(samples, samples, quantiles)
def test_merged_snapshots_estimate_the_union(left, right, q):
    """Cluster-wide quantiles: merging two machines' snapshots by plain
    summation then estimating equals observing the union's contract."""
    registry_a, registry_b = MetricsRegistry(), MetricsRegistry()
    for value in left:
        registry_a.histogram("h").observe(value)
    for value in right:
        registry_b.histogram("h").observe(value)
    merged = merge_stats([registry_a.snapshot(), registry_b.snapshot()])
    estimate = snapshot_quantiles(merged, "h", quantiles=(q,))
    true_value = true_nearest_rank(left + right, q)
    (value,) = estimate.values()
    assert true_value <= value <= true_value * (1 + RELATIVE_ERROR)


class TestEdges:
    def test_empty_histogram(self):
        hist = Histogram("h")
        assert hist.quantile(0.5) == 0.0
        assert hist.percentiles() == {"p50": 0.0, "p90": 0.0, "p99": 0.0,
                                      "p99.9": 0.0}

    def test_single_sample_is_exact_at_every_quantile(self):
        hist = Histogram("h")
        hist.observe(12345)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 12345.0

    def test_zero_only_stream(self):
        hist = Histogram("h")
        for _ in range(10):
            hist.observe(0)
        assert hist.quantile(0.99) == 0.0

    def test_overflow_octave_values_keep_relative_error(self):
        # 2**55 + 2**16 is exactly representable as a float (spacing at
        # this magnitude is 4), so the max clamp stays precise.
        hist = Histogram("h")
        value = 2 ** 55 + 2 ** 16
        hist.observe(value)
        hist.observe(1)
        estimate = hist.quantile(1.0)
        assert value <= estimate <= value * (1 + RELATIVE_ERROR)

    def test_max_clamp_beats_bucket_upper_bound(self):
        """With few samples the observed max is tighter than the bucket's
        upper bound; the estimate must use it."""
        hist = Histogram("h")
        hist.observe(1000)
        assert hist.quantile(0.5) == 1000.0

    def test_snapshot_quantiles_missing_histogram(self):
        assert snapshot_quantiles({"c": 3}, "h") == {}
