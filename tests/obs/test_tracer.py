"""The span tracer: nesting, the ring buffer, and the disabled fast path."""

from repro import SimClock
from repro.obs import NULL_SPAN, Observability, Tracer


def traced_clock():
    clock = SimClock()
    clock.obs.enable_tracing()
    return clock


class TestSpans:
    def test_span_records_simulated_duration(self):
        clock = traced_clock()
        with clock.obs.span("work", "test"):
            clock.advance_us(250, "test")
        (event,) = clock.obs.tracer.spans()
        assert event.name == "work"
        assert event.category == "test"
        assert event.duration_us == 250

    def test_nesting_records_parent_and_depth(self):
        clock = traced_clock()
        with clock.obs.span("outer") as outer:
            with clock.obs.span("inner"):
                clock.advance_us(10, "test")
        events = {e.name: e for e in clock.obs.tracer.spans()}
        assert events["outer"].parent_id == 0
        assert events["outer"].depth == 0
        assert events["inner"].parent_id == outer.id
        assert events["inner"].depth == 1
        # Inner finishes first, so it sits earlier in the ring.
        assert [e.name for e in clock.obs.tracer.spans()] == ["inner", "outer"]

    def test_annotate_merges_args(self):
        clock = traced_clock()
        with clock.obs.span("work", address=7) as span:
            span.annotate(rung="direct")
        (event,) = clock.obs.tracer.spans()
        assert event.args == {"address": 7, "rung": "direct"}

    def test_exception_annotates_error_and_closes(self):
        clock = traced_clock()
        try:
            with clock.obs.span("work"):
                raise ValueError("boom")
        except ValueError:
            pass
        (event,) = clock.obs.tracer.spans()
        assert event.args["error"] == "ValueError"
        assert clock.obs.tracer._stack == []

    def test_out_of_order_finish_closes_inner_spans(self):
        tracer = Tracer(SimClock())
        tracer.enable()
        outer = tracer.begin("outer")
        tracer.begin("inner")
        tracer.finish(outer)  # exception-style unwind: inner closed too
        assert [e.name for e in tracer.spans()] == ["inner", "outer"]
        assert tracer._stack == []


class TestRingBuffer:
    def test_eviction_counts_dropped(self):
        clock = SimClock()
        clock.obs.enable_tracing(capacity=4)
        for i in range(6):
            with clock.obs.span(f"s{i}"):
                clock.advance_us(1, "test")
        tracer = clock.obs.tracer
        assert len(tracer.events) == 4
        assert tracer.dropped == 2
        assert [e.name for e in tracer.spans()] == ["s2", "s3", "s4", "s5"]

    def test_enable_with_new_capacity_preserves_events(self):
        clock = traced_clock()
        with clock.obs.span("kept"):
            pass
        clock.obs.enable_tracing(capacity=128)
        assert [e.name for e in clock.obs.tracer.spans()] == ["kept"]


class TestDisabled:
    def test_span_returns_shared_null_span(self):
        clock = SimClock()
        assert clock.obs.span("anything") is NULL_SPAN
        with clock.obs.span("anything") as span:
            span.annotate(ignored=True)
        assert len(clock.obs.tracer.events) == 0
        assert not clock.obs.tracing

    def test_instant_is_noop_while_disabled(self):
        clock = SimClock()
        clock.obs.instant("marker")
        assert len(clock.obs.tracer.events) == 0

    def test_disable_stops_recording(self):
        clock = traced_clock()
        clock.obs.disable_tracing()
        with clock.obs.span("skipped"):
            pass
        assert len(clock.obs.tracer.events) == 0


class TestInstants:
    def test_instant_records_point_in_time(self):
        clock = traced_clock()
        clock.advance_us(99, "test")
        clock.obs.instant("marker", "test", detail=1)
        (event,) = clock.obs.tracer.events
        assert event.kind == "instant"
        assert event.start_us == event.end_us == 99
        assert event.args == {"detail": 1}
        assert clock.obs.tracer.spans() == []  # not a span

    def test_find_by_name(self):
        clock = traced_clock()
        with clock.obs.span("a"):
            pass
        with clock.obs.span("b"):
            pass
        assert [e.name for e in clock.obs.tracer.find("b")] == ["b"]


class TestObservabilityStats:
    def test_stats_includes_clock_position_and_tallies(self):
        clock = SimClock()
        clock.advance_us(100, "seek")
        clock.obs.counter("c").inc(2)
        stats = clock.obs.stats()
        assert stats["c"] == 2
        assert stats["clock.now_us"] == 100
        assert stats["clock.tally.seek_us"] == 100

    def test_clockless_observability(self):
        obs = Observability()
        obs.enable_tracing()
        with obs.span("work"):
            pass
        (event,) = obs.tracer.spans()
        assert event.start_us == event.end_us == 0
        assert "clock.now_us" not in obs.stats()
