"""Exporter correctness: round-trips, nesting, durations, schema validity."""

import json

from repro import SimClock
from repro.obs import chrome_trace, validate_trace, write_trace


def sample_clock():
    """A deterministic three-level trace: outer > (childA, childB > grand)."""
    clock = SimClock()
    clock.obs.enable_tracing()
    with clock.obs.span("outer", "test"):
        clock.advance_us(10, "test")  # self time before children
        with clock.obs.span("childA", "test", address=1):
            clock.advance_us(30, "test")
        clock.advance_us(5, "test")  # self time between children
        with clock.obs.span("childB", "test"):
            clock.advance_us(20, "test")
            with clock.obs.span("grand", "test"):
                clock.advance_us(40, "test")
        clock.advance_us(15, "test")  # self time after children
    clock.obs.instant("marker", "test")
    return clock


def complete_events(trace):
    return [e for e in trace["traceEvents"] if e.get("ph") == "X"]


def by_name(trace):
    return {e["name"]: e for e in complete_events(trace)}


class TestChromeTrace:
    def test_round_trips_through_json(self, tmp_path):
        clock = sample_clock()
        path = tmp_path / "trace.json"
        written = write_trace(str(path), clock.obs.tracer, stats=clock.obs.stats())
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(written))
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["otherData"]["stats"]["clock.now_us"] == 120

    def test_metadata_names_the_process(self):
        trace = chrome_trace([("alto", sample_clock().obs.tracer)])
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        assert meta[0]["args"]["name"] == "alto"

    def test_spans_nest_without_overlap(self):
        trace = chrome_trace(sample_clock().obs.tracer)
        assert validate_trace(trace) == []

    def test_parent_links_follow_the_span_tree(self):
        spans = by_name(chrome_trace(sample_clock().obs.tracer))
        outer_id = spans["outer"]["args"]["span_id"]
        assert "parent_id" not in spans["outer"]["args"]
        assert spans["childA"]["args"]["parent_id"] == outer_id
        assert spans["childB"]["args"]["parent_id"] == outer_id
        assert spans["grand"]["args"]["parent_id"] == spans["childB"]["args"]["span_id"]

    def test_duration_is_children_plus_self_time(self):
        spans = by_name(chrome_trace(sample_clock().obs.tracer))
        assert spans["childA"]["dur"] == 30
        assert spans["grand"]["dur"] == 40
        assert spans["childB"]["dur"] == 20 + 40  # self + grand
        # outer = self (10 + 5 + 15) + childA + childB
        assert spans["outer"]["dur"] == 30 + spans["childA"]["dur"] + spans["childB"]["dur"]
        # Children sit inside the parent's interval.
        for child in ("childA", "childB"):
            assert spans[child]["ts"] >= spans["outer"]["ts"]
            assert (spans[child]["ts"] + spans[child]["dur"]
                    <= spans["outer"]["ts"] + spans["outer"]["dur"])

    def test_events_sorted_parents_before_children(self):
        names = [e["name"] for e in complete_events(chrome_trace(sample_clock().obs.tracer))]
        assert names == ["outer", "childA", "childB", "grand"]

    def test_instants_exported_with_scope(self):
        trace = chrome_trace(sample_clock().obs.tracer)
        (instant,) = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "marker"
        assert instant["s"] == "t"
        assert "dur" not in instant

    def test_multiple_tracers_get_distinct_pids(self):
        a, b = sample_clock(), sample_clock()
        trace = chrome_trace([("one", a.obs.tracer), ("two", b.obs.tracer)])
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {0, 1}
        assert validate_trace(trace) == []

    def test_dropped_spans_reported(self):
        clock = SimClock()
        clock.obs.enable_tracing(capacity=2)
        for i in range(4):
            with clock.obs.span(f"s{i}"):
                clock.advance_us(1, "test")
        trace = chrome_trace(clock.obs.tracer)
        assert trace["otherData"]["dropped_spans"] == 2
        # Evicted parents never invalidate the trace: orphans become roots.
        assert validate_trace(trace) == []


class TestValidator:
    def test_rejects_missing_required_key(self):
        trace = chrome_trace(sample_clock().obs.tracer)
        del trace["traceEvents"][2]["name"]
        assert any("missing required key 'name'" in e for e in validate_trace(trace))

    def test_rejects_child_escaping_parent(self):
        trace = chrome_trace(sample_clock().obs.tracer)
        spans = by_name(trace)
        spans["grand"]["dur"] = 10_000  # now ends far beyond childB
        assert any("escapes parent" in e for e in validate_trace(trace))

    def test_rejects_overlapping_siblings(self):
        trace = chrome_trace(sample_clock().obs.tracer)
        spans = by_name(trace)
        spans["childA"]["dur"] = 40  # now straddles childB's start
        errors = validate_trace(trace)
        assert any("overlap" in e or "escapes" in e for e in errors)

    def test_rejects_bad_phase(self):
        trace = chrome_trace(sample_clock().obs.tracer)
        trace["traceEvents"][2]["ph"] = "Z"
        assert any("not in" in e for e in validate_trace(trace))
