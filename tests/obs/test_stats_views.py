"""The migrated stats classes: thin views over the metrics registry.

``DriveStats``, ``CacheStats``, ``SchedulerStats``, and ``LadderStats``
keep their public attributes (old call sites read ``stats.hits`` and write
``stats.hits += 1``) but the numbers now live in per-component registries
that mirror into the clock-level registry -- per-instance counts stay
separate while ``clock.obs.stats()`` sees the machine-wide sums.
"""

import pytest

from repro import SimClock
from repro.disk import CachedDrive, DiskDrive, DiskImage, tiny_test_disk
from repro.disk.cache import CacheStats
from repro.disk.drive import DriveStats
from repro.disk.scheduler import SchedulerStats
from repro.fs import FileSystem, HintLadder
from repro.fs.hints import LadderStats


class TestDriveStats:
    def test_attribute_read_write_survives_migration(self):
        stats = DriveStats()
        stats.commands += 3
        assert stats.commands == 3
        assert stats.registry.counter("disk.drive.commands").value == 3

    def test_snapshot_lists_every_field(self):
        stats = DriveStats()
        assert set(stats.snapshot()) == set(DriveStats._FIELDS)

    def test_two_drives_on_one_clock_stay_separate_but_sum(self):
        clock = SimClock()
        image_a = DiskImage(tiny_test_disk())
        image_b = DiskImage(tiny_test_disk())
        drive_a = DiskDrive(image_a, clock=clock)
        drive_b = DiskDrive(image_b, clock=clock)
        FileSystem.format(drive_a)
        commands_a = drive_a.stats.commands
        assert commands_a > 0
        assert drive_b.stats.commands == 0
        FileSystem.format(drive_b)
        rollup = clock.obs.registry.counter("disk.drive.commands").value
        assert rollup == drive_a.stats.commands + drive_b.stats.commands


class TestCacheStats:
    def test_hit_rate_still_derived(self):
        stats = CacheStats()
        stats.hits += 3
        stats.misses += 1
        assert stats.hit_rate() == 0.75

    def test_snapshot_includes_hit_rate(self):
        stats = CacheStats()
        snap = stats.snapshot()
        assert set(snap) == set(CacheStats._FIELDS) | {"hit_rate"}

    def test_cached_drive_rolls_up_to_clock(self):
        drive = CachedDrive(DiskImage(tiny_test_disk()))
        FileSystem.format(drive)
        drive.flush()
        rollup = drive.clock.obs.registry
        assert rollup.counter("disk.cache.hits").value == drive.cache_stats.hits
        assert rollup.counter("disk.cache.flushes").value == drive.cache_stats.flushes
        # The histogram observes once per flush() call (its total is sectors
        # drained); the flushes counter ticks once per drained address, and
        # also on direct flush_address calls outside a drain.
        hist = rollup.get("disk.cache.drain_sectors")
        assert hist is not None and hist.count >= 1
        assert 0 < hist.total <= drive.cache_stats.flushes


class TestSchedulerStats:
    def test_max_depth_is_the_gauge_high_water(self):
        stats = SchedulerStats()
        stats.depth.set(2)
        stats.depth.set(5)
        stats.depth.set(0)
        assert stats.max_depth == 5
        assert stats.snapshot()["max_depth"] == 5

    def test_cached_drive_exposes_queue_metrics(self):
        drive = CachedDrive(DiskImage(tiny_test_disk()))
        FileSystem.format(drive)
        drive.flush()
        stats = drive.clock.obs.stats()
        assert stats["disk.sched.enqueued"] > 0
        assert stats["disk.sched.depth.high_water"] > 0
        assert stats["disk.sched.serviced"] > 0


class TestLadderStats:
    def test_successes_reads_back_as_dict(self):
        stats = LadderStats()
        stats.record("direct")
        stats.record("direct")
        stats.record("scavenge")
        assert stats.successes["direct"] == 2
        assert stats.successes["scavenge"] == 1
        assert stats.successes["known-page"] == 0

    def test_unknown_rung_rejected(self):
        with pytest.raises(KeyError):
            LadderStats().record("teleport")

    def test_fresh_ladders_start_at_zero_on_a_shared_clock(self):
        image = DiskImage(tiny_test_disk())
        fs = FileSystem.format(DiskDrive(image))
        fs.create_file("a.dat").write_data(b"x" * 2000)
        fs.sync()
        file = fs.open_file("a.dat")
        hint = file.page_name(1)

        first = HintLadder(fs)
        first.read_page("a.dat", hint)
        assert first.stats.successes["direct"] == 1

        second = HintLadder(fs)
        assert second.stats.successes["direct"] == 0  # per-instance isolation
        second.read_page("a.dat", hint)
        # ... while the clock-level registry rolls both up.
        rollup = fs.drive.clock.obs.registry
        assert rollup.counter("fs.ladder.rung.direct").value == 2
