"""Cross-shard trace stitching: one request, one causal trace.

A traced 4-shard cluster run exports one Chrome trace with a process
lane per simulated machine (router front plus each shard, with the
client stations as named tracks on the router lane).  Every span the
server layer stamps with a ``trace_id`` (``"<client>#<rid>"``) is bound
to its siblings on other lanes by flow events, so the viewer draws the
request's path client -> router -> shard -> client.  These tests pin
the stitching, the host-alias normalisation, and the schema validator's
new async/flow rules.
"""

from repro.obs import (
    disable_trace_all,
    enable_trace_all,
    stitch_trace,
    validate_trace,
)
from repro.server.loadgen import LoadGenerator, build_cluster


def traced_cluster(clients: int = 2, shards: int = 4):
    enable_trace_all()
    try:
        system = build_cluster(clients=clients, shards=shards, tiny=True)
        LoadGenerator(system, file_bytes=700, read_rounds=1).run()
    finally:
        disable_trace_all()
    tracers = [("router", system.clock.obs.tracer)]
    tracers += [(shard.host, shard.clock.obs.tracer)
                for shard in system.shards]
    return system, tracers


def stitched(tracers):
    return stitch_trace(tracers, strip_prefixes=("fileserver.",))


def flow_events(trace):
    return [e for e in trace["traceEvents"] if e.get("ph") in ("s", "t", "f")]


class TestStitchedCluster:
    def test_trace_is_schema_valid(self):
        _, tracers = traced_cluster()
        assert validate_trace(stitched(tracers)) == []

    def test_lanes_cover_client_router_and_shards(self):
        system, tracers = traced_cluster()
        trace = stitched(tracers)
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        # Router lane is pid 0; each shard gets its own process lane.
        assert {e["pid"] for e in spans} == set(range(1 + len(system.shards)))
        # Client stations are named tracks (tid >= 1) on the router lane.
        client_spans = [e for e in spans
                        if e["pid"] == 0 and e["name"].startswith("client.")]
        assert client_spans and all(e["tid"] >= 1 for e in client_spans)
        thread_names = {(e["pid"], e["tid"]): e["args"]["name"]
                        for e in trace["traceEvents"]
                        if e.get("ph") == "M" and e["name"] == "thread_name"}
        for event in client_spans:
            assert thread_names[(0, event["tid"])].startswith("client ")

    def test_requests_are_stitched_across_machines(self):
        _, tracers = traced_cluster()
        trace = stitched(tracers)
        flows = flow_events(trace)
        assert flows, "no flow events: nothing was stitched"
        by_id = {}
        for event in flows:
            by_id.setdefault(event["id"], []).append(event)
        crossing = 0
        for steps in by_id.values():
            # Each flow is a start, optional middles, and a binding finish.
            assert [e["ph"] for e in steps[:1]] == ["s"]
            assert steps[-1]["ph"] == "f" and steps[-1]["bp"] == "e"
            assert all(e["ph"] == "t" for e in steps[1:-1])
            assert len({e["ts"] for e in steps}) >= 1
            if len({e["pid"] for e in steps}) >= 2:
                crossing += 1
        # READs against a 4-shard cluster must hop client -> shard lanes.
        assert crossing > 0

    def test_host_aliases_fold_into_one_trace_id(self):
        """The shard sees the proxy host ``fileserver.<client>``; after
        stitching both sides carry the client's own trace id."""
        _, tracers = traced_cluster()
        trace = stitched(tracers)
        ids = {e["args"]["trace_id"] for e in trace["traceEvents"]
               if e.get("args", {}).get("trace_id")}
        assert ids
        assert not any(i.startswith("fileserver.") for i in ids)
        # ... and at least one request's spans appear on several lanes.
        lanes_per_id = {}
        for event in trace["traceEvents"]:
            trace_id = event.get("args", {}).get("trace_id")
            if trace_id:
                lanes_per_id.setdefault(trace_id, set()).add(event["pid"])
        assert max(len(lanes) for lanes in lanes_per_id.values()) >= 2

    def test_unstitched_trace_has_no_flows(self):
        from repro.obs import chrome_trace

        _, tracers = traced_cluster()
        assert flow_events(chrome_trace(tracers)) == []


class TestValidatorRejects:
    def base(self):
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_async_end_without_begin(self):
        trace = self.base()
        trace["traceEvents"] = [{"name": "q", "cat": "server", "ph": "e",
                                 "id": 1, "ts": 5, "pid": 0, "tid": 0,
                                 "args": {}}]
        assert any("without" in err for err in validate_trace(trace))

    def test_async_begin_without_end(self):
        trace = self.base()
        trace["traceEvents"] = [{"name": "q", "cat": "server", "ph": "b",
                                 "id": 1, "ts": 5, "pid": 0, "tid": 0,
                                 "args": {}}]
        assert validate_trace(trace) != []

    def test_flow_event_missing_id(self):
        trace = self.base()
        trace["traceEvents"] = [{"name": "r", "cat": "request", "ph": "s",
                                 "ts": 5, "pid": 0, "tid": 0}]
        assert any("id" in err for err in validate_trace(trace))
