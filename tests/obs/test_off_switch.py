"""The off-switch guarantee: tracing cannot change bytes or simulated time.

Spans only *read* ``clock.now_us`` -- they never advance it and never touch
the disk -- so the same workload run with tracing enabled and disabled must
produce byte-identical packs and land the clock on the exact same
microsecond.  These tests run the identical session twice and diff
everything: every sector's header, label, and value words, the final clock
position, and the per-category time tallies.
"""

from repro.disk import CachedDrive, DiskDrive, DiskImage, tiny_test_disk
from repro.fs import FileSystem, Scavenger
from repro.os import AltoOS


def pack_bytes(image: DiskImage):
    """Every sector of the pack, fully serialised."""
    return [
        (s.header.pack(), s.label.pack(), list(s.value))
        for s in image.sectors()
    ]


def assert_identical(run):
    """Run the session with tracing off and on; everything must match."""
    image_off, clock_off = run(trace=False)
    image_on, clock_on = run(trace=True)
    assert clock_on.now_us == clock_off.now_us
    assert clock_on.tallies() == clock_off.tallies()
    assert pack_bytes(image_on) == pack_bytes(image_off)


def fs_session(trace: bool, cached: bool):
    """Creates, rewrites, deletes, syncs, then scavenges a small pack."""
    image = DiskImage(tiny_test_disk(cylinders=12))
    drive = CachedDrive(image) if cached else DiskDrive(image)
    if trace:
        drive.clock.obs.enable_tracing()
    fs = FileSystem.format(drive)
    for i in range(6):
        fs.create_file(f"f{i}.dat").write_data(bytes([i]) * (300 * (i + 1)))
    fs.open_file("f3.dat").write_data(b"rewritten" * 50)
    fs.delete_file("f1.dat")
    assert fs.open_file("f2.dat").read_data() == bytes([2]) * 900
    fs.sync()
    fs.flush()
    Scavenger(DiskDrive(image, clock=drive.clock)).scavenge()
    return image, drive.clock


class TestFileSystemSession:
    def test_plain_drive(self):
        assert_identical(lambda trace: fs_session(trace, cached=False))

    def test_cached_drive(self):
        assert_identical(lambda trace: fs_session(trace, cached=True))


def repl_session(trace: bool):
    """A full REPL session through the Executive, ending in a scavenge."""
    image = DiskImage(tiny_test_disk(cylinders=12))
    drive = DiskDrive(image)
    if trace:
        drive.clock.obs.enable_tracing()
    os = AltoOS.format(drive)
    os.fs.create_file("ReadMe.txt").write_data(b"hello from the off-switch test\n")
    script = "\n".join([
        "ls",
        "write note.txt observability",
        "type note.txt",
        "copy ReadMe.txt Copy.txt",
        "free",
        "scavenge",
        "quit",
    ]) + "\n"
    output = os.run_executive(script)
    return image, drive.clock, output


class TestReplSession:
    def test_full_session_identical(self):
        image_off, clock_off, out_off = repl_session(trace=False)
        image_on, clock_on, out_on = repl_session(trace=True)
        assert out_on == out_off
        assert clock_on.now_us == clock_off.now_us
        assert clock_on.tallies() == clock_off.tallies()
        assert pack_bytes(image_on) == pack_bytes(image_off)

    def test_traced_run_actually_traced(self):
        """Guard against the vacuous pass: the traced run must record spans."""
        image, clock, _ = repl_session(trace=True)
        names = {e.name for e in clock.obs.tracer.spans()}
        assert "disk.transfer" in names
        assert "fs.scavenge" in names


def cluster_session(trace: bool):
    """A 4-shard cluster load run, every machine's clock and pack checked."""
    from repro.obs import disable_trace_all, enable_trace_all
    from repro.server.loadgen import LoadGenerator, build_cluster

    if trace:
        enable_trace_all()
    try:
        system = build_cluster(clients=3, shards=4, tiny=True)
        LoadGenerator(system, file_bytes=700, read_rounds=1).run()
    finally:
        if trace:
            disable_trace_all()
    return system


class TestClusterSession:
    def test_four_shard_cluster_identical(self):
        """Telemetry on or off, every shard pack's bytes and every
        machine's simulated microseconds are identical -- the PR 3
        invariant extended to the sharded cluster, where spans now cover
        client stations, the router, and each shard."""
        off = cluster_session(trace=False)
        on = cluster_session(trace=True)
        assert on.clock.now_us == off.clock.now_us
        assert on.clock.tallies() == off.clock.tallies()
        for shard_on, shard_off in zip(on.shards, off.shards):
            assert shard_on.clock.now_us == shard_off.clock.now_us
            assert shard_on.clock.tallies() == shard_off.clock.tallies()
            assert (pack_bytes(shard_on.fs.drive.image)
                    == pack_bytes(shard_off.fs.drive.image))

    def test_traced_cluster_actually_traced(self):
        """Guard against the vacuous pass: the traced cluster run must
        record the new request-telemetry spans on every lane."""
        on = cluster_session(trace=True)
        router_names = {e.name for e in on.clock.obs.tracer.events}
        assert "router.route" in router_names
        assert any(name.startswith("client.") for name in router_names)
        shard_names = set()
        for shard in on.shards:
            shard_names |= {e.name for e in shard.clock.obs.tracer.events}
        assert "server.request" in shard_names
        assert "server.queue" in shard_names


class TestMetricsAreFree:
    def test_reading_stats_advances_nothing(self):
        image = DiskImage(tiny_test_disk())
        drive = DiskDrive(image)
        fs = FileSystem.format(drive)
        before = drive.clock.now_us
        stats = drive.clock.obs.stats()
        snapshot = pack_bytes(image)
        assert drive.clock.now_us == before
        assert stats["disk.drive.commands"] > 0
        assert pack_bytes(image) == snapshot
