"""The off-switch guarantee: tracing cannot change bytes or simulated time.

Spans only *read* ``clock.now_us`` -- they never advance it and never touch
the disk -- so the same workload run with tracing enabled and disabled must
produce byte-identical packs and land the clock on the exact same
microsecond.  These tests run the identical session twice and diff
everything: every sector's header, label, and value words, the final clock
position, and the per-category time tallies.
"""

from repro.disk import CachedDrive, DiskDrive, DiskImage, tiny_test_disk
from repro.fs import FileSystem, Scavenger
from repro.os import AltoOS


def pack_bytes(image: DiskImage):
    """Every sector of the pack, fully serialised."""
    return [
        (s.header.pack(), s.label.pack(), list(s.value))
        for s in image.sectors()
    ]


def assert_identical(run):
    """Run the session with tracing off and on; everything must match."""
    image_off, clock_off = run(trace=False)
    image_on, clock_on = run(trace=True)
    assert clock_on.now_us == clock_off.now_us
    assert clock_on.tallies() == clock_off.tallies()
    assert pack_bytes(image_on) == pack_bytes(image_off)


def fs_session(trace: bool, cached: bool):
    """Creates, rewrites, deletes, syncs, then scavenges a small pack."""
    image = DiskImage(tiny_test_disk(cylinders=12))
    drive = CachedDrive(image) if cached else DiskDrive(image)
    if trace:
        drive.clock.obs.enable_tracing()
    fs = FileSystem.format(drive)
    for i in range(6):
        fs.create_file(f"f{i}.dat").write_data(bytes([i]) * (300 * (i + 1)))
    fs.open_file("f3.dat").write_data(b"rewritten" * 50)
    fs.delete_file("f1.dat")
    assert fs.open_file("f2.dat").read_data() == bytes([2]) * 900
    fs.sync()
    fs.flush()
    Scavenger(DiskDrive(image, clock=drive.clock)).scavenge()
    return image, drive.clock


class TestFileSystemSession:
    def test_plain_drive(self):
        assert_identical(lambda trace: fs_session(trace, cached=False))

    def test_cached_drive(self):
        assert_identical(lambda trace: fs_session(trace, cached=True))


def repl_session(trace: bool):
    """A full REPL session through the Executive, ending in a scavenge."""
    image = DiskImage(tiny_test_disk(cylinders=12))
    drive = DiskDrive(image)
    if trace:
        drive.clock.obs.enable_tracing()
    os = AltoOS.format(drive)
    os.fs.create_file("ReadMe.txt").write_data(b"hello from the off-switch test\n")
    script = "\n".join([
        "ls",
        "write note.txt observability",
        "type note.txt",
        "copy ReadMe.txt Copy.txt",
        "free",
        "scavenge",
        "quit",
    ]) + "\n"
    output = os.run_executive(script)
    return image, drive.clock, output


class TestReplSession:
    def test_full_session_identical(self):
        image_off, clock_off, out_off = repl_session(trace=False)
        image_on, clock_on, out_on = repl_session(trace=True)
        assert out_on == out_off
        assert clock_on.now_us == clock_off.now_us
        assert clock_on.tallies() == clock_off.tallies()
        assert pack_bytes(image_on) == pack_bytes(image_off)

    def test_traced_run_actually_traced(self):
        """Guard against the vacuous pass: the traced run must record spans."""
        image, clock, _ = repl_session(trace=True)
        names = {e.name for e in clock.obs.tracer.spans()}
        assert "disk.transfer" in names
        assert "fs.scavenge" in names


class TestMetricsAreFree:
    def test_reading_stats_advances_nothing(self):
        image = DiskImage(tiny_test_disk())
        drive = DiskDrive(image)
        fs = FileSystem.format(drive)
        before = drive.clock.now_us
        stats = drive.clock.obs.stats()
        snapshot = pack_bytes(image)
        assert drive.clock.now_us == before
        assert stats["disk.drive.commands"] > 0
        assert pack_bytes(image) == snapshot
