"""The metrics registry: counters, gauges, histograms, mirroring, merging."""

import pytest

from repro.obs import (
    SUB_BUCKET_BITS,
    CounterAttr,
    MetricsRegistry,
    bucket_bounds,
    bucket_index,
    snapshot_quantiles,
)
from repro.obs.runtime import merge_stats


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_create_or_get_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("c")
        with pytest.raises(TypeError):
            registry.gauge("c")


class TestGauge:
    def test_tracks_high_water(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.set(7)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.high_water == 7


class TestHistogram:
    def test_count_total_min_max_mean(self):
        hist = MetricsRegistry().histogram("h")
        for value in (4, 1, 9):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 14
        assert hist.min == 1
        assert hist.max == 9
        assert hist.mean == pytest.approx(14 / 3)

    def test_log_buckets_exact_below_the_sub_bucket_floor(self):
        hist = MetricsRegistry().histogram("h")
        for value in (0, 1, 2, 3, 4):
            hist.observe(value)
        # Values below 2**SUB_BUCKET_BITS land in exact unit buckets.
        assert hist.buckets == {0: 1, 1: 1, 2: 1, 3: 1, 4: 1}

    def test_log_buckets_split_each_octave(self):
        hist = MetricsRegistry().histogram("h")
        for value in (16, 17, 18, 31, 32):
            hist.observe(value)
        # 16..31 is one octave split into 8 two-wide buckets (16..23);
        # 32 starts the next octave at bucket 24.
        assert hist.buckets == {16: 2, 17: 1, 23: 1, 24: 1}

    def test_bucket_bounds_invert_bucket_index(self):
        for value in (0, 1, 7, 8, 9, 255, 256, 1_000_000, 2**40 + 3):
            lower, upper = bucket_bounds(bucket_index(value))
            assert lower <= value <= upper
            # Bounded relative width: the quantile error guarantee.
            assert upper - lower <= max(0, lower >> SUB_BUCKET_BITS)

    def test_quantile_and_percentiles(self):
        hist = MetricsRegistry().histogram("h")
        for value in range(1, 101):
            hist.observe(value)
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 100.0
        p = hist.percentiles()
        assert set(p) == {"p50", "p90", "p99", "p99.9"}
        assert 50 <= p["p50"] <= 50 * 1.125
        assert 99 <= p["p99"] <= 99 * 1.125

    def test_quantile_of_empty_histogram_is_zero(self):
        assert MetricsRegistry().histogram("h").quantile(0.5) == 0.0


class TestMirroring:
    def test_counter_updates_roll_up_to_parent(self):
        parent = MetricsRegistry()
        child_a = MetricsRegistry(parent=parent)
        child_b = MetricsRegistry(parent=parent)
        child_a.counter("n").inc(3)
        child_b.counter("n").inc(4)
        assert child_a.counter("n").value == 3  # per-instance values survive
        assert child_b.counter("n").value == 4
        assert parent.counter("n").value == 7  # ... and sum at the parent

    def test_gauge_and_histogram_mirror(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        child.gauge("g").set(5)
        child.histogram("h").observe(8)
        assert parent.gauge("g").high_water == 5
        assert parent.histogram("h").count == 1

    def test_grandparent_chain(self):
        top = MetricsRegistry()
        mid = MetricsRegistry(parent=top)
        leaf = MetricsRegistry(parent=mid)
        leaf.counter("c").inc()
        assert mid.counter("c").value == 1
        assert top.counter("c").value == 1


class _Stats:
    hits = CounterAttr("test.hits")

    def __init__(self, parent=None):
        self.registry = MetricsRegistry(parent=parent)


class TestCounterAttr:
    def test_read_write_and_augmented_assignment(self):
        stats = _Stats()
        assert stats.hits == 0
        stats.hits += 1
        stats.hits += 2
        assert stats.hits == 3
        assert stats.registry.counter("test.hits").value == 3

    def test_assignment_mirrors_as_delta(self):
        parent = MetricsRegistry()
        a, b = _Stats(parent), _Stats(parent)
        a.hits += 5
        b.hits += 2
        b.hits = 10  # delta of +8, not an absolute overwrite at the parent
        assert parent.counter("test.hits").value == 15


class TestSnapshot:
    def test_flattens_every_metric_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(4)
        registry.gauge("g").set(1)
        registry.histogram("h").observe(6)
        snap = registry.snapshot()
        assert snap == {
            "c": 2,
            "g": 1,
            "g.high_water": 4,
            "h.count": 1,
            "h.total": 6,
            "h.min": 6,
            "h.max": 6,
            "h.bucket.6": 1,
        }

    def test_empty_histogram_omits_min_max(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        snap = registry.snapshot()
        assert "h.min" not in snap and "h.max" not in snap


class TestMergeStats:
    def test_sum_min_max_high_water_rules(self):
        merged = merge_stats([
            {"c": 2, "h.min": 5, "h.max": 9, "g.high_water": 4, "clock.now_us": 10},
            {"c": 3, "h.min": 1, "h.max": 7, "g.high_water": 6, "clock.now_us": 8},
        ])
        assert merged == {
            "c": 5,
            "h.min": 1,
            "h.max": 9,
            "g.high_water": 6,
            "clock.now_us": 10,
        }

    def test_disjoint_keys_pass_through(self):
        assert merge_stats([{"a": 1}, {"b": 2}]) == {"a": 1, "b": 2}
