"""Unit and property tests for the zone allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ZoneCorrupt, ZoneExhausted
from repro.memory import Memory, Zone, allocate_vector


@pytest.fixture
def zone():
    memory = Memory(0x1000)
    return Zone(memory.region(0x100, 0x800), "test")


class TestAllocateFree:
    def test_basic_allocate(self, zone):
        a = zone.allocate(10)
        b = zone.allocate(10)
        assert a != b
        zone.region.memory.write(a, 42)
        assert zone.region.memory.read(a) == 42

    def test_block_size(self, zone):
        a = zone.allocate(10)
        assert zone.block_size(a) >= 10

    def test_free_returns_space(self, zone):
        before = zone.free_words()
        a = zone.allocate(100)
        assert zone.free_words() < before
        zone.free(a)
        assert zone.free_words() == before

    def test_exhaustion(self, zone):
        with pytest.raises(ZoneExhausted):
            zone.allocate(0x900)

    def test_exhaustion_by_fragments(self, zone):
        blocks = []
        while True:
            try:
                blocks.append(zone.allocate(64))
            except ZoneExhausted:
                break
        assert zone.largest_free() < 64
        for block in blocks:
            zone.free(block)
        assert zone.largest_free() >= 0x7F0

    def test_zero_allocation_rejected(self, zone):
        with pytest.raises(ValueError):
            zone.allocate(0)

    def test_first_fit_reuses_hole(self, zone):
        a = zone.allocate(50)
        b = zone.allocate(50)
        zone.free(a)
        c = zone.allocate(40)  # fits in a's hole
        assert c == a

    def test_coalescing(self, zone):
        a, b, c = zone.allocate(20), zone.allocate(20), zone.allocate(20)
        zone.free(a)
        zone.free(c)
        zone.free(b)  # middle free must merge all three
        zone.check()
        blocks = list(zone.free_blocks())
        assert len(blocks) == 1


class TestCorruptionDetection:
    def test_double_free(self, zone):
        a = zone.allocate(10)
        zone.free(a)
        with pytest.raises(ZoneCorrupt):
            zone.free(a)

    def test_foreign_address(self, zone):
        with pytest.raises(ZoneCorrupt):
            zone.free(5)  # outside the region

    def test_garbage_header(self, zone):
        a = zone.allocate(10)
        zone.region.memory.write(a - 1, 0)  # clobber the size header
        with pytest.raises(ZoneCorrupt):
            zone.free(a)

    def test_check_detects_cycle(self, zone):
        a = zone.allocate(10)
        zone.free(a)
        # Point the free block's link at itself.
        zone.region.memory.write(a, a - 1)
        with pytest.raises(ZoneCorrupt):
            zone.check()


class TestConstruction:
    def test_too_small(self):
        memory = Memory(64)
        with pytest.raises(ValueError):
            Zone(memory.region(0, 1))

    def test_sentinel_collision(self):
        memory = Memory(0x10000)
        with pytest.raises(ValueError):
            Zone(memory.region(0xFF00, 0x100))  # region.end == 0x10000 > sentinel

    def test_allocate_vector(self, zone):
        address = allocate_vector(zone, [7, 8, 9])
        assert zone.region.memory.read_block(address, 3) == [7, 8, 9]


class TestZoneProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["alloc", "free"]),
                              st.integers(min_value=1, max_value=120)),
                    max_size=60))
    def test_invariants_under_random_workload(self, ops):
        """Whatever the alloc/free pattern, the free list stays sound and
        freeing everything returns every word."""
        memory = Memory(0x1000)
        zone = Zone(memory.region(0x100, 0x600), "prop")
        total = zone.free_words()
        live = []
        for op, size in ops:
            if op == "alloc":
                try:
                    live.append(zone.allocate(size))
                except ZoneExhausted:
                    pass
            elif live:
                zone.free(live.pop(size % len(live)))
            zone.check()
        for address in live:
            zone.free(address)
        zone.check()
        assert zone.free_words() == total
        assert len(list(zone.free_blocks())) == 1
