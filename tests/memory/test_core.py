"""Unit tests for the 64k-word memory and regions."""

import pytest

from repro.errors import MemoryFault
from repro.memory import MEMORY_WORDS, Memory, Region


class TestMemory:
    def test_default_size_is_64k(self):
        assert Memory().size == MEMORY_WORDS == 0x10000

    def test_read_write(self):
        memory = Memory(256)
        memory[10] = 0xBEEF
        assert memory[10] == 0xBEEF
        assert memory[11] == 0

    def test_fill_word(self):
        memory = Memory(16, fill=0xAAAA)
        assert memory[0] == 0xAAAA

    def test_bounds(self):
        memory = Memory(256)
        with pytest.raises(MemoryFault):
            memory.read(256)
        with pytest.raises(MemoryFault):
            memory.write(-1, 0)
        with pytest.raises(MemoryFault):
            memory.read("x")

    def test_word_range_enforced(self):
        memory = Memory(256)
        with pytest.raises(ValueError):
            memory.write(0, 0x10000)

    def test_block_ops(self):
        memory = Memory(256)
        memory.write_block(5, [1, 2, 3])
        assert memory.read_block(5, 3) == [1, 2, 3]
        memory.fill(5, 3, 9)
        assert memory.read_block(4, 5) == [0, 9, 9, 9, 0]

    def test_block_bounds(self):
        memory = Memory(256)
        with pytest.raises(MemoryFault):
            memory.write_block(254, [1, 2, 3])
        with pytest.raises(MemoryFault):
            memory.read_block(0, 257)
        with pytest.raises(ValueError):
            memory.read_block(0, -1)

    def test_dump_and_load(self):
        memory = Memory(64)
        memory[3] = 7
        dumped = memory.dump()
        other = Memory(64)
        other.load(dumped)
        assert other[3] == 7

    def test_load_size_mismatch(self):
        with pytest.raises(MemoryFault):
            Memory(64).load([0] * 63)

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            Memory(0)
        with pytest.raises(ValueError):
            Memory(MEMORY_WORDS + 1)


class TestRegion:
    def test_window_semantics(self):
        memory = Memory(256)
        region = memory.region(10, 20)
        region.write(0, 5)
        assert memory[10] == 5
        assert region.read(0) == 5
        assert region.end == 30 and len(region) == 20

    def test_contains(self):
        region = Memory(256).region(10, 20)
        assert 10 in region and 29 in region
        assert 9 not in region and 30 not in region

    def test_offset_bounds(self):
        region = Memory(256).region(10, 20)
        with pytest.raises(MemoryFault):
            region.read(20)
        with pytest.raises(MemoryFault):
            region.write_block(18, [1, 2, 3])

    def test_subregion(self):
        memory = Memory(256)
        region = memory.region(10, 20)
        sub = region.subregion(5, 5)
        sub.write(0, 77)
        assert memory[15] == 77
        with pytest.raises(MemoryFault):
            region.subregion(18, 5)

    def test_fill(self):
        memory = Memory(64)
        region = memory.region(8, 4)
        region.fill(3)
        assert memory.read_block(7, 6) == [0, 3, 3, 3, 3, 0]

    def test_region_must_fit(self):
        memory = Memory(64)
        with pytest.raises(MemoryFault):
            memory.region(60, 10)
        with pytest.raises(ValueError):
            Region(memory, 0, -1)
