"""Documentation consistency: every intra-repo Markdown link resolves,
and the link checker itself catches what it claims to catch."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_md_links", REPO_ROOT / "tools" / "check_md_links.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = load_checker()


def test_repository_markdown_links_resolve():
    problems = checker.check_tree(REPO_ROOT)
    assert problems == [], "\n".join(problems)


def test_docs_index_files_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "OBSERVABILITY.md", "ARCHITECTURE.md", "SERVER.md"):
        assert (REPO_ROOT / name).is_file(), f"{name} missing"


# -- the checker's own behavior ----------------------------------------------


def test_broken_file_link_is_reported(tmp_path):
    (tmp_path / "a.md").write_text("see [other](missing.md)\n")
    problems = checker.check_tree(tmp_path)
    assert len(problems) == 1 and "missing.md" in problems[0]


def test_valid_relative_link_passes(tmp_path):
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "b.md").write_text("# Target Heading\n")
    (tmp_path / "a.md").write_text("see [b](sub/b.md#target-heading)\n")
    assert checker.check_tree(tmp_path) == []


def test_missing_anchor_is_reported(tmp_path):
    (tmp_path / "b.md").write_text("# Only Heading\n")
    (tmp_path / "a.md").write_text("see [b](b.md#no-such-anchor)\n")
    problems = checker.check_tree(tmp_path)
    assert len(problems) == 1 and "no-such-anchor" in problems[0]


def test_same_file_anchor(tmp_path):
    (tmp_path / "a.md").write_text("# Intro\n\njump [down](#details)\n\n## Details\n")
    assert checker.check_tree(tmp_path) == []


def test_external_links_are_skipped(tmp_path):
    (tmp_path / "a.md").write_text(
        "[web](https://example.com/x) [mail](mailto:a@b.c)\n")
    assert checker.check_tree(tmp_path) == []


def test_links_inside_code_fences_are_ignored(tmp_path):
    (tmp_path / "a.md").write_text(
        "```\n[example](not-a-real-file.md)\n```\n")
    assert checker.check_tree(tmp_path) == []


def test_duplicate_headings_get_numbered_anchors(tmp_path):
    (tmp_path / "b.md").write_text("# Setup\n\n# Setup\n")
    (tmp_path / "a.md").write_text("[first](b.md#setup) [second](b.md#setup-1)\n")
    assert checker.check_tree(tmp_path) == []


def test_heading_slugs_strip_punctuation_and_code(tmp_path):
    (tmp_path / "b.md").write_text("## The `repro.server` package: an overview!\n")
    (tmp_path / "a.md").write_text(
        "[overview](b.md#the-reproserver-package-an-overview)\n")
    assert checker.check_tree(tmp_path) == []
