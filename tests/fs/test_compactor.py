"""Compacting-scavenger tests: in-place permutation to consecutive runs."""

import random

import pytest

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.fs import Compactor, FileSystem
from repro.fs.descriptor import BOOT_PAGE_ADDRESS, DESCRIPTOR_LEADER_ADDRESS, DESCRIPTOR_NAME


@pytest.fixture
def scattered(fs, rng):
    """A file system aged into fragmentation, with known payloads."""
    payloads = {}
    for i in range(16):
        name = f"age{i:02}"
        data = bytes([i]) * rng.randrange(600, 2200)
        fs.create_file(name).write_data(data)
        payloads[name] = data
    for i in range(0, 16, 2):
        fs.delete_file(f"age{i:02}")
        del payloads[f"age{i:02}"]
    for i in (20, 21, 22):
        name = f"age{i:02}"
        data = bytes([i]) * rng.randrange(2000, 4000)
        fs.create_file(name).write_data(data)
        payloads[name] = data
    fs.sync()
    fs.payloads = payloads
    return fs


def consecutive(file) -> bool:
    addresses = [file.page_name(pn).address for pn in range(file.page_count())]
    return all(addresses[i + 1] == addresses[i] + 1 for i in range(len(addresses) - 1))


class TestCompaction:
    def test_every_file_becomes_consecutive(self, scattered, image):
        report = Compactor(scattered.drive).compact()
        fs = FileSystem.mount(DiskDrive(image))
        for name in scattered.payloads:
            assert consecutive(fs.open_file(name)), f"{name} not consecutive"
        assert report.pages_moved > 0

    def test_data_survives(self, scattered, image):
        Compactor(scattered.drive).compact()
        fs = FileSystem.mount(DiskDrive(image))
        for name, data in scattered.payloads.items():
            assert fs.open_file(name).read_data() == data

    def test_pinned_pages_stay(self, scattered, image):
        Compactor(scattered.drive).compact()
        fs = FileSystem.mount(DiskDrive(image))
        assert fs.open_file(DESCRIPTOR_NAME).leader_address() == DESCRIPTOR_LEADER_ADDRESS

    def test_consecutive_flags_set(self, scattered, image):
        Compactor(scattered.drive).compact()
        fs = FileSystem.mount(DiskDrive(image))
        for name in scattered.payloads:
            assert fs.open_file(name).leader.maybe_consecutive

    def test_idempotent(self, scattered, image):
        Compactor(scattered.drive).compact()
        second = Compactor(DiskDrive(image)).compact()
        assert second.pages_moved == 0
        assert second.files_already_consecutive > 0

    def test_post_scavenge_fixed_directory_hints(self, scattered, image):
        report = Compactor(scattered.drive).compact()
        # Directory hints were refreshed: opening by entry works first try.
        fs = FileSystem.mount(DiskDrive(image))
        for name in scattered.payloads:
            entry = fs.root.require(name)
            file = fs.open_entry(entry)  # would raise HintFailed on stale hint
            assert file.name == name

    def test_map_consistent_after_compaction(self, scattered, image):
        Compactor(scattered.drive).compact()
        fs = FileSystem.mount(DiskDrive(image))
        # The map equals the labels: claim every "free" page successfully.
        assert fs.allocator.count_free() == image.count_free() - 1  # boot reserve

    def test_sequential_read_speedup(self, fs, image, rng):
        """Section 3.5: "increases the speed ... by an order of magnitude"
        on badly scattered files.  Scatter a file's pages across the disk
        (fixing links via a scavenge), then compare sequential reads."""
        from repro.disk import FaultInjector
        from repro.fs.scavenger import Scavenger

        name = "seq.dat"
        payload = bytes(range(256)) * 20  # 5120 bytes, 11 pages
        fs.create_file(name).write_data(payload)
        fs.sync()
        # Scatter: swap each of the file's sectors with a random distant
        # free sector, then scavenge to repair all links to the new homes.
        injector = FaultInjector(image, seed=3)
        file = fs.open_file(name)
        addresses = [file.page_name(pn).address for pn in range(file.page_count())]
        free = [s.header.address for s in image.sectors() if s.label.is_free]
        rng.shuffle(free)
        for address in addresses:
            injector.swap_sectors(address, free.pop())
        clock = fs.drive.clock
        Scavenger(DiskDrive(image, clock=clock)).scavenge()

        fs1 = FileSystem.mount(DiskDrive(image, clock=clock))
        t0 = clock.now_s
        assert fs1.open_file(name).read_data() == payload
        scattered_time = clock.now_s - t0

        Compactor(DiskDrive(image, clock=clock)).compact()
        fs2 = FileSystem.mount(DiskDrive(image, clock=clock))
        t0 = clock.now_s
        assert fs2.open_file(name).read_data() == payload
        compact_time = clock.now_s - t0
        assert scattered_time / compact_time > 3.0

    def test_empty_disk_compaction(self, fs, image):
        report = Compactor(fs.drive).compact()
        FileSystem.mount(DiskDrive(image))
        assert report.pages_moved == 0 or report.pages_moved > 0  # just completes

    def test_crash_mid_compaction_is_recoverable(self, scattered, image):
        """Kill the machine between moves; the ordinary scavenger resolves
        the duplicate absolute names and no user data is lost."""
        from repro.fs.scavenger import Scavenger

        # Snapshot mid-state by doing the plan manually: copy one page to its
        # target without freeing the source (exactly the crash window).
        source = next(s for s in image.sectors() if s.label.in_use and s.label.page_number > 1)
        free = next(s for s in image.sectors() if s.label.is_free)
        free.label = source.label
        free.value = list(source.value)
        report = Scavenger(DiskDrive(image)).scavenge()
        assert report.duplicate_pages_freed == 1
        fs = FileSystem.mount(DiskDrive(image))
        for name, data in scattered.payloads.items():
            assert fs.open_file(name).read_data() == data
