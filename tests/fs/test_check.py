"""The recovery-invariant checker itself (repro.fs.check).

The crash sweeps in tests/integration lean entirely on this module, so its
own primitives -- prefix consistency, file snapshots, the per-crash check,
and sweep determinism -- get pinned here first.
"""

import pytest

from repro.fs import (
    Change,
    check_recovery,
    prefix_consistent,
    snapshot_files,
)
from repro.fs.check import SYSTEM_NAMES
from repro.words import PAGE_DATA_BYTES


PAGE = PAGE_DATA_BYTES  # 512


def pages(*fills_and_sizes):
    """Bytes built page-by-page: pages((b"a", 512), (b"b", 100)) etc."""
    return b"".join(fill * size for fill, size in fills_and_sizes)


class TestPrefixConsistent:
    def test_exact_matches(self):
        old, new = b"old contents", b"new contents, longer"
        assert prefix_consistent(old, old, new)
        assert prefix_consistent(new, old, new)
        assert prefix_consistent(b"", b"", new)

    def test_chunkwise_mix_of_old_and_new(self):
        old = pages((b"o", PAGE), (b"o", PAGE), (b"o", 100))
        new = pages((b"n", PAGE), (b"n", PAGE), (b"n", 300))
        # First page already new, rest still old: a legitimate crash state.
        assert prefix_consistent(new[:PAGE] + old[PAGE:], old, new)
        # Old first page, new tail: also reachable (pages land in any order
        # the file code issues them).
        assert prefix_consistent(old[:PAGE] + new[PAGE:], old, new)

    def test_zero_page_is_grown_but_unfilled(self):
        old = b""
        new = pages((b"n", PAGE), (b"n", 200))
        assert prefix_consistent(b"\x00" * PAGE + new[PAGE:], old, new)

    def test_garbage_chunk_rejected(self):
        old = pages((b"o", PAGE * 2))
        new = pages((b"n", PAGE * 2))
        assert not prefix_consistent(b"x" * PAGE + old[PAGE:], old, new)

    def test_overlong_rejected(self):
        old = b"o" * 100
        new = b"n" * 200
        too_long = new + b"\x00" * (PAGE + 1)
        assert not prefix_consistent(too_long, old, new)

    def test_none_means_absent(self):
        new = b"created from nothing"
        assert prefix_consistent(new, None, new)
        assert prefix_consistent(b"", None, new)
        # Deletion in flight: only the old contents are legitimate.
        old = b"being deleted"
        assert prefix_consistent(old, old, None)
        assert not prefix_consistent(b"something else!", old, None)


class TestSnapshotFiles:
    def test_snapshot_skips_system_names_and_directories(self, populated_fs):
        snap = snapshot_files(populated_fs)
        for system in SYSTEM_NAMES:
            assert system not in snap
        assert "Sub" not in snap  # directories are not file contents
        for name, payload in populated_fs.payloads.items():
            if name == "nested.txt":
                continue  # lives inside Sub, not at root
            assert snap[name] == payload


class TestCheckRecovery:
    def test_clean_pack_passes(self, populated_fs):
        before = snapshot_files(populated_fs)
        report = check_recovery(populated_fs.drive.image, before)
        assert report.ok, report.problems
        assert report.files_verified == len(before)
        assert report.files_in_flight == 0

    def test_detects_untouched_file_changed(self, populated_fs):
        before = snapshot_files(populated_fs)
        populated_fs.open_file("file00.dat").write_data(b"sneaky overwrite")
        populated_fs.sync()
        report = check_recovery(populated_fs.drive.image, before)
        assert not report.ok
        assert any("contents changed" in p for p in report.problems)

    def test_detects_untouched_file_lost(self, populated_fs):
        before = snapshot_files(populated_fs)
        populated_fs.delete_file("file01.dat")
        populated_fs.sync()
        report = check_recovery(populated_fs.drive.image, before)
        assert not report.ok
        assert any("unreachable" in p for p in report.problems)

    def test_in_flight_change_tolerated(self, populated_fs):
        before = snapshot_files(populated_fs)
        old = before["file02.dat"]
        populated_fs.open_file("file02.dat").write_data(b"mid-rewrite!")
        populated_fs.sync()
        changes = {"file02.dat": Change(before=old, after=b"mid-rewrite!")}
        report = check_recovery(populated_fs.drive.image, before, changes)
        assert report.ok, report.problems
        assert report.files_in_flight == 1

    def test_rename_found_under_either_name(self, populated_fs):
        before = snapshot_files(populated_fs)
        old = before["file04.dat"]
        populated_fs.rename_file("file04.dat", "moved.dat")
        populated_fs.sync()
        changes = {
            "file04.dat": Change(before=old, after=old, renamed_to="moved.dat")
        }
        report = check_recovery(populated_fs.drive.image, before, changes)
        assert report.ok, report.problems


class TestSweepDeterminism:
    def test_small_sweep_is_deterministic(self, crash_sweeper):
        points = [5, 20, 35]
        first = crash_sweeper(points=points)
        second = crash_sweeper(points=points)
        assert first.total_writes == second.total_writes
        assert [r.crash_reason for r in first.reports] == [
            r.crash_reason for r in second.reports
        ]
        assert [r.problems for r in first.reports] == [
            r.problems for r in second.reports
        ]
        assert first.ok and second.ok

    def test_out_of_range_point_rejected(self, crash_sweeper):
        with pytest.raises(ValueError):
            crash_sweeper(points=[10_000])
