"""Unit tests for the leader page layout."""

import pytest
from hypothesis import given, strategies as st

from repro.disk.geometry import NIL
from repro.errors import FileFormatError
from repro.fs.leader import LeaderPage, MAX_NAME_LENGTH, check_name


class TestPackUnpack:
    def test_round_trip(self):
        leader = LeaderPage(
            name="memo.txt",
            created=1000,
            written=2000,
            read=3000,
            last_page_number=7,
            last_page_address=42,
            maybe_consecutive=True,
        )
        assert LeaderPage.unpack(leader.pack()) == leader

    def test_packs_to_exactly_one_page(self):
        assert len(LeaderPage(name="x").pack()) == 256

    def test_dates_are_32_bit(self):
        leader = LeaderPage(name="x", created=0xFFFF_FFFF)
        assert LeaderPage.unpack(leader.pack()).created == 0xFFFF_FFFF

    def test_wrong_size_rejected(self):
        with pytest.raises(FileFormatError):
            LeaderPage.unpack([0] * 10)

    def test_empty_name_rejected(self):
        with pytest.raises(FileFormatError):
            LeaderPage(name="")
        with pytest.raises(FileFormatError):
            LeaderPage.unpack([0] * 256)

    def test_corrupt_name_rejected(self):
        words = LeaderPage(name="ok").pack()
        words[6] = 0xFF00  # length byte 255, but no bytes follow in field
        with pytest.raises(FileFormatError):
            LeaderPage.unpack(words)

    @given(st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                   min_size=1, max_size=MAX_NAME_LENGTH))
    def test_any_printable_name_round_trips(self, name):
        assert LeaderPage.unpack(LeaderPage(name=name).pack()).name == name


class TestNames:
    def test_length_limit(self):
        check_name("x" * MAX_NAME_LENGTH)
        with pytest.raises(FileFormatError):
            check_name("x" * (MAX_NAME_LENGTH + 1))

    def test_ascii_only(self):
        with pytest.raises(FileFormatError):
            check_name("café")


class TestFunctionalUpdates:
    def test_touched(self):
        leader = LeaderPage(name="x", written=1, read=2)
        assert leader.touched(written=10).written == 10
        assert leader.touched(read=20).read == 20
        assert leader.touched().written == 1  # no-op copy

    def test_with_last_page(self):
        leader = LeaderPage(name="x").with_last_page(5, 99)
        assert (leader.last_page_number, leader.last_page_address) == (5, 99)

    def test_with_consecutive(self):
        assert LeaderPage(name="x").with_consecutive(True).maybe_consecutive

    def test_renamed(self):
        assert LeaderPage(name="x").renamed("y").name == "y"
        with pytest.raises(FileFormatError):
            LeaderPage(name="x").renamed("")

    def test_updates_do_not_mutate(self):
        leader = LeaderPage(name="x")
        leader.with_last_page(1, 2)
        assert leader.last_page_address == NIL
