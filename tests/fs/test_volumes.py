"""Tests for dual-drive operation and cross-pack utilities."""

import pytest

from repro.disk import DiskDrive, DiskImage, diablo44, tiny_test_disk
from repro.errors import DirectoryError
from repro.fs import FileSystem
from repro.fs.volumes import DrivePair, copy_all_files, copy_file, duplicate_pack


@pytest.fixture
def pair():
    images = DiskImage(tiny_test_disk(cylinders=20)), DiskImage(tiny_test_disk(cylinders=20))
    drive_pair = DrivePair(*images)
    fs0, fs1 = drive_pair.format_both()
    return images, drive_pair, fs0, fs1


class TestDrivePair:
    def test_two_packs_one_clock(self, pair):
        images, drive_pair, fs0, fs1 = pair
        before = drive_pair.clock.now_s
        fs0.create_file("on0.dat").write_data(b"zero")
        mid = drive_pair.clock.now_s
        fs1.create_file("on1.dat").write_data(b"one")
        assert before < mid < drive_pair.clock.now_s

    def test_packs_are_independent(self, pair):
        images, drive_pair, fs0, fs1 = pair
        fs0.create_file("only-here.dat")
        assert "only-here.dat" not in fs1.list_files()

    def test_remount_both(self, pair):
        images, drive_pair, fs0, fs1 = pair
        fs0.create_file("a").write_data(b"a")
        fs1.create_file("b").write_data(b"b")
        fs0.sync()
        fs1.sync()
        again = DrivePair(*images)
        m0, m1 = again.mount_both()
        assert m0.open_file("a").read_data() == b"a"
        assert m1.open_file("b").read_data() == b"b"

    def test_mixed_shapes(self):
        """A standard pack and a big non-standard disk side by side, both
        through the standard software (section 5.2's file-server setup)."""
        small = DiskImage(tiny_test_disk(cylinders=20))
        big = DiskImage(diablo44())
        drive_pair = DrivePair(small, big)
        fs_small, fs_big = drive_pair.format_both()
        fs_big.create_file("huge.dat").write_data(b"x" * 5000)
        assert fs_big.open_file("huge.dat").byte_length == 5000
        assert fs_small.free_pages() < small.shape.total_sectors()


class TestCopyFile:
    def test_copies_bytes(self, pair):
        images, drive_pair, fs0, fs1 = pair
        fs0.create_file("doc.txt").write_data(b"portable data" * 100)
        copied = copy_file(fs0, fs1, "doc.txt")
        assert copied == 1300
        assert fs1.open_file("doc.txt").read_data() == b"portable data" * 100

    def test_copies_are_independent(self, pair):
        """File identity is pack-relative (the sector header carries the
        pack id): the copy is a different file that evolves separately."""
        images, drive_pair, fs0, fs1 = pair
        fs0.create_file("doc.txt").write_data(b"d")
        copy_file(fs0, fs1, "doc.txt")
        fs1.open_file("doc.txt").write_data(b"changed on pack 1")
        assert fs0.open_file("doc.txt").read_data() == b"d"

    def test_rename_during_copy(self, pair):
        images, drive_pair, fs0, fs1 = pair
        fs0.create_file("old.txt").write_data(b"d")
        copy_file(fs0, fs1, "old.txt", new_name="new.txt")
        assert "new.txt" in fs1.list_files()

    def test_collision_needs_replace(self, pair):
        images, drive_pair, fs0, fs1 = pair
        fs0.create_file("doc.txt").write_data(b"new")
        fs1.create_file("doc.txt").write_data(b"old")
        with pytest.raises(DirectoryError):
            copy_file(fs0, fs1, "doc.txt")
        copy_file(fs0, fs1, "doc.txt", replace=True)
        assert fs1.open_file("doc.txt").read_data() == b"new"

    def test_copy_all(self, pair):
        images, drive_pair, fs0, fs1 = pair
        for i in range(4):
            fs0.create_file(f"f{i}").write_data(bytes([i]) * (i * 100))
        copied = copy_all_files(fs0, fs1)
        assert set(copied) == {"f0", "f1", "f2", "f3"}
        for i in range(4):
            assert fs1.open_file(f"f{i}").read_data() == bytes([i]) * (i * 100)


class TestDuplicatePack:
    def test_sector_exact_copy(self, pair):
        images, drive_pair, fs0, fs1 = pair
        fs0.create_file("keep.dat").write_data(b"original pack data")
        fs0.sync()
        duplicate_pack(images[0], images[1])
        clone_fs = FileSystem.mount(DiskDrive(images[1]))
        assert clone_fs.open_file("keep.dat").read_data() == b"original pack data"
        # Hints stayed valid: same addresses on the clone.
        assert (
            clone_fs.open_file("keep.dat").leader_address()
            == fs0.open_file("keep.dat").leader_address()
        )

    def test_pack_ids_differ(self, pair):
        images, drive_pair, fs0, fs1 = pair
        duplicate_pack(images[0], images[1])
        assert images[1].pack_id != images[0].pack_id

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            duplicate_pack(DiskImage(tiny_test_disk(cylinders=8)),
                           DiskImage(tiny_test_disk(cylinders=9)))


class TestDebugKey:
    def test_debug_key_writes_swatee(self):
        from repro.os import AltoOS
        from repro.streams import DEBUG_KEY

        os = AltoOS.format(DiskDrive(DiskImage(tiny_test_disk(cylinders=60))))
        os.install_debug_key()
        os.machine.memory[0x300] = 1234
        os.type_ahead(DEBUG_KEY)
        assert "Swatee" in os.fs.list_files()
        # The saved world carries the memory (registers are lost -- it is
        # the emergency OutLoad of section 4.1).
        from repro.world.statefile import unpack_state

        memory, registers, program, phase, _ = unpack_state(os.fs.open_file("Swatee").read_data())
        assert memory[0x300] == 1234
        assert phase == "emergency"
