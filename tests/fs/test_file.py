"""Unit and property tests for AltoFile: structure invariants of section 3.2."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.disk.geometry import NIL
from repro.errors import HintFailed
from repro.fs.allocator import PageAllocator
from repro.fs.file import AltoFile, FULL_PAGE
from repro.fs.names import FileId, make_serial
from repro.fs.page import PageIO
from repro.words import PAGE_DATA_BYTES


@pytest.fixture
def env():
    drive = DiskDrive(DiskImage(tiny_test_disk(cylinders=30)))
    return PageIO(drive), PageAllocator(drive.shape)


def new_file(env, name="f.dat", counter=1):
    pio, alloc = env
    return AltoFile.create(pio, alloc, FileId(make_serial(counter)), name, now=100)


def structure_ok(file):
    """Check the paper's representation invariants on disk."""
    pio = file.page_io
    n = file.last_page_number
    for pn in range(0, n + 1):
        label = pio.read_label(file.page_name(pn))
        if pn == 0:
            assert label.length == FULL_PAGE, "leader is full"
        elif pn < n:
            assert label.length == FULL_PAGE, f"interior page {pn} must be full"
        else:
            assert label.length < FULL_PAGE, "last page must have L < 512"
            assert label.next_link == NIL
    return True


class TestCreation:
    def test_empty_file_has_leader_and_one_data_page(self, env):
        file = new_file(env)
        assert file.page_count() == 2
        assert file.byte_length == 0
        assert file.read_data() == b""
        assert structure_ok(file)

    def test_leader_contents(self, env):
        file = new_file(env, name="hello.txt")
        assert file.name == "hello.txt"
        assert file.leader.created == 100

    def test_create_consumes_pages(self, env):
        pio, alloc = env
        before = alloc.count_free()
        new_file(env)
        assert alloc.count_free() == before - 2


class TestWriteRead:
    @pytest.mark.parametrize("size", [0, 1, 511, 512, 513, 1024, 1300, 2048, 3000])
    def test_round_trip_various_sizes(self, env, size):
        file = new_file(env)
        data = bytes(i % 256 for i in range(size))
        file.write_data(data)
        assert file.byte_length == size
        assert file.read_data() == data
        assert structure_ok(file)

    def test_multiple_of_page_size_gets_empty_last_page(self, env):
        """L < 512 on the last page forces an empty tail page for aligned
        sizes (so EOF is decidable from L alone)."""
        file = new_file(env)
        file.write_data(b"x" * 1024)
        assert file.last_page_number == 3  # 2 full + 1 empty
        assert structure_ok(file)

    def test_rewrite_shrinks(self, env):
        pio, alloc = env
        file = new_file(env)
        file.write_data(b"y" * 2000)
        pages_large = file.page_count()
        free_before = alloc.count_free()
        file.write_data(b"z" * 10)
        assert file.page_count() < pages_large
        assert alloc.count_free() > free_before
        assert file.read_data() == b"z" * 10

    def test_rewrite_grows(self, env):
        file = new_file(env)
        file.write_data(b"a" * 10)
        file.write_data(b"b" * 2000)
        assert file.read_data() == b"b" * 2000

    def test_write_updates_written_date(self, env):
        file = new_file(env)
        file.write_data(b"x", now=555)
        assert file.leader.written == 555


class TestPageOps:
    def test_append_page(self, env):
        """Appending promotes the old last page to a full interior page, so
        the file gains that page's 512 bytes plus the new tail."""
        file = new_file(env)
        file.append_page([0x4142], 2)
        assert file.last_page_number == 2
        data = file.read_data()
        assert len(data) == PAGE_DATA_BYTES + 2
        assert data[-2:] == b"AB"

    def test_truncate_last_page(self, env):
        file = new_file(env)
        file.write_data(b"q" * 1000)
        file.truncate_last_page()
        assert structure_ok(file)

    def test_truncate_to_minimum_rejected(self, env):
        file = new_file(env)
        with pytest.raises(ValueError):
            file.truncate_last_page()

    def test_write_last_page_length_bounds(self, env):
        file = new_file(env)
        with pytest.raises(ValueError):
            file.write_last_page([], FULL_PAGE)

    def test_interior_write_requires_full_page(self, env):
        file = new_file(env)
        file.write_data(b"x" * 1200)
        with pytest.raises(ValueError):
            file.write_full_page(1, [1, 2, 3])
        with pytest.raises(ValueError):
            file.write_full_page(file.last_page_number, [0] * 256)


class TestReopen:
    def test_open_from_full_name(self, env):
        pio, alloc = env
        file = new_file(env)
        file.write_data(b"persistent")
        again = AltoFile.open(pio, alloc, file.full_name())
        assert again.name == "f.dat"
        assert again.read_data() == b"persistent"

    def test_open_with_stale_last_page_hint_walks_links(self, env):
        pio, alloc = env
        file = new_file(env)
        file.write_data(b"k" * 1500)
        # Sabotage the leader's last-page hint (it is only a hint).
        file.leader = file.leader.with_last_page(1, 63)
        file._write_leader()
        again = AltoFile.open(pio, alloc, file.full_name())
        assert again.read_data() == b"k" * 1500

    def test_page_name_cache_self_heals(self, env):
        pio, alloc = env
        file = new_file(env)
        file.write_data(b"m" * 1500)
        # Poison the cache; reads must recover by walking links.
        true_addr = file.page_name(2).address
        file._addresses[2] = (true_addr + 5) % pio.drive.shape.total_sectors()
        assert file.read_data() == b"m" * 1500

    def test_missing_page_number_rejected(self, env):
        file = new_file(env)
        with pytest.raises(HintFailed):
            file.page_name(5)


class TestDelete:
    def test_delete_frees_everything(self, env):
        pio, alloc = env
        before = alloc.count_free()
        file = new_file(env)
        file.write_data(b"d" * 3000)
        file.delete()
        assert alloc.count_free() == before

    def test_deleted_pages_unreadable(self, env):
        pio, alloc = env
        file = new_file(env)
        name = file.full_name()
        file.delete()
        with pytest.raises(HintFailed):
            pio.read(name)


class TestLeaderMaintenance:
    def test_touch(self, env):
        file = new_file(env)
        file.touch(read=777)
        assert file.leader.read == 777

    def test_rename(self, env):
        pio, alloc = env
        file = new_file(env)
        file.rename("new-name")
        again = AltoFile.open(pio, alloc, file.full_name())
        assert again.name == "new-name"

    def test_consecutive_hint(self, env):
        file = new_file(env)
        file.set_consecutive_hint(True)
        assert file.leader.maybe_consecutive


class TestFileProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2000), min_size=1, max_size=5))
    def test_write_read_sequence_property(self, sizes):
        """Any sequence of rewrites preserves the invariants and the data."""
        drive = DiskDrive(DiskImage(tiny_test_disk(cylinders=30)))
        env = (PageIO(drive), PageAllocator(drive.shape))
        file = new_file(env)
        for i, size in enumerate(sizes):
            data = bytes((i + j) % 256 for j in range(size))
            file.write_data(data)
            assert file.read_data() == data
            assert structure_ok(file)
