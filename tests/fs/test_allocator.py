"""Unit tests for the allocation map and claim protocol."""

import pytest

from repro.disk import DiskDrive, DiskImage, Label, tiny_test_disk
from repro.errors import DiskFull
from repro.fs.allocator import PageAllocator
from repro.fs.names import FileId, FullName, make_serial
from repro.fs.page import PageIO


@pytest.fixture
def shape():
    return tiny_test_disk(cylinders=4)  # 96 sectors


@pytest.fixture
def drive(shape):
    return DiskDrive(DiskImage(shape))


@pytest.fixture
def pio(drive):
    return PageIO(drive)


@pytest.fixture
def allocator(shape):
    return PageAllocator(shape)


def label(pn=0):
    return FileId(make_serial(1)).label_for(pn, length=512)


class TestMap:
    def test_starts_all_free(self, allocator, shape):
        assert allocator.count_free() == shape.total_sectors()

    def test_mark_and_query(self, allocator):
        allocator.mark_busy(5)
        assert not allocator.is_free(5)
        allocator.mark_free(5)
        assert allocator.is_free(5)

    def test_reserve(self, allocator):
        allocator.reserve([0, 1])
        assert not allocator.is_free(0) and not allocator.is_free(1)

    def test_pack_unpack_round_trip(self, allocator, shape):
        for address in (0, 3, 17, 95):
            allocator.mark_busy(address)
        clone = PageAllocator.unpack(shape, allocator.pack())
        assert [clone.is_free(a) for a in range(shape.total_sectors())] == [
            allocator.is_free(a) for a in range(shape.total_sectors())
        ]

    def test_unpack_validates_length(self, shape):
        with pytest.raises(ValueError):
            PageAllocator.unpack(shape, [0])

    def test_from_labels(self, shape):
        labels = [Label.free()] * shape.total_sectors()
        labels[7] = label()
        labels[9] = Label.bad()
        allocator = PageAllocator.from_labels(shape, labels)
        assert not allocator.is_free(7)
        assert not allocator.is_free(9)
        assert allocator.is_free(8)


class TestCandidates:
    def test_nearest_first(self, allocator):
        allocator_order = list(allocator.candidates(near=50))
        assert allocator_order[0] == 50
        assert set(allocator_order[:3]) <= {49, 50, 51}

    def test_skips_busy(self, allocator):
        allocator.mark_busy(50)
        assert 50 not in list(allocator.candidates(near=50))

    def test_no_hint_scans_in_order(self, allocator):
        assert list(allocator.candidates())[:3] == [0, 1, 2]


class TestClaimProtocol:
    def test_allocate_claims_on_disk(self, allocator, pio):
        address = allocator.allocate(pio, label(), [9])
        assert not allocator.is_free(address)
        assert pio.drive.read_label(address) == label()

    def test_lying_map_bit_costs_one_retry(self, allocator, pio):
        """Section 3.3: a page improperly marked free results in a little
        extra one-time disk activity -- and nothing worse."""
        squatter = FileId(make_serial(7)).label_for(0, length=512)
        pio.claim(10, squatter, [])
        # The map still thinks 10 is free: make the allocator try it first.
        assert allocator.is_free(10)
        address = allocator.allocate(pio, label(), [], near=10)
        assert address != 10
        assert allocator.map_lies == 1
        assert not allocator.is_free(10)  # the liar is now marked busy
        # The squatter's data was never touched.
        assert pio.drive.read_label(10) == squatter

    def test_disk_full(self, shape, pio):
        allocator = PageAllocator(shape, [False] * shape.total_sectors())
        with pytest.raises(DiskFull):
            allocator.allocate(pio, label(), [])

    def test_all_map_bits_lying_still_raises_disk_full(self, shape, pio):
        """Even a map that is completely wrong terminates: every candidate
        fails its label check and is struck off."""
        squatter = FileId(make_serial(7))
        for address in range(shape.total_sectors()):
            pio.claim(address, squatter.label_for(address, length=512), [])
        allocator = PageAllocator(shape)  # all free: all lies
        with pytest.raises(DiskFull):
            allocator.allocate(pio, label(), [])
        assert allocator.map_lies == shape.total_sectors()

    def test_release(self, allocator, pio):
        fid = FileId(make_serial(1))
        address = allocator.allocate(pio, fid.label_for(0, length=512), [])
        allocator.release(pio, FullName(fid, 0, address))
        assert allocator.is_free(address)
        assert pio.drive.read_label(address).is_free

    def test_allocation_prefers_locality(self, allocator, pio):
        first = allocator.allocate(pio, label(), [], near=40)
        second = allocator.allocate(pio, FileId(make_serial(1)).label_for(1), [], near=first)
        assert abs(second - first) <= 2
