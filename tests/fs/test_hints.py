"""Tests for the recovery ladder, k-th page hints, consecutive access (3.6)."""

import pytest

from repro.errors import HintFailed
from repro.fs import ConsecutiveReader, FileSystem, FullName, HintLadder, KthPageHints
from repro.fs.names import FileId, make_serial


@pytest.fixture
def big_file(fs):
    file = fs.create_file("big.dat")
    file.write_data(bytes(range(256)) * 30)  # 7680 bytes, 16 pages
    return file


def stale(name):
    """A full name whose address hint is wrong (points at another sector)."""
    total = 720
    return name.with_address((name.address + 3) % total)


class TestLadderRungs:
    def test_direct_hit(self, fs, big_file):
        ladder = HintLadder(fs)
        contents = ladder.read_page("big.dat", big_file.page_name(5))
        assert contents.label.length == 512
        assert ladder.stats.successes["direct"] == 1

    def test_known_page_walk(self, fs, big_file):
        ladder = HintLadder(fs)
        ladder.read_page("big.dat", stale(big_file.page_name(5)), known=big_file.full_name())
        assert ladder.stats.successes["known-page"] == 1
        assert ladder.stats.link_follows == 5

    def test_directory_fv_lookup(self, fs, big_file):
        ladder = HintLadder(fs)
        ladder.read_page("big.dat", stale(big_file.page_name(5)))
        assert ladder.stats.successes["directory-fv"] == 1

    def test_directory_name_lookup(self, fs, big_file):
        """When even the FV is wrong (file re-created), the string name
        yields a new FV (rung 3)."""
        data = big_file.read_data()
        old_name = big_file.page_name(5)
        fs.delete_file("big.dat")
        replacement = fs.create_file("big.dat")
        replacement.write_data(data)
        ladder = HintLadder(fs)
        contents = ladder.read_page("big.dat", stale(old_name))
        assert ladder.stats.successes["directory-name"] == 1
        assert contents.name.fid == replacement.fid

    def test_scavenge_rung(self, fs, big_file, image, injector):
        """When the directory entry itself is stale, only the Scavenger can
        help (rung 4)."""
        # Move the file's leader behind everyone's back by swapping sectors.
        leader_address = big_file.leader_address()
        free = next(s.header.address for s in image.sectors() if s.label.is_free)
        injector.swap_sectors(leader_address, free)
        ladder = HintLadder(fs)
        contents = ladder.read_page("big.dat", stale(big_file.page_name(5)))
        assert ladder.stats.successes["scavenge"] == 1
        assert contents.value is not None

    def test_ladder_exhaustion_without_scavenge(self, fs, big_file, image, injector):
        leader_address = big_file.leader_address()
        free = next(s.header.address for s in image.sectors() if s.label.is_free)
        injector.swap_sectors(leader_address, free)
        ladder = HintLadder(fs, scavenge_allowed=False)
        with pytest.raises(HintFailed):
            ladder.read_page("big.dat", stale(big_file.page_name(5)))


class TestKthPageHints:
    def test_build_and_nearest(self, fs, big_file):
        kth = KthPageHints(big_file.fid, 4)
        kth.build(big_file)
        assert len(kth) == 5  # pages 0, 4, 8, 12, 16
        nearest = kth.nearest(6)
        assert nearest.page_number in (4, 8)

    def test_bounds_link_follows(self, fs, big_file):
        """Section 3.6: hints every k pages "reduce the number of links
        that must be followed" -- to at most ceil(k/2) from the nearest."""
        for k in (2, 4, 8):
            kth = KthPageHints(big_file.fid, k)
            kth.build(big_file)
            ladder = HintLadder(fs)
            ladder.read_page("big.dat", stale(big_file.page_name(9)), kth=kth)
            assert ladder.stats.successes["known-page"] == 1
            assert ladder.stats.link_follows <= (k + 1) // 2 + 1

    def test_only_multiples_kept(self, fs, big_file):
        kth = KthPageHints(big_file.fid, 4)
        kth.note(3, 99)
        assert len(kth) == 0
        kth.note(8, 99)
        assert len(kth) == 1

    def test_invalidate(self, fs, big_file):
        kth = KthPageHints(big_file.fid, 4)
        kth.build(big_file)
        kth.invalidate(4)
        assert len(kth) == 4

    def test_k_validation(self):
        with pytest.raises(ValueError):
            KthPageHints(FileId(make_serial(1)), 0)

    def test_empty_nearest(self):
        kth = KthPageHints(FileId(make_serial(1)), 4)
        assert kth.nearest(3) is None


class TestConsecutiveReader:
    def test_consecutive_file_all_hits(self, fs):
        """After compaction a file reads by pure address arithmetic."""
        from repro.fs import Compactor

        file = fs.create_file("data.bin")
        file.write_data(b"z" * 4000)
        Compactor(fs.drive).compact()
        fs2 = FileSystem.mount(fs.drive)
        file = fs2.open_file("data.bin")
        assert file.leader.maybe_consecutive
        reader = ConsecutiveReader(fs2.page_io, file)
        for pn in range(1, file.last_page_number + 1):
            reader.read_page(pn)
        assert reader.stats.misses == 0
        assert reader.stats.hit_rate == 1.0

    def test_scattered_file_falls_back_safely(self, fs):
        """The label check catches every wrong guess; data is never wrong."""
        a = fs.create_file("a.bin")
        b = fs.create_file("b.bin")
        # Interleave appends so neither file is consecutive.
        for i in range(6):
            a.append_page([i], 2)
            b.append_page([i + 100], 2)
        reader = ConsecutiveReader(fs.page_io, a)
        # Appends landed at pages 2..7 (page 1 is the original empty page).
        values = [reader.read_page(pn).value[0] for pn in range(2, 8)]
        assert values == [0, 1, 2, 3, 4, 5]  # correct despite the misses
        assert reader.stats.misses > 0
