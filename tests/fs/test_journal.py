"""Tests for the user-written journaled directory (section 3.5's sketch).

The base system loses directory *naming* information when a directory is
destroyed (files survive via leader names, but which-directory-held-what is
gone).  The journal + snapshot extension recovers exactly that.
"""

import pytest

from repro.disk import DiskDrive, FaultInjector
from repro.fs import FileSystem, Scavenger
from repro.fs.journal import (
    JournaledDirectory,
    JournalRecord,
    OP_ADD,
    OP_REMOVE,
    recover_directory,
)


@pytest.fixture
def journaled(fs):
    directory = fs.create_directory("Projects")
    return fs, JournaledDirectory.wrap(fs, directory)


def make_files(fs, names, directory=None):
    out = {}
    for name in names:
        file = fs.create_file(name, directory=directory) if directory else fs.create_file(name)
        file.write_data(f"contents of {name}".encode())
        out[name] = file
    return out


class TestJournaling:
    def test_mutations_are_logged(self, journaled):
        fs, jd = journaled
        files = make_files(fs, ["a.txt", "b.txt"])
        jd.add("a.txt", files["a.txt"].full_name())
        jd.add("b.txt", files["b.txt"].full_name())
        jd.remove("a.txt")
        ops = [(r.op, r.name) for r in jd.journal_records()]
        assert ops == [(OP_ADD, "a.txt"), (OP_ADD, "b.txt"), (OP_REMOVE, "a.txt")]

    def test_reads_pass_through(self, journaled):
        fs, jd = journaled
        files = make_files(fs, ["x.txt"])
        jd.add("x.txt", files["x.txt"].full_name())
        assert jd.lookup("x.txt") is not None
        assert jd.names() == ["x.txt"]
        assert len(jd.entries()) == 1

    def test_snapshot_truncates_journal(self, journaled):
        fs, jd = journaled
        files = make_files(fs, ["x.txt"])
        jd.add("x.txt", files["x.txt"].full_name())
        captured = jd.snapshot()
        assert captured == 1
        assert jd.journal_records() == []

    def test_replay_matches_directory(self, journaled):
        fs, jd = journaled
        files = make_files(fs, ["a.txt", "b.txt", "c.txt"])
        for name, file in files.items():
            jd.add(name, file.full_name())
        jd.snapshot()
        jd.remove("b.txt")
        files2 = make_files(fs, ["d.txt"])
        jd.add("d.txt", files2["d.txt"].full_name())
        replayed = {name for name, _fn in jd.replay_state()}
        assert replayed == {"a.txt", "c.txt", "d.txt"}
        assert replayed == set(jd.names())


class TestRecovery:
    def test_destroyed_directory_fully_recovered(self, fs, image):
        """The base scavenger rescues the files but forgets the directory's
        naming; the journal brings the directory itself back."""
        directory = fs.create_directory("Projects")
        jd = JournaledDirectory.wrap(fs, directory)
        files = make_files(fs, ["plan.txt", "notes.txt", "budget.txt"])
        for name, file in files.items():
            jd.add(name, file.full_name())
        jd.snapshot()
        jd.remove("budget.txt")
        extra = make_files(fs, ["extra.txt"])
        jd.add("extra.txt", extra["extra.txt"].full_name())
        fs.sync()

        # Destroy the directory file utterly.
        injector = FaultInjector(image, seed=5)
        for pn in range(directory.file.page_count()):
            injector.scramble_label(directory.file.page_name(pn).address)

        Scavenger(DiskDrive(image)).scavenge()
        fs2 = FileSystem.mount(DiskDrive(image))
        rebuilt = recover_directory(fs2, "Projects")
        assert set(rebuilt.names()) == {"plan.txt", "notes.txt", "extra.txt"}
        # Entries resolve to the right files (hints refreshed or walked).
        for name in rebuilt.names():
            entry = rebuilt.require(name)
            file = fs2.open_entry(entry)
            assert file.read_data() == f"contents of {name}".encode()

    def test_torn_journal_tail_is_ignored(self, journaled):
        fs, jd = journaled
        files = make_files(fs, ["ok.txt"])
        jd.add("ok.txt", files["ok.txt"].full_name())
        # Append garbage (a torn final record).
        data = jd.journal_file.read_data()
        jd.journal_file.write_data(data + b"\x00\x63garbage-bytes")
        records = jd.journal_records()
        assert [r.name for r in records] == ["ok.txt"]

    def test_recover_without_prior_directory_creates_one(self, fs):
        directory = fs.create_directory("Temp")
        jd = JournaledDirectory.wrap(fs, directory)
        files = make_files(fs, ["t.txt"])
        jd.add("t.txt", files["t.txt"].full_name())
        # Delete the directory file outright (user error).
        fs.delete_file("Temp")
        rebuilt = recover_directory(fs, "Temp")
        assert rebuilt.names() == ["t.txt"]


class TestRecordFormat:
    def test_pack_parse_round_trip(self, fs):
        from repro.fs.journal import _parse_records

        file = fs.create_file("z.txt")
        record = JournalRecord(OP_ADD, "z.txt", file.full_name())
        parsed = _parse_records(record.pack())
        assert parsed == [record]
