"""Tests for the read-only consistency checker."""

import pytest

from repro.disk import DiskDrive, FaultInjector
from repro.fs import FileSystem, Scavenger
from repro.fs.fsck import check_image
from repro.fs.names import FileId, FullName, make_serial


class TestCleanImages:
    def test_fresh_format_is_clean(self, fs, image):
        fs.sync()
        report = check_image(image)
        assert report.clean, [str(i) for i in report.issues]

    def test_populated_fs_is_clean(self, populated_fs, image):
        report = check_image(image)
        assert report.clean, [str(i) for i in report.issues]
        assert report.files >= 10
        assert report.directories >= 2  # root + Sub

    def test_counts(self, populated_fs, image):
        report = check_image(image)
        assert report.free_pages == image.count_free()
        assert report.bad_pages == 0


class TestDetection:
    def test_garbage_label(self, populated_fs, image, injector):
        injector.scramble_label(injector.random_in_use_addresses(1)[0])
        kinds = check_image(image).kinds()
        # A scramble lands as garbage, or (rarely) as a valid-looking label
        # creating some structural violation; either way, not clean.
        assert kinds

    def test_scrambled_links(self, populated_fs, image, injector):
        injector.scramble_links(injector.random_in_use_addresses(1)[0])
        assert "bad-link" in check_image(image).kinds()

    def test_duplicate_page(self, populated_fs, image):
        source = next(s for s in image.sectors() if s.label.in_use)
        free = next(s for s in image.sectors() if s.label.is_free)
        free.label = source.label
        free.value = list(source.value)
        assert "duplicate-page" in check_image(image).kinds()

    def test_stale_map(self, populated_fs, image):
        busy = next(s.header.address for s in image.sectors() if s.label.in_use)
        populated_fs.allocator.mark_free(busy)
        populated_fs.sync()
        assert "map-lies-free" in check_image(image).kinds()

    def test_stale_directory_hint(self, populated_fs, image):
        populated_fs.root.update_hint("file02.dat", 3)
        assert "stale-entry-hint" in check_image(image).kinds()

    def test_dangling_entry(self, populated_fs, image):
        populated_fs.root.add("ghost", FullName(FileId(make_serial(9999)), 0, 11))
        assert "dangling-entry" in check_image(image).kinds()

    def test_missing_descriptor(self, populated_fs, image, injector):
        injector.scramble_label(1)
        kinds = check_image(image).kinds()
        assert "no-descriptor" in kinds or "garbage-label" in kinds

    def test_corrupt_leader_value(self, populated_fs, image):
        target = populated_fs.open_file("file02.dat")
        populated_fs.page_io.write(target.full_name(), [0] * 256)
        assert "bad-leader" in check_image(image).kinds()


class TestScavengerContract:
    def test_scavenge_leaves_a_clean_image(self, populated_fs, image, injector):
        """The scavenger's postcondition, stated once and for all: whatever
        the damage, afterwards fsck finds nothing."""
        for address in injector.random_in_use_addresses(4):
            injector.scramble_links(address)
        injector.swap_sectors(*injector.random_in_use_addresses(2))
        populated_fs.root.update_hint("file04.dat", 9)
        Scavenger(DiskDrive(image)).scavenge()
        report = check_image(image)
        assert report.clean, [str(i) for i in report.issues]

    def test_compaction_leaves_a_clean_image(self, populated_fs, image):
        from repro.fs import Compactor

        Compactor(DiskDrive(image)).compact()
        report = check_image(image)
        assert report.clean, [str(i) for i in report.issues]
