"""Unit tests for directories: (string, full name) pairs, holes, graphs."""

import pytest

from repro.errors import DirectoryError, FileNotFound, NotADirectory
from repro.fs.directory import DirEntry, Directory
from repro.fs.names import FileId, FullName, make_serial


@pytest.fixture
def directory(fs):
    return fs.create_directory("TestDir")


def fake_full_name(counter=5, address=40):
    return FullName(FileId(make_serial(counter)), 0, address)


class TestEntries:
    def test_empty(self, directory):
        assert directory.entries() == []
        assert len(directory) == 0

    def test_add_and_lookup(self, directory):
        directory.add("alpha", fake_full_name(5))
        directory.add("beta", fake_full_name(6))
        assert directory.lookup("alpha").full_name == fake_full_name(5)
        assert directory.names() == ["alpha", "beta"]
        assert "alpha" in directory

    def test_lookup_is_case_insensitive_but_preserving(self, directory):
        directory.add("MixedCase.Txt", fake_full_name())
        assert directory.lookup("mixedcase.txt") is not None
        assert directory.names() == ["MixedCase.Txt"]

    def test_duplicate_rejected(self, directory):
        directory.add("x", fake_full_name(5))
        with pytest.raises(DirectoryError):
            directory.add("X", fake_full_name(6))

    def test_replace(self, directory):
        directory.add("x", fake_full_name(5))
        directory.add("x", fake_full_name(6), replace=True)
        assert directory.lookup("x").fid.serial == make_serial(6)
        assert len(directory) == 1

    def test_require(self, directory):
        with pytest.raises(FileNotFound):
            directory.require("ghost")


class TestRemovalAndHoles:
    def test_remove(self, directory):
        directory.add("x", fake_full_name(5))
        removed = directory.remove("x")
        assert removed.name == "x"
        assert directory.lookup("x") is None
        with pytest.raises(FileNotFound):
            directory.remove("x")

    def test_hole_is_reused(self, directory):
        directory.add("first", fake_full_name(5))
        directory.add("second", fake_full_name(6))
        size_before = directory.file.byte_length
        directory.remove("first")
        directory.add("third", fake_full_name(7))  # same-size entry fits the hole
        assert directory.file.byte_length == size_before
        assert directory.names() == ["third", "second"]

    def test_smaller_entry_splits_hole(self, directory):
        directory.add("a-rather-long-entry-name", fake_full_name(5))
        directory.add("tail", fake_full_name(6))
        directory.remove("a-rather-long-entry-name")
        directory.add("tiny", fake_full_name(7))
        assert set(directory.names()) == {"tiny", "tail"}

    def test_null_entries(self, directory):
        directory.add("keep", fake_full_name(5))
        directory.add("drop1", fake_full_name(6))
        directory.add("drop2", fake_full_name(7))
        nulled = directory.null_entries(lambda e: e.name.startswith("drop"))
        assert nulled == 2
        assert directory.names() == ["keep"]


class TestHints:
    def test_update_hint(self, directory):
        directory.add("x", fake_full_name(5, address=40))
        directory.update_hint("x", 77)
        assert directory.lookup("x").full_name.address == 77

    def test_update_hint_missing(self, directory):
        with pytest.raises(FileNotFound):
            directory.update_hint("ghost", 1)


class TestStructure:
    def test_not_a_directory(self, fs):
        plain = fs.create_file("plain.dat")
        with pytest.raises(NotADirectory):
            Directory(plain)

    def test_corrupt_data_detected(self, directory):
        directory.add("x", fake_full_name(5))
        raw = bytearray(directory.file.read_data())
        raw[0] = 0x09  # nonsense entry type
        directory.file.write_data(bytes(raw))
        with pytest.raises(DirectoryError):
            directory.entries()

    def test_entry_pack_round_trip(self):
        entry = DirEntry("some-name.txt", fake_full_name(9, address=123))
        words = entry.pack()
        assert words[0] & 0xFF == len(words)

    def test_directory_graph(self, fs):
        """Section 3.4: "it is possible to have a tree, or indeed an
        arbitrary directed graph, of directories" -- including cycles."""
        a = fs.create_directory("A")
        b = fs.create_directory("B", parent=a)
        # Close the cycle: B points back at A.
        b.add("A", a.full_name())
        # And a file appears in BOTH directories (multi-parent).
        shared = fs.create_file("shared.txt", directory=a)
        b.add("shared.txt", shared.full_name())
        assert fs.open_file("shared.txt", directory=a).read_data() == b""
        assert fs.open_file("shared.txt", directory=b).read_data() == b""
        back = fs.open_directory("A", parent=b)
        assert back.lookup("B") is not None

    def test_large_directory_spans_pages(self, directory):
        for i in range(60):
            directory.add(f"file-{i:03d}.extension", fake_full_name(5 + i))
        assert directory.file.page_count() > 2
        assert len(directory) == 60
        assert directory.lookup("file-059.extension") is not None
