"""Unit tests for page operations by full name."""

import pytest

from repro.disk import DiskDrive, DiskImage, Label, tiny_test_disk
from repro.disk.geometry import NIL
from repro.errors import HintFailed, PageNotFree
from repro.fs.names import FileId, FullName, make_serial
from repro.fs.page import PageContents, PageIO


@pytest.fixture
def pio():
    return PageIO(DiskDrive(DiskImage(tiny_test_disk())))


@pytest.fixture
def fid():
    return FileId(make_serial(1))


def chain(pio, fid, addresses):
    """Claim a linked chain of pages at the given addresses."""
    for pn, address in enumerate(addresses):
        nl = addresses[pn + 1] if pn + 1 < len(addresses) else NIL
        pl = addresses[pn - 1] if pn > 0 else NIL
        label = fid.label_for(pn, length=0 if nl == NIL else 512, next_link=nl, prev_link=pl)
        pio.claim(address, label, [pn * 100])
    return [FullName(fid, pn, address) for pn, address in enumerate(addresses)]


class TestGuardedOps:
    def test_read_verifies_identity(self, pio, fid):
        names = chain(pio, fid, [4, 9])
        contents = pio.read(names[1])
        assert contents.value[0] == 100
        assert contents.label.prev_link == 4

    def test_read_with_stale_hint_fails_cleanly(self, pio, fid):
        names = chain(pio, fid, [4, 9])
        stale = names[1].with_address(5)  # free sector
        with pytest.raises(HintFailed):
            pio.read(stale)

    def test_read_wrong_page_same_file_fails(self, pio, fid):
        """A hint pointing at a *different page of the same file* must be
        caught -- this is why page numbers are biased past the wildcard."""
        names = chain(pio, fid, [4, 9])
        crossed = names[0].with_address(9)  # page 0 hint -> page 1's sector
        with pytest.raises(HintFailed):
            pio.read(crossed)

    def test_write_only_touches_value(self, pio, fid):
        names = chain(pio, fid, [4, 9])
        old_label = pio.read_label(names[0])
        pio.write(names[0], [42])
        assert pio.read_label(names[0]) == old_label
        assert pio.read(names[0]).value[0] == 42

    def test_operations_require_hint(self, pio, fid):
        name = FullName(fid, 0)  # no address
        with pytest.raises(HintFailed):
            pio.read(name)
        with pytest.raises(HintFailed):
            pio.write(name, [1])


class TestClaimRelease:
    def test_claim_free_page(self, pio, fid):
        pio.claim(3, fid.label_for(0, length=512), [1, 2])
        assert pio.read(FullName(fid, 0, 3)).value[:2] == [1, 2]

    def test_claim_busy_page_raises(self, pio, fid):
        pio.claim(3, fid.label_for(0, length=512), [])
        other = FileId(make_serial(2))
        with pytest.raises(PageNotFree):
            pio.claim(3, other.label_for(0, length=512), [])

    def test_release_writes_ones(self, pio, fid):
        names = chain(pio, fid, [4, 9])
        pio.release(names[1])
        raw = pio.drive.read_sector(9)
        assert raw.label_object().is_free
        assert raw.value == [0xFFFF] * 256

    def test_release_wrong_name_fails(self, pio, fid):
        chain(pio, fid, [4, 9])
        wrong = FullName(FileId(make_serial(2)), 1, 9)
        with pytest.raises(HintFailed):
            pio.release(wrong)

    def test_rewrite_label_keeps_value(self, pio, fid):
        names = chain(pio, fid, [4])
        pio.rewrite_label(names[0], fid.label_for(0, length=99))
        contents = pio.read(names[0])
        assert contents.label.length == 99
        assert contents.value[0] == 0


class TestTraversal:
    def test_next_prev_names(self, pio, fid):
        names = chain(pio, fid, [4, 9, 14])
        middle = pio.read(names[1])
        assert middle.next_name == names[2]
        assert middle.prev_name == names[0]
        first = pio.read(names[0])
        assert first.prev_name is None
        last = pio.read(names[2])
        assert last.next_name is None and last.is_last

    def test_follow_forward_and_backward(self, pio, fid):
        names = chain(pio, fid, [4, 9, 14, 19])
        found = pio.follow(names[0], 3)
        assert found == names[3]
        found = pio.follow(names[3], 1)
        assert found == names[1]

    def test_follow_past_end_fails(self, pio, fid):
        names = chain(pio, fid, [4, 9])
        with pytest.raises(HintFailed):
            pio.follow(names[0], 5)

    def test_page_contents_length(self, pio, fid):
        names = chain(pio, fid, [4, 9])
        assert pio.read(names[0]).byte_length == 512
        assert pio.read(names[1]).byte_length == 0
