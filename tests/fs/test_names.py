"""Unit tests for absolute names, file ids, full names."""

import pytest
from hypothesis import given, strategies as st

from repro.disk.geometry import NIL
from repro.disk.sector import Label
from repro.errors import FileFormatError
from repro.fs.names import (
    FIRST_VERSION,
    FileId,
    FullName,
    MAX_PAGE_NUMBER,
    ORDINARY_SERIAL_FLAG,
    make_serial,
    next_usable_counter,
    page_number_from_label,
    serial_counter,
)


class TestSerials:
    def test_ordinary_serial_has_marker(self):
        serial = make_serial(1)
        assert serial & ORDINARY_SERIAL_FLAG
        assert serial_counter(serial) == 1

    def test_directory_serial(self):
        assert FileId(make_serial(1, directory=True)).is_directory
        assert not FileId(make_serial(1)).is_directory

    def test_counter_with_zero_low_word_rejected(self):
        with pytest.raises(ValueError):
            make_serial(0x10000)

    def test_next_usable_skips_zero_low_word(self):
        assert next_usable_counter(0xFFFF) == 0x10001
        assert next_usable_counter(1) == 2

    def test_counter_range(self):
        with pytest.raises(ValueError):
            make_serial(0)
        with pytest.raises(ValueError):
            make_serial(0x4000_0000)

    def test_no_serial_word_is_ever_zero(self):
        """Zero words would be check wildcards (section 3.3); identity
        words must never be wildcards."""
        counter = 1
        for _ in range(200):
            serial = make_serial(counter)
            assert serial >> 16 != 0 and serial & 0xFFFF != 0
            counter = next_usable_counter(counter)


class TestFileId:
    def test_validation(self):
        with pytest.raises(ValueError):
            FileId(serial=5)  # missing marker
        with pytest.raises(ValueError):
            FileId(make_serial(1), version=0)

    def test_label_for_round_trips_page_number(self):
        fid = FileId(make_serial(3))
        label = fid.label_for(0, length=512)
        assert page_number_from_label(label) == 0
        assert label.page_number == 1  # biased on disk

    def test_check_label_wildcards_only_hints(self):
        fid = FileId(make_serial(3))
        pattern = fid.check_label(7)
        packed = pattern.pack()
        # serial(2) + version + page number words are all nonzero...
        assert all(w != 0 for w in packed[:4])
        # ...and L, NL, PL are wildcards.
        assert packed[4:] == [0, 0, 0]

    def test_owns(self):
        fid = FileId(make_serial(3))
        assert fid.owns(fid.label_for(2))
        assert not fid.owns(FileId(make_serial(4)).label_for(2))
        assert not fid.owns(Label.free())

    def test_from_label(self):
        fid = FileId(make_serial(9), version=2)
        assert FileId.from_label(fid.label_for(1)) == fid
        with pytest.raises(FileFormatError):
            FileId.from_label(Label.free())

    def test_page_number_bounds(self):
        fid = FileId(make_serial(1))
        with pytest.raises(ValueError):
            fid.label_for(-1)
        with pytest.raises(ValueError):
            fid.label_for(MAX_PAGE_NUMBER + 1)

    def test_bad_label_page_number(self):
        label = Label(serial=make_serial(1), version=1, page_number=0, length=0)
        with pytest.raises(FileFormatError):
            page_number_from_label(label)


class TestFullName:
    def test_defaults(self):
        name = FullName(FileId(make_serial(1)))
        assert name.is_leader
        assert not name.has_address_hint

    def test_sibling_and_with_address(self):
        name = FullName(FileId(make_serial(1)), 0, 5)
        sib = name.sibling(3, 8)
        assert sib.page_number == 3 and sib.address == 8 and sib.fid == name.fid
        assert name.with_address(9).address == 9

    def test_check_label_matches_label_for(self):
        fid = FileId(make_serial(1))
        name = FullName(fid, 4, 10)
        assert name.check_label().page_number == fid.label_for(4).page_number

    def test_str(self):
        name = FullName(FileId(make_serial(1)), 2, 7)
        assert "@7" in str(name)
        assert "@?" in str(FullName(FileId(make_serial(1)), 2))

    @given(st.integers(min_value=1, max_value=1000), st.integers(min_value=0, max_value=100))
    def test_label_round_trip_property(self, counter, page):
        if counter & 0xFFFF == 0:
            counter += 1
        fid = FileId(make_serial(counter))
        label = fid.label_for(page, length=17)
        assert fid.owns(label)
        assert page_number_from_label(label) == page
