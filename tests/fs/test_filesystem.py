"""Unit tests for the FileSystem facade: format, mount, naming, serials."""

import pytest

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.errors import DirectoryError, FileFormatError, FileNotFound
from repro.fs import (
    BOOT_PAGE_ADDRESS,
    DESCRIPTOR_LEADER_ADDRESS,
    DESCRIPTOR_NAME,
    FileSystem,
    ROOT_DIRECTORY_NAME,
)


class TestFormat:
    def test_fresh_format(self, fs):
        assert set(fs.list_files()) == {ROOT_DIRECTORY_NAME, DESCRIPTOR_NAME}
        assert fs.free_pages() > 0

    def test_descriptor_pinned_at_standard_address(self, fs):
        descriptor = fs.open_file(DESCRIPTOR_NAME)
        assert descriptor.leader_address() == DESCRIPTOR_LEADER_ADDRESS

    def test_boot_page_reserved(self, fs):
        assert not fs.allocator.is_free(BOOT_PAGE_ADDRESS)

    def test_root_is_self_listed(self, fs):
        entry = fs.root.require(ROOT_DIRECTORY_NAME)
        assert entry.fid == fs.root.file.fid

    def test_format_requires_fresh_pack(self, fs):
        with pytest.raises(FileFormatError):
            FileSystem.format(fs.drive)


class TestMount:
    def test_mount_round_trip(self, fs, image):
        fs.create_file("x.txt").write_data(b"hello")
        fs.sync()
        mounted = FileSystem.mount(DiskDrive(image))
        assert mounted.open_file("x.txt").read_data() == b"hello"

    def test_mount_unformatted_fails(self):
        drive = DiskDrive(DiskImage(tiny_test_disk()))
        with pytest.raises(FileFormatError):
            FileSystem.mount(drive)

    def test_mount_with_clobbered_descriptor_fails(self, fs, image, injector):
        fs.sync()
        injector.scramble_label(DESCRIPTOR_LEADER_ADDRESS)
        with pytest.raises(FileFormatError):
            FileSystem.mount(DiskDrive(image))


class TestFileOperations:
    def test_create_open_delete(self, fs):
        fs.create_file("a.txt").write_data(b"abc")
        assert fs.open_file("a.txt").read_data() == b"abc"
        fs.delete_file("a.txt")
        with pytest.raises(FileNotFound):
            fs.open_file("a.txt")

    def test_duplicate_create_rejected(self, fs):
        fs.create_file("a.txt")
        with pytest.raises(DirectoryError):
            fs.create_file("a.txt")

    def test_rename(self, fs):
        fs.create_file("old.txt").write_data(b"data")
        fs.rename_file("old.txt", "new.txt")
        assert fs.open_file("new.txt").read_data() == b"data"
        assert fs.open_file("new.txt").name == "new.txt"  # leader renamed too
        with pytest.raises(FileNotFound):
            fs.open_file("old.txt")

    def test_rename_collision_rejected(self, fs):
        fs.create_file("a.txt")
        fs.create_file("b.txt")
        with pytest.raises(DirectoryError):
            fs.rename_file("a.txt", "b.txt")

    def test_subdirectories(self, fs):
        sub = fs.create_directory("Sub")
        fs.create_file("inner.txt", directory=sub).write_data(b"inner")
        assert "inner.txt" not in fs.list_files()
        assert fs.open_file("inner.txt", directory=fs.open_directory("Sub")).read_data() == b"inner"

    def test_delete_frees_pages(self, fs):
        before = fs.free_pages()
        fs.create_file("big.dat").write_data(b"x" * 4000)
        fs.delete_file("big.dat")
        assert fs.free_pages() == before


class TestSerialDiscipline:
    def test_fids_never_repeat(self, fs):
        seen = {fs.new_fid().serial for _ in range(200)}
        assert len(seen) == 200

    def test_serials_survive_remount(self, fs, image):
        before = {fs.new_fid().serial for _ in range(10)}
        fs.sync()
        mounted = FileSystem.mount(DiskDrive(image))
        after = {mounted.new_fid().serial for _ in range(10)}
        assert not before & after

    def test_serials_never_reused_even_without_sync(self, fs, image):
        """The lease protocol: a crash (no sync) may skip serials but can
        never hand one out twice."""
        fs.sync()
        used = {fs.new_fid().serial for _ in range(30)}  # beyond one lease
        # Crash: no sync.  Remount from the stale descriptor.
        mounted = FileSystem.mount(DiskDrive(image))
        fresh = {mounted.new_fid().serial for _ in range(200)}
        assert not used & fresh

    def test_directory_bit(self, fs):
        assert fs.new_fid(directory=True).is_directory
        assert not fs.new_fid().is_directory


class TestSync:
    def test_sync_freshens_the_map(self, fs, image):
        fs.create_file("f.dat").write_data(b"y" * 1000)
        fs.sync()
        mounted = FileSystem.mount(DiskDrive(image))
        assert mounted.free_pages() == fs.free_pages()

    def test_stale_map_is_harmless(self, fs, image):
        """Skipping sync leaves the on-disk map stale -- a hint, not a
        hazard: allocation still label-checks everything."""
        fs.sync()
        fs.create_file("after-sync.dat").write_data(b"z" * 2000)
        mounted = FileSystem.mount(DiskDrive(image))  # stale map!
        # Allocating through the stale map must not clobber the file.
        mounted.create_file("new.dat").write_data(b"w" * 2000)
        assert mounted.open_file("after-sync.dat").read_data() == b"z" * 2000
        assert mounted.allocator.map_lies > 0  # the lies were caught
