"""Unit tests for the disk descriptor."""

import pytest

from repro.disk import tiny_test_disk
from repro.errors import FileFormatError
from repro.fs.allocator import PageAllocator
from repro.fs.descriptor import DiskDescriptor
from repro.fs.names import FileId, FullName, make_serial


@pytest.fixture
def shape():
    return tiny_test_disk(cylinders=6)


def build(shape, counter=100):
    allocator = PageAllocator(shape)
    allocator.mark_busy(3)
    return DiskDescriptor(
        shape=shape,
        serial_counter=counter,
        root_directory=FullName(FileId(make_serial(2, directory=True)), 0, 9),
        free_map_words=allocator.pack(),
    )


class TestRoundTrip:
    def test_pack_unpack(self, shape):
        descriptor = build(shape)
        again = DiskDescriptor.unpack(shape, descriptor.pack())
        assert again.serial_counter == 100
        assert again.root_directory == descriptor.root_directory
        assert again.free_map_words == descriptor.free_map_words

    def test_allocator_reconstruction(self, shape):
        descriptor = build(shape)
        allocator = descriptor.allocator()
        assert not allocator.is_free(3)
        assert allocator.is_free(4)

    def test_with_map(self, shape):
        descriptor = build(shape)
        fresh = PageAllocator(shape)
        fresh.mark_busy(7)
        descriptor.with_map(fresh)
        assert not descriptor.allocator().is_free(7)

    def test_fixed_size(self, shape):
        """The descriptor's size depends only on the shape, so rewriting it
        can never change its own page count."""
        assert len(build(shape).pack()) == DiskDescriptor.data_word_count(shape)


class TestValidation:
    def test_bad_magic(self, shape):
        words = build(shape).pack()
        words[0] = 0
        with pytest.raises(FileFormatError):
            DiskDescriptor.unpack(shape, words)

    def test_bad_version(self, shape):
        words = build(shape).pack()
        words[1] = 99
        with pytest.raises(FileFormatError):
            DiskDescriptor.unpack(shape, words)

    def test_shape_mismatch(self, shape):
        """The disk shape is absolute: mounting a pack on the wrong drive
        model must fail loudly."""
        words = build(shape).pack()
        with pytest.raises(FileFormatError):
            DiskDescriptor.unpack(tiny_test_disk(cylinders=7), words)

    def test_truncated_map(self, shape):
        words = build(shape).pack()
        with pytest.raises(FileFormatError):
            DiskDescriptor.unpack(shape, words[:-2])

    def test_too_short(self, shape):
        with pytest.raises(FileFormatError):
            DiskDescriptor.unpack(shape, [1, 2, 3])
