"""Stateful property test: a directory against a dictionary model.

Whatever interleaving of adds, removes, replaces, and hint updates a
program performs, the directory must behave exactly like a (case-folded)
dict -- including after a full write-out/reparse cycle on every operation,
which is how the implementation works.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.errors import DirectoryError, FileNotFound
from repro.fs import FileSystem
from repro.fs.names import FileId, FullName, make_serial

NAMES = [f"file-{i}.ext" for i in range(8)] + ["MiXeD.CaSe", "x"]


class DirectoryMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        image = DiskImage(tiny_test_disk(cylinders=30))
        self.fs = FileSystem.format(DiskDrive(image))
        self.directory = self.fs.create_directory("Model")
        self.model = {}  # lowercased name -> (display name, FullName)
        self.counter = 100

    def _fresh_full_name(self):
        self.counter += 1
        return FullName(FileId(make_serial(self.counter)), 0, self.counter % 500)

    @rule(name=st.sampled_from(NAMES))
    def add(self, name):
        full_name = self._fresh_full_name()
        if name.lower() in self.model:
            with pytest.raises(DirectoryError):
                self.directory.add(name, full_name)
        else:
            self.directory.add(name, full_name)
            self.model[name.lower()] = (name, full_name)

    @rule(name=st.sampled_from(NAMES))
    def add_replace(self, name):
        full_name = self._fresh_full_name()
        self.directory.add(name, full_name, replace=True)
        # Replace keeps the NEW spelling.
        self.model[name.lower()] = (name, full_name)

    @rule(name=st.sampled_from(NAMES))
    def remove(self, name):
        if name.lower() in self.model:
            entry = self.directory.remove(name)
            expected = self.model.pop(name.lower())
            assert entry.full_name == expected[1]
        else:
            with pytest.raises(FileNotFound):
                self.directory.remove(name)

    @rule(name=st.sampled_from(NAMES), address=st.integers(min_value=0, max_value=500))
    def update_hint(self, name, address):
        if name.lower() in self.model:
            self.directory.update_hint(name, address)
            display, full_name = self.model[name.lower()]
            self.model[name.lower()] = (display, full_name.with_address(address))
        else:
            with pytest.raises(FileNotFound):
                self.directory.update_hint(name, address)

    @invariant()
    def matches_model(self):
        entries = {e.name.lower(): e for e in self.directory.entries()}
        assert set(entries) == set(self.model)
        for key, (display, full_name) in self.model.items():
            assert entries[key].name == display
            assert entries[key].full_name == full_name

    @invariant()
    def lookups_agree(self):
        for name in NAMES:
            found = self.directory.lookup(name)
            if name.lower() in self.model:
                assert found is not None
            else:
                assert found is None


DirectoryMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
TestDirectoryModel = DirectoryMachine.TestCase
