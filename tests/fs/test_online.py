"""Incremental scavenge/compaction: bounded slices, verified boundaries.

The offline tools own the pack for a full run; :class:`OnlineMaintenance`
must do the same repairs in budgeted slices *while the file system stays
live* -- so the tests check three things the offline suite cannot: that
work actually arrives in bounded pieces, that every boundary passes the
consistency check, and that a server interleaving slices with request
service corrupts nothing.
"""

import pytest

from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
from repro.disk.sector import Label
from repro.fs.descriptor import BOOT_PAGE_ADDRESS
from repro.fs.fsck import check_image
from repro.fs.online import (
    DEFAULT_BUDGET_US,
    MaintenanceInvariantError,
    OnlineMaintenance,
    PHASE_DONE,
    PHASE_SWEEP,
)

GARBAGE_LABEL = Label(serial=0x0042, version=1, page_number=1, length=0)


def build_fs(files=3):
    fs = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
    for i in range(files):
        fs.create_file(f"f{i}.dat").write_data(bytes([i]) * (600 + 100 * i))
    return fs


def plant_garbage(fs, count=3):
    """Stamp in-use-but-unparseable labels on free sectors near the top."""
    image = fs.drive.image
    planted = []
    for address in range(image.shape.total_sectors() - 1, 1, -1):
        if len(planted) == count:
            break
        if address == BOOT_PAGE_ADDRESS or not fs.allocator.is_free(address):
            continue
        sector = image.sector(address)
        if not Label.unpack(sector.label_words()).is_free:
            continue
        sector.set_label_words(GARBAGE_LABEL.pack())
        planted.append(address)
    assert len(planted) == count
    return planted


def test_clean_pack_finishes_with_verified_boundaries():
    fs = build_fs()
    maint = OnlineMaintenance(fs)
    report = maint.run_to_completion()
    assert maint.phase == PHASE_DONE
    assert report.passes == 1
    assert report.slices == report.checks_passed   # every boundary verified
    assert report.sectors_audited == fs.drive.shape.total_sectors()
    assert not check_image(fs.drive.image).issues


def test_slices_are_time_bounded():
    fs = build_fs()
    maint = OnlineMaintenance(fs, budget_us=5_000)
    before = fs.drive.clock.now_us
    assert maint.step()
    elapsed = fs.drive.clock.now_us - before
    # One slice: the budget, plus at most one overshooting work unit and
    # the boundary flush -- never a whole-pack pause.
    assert elapsed < 20 * 5_000
    assert maint.report.slices == 1


def test_sweep_repairs_map_drift_in_both_directions():
    fs = build_fs()
    allocator = fs.allocator
    # A lost page: the map says busy, the label says free.
    lost = next(a for a in range(2, fs.drive.shape.total_sectors())
                if allocator.is_free(a) and a != BOOT_PAGE_ADDRESS)
    allocator.mark_busy(lost)
    # The other drift: the map says free, the label says in use.
    used = next(a for a in range(2, fs.drive.shape.total_sectors())
                if not allocator.is_free(a)
                and fs.drive.read_label(a).in_use)
    allocator.mark_free(used)
    report = OnlineMaintenance(fs).run_to_completion()
    assert report.map_freed >= 1
    assert report.map_busied >= 1
    assert allocator.is_free(lost)
    assert not allocator.is_free(used)


def test_sweep_frees_garbage_labels_and_tolerates_them_as_baseline():
    fs = build_fs()
    planted = plant_garbage(fs, count=3)
    assert any(i.kind == "garbage-label" for i in check_image(fs.drive.image).issues)
    # "garbage-label" is NOT in the tolerated kinds -- only the baseline
    # capture keeps the first boundary from declaring the patrol guilty
    # of damage it merely inherited.
    report = OnlineMaintenance(fs).run_to_completion()
    assert report.garbage_labels_freed == 3
    for address in planted:
        assert fs.allocator.is_free(address)
    assert not check_image(fs.drive.image).issues


def test_new_damage_past_the_baseline_is_fatal():
    fs = build_fs()
    maint = OnlineMaintenance(fs)
    assert maint.step()                       # baseline captured clean
    plant_garbage(fs, count=1)                # damage appears *after* it
    with pytest.raises(MaintenanceInvariantError):
        maint.run_to_completion()


def test_compaction_moves_pages_down_without_breaking_files():
    fs = build_fs(files=6)
    # Free the low end of the pack so the top has somewhere to go.
    for i in range(3):
        fs.delete_file(f"f{i}.dat")
    maint = OnlineMaintenance(fs)
    report = maint.run_to_completion()
    assert report.pages_moved > 0
    for i in range(3, 6):
        assert fs.open_file(f"f{i}.dat").read_data() == bytes([i]) * (600 + 100 * i)
    assert not check_image(fs.drive.image).issues


def test_continuous_patrol_restarts_after_done():
    fs = build_fs()
    maint = OnlineMaintenance(fs, continuous=True)
    slices = 0
    while maint.report.passes < 2:
        assert maint.step()                   # a patrol never reports done
        slices += 1
        assert slices < 10_000
    assert maint.report.passes == 2
    assert maint.report.sectors_audited >= 2 * fs.drive.shape.total_sectors()


def test_one_shot_maintenance_stays_done():
    fs = build_fs()
    maint = OnlineMaintenance(fs)
    maint.run_to_completion()
    assert maint.step() is False
    assert maint.report.passes == 1


def test_maintenance_interleaves_with_request_service():
    from repro.net import PacketNetwork
    from repro.server import FileClient, FileServer

    fs = build_fs(files=0)
    plant_garbage(fs, count=2)
    net = PacketNetwork(clock=fs.drive.clock)
    net.attach("fileserver")
    net.attach("ws")
    server = FileServer(fs, net)
    server.maintenance = OnlineMaintenance(fs)
    client = FileClient(net, "ws", pump=server.poll)
    # Requests are served while slices run between poll cycles.
    for i in range(4):
        client.write_file(f"live{i}.txt", bytes([0x40 + i]) * 900)
    while server.maintenance.step():
        pass
    for i in range(4):
        assert client.read_file(f"live{i}.txt") == bytes([0x40 + i]) * 900
    report = server.maintenance.report
    assert report.garbage_labels_freed == 2
    assert report.checks_passed > 0
    assert not check_image(fs.drive.image).issues
