"""Scavenger tests: reconstruction of every hint from the absolutes
(section 3.5), across an inventory of disasters."""

import pytest

from repro.disk import DiskDrive, DiskImage, FaultInjector, Label, tiny_test_disk
from repro.fs import (
    DESCRIPTOR_LEADER_ADDRESS,
    DESCRIPTOR_NAME,
    FileSystem,
    ROOT_DIRECTORY_NAME,
    Scavenger,
    scavenge,
)
from repro.fs.names import page_number_from_label


def remount(image, clock=None):
    drive = DiskDrive(image, clock=clock)
    return FileSystem.mount(drive)


def rescavenge(image, clock=None):
    drive = DiskDrive(image, clock=clock)
    return Scavenger(drive).scavenge()


def read_anywhere(fs, name):
    """Find *name* in the root or any directory listed in the root."""
    from repro.errors import FileFormatError, FileNotFound, NotADirectory

    try:
        return fs.open_file(name).read_data()
    except FileNotFound:
        pass
    for entry_name in fs.list_files():
        try:
            sub = fs.open_directory(entry_name)
        except (NotADirectory, FileFormatError):
            continue
        if sub.file.fid == fs.root.file.fid:
            continue
        entry = sub.lookup(name)
        if entry is not None:
            return fs.open_entry(entry).read_data()
    raise FileNotFound(name)


def all_payloads_intact(fs, payloads):
    return all(read_anywhere(fs, name) == data for name, data in payloads.items())


class TestCleanDisk:
    def test_scavenging_a_clean_disk_changes_nothing(self, populated_fs, image):
        report = rescavenge(image)
        assert report.links_repaired == 0
        assert report.garbage_labels_freed == 0
        assert report.orphans_rescued == []
        assert report.entries_nulled == 0
        fs = remount(image)
        assert all_payloads_intact(fs, populated_fs.payloads)

    def test_map_is_recomputed_exactly(self, populated_fs, image):
        report = rescavenge(image)
        assert report.free_pages == image.count_free() - 1  # minus boot reserve

    def test_table_fits_in_memory(self, populated_fs, image):
        """Section 3.5: 48 bits per sector fit in main storage for the
        standard disks."""
        report = rescavenge(image)
        assert report.table_fits_in_memory
        assert report.table_bits_per_sector == 48

    def test_idempotent(self, populated_fs, image):
        first = rescavenge(image)
        second = rescavenge(image)
        assert second.repairs_made() == 0
        assert second.files_found == first.files_found


class TestLinkRepair:
    def test_scrambled_links_are_reconstructed(self, populated_fs, image, injector):
        victims = injector.random_in_use_addresses(5)
        for address in victims:
            injector.scramble_links(address)
        report = rescavenge(image)
        assert report.links_repaired >= 5
        assert all_payloads_intact(remount(image), populated_fs.payloads)

    def test_swapped_sectors_recovered(self, populated_fs, image, injector):
        a, b = injector.random_in_use_addresses(2)
        injector.swap_sectors(a, b)
        rescavenge(image)
        assert all_payloads_intact(remount(image), populated_fs.payloads)


class TestGarbageAndDuplicates:
    def test_garbage_label_freed(self, populated_fs, image, injector):
        address = injector.random_in_use_addresses(1)[0]
        injector.scramble_label(address)
        report = rescavenge(image)
        # Either freed as garbage, or (rarely) parsed as a valid-looking
        # label and swept into some file; both leave the disk consistent.
        assert report.garbage_labels_freed + report.duplicate_pages_freed >= 0
        remount(image)

    def test_duplicate_absolute_names_resolved(self, populated_fs, image):
        """Two sectors claiming the same (FV, n): keep one, free the other."""
        # Find an in-use page and forge a duplicate on a free sector.
        source = next(s for s in image.sectors() if s.label.in_use)
        free = next(s for s in image.sectors() if s.label.is_free)
        free.label = source.label
        free.value = list(source.value)
        report = rescavenge(image)
        assert report.duplicate_pages_freed == 1
        assert all_payloads_intact(remount(image), populated_fs.payloads)


class TestIncompleteFiles:
    def test_headless_chain_freed(self, populated_fs, image, injector):
        """Pages with no page 0 cannot be named; they are reclaimed."""
        target = populated_fs.open_file("file01.dat")
        leader_address = target.leader_address()
        injector.scramble_label(leader_address)
        free_before = image.count_free()
        report = rescavenge(image)
        assert report.headless_chains_freed > 0
        fs = remount(image)
        assert "file01.dat" not in fs.list_files()
        assert image.count_free() > free_before

    def test_gap_truncates_file(self, populated_fs, image, injector):
        target = populated_fs.open_file("file08.dat")
        assert target.last_page_number >= 3, "need a multi-page file"
        middle = target.page_name(2).address
        injector.scramble_label(middle)
        report = rescavenge(image)
        assert any(
            serial == target.fid.serial for serial, _v, _n in report.truncated_files
        )
        fs = remount(image)
        survivor = fs.open_file("file08.dat")
        # Page 1 survived; everything from the gap on is gone.
        assert survivor.last_page_number == 1


class TestDirectoryVerification:
    def test_stale_entry_hint_fixed(self, populated_fs, image):
        populated_fs.root.update_hint("file02.dat", 3)  # wrong address
        report = rescavenge(image)
        assert report.entries_fixed >= 1
        fs = remount(image)
        assert fs.open_file("file02.dat").read_data() == populated_fs.payloads["file02.dat"]

    def test_entry_to_nonexistent_file_nulled(self, populated_fs, image):
        from repro.fs.names import FileId, FullName, make_serial

        populated_fs.root.add("ghost.dat", FullName(FileId(make_serial(999)), 0, 50))
        report = rescavenge(image)
        assert report.entries_nulled == 1
        assert "ghost.dat" not in remount(image).list_files()

    def test_destroyed_directory_loses_no_files(self, populated_fs, image, injector):
        """Section 3.4: "If a directory is destroyed, we don't lose any
        files" -- they come back via their leader names."""
        sub = populated_fs.open_directory("Sub")
        injector.scramble_label(sub.file.page_name(1).address)
        report = rescavenge(image)
        fs = remount(image)
        assert "nested.txt" in report.orphans_rescued
        assert fs.open_file("nested.txt").read_data() == b"nested data"

    def test_corrupt_directory_data_rebuilt(self, populated_fs, image):
        sub = populated_fs.open_directory("Sub")
        raw = bytearray(sub.file.read_data())
        raw[0] = 0x77  # invalid entry type
        sub.file.write_data(bytes(raw))
        report = rescavenge(image)
        assert report.directories_rebuilt == 1
        fs = remount(image)
        assert "nested.txt" in fs.list_files()  # rescued into the root


class TestOrphanRescue:
    def test_unlisted_file_enters_main_directory(self, populated_fs, image):
        populated_fs.root.remove("file05.dat")  # entry gone, file remains
        report = rescavenge(image)
        assert "file05.dat" in report.orphans_rescued
        fs = remount(image)
        assert fs.open_file("file05.dat").read_data() == populated_fs.payloads["file05.dat"]

    def test_name_collision_gets_suffix(self, populated_fs, image):
        """Two orphans with the same leader name must both survive."""
        a = populated_fs.create_file("twin.dat")
        a.write_data(b"first twin")
        populated_fs.root.remove("twin.dat")
        b = populated_fs.create_file("twin.dat")
        b.write_data(b"second twin")
        populated_fs.root.remove("twin.dat")
        report = rescavenge(image)
        assert len([n for n in report.orphans_rescued if n.startswith("twin")]) == 2
        fs = remount(image)
        rescued = sorted(n for n in fs.list_files() if n.startswith("twin"))
        contents = {fs.open_file(n).read_data() for n in rescued}
        assert contents == {b"first twin", b"second twin"}

    def test_corrupt_leader_synthesized(self, populated_fs, image, injector):
        target = populated_fs.open_file("file06.dat")
        serial = target.fid.serial
        # Destroy the leader VALUE (name etc.), keeping the label.
        populated_fs.page_io.write(target.full_name(), [0] * 256)
        populated_fs.root.remove("file06.dat")
        report = rescavenge(image)
        assert report.leaders_rewritten >= 1
        fs = remount(image)
        rescued = [n for n in fs.list_files() if n.startswith("Rescued.")]
        assert len(rescued) == 1
        assert fs.open_file(rescued[0]).read_data() == populated_fs.payloads["file06.dat"]


class TestBadMedia:
    def test_decayed_sectors_marked_and_avoided(self, populated_fs, image, injector):
        # Decay two free sectors.
        free = [s.header.address for s in image.sectors() if s.label.is_free]
        injector.decay_sector(free[0])
        injector.decay_sector(free[1])
        report = rescavenge(image)
        assert set(report.bad_sectors) == {free[0], free[1]}
        fs = remount(image)
        assert not fs.allocator.is_free(free[0])
        assert not fs.allocator.is_free(free[1])


class TestTotalReconstruction:
    def test_descriptor_destroyed(self, populated_fs, image, injector):
        injector.scramble_label(DESCRIPTOR_LEADER_ADDRESS)
        report = rescavenge(image)
        assert report.descriptor_recreated
        fs = remount(image)
        assert fs.open_file(DESCRIPTOR_NAME).leader_address() == DESCRIPTOR_LEADER_ADDRESS
        assert all_payloads_intact(fs, populated_fs.payloads)

    def test_root_directory_destroyed(self, populated_fs, image, injector):
        root_file = populated_fs.root.file
        for pn in range(root_file.page_count()):
            injector.scramble_label(root_file.page_name(pn).address)
        rescavenge(image)
        fs = remount(image)
        assert all_payloads_intact(fs, populated_fs.payloads)

    def test_everything_at_once(self, populated_fs, image, injector):
        """The kitchen sink: descriptor + root + links + map all wrong."""
        injector.scramble_label(DESCRIPTOR_LEADER_ADDRESS)
        for address in injector.random_in_use_addresses(6):
            injector.scramble_links(address)
        report = rescavenge(image)
        fs = remount(image)
        assert all_payloads_intact(fs, populated_fs.payloads)
        # And a second scavenge finds nothing left to fix.
        assert rescavenge(image).repairs_made() == 0


class TestReportTiming:
    def test_elapsed_time_recorded(self, populated_fs, image):
        report = rescavenge(image)
        assert report.elapsed_s > 0
        assert "disk.transfer" in report.breakdown_ms
        assert "cpu" in report.breakdown_ms
