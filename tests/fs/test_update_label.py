"""Tests for PageIO.update_label: the one-revolution change-length op."""

import pytest

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.disk.geometry import NIL
from repro.disk.timing import ROTATION
from repro.errors import HintFailed
from repro.fs.names import FileId, FullName, make_serial
from repro.fs.page import PageIO


@pytest.fixture
def pio():
    return PageIO(DiskDrive(DiskImage(tiny_test_disk())))


@pytest.fixture
def fid():
    return FileId(make_serial(1))


def claim_page(pio, fid, address=6, pn=1, length=100):
    pio.claim(address, fid.label_for(pn, length=length), [7, 8, 9])
    return FullName(fid, pn, address)


class TestUpdateLabel:
    def test_transform_sees_the_current_label(self, pio, fid):
        name = claim_page(pio, fid, length=100)
        seen = {}

        def transform(label):
            seen["length"] = label.length
            return fid.label_for(1, length=200, next_link=label.next_link,
                                 prev_link=label.prev_link)

        new = pio.update_label(name, transform)
        assert seen["length"] == 100
        assert new.length == 200
        assert pio.read_label(name).length == 200

    def test_value_preserved(self, pio, fid):
        name = claim_page(pio, fid)
        pio.update_label(name, lambda label: fid.label_for(1, length=300))
        assert pio.read(name).value[:3] == [7, 8, 9]

    def test_costs_one_revolution_not_two(self, pio, fid):
        """The merged read-check+rewrite must beat the naive
        read_label + rewrite_label sequence by about a revolution."""
        drive = pio.drive
        rotation_us = drive.shape.rotation_ms * 1000

        name = claim_page(pio, fid, address=6)
        drive.read_sector(5)  # park just before
        watch = drive.clock.stopwatch()
        pio.update_label(name, lambda label: fid.label_for(1, length=1))
        merged_revs = watch.category_delta_us(ROTATION) / rotation_us

        name2 = claim_page(pio, fid, address=30, pn=2)
        drive.read_sector(29)
        watch = drive.clock.stopwatch()
        pio.read_label(name2)
        pio.rewrite_label(name2, fid.label_for(2, length=1))
        naive_revs = watch.category_delta_us(ROTATION) / rotation_us

        assert merged_revs < naive_revs - 0.5
        assert merged_revs < 1.1

    def test_stale_hint_fails_before_transform(self, pio, fid):
        name = claim_page(pio, fid)
        stale = name.with_address(40)
        called = []
        with pytest.raises(HintFailed):
            pio.update_label(stale, lambda label: called.append(label) or label)
        assert called == []

    def test_requires_hint(self, pio, fid):
        with pytest.raises(HintFailed):
            pio.update_label(FullName(fid, 1), lambda label: label)
