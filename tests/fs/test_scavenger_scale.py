"""Scavenger memory-budget tests (section 3.5).

"If there is enough main storage to hold a table with 48 bits per sector,
a suitable choice of data structure allows this processing to be done
without any auxiliary storage.  This is in fact the case for the machine's
standard disks.  Larger disks require this list to be written on a
specially reserved section of the disk."
"""

import pytest

from repro.disk import DiskDrive, DiskImage, DiskShape, diablo31, diablo44
from repro.fs import FileSystem, Scavenger
from repro.memory.core import MEMORY_WORDS


class TestTableBudget:
    def test_standard_disks_fit(self):
        for shape in (diablo31(), diablo44()):
            assert 3 * shape.total_sectors() <= MEMORY_WORDS

    def test_report_flags_the_standard_disk_as_fitting(self, populated_fs, image):
        report = Scavenger(DiskDrive(image)).scavenge()
        assert report.table_fits_in_memory
        assert report.table_bits_per_sector == 48

    def test_oversize_disk_is_flagged(self):
        """A disk past the 64k-word table budget: the scavenge still works
        (our host has memory to spare) but the report records that the real
        machine would have needed the on-disk table."""
        huge = DiskShape(name="huge", cylinders=1000, heads=2, sectors_per_track=12)
        assert 3 * huge.total_sectors() > MEMORY_WORDS
        image = DiskImage(huge)
        fs = FileSystem.format(DiskDrive(image))
        fs.create_file("x.dat").write_data(b"x" * 1000)
        fs.sync()
        report = Scavenger(DiskDrive(image)).scavenge()
        assert not report.table_fits_in_memory
        assert report.files_found >= 3
