"""Run the docstring examples of ``repro.net`` and ``repro.server``.

CI's docs job runs ``pytest --doctest-modules src/repro/net
src/repro/server`` directly; this test keeps the same examples green under
the plain test run, so a stale docstring fails close to the change that
broke it.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro.net
import repro.server


def doctest_modules():
    for package in (repro.net, repro.server):
        yield package.__name__
        for info in pkgutil.iter_modules(package.__path__):
            yield f"{package.__name__}.{info.name}"


@pytest.mark.parametrize("module_name", sorted(doctest_modules()))
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"


@pytest.mark.parametrize("package", [repro.net, repro.server])
def test_every_public_name_has_a_docstring(package):
    """The audit itself: everything exported by the package documents itself."""
    missing = []
    for name in package.__all__:
        obj = getattr(package, name)
        if callable(obj) and not (obj.__doc__ or "").strip():
            missing.append(name)
    assert not missing, f"{package.__name__} exports lack docstrings: {missing}"
