"""Model-based cluster tests: shard count must be observationally invisible.

A hypothesis-driven op sequencer runs the same mixed workload -- OPEN,
WRITE, READ, CLOSE, LIST, including bogus-handle and reopen-after-close
cases -- against a 1-shard and a 4-shard cluster and asserts every
client-visible outcome (status codes, granted handle values, result
words, payloads) is identical.  A separate determinism test reruns the
seeded load generator on a 4-shard cluster and asserts byte-identical
per-shard packs and an identical merged metrics snapshot.
"""

import pytest

from repro.errors import RequestFailed
from repro.server import build_cluster
from repro.server.loadgen import LoadGenerator

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

#: The model's name universe -- small enough that reopen/collision cases
#: are common, spread across slots so multi-shard clusters split it.
NAMES = [f"model{i}.dat" for i in range(6)]

operations = st.lists(
    st.one_of(
        st.tuples(st.just("open"), st.integers(0, 5), st.booleans()),
        st.tuples(st.just("write"), st.integers(0, 7),
                  st.integers(1, 3), st.integers(0, 512)),
        st.tuples(st.just("read"), st.integers(0, 7),
                  st.integers(1, 3), st.integers(1, 2)),
        st.tuples(st.just("close"), st.integers(0, 7)),
        st.tuples(st.just("list")),
    ),
    min_size=1, max_size=18,
)


def run_ops(system, ops):
    """Drive one op sequence; returns every client-visible outcome.

    Handle references index the pool of currently granted handles (or a
    known-bogus handle when none exist), so sequences stay meaningful --
    and identical -- at any shard count.
    """
    client = system.clients[0]
    client.pump = system.router.poll
    handles = []
    visible = []
    for op in ops:
        kind = op[0]
        try:
            if kind == "open":
                _, index, create = op
                response = client.transact(
                    client.build_open(NAMES[index], create=create))
                handles.append(response.handle)
                visible.append(("open", response.handle,
                                response.result0, response.result1))
            elif kind == "write":
                _, pick, page, nbytes = op
                handle = handles[pick % len(handles)] if handles else 99
                data = bytes((page * 31 + j) % 256 for j in range(nbytes))
                response = client.transact(
                    client.build_write(handle, page, data))
                visible.append(("write", response.result0))
            elif kind == "read":
                _, pick, page, count = op
                handle = handles[pick % len(handles)] if handles else 99
                response = client.transact(
                    client.build_read(handle, page, count))
                visible.append(("read", response.result0,
                                tuple(response.payload)))
            elif kind == "close":
                _, pick = op
                handle = handles[pick % len(handles)] if handles else 99
                client.transact(client.build_close(handle))
                if handles:
                    handles.remove(handle)
                visible.append(("close", handle))
            else:
                response = client.transact(client.build_list())
                visible.append(("list", response.result0,
                                tuple(response.payload)))
        except RequestFailed as exc:
            visible.append((kind, "error", exc.status))
    return visible


@settings(max_examples=15, deadline=None)
@given(ops=operations)
def test_one_and_four_shard_clusters_agree_on_every_outcome(ops):
    single = build_cluster(clients=1, shards=1, seed=1979, tiny=True)
    quad = build_cluster(clients=1, shards=4, seed=1979, tiny=True)
    assert run_ops(single, ops) == run_ops(quad, ops)


def pack_state(image):
    return [(tuple(s.header.pack()), tuple(s.label.pack()), tuple(s.value))
            for s in image.sectors()]


def run_cluster_load(shards=4, clients=6, seed=7):
    system = build_cluster(clients=clients, shards=shards, seed=seed,
                           tiny=True)
    generator = LoadGenerator(system, seed=seed, file_bytes=700,
                              read_rounds=1)
    result = generator.run()
    for shard in system.shards:
        shard.fs.flush()
    return system, result


def test_same_seed_cluster_reruns_are_byte_identical():
    system_a, result_a = run_cluster_load()
    system_b, result_b = run_cluster_load()
    assert result_a.to_json() == result_b.to_json()
    assert result_a.latencies_ms == result_b.latencies_ms
    assert system_a.clock.now_us == system_b.clock.now_us
    assert system_a.stats() == system_b.stats()
    for shard_a, shard_b in zip(system_a.shards, system_b.shards):
        assert (pack_state(shard_a.fs.drive.image)
                == pack_state(shard_b.fs.drive.image))


def test_different_cluster_seeds_diverge():
    _, result_a = run_cluster_load(seed=7)
    _, result_b = run_cluster_load(seed=8)
    assert result_a.to_json() != result_b.to_json()


def test_load_outcomes_match_across_shard_counts():
    """The generator's request/error totals -- the client-visible half of
    a load run -- are shard-count independent; only timing changes."""
    _, single = run_cluster_load(shards=1)
    _, quad = run_cluster_load(shards=4)
    assert single.requests == quad.requests
    assert single.errors == quad.errors == 0
    assert single.bytes_written == quad.bytes_written


def test_every_served_file_lands_on_exactly_one_shard():
    system, result = run_cluster_load()
    assert result.errors == 0
    for index in range(len(system.clients)):
        name = f"load{index:03d}.dat"
        owners = [shard for shard in system.shards
                  if name in shard.fs.list_files()]
        assert len(owners) == 1
        assert owners[0] is system.shards[system.router.shard_map.shard_of(name)]
