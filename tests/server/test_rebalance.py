"""Crash-safe slot shipping: the protocol, its recovery, and the sweep.

The shipping invariant is the cluster's durability story: after any
crash during a rebalance, every moving name is intact on exactly one
pack, all moving names share that pack, bystanders are untouched, and no
protocol residue (``!ship`` temps, manifests) survives recovery.  The
exhaustive sweep crashes at every part-write across *both* packs -- the
same sweep ``python -m repro crashtest --rebalance`` runs.
"""

import pytest

from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
from repro.server.rebalance import (
    MANIFEST_NAME,
    MANIFEST_SHADOW,
    SHIP_SUFFIX,
    Shipment,
    rebalance_crash_sweep,
    recover_shipment,
    ship_names,
)


def fresh_fs(cylinders=20):
    return FileSystem.format(DiskDrive(DiskImage(tiny_test_disk(cylinders))))


def test_ship_names_moves_files_and_spares_bystanders():
    source, target = fresh_fs(), fresh_fs()
    moving = {f"move{i}.dat": bytes([i]) * (200 + 300 * i) for i in range(3)}
    for name, data in moving.items():
        source.create_file(name).write_data(data)
    source.create_file("stay.dat").write_data(b"source bystander")
    target.create_file("resident.dat").write_data(b"target bystander")

    shipment = ship_names(source, target, sorted(moving), slot=5,
                          source=0, target=1)

    assert sorted(shipment.names) == sorted(moving)
    assert (shipment.slot, shipment.source, shipment.target) == (5, 0, 1)
    for name, data in moving.items():
        assert name not in source.list_files()
        assert target.open_file(name).read_data() == data
    assert source.open_file("stay.dat").read_data() == b"source bystander"
    assert target.open_file("resident.dat").read_data() == b"target bystander"
    # No protocol residue on either pack.
    for name in source.list_files() + target.list_files():
        assert SHIP_SUFFIX not in name.lower()
        assert not name.lower().startswith(MANIFEST_NAME.lower())


def test_recover_rolls_back_staged_temps_without_a_manifest():
    """Before the commit rename the shipment legally never happened."""
    source, target = fresh_fs(), fresh_fs()
    source.create_file("cargo.dat").write_data(b"original")
    target.create_file("cargo.dat" + SHIP_SUFFIX).write_data(b"staged copy")
    target.create_file(MANIFEST_SHADOW).write_data(b"uncommitted")
    target.flush()

    assert recover_shipment(source, target) is None
    assert source.open_file("cargo.dat").read_data() == b"original"
    assert "cargo.dat" not in target.list_files()
    for name in target.list_files():
        assert SHIP_SUFFIX not in name.lower()
        assert not name.lower().startswith(MANIFEST_NAME.lower())


def test_recover_rolls_forward_a_committed_manifest():
    """After the commit rename the shipment legally happened: finish it."""
    source, target = fresh_fs(), fresh_fs()
    source.create_file("cargo.dat").write_data(b"payload")
    target.create_file("cargo.dat" + SHIP_SUFFIX).write_data(b"payload")
    manifest = Shipment(slot=9, source=0, target=1, names=["cargo.dat"])
    target.create_file(MANIFEST_NAME).write_data(manifest.encode())
    target.flush()

    recovered = recover_shipment(source, target)
    assert recovered is not None
    assert recovered.slot == 9 and recovered.names == ["cargo.dat"]
    assert target.open_file("cargo.dat").read_data() == b"payload"
    assert "cargo.dat" not in source.list_files()
    assert MANIFEST_NAME not in target.list_files()


def test_recovery_is_idempotent():
    """Recovering twice (a crash during recovery) changes nothing more."""
    source, target = fresh_fs(), fresh_fs()
    source.create_file("cargo.dat").write_data(b"payload")
    target.create_file("cargo.dat" + SHIP_SUFFIX).write_data(b"payload")
    manifest = Shipment(slot=2, source=0, target=1, names=["cargo.dat"])
    target.create_file(MANIFEST_NAME).write_data(manifest.encode())
    target.flush()

    assert recover_shipment(source, target) is not None
    names_after_first = sorted(target.list_files())
    assert recover_shipment(source, target) is None      # nothing in flight
    assert sorted(target.list_files()) == names_after_first
    assert target.open_file("cargo.dat").read_data() == b"payload"


def test_torn_manifest_is_treated_as_uncommitted():
    """A manifest that does not parse cannot have been committed."""
    source, target = fresh_fs(), fresh_fs()
    source.create_file("cargo.dat").write_data(b"original")
    target.create_file("cargo.dat" + SHIP_SUFFIX).write_data(b"staged")
    target.create_file(MANIFEST_NAME).write_data(b"\xff\xfe garbage")
    target.flush()

    assert recover_shipment(source, target) is None
    assert source.open_file("cargo.dat").read_data() == b"original"
    assert "cargo.dat" not in target.list_files()


def test_shipment_manifest_roundtrip():
    shipment = Shipment(slot=17, source=2, target=5,
                        names=["a.dat", "b with space.txt"])
    assert Shipment.decode(shipment.encode()) == shipment
    with pytest.raises(ValueError):
        Shipment.decode(b"too short")


def test_full_crash_sweep_recovers_every_point():
    """Every part-write crash across both packs recovers to the invariant."""
    result = rebalance_crash_sweep(seed=1979, cylinders=20)
    assert result.points_tested == result.total_writes > 0
    assert result.ok, "\n".join(str(r) for r in result.failures)
    # Both roll directions must actually be exercised by the sweep.
    assert any(r.rolled == "forward" for r in result.reports)
    assert any(r.rolled == "back" for r in result.reports)


def test_full_crash_sweep_recovers_with_torn_writes():
    """The crashing write lands half-old half-new; recovery still holds."""
    result = rebalance_crash_sweep(seed=1979, cylinders=20, tear=True)
    assert result.points_tested == result.total_writes > 0
    assert result.ok, "\n".join(str(r) for r in result.failures)


def test_sweep_rejects_out_of_range_points():
    with pytest.raises(ValueError):
        rebalance_crash_sweep(seed=1979, cylinders=20, points=[10_000])
