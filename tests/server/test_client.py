"""Client retry-machinery tests: timeout, resend, backoff, loss recovery."""

import pytest

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.errors import RequestTimeout
from repro.fs import FileSystem
from repro.net import PacketNetwork
from repro.server import FileClient, FileServer


def make_pair(**client_kw):
    image = DiskImage(tiny_test_disk(cylinders=24))
    fs = FileSystem.format(DiskDrive(image))
    network = PacketNetwork(clock=fs.drive.clock)
    network.attach("fileserver", queue_limit=4096)
    network.attach("ws")
    server = FileServer(fs, network)
    client = FileClient(network, "ws", **client_kw)
    return network, server, client


def drain(network, host):
    """Drop every packet queued for *host* (simulated loss)."""
    dropped = 0
    while network.receive(host) is not None:
        dropped += 1
    return dropped


def test_timeout_resends_the_same_request_id():
    network, server, client = make_pair(timeout_us=10_000)
    pending = client.submit(client.build_list())
    drain(network, "fileserver")                        # request lost
    assert client.step(pending) is None
    client.clock.advance_us(11_000, "test.wait")
    assert client.step(pending) is None                 # timed out -> resent
    assert pending.attempts == 2
    server.poll()
    response = client.step(pending)
    assert response is not None and response.ok
    assert response.request_id == pending.request.request_id
    assert client.clock.obs.stats()["server.client.retries"] == 1


def test_lost_response_is_replayed_not_reexecuted():
    network, server, client = make_pair(timeout_us=10_000)
    handle = client_open(server, client, "loss.txt")
    pending = client.submit(client.build_write(handle, 1, b"append once"))
    server.poll()                                       # executed; response queued
    assert drain(network, "ws") > 0                     # ...and lost
    client.clock.advance_us(11_000, "test.wait")
    assert client.step(pending) is None                 # resend fires
    server.poll()                                       # replay cache answers
    response = client.step(pending)
    assert response is not None and response.ok
    stats = server.stats()
    assert stats["server.replayed"] == 1
    assert stats["server.pages_written"] == 1           # the write ran once


def client_open(server, client, name):
    pending = client.submit(client.build_open(name, create=True))
    server.poll()
    return client.step(pending).handle


def test_retries_exhaust_into_request_timeout():
    network, server, client = make_pair(timeout_us=5_000, max_retries=2)
    pending = client.submit(client.build_list())
    with pytest.raises(RequestTimeout):
        for _ in range(10):
            drain(network, "fileserver")                # every attempt lost
            client.clock.advance_us(6_000, "test.wait")
            client.step(pending)
    assert pending.attempts == 3                        # initial + 2 retries


def test_busy_backoff_grows_exponentially():
    network, server, client = make_pair(backoff_us=4_000, backoff_factor=2)
    pending = client.submit(client.build_list())
    now = client.clock.now_us
    client._schedule_resend(pending, now)
    assert pending.resend_at_us == now + 4_000
    assert pending.backoff_us == 8_000                  # doubled for next time
    client.clock.advance_us(4_000, "test.wait")
    client.step(pending)                                # fires the resend
    assert pending.resend_at_us is None and pending.attempts == 2
    client._schedule_resend(pending, client.clock.now_us)
    assert pending.resend_at_us == client.clock.now_us + 8_000


def test_stale_response_is_discarded_by_id():
    network, server, client = make_pair()
    abandoned = client.submit(client.build_list())
    server.poll()                                       # answer now queued
    del abandoned                                       # client gave up on it
    fresh = client.submit(client.build_list())
    server.poll()
    response = client.step(fresh)
    assert response is not None
    assert response.request_id == fresh.request.request_id
    assert client.clock.obs.stats()["server.client.stale_replies"] == 1


def test_request_ids_cycle_without_zero():
    network, server, client = make_pair()
    client._next_id = 0xFFFF
    first = client.build_list()
    second = client.build_list()
    assert first.request_id == 0xFFFF
    assert second.request_id == 1                       # wraps past zero


def test_read_batching_uses_few_requests():
    network, server, client = make_pair()
    client.pump = server.poll
    data = bytes(i & 0xFF for i in range(512 * 6 + 40))     # 7 pages
    client.write_file("big.dat", data)
    stats_before = client.clock.obs.stats()["server.client.requests"]
    assert client.read_file("big.dat") == data
    requests = client.clock.obs.stats()["server.client.requests"] - stats_before
    assert requests == 3                                # open + 1 batched read + close
