"""The failover drill: kill the primary mid-load, lose nothing acked.

The exhaustive sweep (every part-write a crash point) is the CLI's and
CI's job -- ``python -m repro failover``.  Here the drill is pinned at
test speed: the clean run, a handful of representative crash points
(early, mid-stream, late), and the CLI plumbing itself.
"""

import pytest

from repro.server.failover import (
    failover_crash_sweep,
    failover_drill,
    workload_files,
)


def test_clean_drill_acks_the_whole_workload():
    report = failover_drill()
    assert report.ok, report.problems
    assert report.crash_point == 0
    assert report.tail_records == 0              # nothing crashed
    assert report.promotion_us == 0
    # Every page of every workload file was acked and verified.
    pages = sum(len(data) // 512 + 1 for _, data in workload_files(1979))
    assert report.acked_pages == pages


def test_workload_is_seed_deterministic():
    assert workload_files(7) == workload_files(7)
    assert workload_files(7) != workload_files(8)


@pytest.mark.parametrize("point", [5, 45, 90])
def test_swept_crash_points_lose_no_acked_write(point):
    result = failover_crash_sweep(points=[point])
    assert result.ok, result.summary()
    assert result.points_tested == 1
    report = result.reports[0]
    assert report.crash_point == point
    assert report.promotion_us > 0               # the standby was promoted
    assert not report.problems


def test_sweep_rejects_out_of_range_points():
    with pytest.raises(ValueError):
        failover_crash_sweep(points=[10**9])


def test_failover_cli_drill(capsys):
    from repro.__main__ import main

    assert main(["failover", "--drill-only"]) == 0
    out = capsys.readouterr().out
    assert "crash@0" in out and "ok" in out


def test_failover_cli_sweep_subsample(capsys):
    from repro.__main__ import main

    assert main(["failover", "--points", "45", "-v"]) == 0
    out = capsys.readouterr().out
    assert "zero acked writes lost" in out
