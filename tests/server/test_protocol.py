"""Wire-protocol tests: framing, reassembly, interleaving, malformed frames."""

import pytest

from repro.errors import ProtocolError
from repro.net.network import (
    MAX_PAYLOAD_WORDS,
    Packet,
    PacketNetwork,
    TYPE_CONTROL,
    TYPE_DATA,
    TYPE_END_OF_FILE,
)
from repro.server.protocol import (
    HEADER_WORDS,
    MAGIC_REQUEST,
    MAX_FRAME_PAYLOAD_WORDS,
    OP_CLOSE,
    OP_LIST,
    OP_OPEN,
    OP_READ,
    OP_WRITE,
    FrameAssembler,
    Request,
    Response,
    ST_BUSY,
    ST_OK,
    encode_request,
    encode_response,
)


def assemble(packets):
    """Feed packets into a fresh assembler; return the completed frames."""
    assembler = FrameAssembler()
    frames = []
    for packet in packets:
        completed = assembler.feed(packet)
        if completed is not None:
            frames.append(completed)
    return frames


# -- roundtrips ---------------------------------------------------------------


@pytest.mark.parametrize("request_frame", [
    Request(OP_OPEN, request_id=1, arg0=1, payload=(4, 0x6162, 0x6300, 0, 0)),
    Request(OP_READ, request_id=2, handle=5, arg0=1, arg1=8),
    Request(OP_WRITE, request_id=3, handle=5, arg0=2, arg1=512,
            payload=tuple(range(256))),
    Request(OP_CLOSE, request_id=4, handle=5),
    Request(OP_LIST, request_id=0xFFFF),
])
def test_request_roundtrip(request_frame):
    packets = encode_request(request_frame, "ws", "srv")
    frames = assemble(packets)
    assert frames == [("ws", request_frame)]


@pytest.mark.parametrize("response_frame", [
    Response(ST_OK, request_id=1, handle=3, result0=2, result1=100),
    Response(ST_BUSY, request_id=2),
    Response(ST_OK, request_id=3, payload=tuple(range(700))),
])
def test_response_roundtrip(response_frame):
    packets = encode_response(response_frame, "srv", "ws")
    frames = assemble(packets)
    assert frames == [("srv", response_frame)]


def test_large_payload_spans_continuation_packets():
    """A READ batch of 8 pages is 2048 payload words: one header packet
    plus continuations, each within the network's packet limit."""
    payload = tuple(w & 0xFFFF for w in range(2048))
    packets = encode_response(Response(ST_OK, request_id=9, payload=payload),
                              "srv", "ws")
    assert len(packets) > 1
    assert packets[0].ptype == TYPE_CONTROL
    assert all(p.ptype == TYPE_DATA for p in packets[1:])
    assert all(len(p.payload) <= MAX_PAYLOAD_WORDS for p in packets)
    [(_, frame)] = assemble(packets)
    assert frame.payload == payload


def test_frames_from_different_hosts_interleave():
    a = encode_request(Request(OP_WRITE, request_id=1, handle=1, arg1=512,
                               payload=tuple(range(256))), "a", "srv")
    b = encode_request(Request(OP_WRITE, request_id=2, handle=1, arg1=512,
                               payload=tuple(range(256))), "b", "srv")
    interleaved = [p for pair in zip(a, b) for p in pair]
    frames = assemble(interleaved)
    assert [source for source, _ in frames] == ["a", "b"]
    assert frames[0][1].request_id == 1
    assert frames[1][1].request_id == 2


def test_packets_survive_a_real_network_hop():
    net = PacketNetwork()
    net.attach("ws")
    net.attach("srv")
    request = Request(OP_WRITE, request_id=7, handle=2, arg0=3, arg1=512,
                      payload=tuple(range(256)))
    for packet in encode_request(request, "ws", "srv"):
        assert net.send(packet)
    arrived = []
    while True:
        packet = net.receive("srv")
        if packet is None:
            break
        arrived.append(packet)
    [(source, frame)] = assemble(arrived)
    assert source == "ws" and frame == request


# -- malformed frames ---------------------------------------------------------


def test_new_header_abandons_incomplete_frame():
    request = Request(OP_WRITE, request_id=1, handle=1, arg1=512,
                      payload=tuple(range(256)))
    first = encode_request(request, "ws", "srv")
    assert len(first) > 1
    assembler = FrameAssembler()
    assert assembler.feed(first[0]) is None        # frame now incomplete
    replacement = encode_request(Request(OP_LIST, request_id=2), "ws", "srv")
    completed = assembler.feed(replacement[0])
    assert completed is not None and completed[1].op == OP_LIST
    assert assembler.abandoned == 1


def test_stray_continuation_is_counted_and_ignored():
    assembler = FrameAssembler()
    stray = Packet("ws", "srv", TYPE_DATA, (1, 2, 3))
    assert assembler.feed(stray) is None
    assert assembler.stray == 1


def test_unknown_packet_type_is_stray():
    assembler = FrameAssembler()
    assert assembler.feed(Packet("ws", "srv", TYPE_END_OF_FILE, ())) is None
    assert assembler.stray == 1


def test_short_header_raises():
    assembler = FrameAssembler()
    with pytest.raises(ProtocolError):
        assembler.feed(Packet("ws", "srv", TYPE_CONTROL, (MAGIC_REQUEST, 1)))


def test_bad_magic_raises():
    assembler = FrameAssembler()
    with pytest.raises(ProtocolError):
        assembler.feed(Packet("ws", "srv", TYPE_CONTROL,
                              (0x1234,) + (0,) * (HEADER_WORDS - 1)))


def test_payload_overrun_raises_and_clears_the_partial():
    request = Request(OP_WRITE, request_id=1, handle=1, arg1=512,
                      payload=tuple(range(256)))
    packets = encode_request(request, "ws", "srv")
    assembler = FrameAssembler()
    assembler.feed(packets[0])
    oversized = Packet("ws", "srv", TYPE_DATA, tuple(range(100)))
    with pytest.raises(ProtocolError):
        assembler.feed(oversized)
    # The partial is gone: the next continuation is a stray, not an overrun.
    assert assembler.feed(Packet("ws", "srv", TYPE_DATA, (1,))) is None
    assert assembler.stray == 1


# -- frame validation ---------------------------------------------------------


def test_unknown_opcode_rejected():
    with pytest.raises(ProtocolError):
        Request(99, request_id=1)


def test_request_id_zero_rejected():
    with pytest.raises(ProtocolError):
        Request(OP_LIST, request_id=0)


def test_oversized_frame_payload_rejected():
    with pytest.raises(ProtocolError):
        Request(OP_WRITE, request_id=1,
                payload=tuple([0] * (MAX_FRAME_PAYLOAD_WORDS + 1)))
