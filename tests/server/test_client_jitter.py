"""Deterministic backoff jitter: opt-in, seeded, off by default.

The retry discipline is pinned by golden runs (E12/E13/E15 and every
serve benchmark), so jitter must change *nothing* unless asked for --
and when asked for, it must be a pure function of ``(jitter_seed,
host)`` so the same run replays byte-identically.
"""

import pytest

from repro.net import PacketNetwork
from repro.server import FileClient
from repro.server.client import PendingRequest


def make_client(host="ws", **kwargs):
    net = PacketNetwork()
    net.attach(host)
    net.attach("fileserver")
    return FileClient(net, host, **kwargs)


def schedule(client, rounds=6, now=1_000):
    """The resend schedule _schedule_resend would produce, round by round."""
    pending = PendingRequest(client.build_list(), [], now, client.backoff_us)
    delays = []
    for _ in range(rounds):
        client._schedule_resend(pending, now)
        delays.append(pending.resend_at_us - now)
        pending.resend_at_us = None
    return delays


def test_jitter_is_off_by_default_and_schedule_is_exact():
    client = make_client()
    assert client._jitter is None
    # The pinned geometric schedule: backoff_us doubling each round.
    assert schedule(client) == [5_000 * 2 ** i for i in range(6)]


def test_jitter_never_delays_and_stays_within_the_band():
    client = make_client(backoff_jitter=0.5)
    nominal = [5_000 * 2 ** i for i in range(6)]
    for delay, base in zip(schedule(client), nominal):
        assert base // 2 <= delay <= base       # early, never late
    # The geometric growth of the nominal backoff is untouched.
    assert client.backoff_us == 5_000


def test_jitter_is_deterministic_per_seed_and_host():
    a = schedule(make_client(backoff_jitter=0.5, jitter_seed=42))
    b = schedule(make_client(backoff_jitter=0.5, jitter_seed=42))
    assert a == b                                # replayable
    other_host = schedule(make_client("ws2", backoff_jitter=0.5,
                                      jitter_seed=42))
    other_seed = schedule(make_client(backoff_jitter=0.5, jitter_seed=43))
    assert a != other_host                       # stations de-synchronize
    assert a != other_seed


def test_jitter_bounds_are_validated():
    with pytest.raises(ValueError):
        make_client(backoff_jitter=1.5)
    with pytest.raises(ValueError):
        make_client(backoff_jitter=-0.1)
