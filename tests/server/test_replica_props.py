"""Property suite for the replication journal: replay safety, under fuzz.

Two invariants make promotion correct, so they get hypothesis rather
than examples:

* **prefix-closed decoding** -- a stream cut anywhere (the primary's
  crash tearing the last record) decodes to exactly the whole-record
  prefix; the torn tail is never half-applied;
* **idempotent replay** -- records carry absolute post-write state, so
  applying any acked prefix twice, or a prefix and then the full
  stream, lands the pack on the same digest as one clean replay.

Together: whatever instant the primary dies, and however the journal is
re-run at promotion, the standby pack is a state the primary's platter
actually passed through.
"""

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DiskImage, tiny_test_disk
from repro.server.replica import apply_record, decode_stream, encode_record

#: Words-per-part as the drive writes them (header, label, value).
PART_LENGTHS = {"header": 2, "label": 7, "value": 256}

words16 = st.integers(min_value=0, max_value=0xFFFF)


@st.composite
def journal_records(draw, max_records=12):
    """A plausible journal: sequenced part-writes to a tiny pack."""
    count = draw(st.integers(min_value=0, max_value=max_records))
    records = []
    for seq in range(1, count + 1):
        address = draw(st.integers(min_value=0, max_value=191))
        part = draw(st.sampled_from(sorted(PART_LENGTHS)))
        data = draw(st.lists(words16, min_size=PART_LENGTHS[part],
                             max_size=PART_LENGTHS[part]))
        records.append((seq, address, part, data))
    return records


def to_stream(records):
    stream = []
    for seq, address, part, data in records:
        stream.extend(encode_record(seq, address, part, data))
    return stream


def replay(streams):
    """A fresh pack after replaying each word stream in order, standby-style:
    decode the whole-record prefix, apply, never touch the torn tail."""
    image = DiskImage(tiny_test_disk())
    for stream in streams:
        records, _ = decode_stream(stream)
        for _, address, part, data in records:
            apply_record(image, address, part, data)
    return image.digest()


@given(records=journal_records())
def test_decode_inverts_encode(records):
    stream = to_stream(records)
    decoded, consumed = decode_stream(stream)
    assert decoded == records
    assert consumed == len(stream)


@given(records=journal_records(), data=st.data())
def test_decoding_is_prefix_closed_under_any_tear(records, data):
    """Cutting the stream anywhere yields the longest whole-record prefix."""
    stream = to_stream(records)
    cut = data.draw(st.integers(min_value=0, max_value=len(stream)),
                    label="cut")
    decoded, consumed = decode_stream(stream[:cut])
    boundaries = [0]
    for seq, address, part, words in records:
        boundaries.append(boundaries[-1] + 5 + len(words))
    whole = max(i for i, b in enumerate(boundaries) if b <= cut)
    assert decoded == records[:whole]
    assert consumed == boundaries[whole]


@settings(max_examples=25)
@given(records=journal_records())
def test_replaying_the_acked_prefix_twice_is_a_noop(records):
    stream = to_stream(records)
    assert replay([stream, stream]) == replay([stream])


@settings(max_examples=25)
@given(records=journal_records(), data=st.data())
def test_replay_after_a_torn_tail_converges(records, data):
    """Apply a torn prefix (the crash), then the full stream (the retry):
    same pack as one clean replay -- re-shipping after a failed promotion
    attempt can never diverge the standby."""
    stream = to_stream(records)
    cut = data.draw(st.integers(min_value=0, max_value=len(stream)),
                    label="cut")
    assert replay([stream[:cut], stream]) == replay([stream])
