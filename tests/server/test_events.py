"""Unit tests for the engine's timer wheel and the admission curve."""

import random

import pytest

from repro.clock import SimClock
from repro.errors import ServerError
from repro.server import (
    AdmissionCurve,
    EventQueue,
    QOS_BULK,
    QOS_CLASSES,
    QOS_INTERACTIVE,
    QOS_MAINTENANCE,
)


# -- EventQueue ----------------------------------------------------------------


def test_events_fire_in_due_then_seq_order():
    clock = SimClock()
    queue = EventQueue(clock)
    fired = []
    queue.at(20, lambda: fired.append("late"))
    queue.at(10, lambda: fired.append("early-first"))
    queue.at(10, lambda: fired.append("early-second"))
    clock.advance_us(20, "test")
    assert queue.fire_due() == 3
    assert fired == ["early-first", "early-second", "late"]


def test_fire_due_only_runs_what_the_clock_has_passed():
    clock = SimClock()
    queue = EventQueue(clock)
    fired = []
    queue.at(5, lambda: fired.append("due"))
    queue.at(50, lambda: fired.append("future"))
    clock.advance_us(5, "test")
    assert queue.fire_due() == 1
    assert fired == ["due"]
    assert len(queue) == 1
    assert queue.next_due_us == 50


def test_cancelled_events_never_fire_and_leave_the_count():
    clock = SimClock()
    queue = EventQueue(clock)
    fired = []
    keep = queue.at(10, lambda: fired.append("keep"))
    drop = queue.at(10, lambda: fired.append("drop"))
    queue.cancel(drop)
    queue.cancel(drop)                                  # idempotent
    assert len(queue) == 1
    clock.advance_us(10, "test")
    assert queue.fire_due() == 1
    assert fired == ["keep"]
    del keep


def test_self_rearming_callback_runs_once_per_fire_due():
    """The snapshot rule: re-arming inside a callback waits a cycle."""
    clock = SimClock()
    queue = EventQueue(clock)
    ticks = []

    def tick():
        ticks.append(clock.now_us)
        queue.at(clock.now_us, tick, label="rearm")     # already due!

    queue.at(0, tick, label="rearm")
    assert queue.fire_due() == 1                        # not an infinite loop
    assert queue.fire_due() == 1
    assert len(ticks) == 2


def test_after_schedules_relative_to_now():
    clock = SimClock()
    clock.advance_us(1_000, "test")
    queue = EventQueue(clock)
    event = queue.after(250, lambda: None, label="lease")
    assert event.due_us == 1_250
    assert queue.next_due_us == 1_250


# -- AdmissionCurve ------------------------------------------------------------


def test_cliff_is_the_old_step_function_and_draw_free():
    curve = AdmissionCurve.cliff(4)
    assert curve.is_cliff
    for qos in QOS_CLASSES:
        # rng=None proves no probabilistic draw happens on this path.
        assert [curve.admit(d, qos, None) for d in (0, 3, 4, 5)] == \
            [True, True, False, False]


def test_graduated_watermarks_shed_lower_classes_first():
    curve = AdmissionCurve.graduated(100)
    assert not curve.is_cliff
    assert curve.watermarks[QOS_INTERACTIVE] == (75, 100)
    assert curve.watermarks[QOS_BULK] == (50, 100)
    assert curve.watermarks[QOS_MAINTENANCE] == (25, 100)
    rng = random.Random(1979)
    # At depth 60: below interactive's low (always in), inside bulk's
    # band (sometimes in), above... maintenance's low (sheds hardest).
    assert curve.admit(60, QOS_INTERACTIVE, rng)
    bulk = [curve.admit(60, QOS_BULK, rng) for _ in range(400)]
    maint = [curve.admit(60, QOS_MAINTENANCE, rng) for _ in range(400)]
    assert 0 < sum(bulk) < 400 and 0 < sum(maint) < 400
    assert sum(maint) < sum(bulk)                       # sheds earlier


def test_graduated_band_is_deterministic_per_seed():
    curve = AdmissionCurve.graduated(64)
    draws = [
        [curve.admit(40, QOS_BULK, random.Random(7)) for _ in range(1)][0]
        for _ in range(3)
    ]
    assert len(set(draws)) == 1                         # same seed, same call


def test_band_without_rng_is_an_error_not_a_silent_guess():
    curve = AdmissionCurve.graduated(100)
    with pytest.raises(ServerError):
        curve.admit(60, QOS_BULK, None)


def test_unknown_class_falls_back_to_interactive_watermarks():
    curve = AdmissionCurve({QOS_INTERACTIVE: (2, 2)})
    assert curve.admit(1, "no-such-class", None)
    assert not curve.admit(2, "no-such-class", None)


def test_bad_watermarks_are_rejected():
    with pytest.raises(ServerError):
        AdmissionCurve({QOS_BULK: (5, 3)})
    with pytest.raises(ServerError):
        AdmissionCurve({"turbo": (0, 1)})
