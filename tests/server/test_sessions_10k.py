"""The ten-thousand-client smoke: one server, 10k concurrent sessions.

The event-driven engine's scaling claim is that a poll cycle costs the
*ready* set, not the session count -- sleeping sessions are free.  This
smoke holds ten thousand FileClient sessions open on one server (every
station OPENs a shared file and keeps the handle), then proves each held
session still serves, with zero errors, zero rejections, and a wakeup
count proportional to the request count rather than ``sessions x polls``.

The full storm takes a few seconds of wall time; CI's engine-sweep job
runs it, and the scaled-down variant keeps the plumbing pinned in the
default suite.
"""

import pytest

from repro.server import build_system, run_session_storm


def test_session_storm_small_scale():
    storm = run_session_storm(clients=256, shared_files=8,
                              system=build_system(256, tiny=True))
    assert storm.sessions == 256
    assert storm.errors == 0 and storm.rejected == 0 and storm.evicted == 0
    assert storm.requests == 2 * 256                    # one OPEN + one READ


@pytest.mark.slow
def test_session_storm_ten_thousand_clients():
    storm = run_session_storm()                         # the real thing
    assert storm.clients == 10_000
    assert storm.sessions == 10_000, "a session per client, all concurrent"
    assert storm.errors == 0
    assert storm.rejected == 0, "waves sized under the admission window"
    assert storm.evicted == 0
    # Event-driven scaling: wakeups track served requests (one per
    # request at quantum=1, plus the setup uploads), NOT clients x polls.
    assert storm.requests == 20_000
    assert storm.wakeups < storm.requests * 2
