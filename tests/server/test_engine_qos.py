"""QoS scheduling, graduated admission, and eviction on the live engine.

The weighted ready-queue discipline and the detach/evict path are pinned
here with examples; the starvation-freedom guarantee -- every admitted
request completes within a bounded number of polls no matter how the
budget and the competing traffic interleave -- is a hypothesis property.
"""

import pytest

from repro.disk import CachedDrive, DiskDrive, DiskImage, tiny_test_disk
from repro.fs import FileSystem
from repro.net import PacketNetwork
from repro.server import (
    AdmissionCurve,
    FileClient,
    FileServer,
    QOS_BULK,
    QOS_CLASSES,
    QOS_MAINTENANCE,
    ST_BUSY,
    ST_OK,
)


def make_served(clients=("ws",), cached=False, **server_kw):
    image = DiskImage(tiny_test_disk(cylinders=24))
    drive = CachedDrive(image) if cached else DiskDrive(image)
    fs = FileSystem.format(drive)
    network = PacketNetwork(clock=drive.clock)
    network.attach("fileserver", queue_limit=4096)
    server = FileServer(fs, network, **server_kw)
    stations = [FileClient(network, host)
                for host in clients if network.attach(host) or True]
    return fs, server, stations


def queue_bad_reads(client, count):
    """Queue *count* one-packet requests (bad handle: one-packet answers)."""
    return [client.submit(client.build_read(99, 1, 1)) for _ in range(count)]


# -- weighted class scheduling --------------------------------------------------


def test_class_visit_serves_weight_times_quantum():
    _, server, (a, b, c) = make_served(clients=("a", "b", "c"))
    server.set_qos("b", QOS_BULK)
    server.set_qos("c", QOS_MAINTENANCE)
    for client in (a, b, c):
        queue_bad_reads(client, 8)
    served = server.poll(budget=7)
    assert served == 7
    # One rotation: interactive 4, bulk 2, maintenance 1 (weights 4:2:1).
    counts = {host: server.network.pending(host) for host in ("a", "b", "c")}
    assert counts == {"a": 4, "b": 2, "c": 1}


def test_default_class_is_interactive_and_set_qos_validates():
    _, server, _ = make_served()
    assert server.qos_of("ws") == "interactive"
    server.set_qos("ws", QOS_MAINTENANCE)
    assert server.qos_of("ws") == QOS_MAINTENANCE
    from repro.errors import ServerError

    with pytest.raises(ServerError):
        server.set_qos("ws", "platinum")


def test_set_qos_moves_queued_work_between_classes():
    _, server, (a, b) = make_served(clients=("a", "b"))
    queue_bad_reads(a, 2)
    queue_bad_reads(b, 2)
    server.poll(budget=0)                               # admit, serve nothing
    server.set_qos("b", QOS_MAINTENANCE)                # mid-backlog move
    assert server.poll() == 4                           # nothing stranded
    assert server.pending == 0


def test_unbudgeted_poll_drains_every_class():
    _, server, (a, b, c) = make_served(clients=("a", "b", "c"))
    server.set_qos("b", QOS_BULK)
    server.set_qos("c", QOS_MAINTENANCE)
    for client in (a, b, c):
        queue_bad_reads(client, 5)
    assert server.poll() == 15
    assert server.pending == 0 and server.ready_sessions == 0


# -- graduated admission ---------------------------------------------------------


def test_graduated_curve_sheds_probabilistically_in_the_band():
    _, server, (a,) = make_served(
        clients=("a",), max_pending=16,
        admission=AdmissionCurve.graduated(16))
    queue_bad_reads(a, 32)
    server.poll(budget=0)                               # admit only
    stats = server.stats()
    admitted = server.pending
    rejected = stats.get("server.rejected", 0)
    assert admitted + rejected == 32
    # The hard stop at the high watermark still holds...
    assert admitted <= 16
    # ...and some of the rejections happened inside the band, before the
    # old cliff would have fired -- those are counted as shaping.
    assert 1 <= stats.get("server.shaped", 0) <= rejected


def test_graduated_shedding_is_deterministic_per_seed():
    def admitted_pattern(seed):
        _, server, (a,) = make_served(
            clients=("a",), max_pending=16,
            admission=AdmissionCurve.graduated(16), admission_seed=seed)
        pendings = queue_bad_reads(a, 32)
        server.poll(budget=0)
        # Drain the raw wire: rejected requests have an ST_BUSY response
        # waiting, admitted ones have nothing yet (budget=0 served none).
        from repro.server import FrameAssembler

        assembler = FrameAssembler()
        arrived = {}
        while True:
            packet = server.network.receive("a")
            if packet is None:
                break
            completed = assembler.feed(packet)
            if completed is not None:
                _, frame = completed
                arrived[frame.request_id] = frame.status
        return tuple(arrived.get(p.request.request_id) for p in pendings)

    assert admitted_pattern(7) == admitted_pattern(7)
    assert ST_BUSY in admitted_pattern(7)


def test_cliff_default_never_draws_and_never_shapes():
    _, server, (a,) = make_served(clients=("a",), max_pending=4)
    queue_bad_reads(a, 8)
    server.poll(budget=0)
    stats = server.stats()
    assert server.pending == 4
    assert stats["server.rejected"] == 4
    assert stats.get("server.shaped", 0) == 0           # at/above high: no band


# -- eviction on detach -----------------------------------------------------------


def test_detach_with_queued_requests_evicts_on_wake():
    _, server, (a, b) = make_served(clients=("a", "b"))
    queue_bad_reads(a, 3)
    queue_bad_reads(b, 1)
    server.poll(budget=0)                               # admit all four
    assert server.pending == 4
    server.network.detach("a")
    served = server.poll()                              # wakeup finds a gone
    assert served == 1                                  # only b's request ran
    assert server.pending == 0
    assert "a" not in server.sessions
    assert server.stats()["server.sessions_evicted"] == 1


def test_frame_arriving_from_a_detached_host_is_dropped():
    _, server, (a, b) = make_served(clients=("a", "b"))
    # a has a live session first, so the eviction has state to reap.
    pending = a.submit(a.build_list())
    server.poll()
    assert a.step(pending) is not None
    queue_bad_reads(a, 1)                               # in flight...
    server.network.detach("a")                          # ...then unplugged
    server.poll()
    stats = server.stats()
    assert "a" not in server.sessions
    assert stats["server.sessions_evicted"] == 1
    assert server.pending == 0
    # The survivor is unaffected.
    pending = b.submit(b.build_list())
    server.poll()
    assert b.step(pending).ok


def test_evicting_a_client_with_no_state_counts_nothing():
    _, server, (a,) = make_served(clients=("a",))
    queue_bad_reads(a, 1)
    server.network.detach("a")
    server.poll()                                       # frame from a ghost
    assert server.stats().get("server.sessions_evicted", 0) == 0


# -- starvation freedom (property) -------------------------------------------------

pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@settings(deadline=None, max_examples=25)
@given(
    budget=st.integers(min_value=1, max_value=4),
    pressure=st.integers(min_value=1, max_value=3),
    rounds=st.integers(min_value=4, max_value=10),
)
def test_admitted_requests_complete_within_bounded_wakeups(
        budget, pressure, rounds):
    """No admitted request waits more than a full class rotation's worth
    of polls, however small the budget and heavy the competing class."""
    hosts = tuple(f"i{n}" for n in range(pressure)) + ("m",)
    _, server, stations = make_served(clients=hosts, max_pending=256)
    maint = stations[-1]
    server.set_qos("m", QOS_MAINTENANCE)

    # Keep interactive saturated the whole run.
    for station in stations[:-1]:
        queue_bad_reads(station, rounds * budget)

    pending = maint.submit(maint.build_read(99, 1, 1))
    polls_until_served = None
    for poll_index in range(1, rounds + 1):
        server.poll(budget=budget)
        if server.network.pending("m"):
            polls_until_served = poll_index
            break
    # One request, one client in its class: the rotation must reach the
    # maintenance class within a bounded number of budgeted polls.
    bound = len(QOS_CLASSES)
    assert polls_until_served is not None and polls_until_served <= bound, (
        f"maintenance request starved past {bound} polls "
        f"(budget={budget}, pressure={pressure})")
    del pending
