"""Regression: a retry arriving *after* a rebalance must still hit the
at-most-once cache.

The gap this pins: the per-shard replay caches are keyed by the proxy
session, so if retries were routed by re-hashing the name, a retry whose
file moved shards between the original execution and the retry would
land on a shard that never saw the request id -- and re-execute it,
breaking at-most-once.  The router closes the gap two ways, both tested
here: completed requests answer from the router's *own* per-client
replay cache (which no rebalance touches), and unanswered in-flight
requests stay pinned to the shard recorded at admission epoch instead of
being re-hashed.
"""

from repro.server import ST_OK, build_cluster


def make_cluster(shards=2, seed=1979):
    system = build_cluster(clients=1, shards=shards, seed=seed, tiny=True)
    system.clients[0].pump = system.router.poll
    return system


def wait_for(system, client, pending, rounds=400):
    for _ in range(rounds):
        system.router.poll()
        response = client.step(pending)
        if response is not None:
            return response
        system.clock.advance_us(1_000, "server.client.wait")
    raise AssertionError("request never completed")


def lose_response(system, client, request):
    """Run *request* to completion on the server side but drop every
    response packet before the client sees it -- the classic lost-ACK."""
    pending = client.submit(request)
    system.router.poll()                       # executes and responds
    while system.network.receive(client.host) is not None:
        pass                                   # the wire eats the answer
    return pending


def test_retry_after_rebalance_hits_the_replay_cache():
    system = make_cluster()
    [client] = system.clients
    router = system.router
    client.write_file("moving.dat", b"precious" * 64)

    # A CLOSE executes on its shard, but the response is lost.
    handle, _ = client.open("moving.dat")
    pending = lose_response(system, client, client.build_close(handle))
    executed = router.stats()["router.relayed"]

    # The slot rebalances away while the client is still waiting.
    slot = router.shard_map.slot_of("moving.dat")
    source = router.shard_map.slot_shard(slot)
    router.start_rebalance(slot, 1 - source)
    system.router.poll()
    assert not router.rebalancing, "slot should drain: the CLOSE completed"
    assert router.shard_map.slot_shard(slot) == 1 - source

    # The client's timeout retry must be answered from the router's
    # replay cache -- not forwarded anywhere, and above all not
    # re-executed on the new shard (which never saw the id).
    replayed_before = router.stats()["router.replayed"]
    response = wait_for(system, client, pending)
    assert response.status == ST_OK
    stats = router.stats()
    assert stats["router.replayed"] == replayed_before + 1
    assert stats["router.relayed"] == executed, \
        "the retry must not re-execute on any shard"
    assert client.read_file("moving.dat") == b"precious" * 64


def test_unanswered_retry_stays_pinned_to_its_admission_shard():
    """A retry of a request still in flight re-forwards to the shard
    pinned at admission -- never re-hashed through the current map."""
    system = make_cluster()
    [client] = system.clients
    router = system.router

    # Admit an OPEN but stop before any poll: it is in flight, unanswered.
    request = client.build_open("pinned.dat", create=True)
    pending = client.submit(request)
    router._ingest()
    state = router._states[client.host]
    ctx = state.inflight[request.request_id]
    pinned_shard = ctx.shard
    assert ctx.epoch == router.shard_map.epoch

    # The map changes under it: move the name's slot (it is empty on
    # disk, so draining is not the obstacle -- but this ctx pins it, so
    # flip the assignment directly as a worst-case epoch bump).
    slot = router.shard_map.slot_of("pinned.dat")
    router.shard_map.assignment[slot] = 1 - pinned_shard
    router.shard_map.epoch += 1

    # A wire retry of the same id re-forwards to the pinned shard.
    retransmits_before = router.stats()["router.retransmits"]
    for packet in pending.packets:
        system.network.send(packet)
    router._ingest()
    assert router.stats()["router.retransmits"] == retransmits_before + 1
    assert state.inflight[request.request_id].shard == pinned_shard

    # Put the map back; the request completes normally end to end.
    router.shard_map.assignment[slot] = pinned_shard
    response = wait_for(system, client, pending)
    assert response.status == ST_OK


def test_duplicate_of_a_completed_write_is_not_reapplied():
    system = make_cluster()
    [client] = system.clients
    client.write_file("w.dat", b"A" * 512)
    handle, _ = client.open("w.dat")
    write = client.build_write(handle, 1, b"B" * 512)
    pending = lose_response(system, client, write)
    # Duplicate arrives (timeout retry); answered from cache, applied once.
    response = wait_for(system, client, pending)
    assert response.status == ST_OK
    client.close(handle)
    assert client.read_file("w.dat") == b"B" * 512
    assert system.router.stats()["router.replayed"] >= 1
