"""The engine-restructure safety net: event-driven == polled, observably.

The event-driven engine replaced the PR-5 round-robin polling loop.  In
the default configuration (every client interactive, cliff admission)
the two must be **observationally equivalent**: the same op sequence
produces the same response packets in the same order, the same pack
bytes, and the same simulated microseconds.  Hypothesis drives random
small multi-client op sequences -- including invalid handles, page gaps,
and duplicate ops -- through both engines and compares everything.

The property holds for unbudgeted polls (the production configuration).
Budgeted polls may *intentionally* diverge: the event engine persists
its class/session cursors across polls so a backlog drains fairly,
where the polled loop restarts its scan from the top every call.
"""

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import CachedDrive, DiskImage, tiny_test_disk
from repro.fs import FileSystem
from repro.net import PacketNetwork
from repro.server import FileClient, FileServer, PolledFileServer

N_CLIENTS = 3
HOSTS = tuple(f"ws{n}" for n in range(N_CLIENTS))

op_entries = st.tuples(
    st.integers(min_value=0, max_value=N_CLIENTS - 1),   # which client
    st.sampled_from(("open", "write", "read", "close", "list")),
    st.integers(min_value=0, max_value=2),                # file slot / handle
    st.integers(min_value=1, max_value=2),                # page
)

scripts = st.lists(op_entries, max_size=24)


def build(server_cls):
    image = DiskImage(tiny_test_disk(cylinders=30))
    drive = CachedDrive(image, cache_sectors=64)
    fs = FileSystem.format(drive)
    network = PacketNetwork(clock=drive.clock)
    network.attach("fileserver", queue_limit=4096)
    server = server_cls(fs, network, max_pending=64)
    stations = [FileClient(network, host)
                for host in HOSTS if network.attach(host) or True]
    return image, network, server, stations


def build_request(client, op, slot, page):
    if op == "open":
        return client.build_open(f"f{slot}.dat", create=True)
    if op == "write":
        return client.build_write(slot + 1, page, b"w" * 40)
    if op == "read":
        return client.build_read(slot + 1, page, 1)
    if op == "close":
        return client.build_close(slot + 1)
    return client.build_list()


def run(server_cls, script):
    """Drive *script* in rounds of up to N_CLIENTS submissions per poll;
    returns (response transcript, pack digest, final simulated time)."""
    image, network, server, stations = build(server_cls)
    transcript = []
    for base in range(0, max(len(script), 1), N_CLIENTS):
        for client_idx, op, slot, page in script[base:base + N_CLIENTS]:
            client = stations[client_idx]
            client.submit(build_request(client, op, slot, page))
        server.poll()
        for host in HOSTS:
            while True:
                packet = network.receive(host)
                if packet is None:
                    break
                transcript.append((host, packet.ptype, packet.payload))
    return transcript, image.digest(), server.clock.now_us


@settings(deadline=None, max_examples=40)
@given(script=scripts)
def test_event_engine_is_observationally_equal_to_polled(script):
    event = run(FileServer, script)
    polled = run(PolledFileServer, script)
    assert event[0] == polled[0], "response transcripts diverge"
    assert event[1] == polled[1], "pack bytes diverge"
    assert event[2] == polled[2], "simulated clocks diverge"


def test_full_workload_matches_byte_for_byte():
    """A deterministic end-to-end check: same files, same pack, same time."""

    def workload(server_cls):
        image, network, server, stations = build(server_cls)
        for station in stations:
            station.pump = server.poll
        for index, station in enumerate(stations):
            station.write_file(f"doc{index}.txt", bytes(range(256)) * 3)
        reads = [station.read_file(f"doc{index}.txt")
                 for index, station in enumerate(stations)]
        return reads, image.digest(), server.clock.now_us, server.stats()

    event = workload(FileServer)
    polled = workload(PolledFileServer)
    assert event[:3] == polled[:3]
    # The engines even count the same: every shared counter agrees.
    for name in ("server.requests", "server.flushes", "server.polls",
                 "server.pages_written", "server.pages_read"):
        assert event[3][name] == polled[3][name], name
