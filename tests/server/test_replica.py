"""Hot-standby replication: the journal link, the ack gate, promotion.

The invariant under test is the module's one-line contract: **a response
released to a client implies the write is on two packs**.  Everything
here corners a piece of that -- the wire format's torn-tail discipline,
the response gate and its retry suppression, the standby's idempotent
apply, and promotion recovering a serving file system from the standby
image alone.
"""

import pytest

from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
from repro.errors import RequestTimeout
from repro.net import PacketNetwork
from repro.net.network import Packet, TYPE_DATA
from repro.server import FileClient, FileServer
from repro.server.replica import (
    CHUNK_WORDS,
    ReplicaStandby,
    ReplicatedFileServer,
    apply_record,
    decode_stream,
    encode_record,
    promote,
)


def build_pair(host="fileserver"):
    """A replicated server and its standby on one network, bootstrapped."""
    net = PacketNetwork()
    fs = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
    net.attach(host, clock=fs.drive.clock)
    standby = ReplicaStandby(net, tiny_test_disk())
    server = ReplicatedFileServer(fs, net, standby, host=host)
    server.replication.bootstrap()
    net.attach("ws")
    return net, fs, standby, server


def pump_both(server, standby):
    def pump():
        server.poll()
        standby.poll()
    return pump


# ----------------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------------

def test_encode_decode_roundtrip():
    stream = []
    records = [(1, 5, "header", [1, 2]),
               (2, 9, "label", list(range(7))),
               (3, 5, "value", list(range(256)))]
    for seq, address, part, words in records:
        stream.extend(encode_record(seq, address, part, words))
    decoded, consumed = decode_stream(stream)
    assert decoded == records
    assert consumed == len(stream)


def test_decode_stops_at_torn_tail():
    whole = encode_record(7, 3, "label", [0] * 7)
    for cut in range(1, len(whole)):
        decoded, consumed = decode_stream(whole * 2 + whole[:cut])
        assert decoded == [(7, 3, "label", [0] * 7)] * 2
        assert consumed == 2 * len(whole)


def test_decode_rejects_corrupt_part_code():
    with pytest.raises(ValueError):
        decode_stream([0, 1, 5, 9, 0])      # part code 9 does not exist


def test_apply_record_is_idempotent_and_heals_torn_checksums():
    image = DiskImage(tiny_test_disk())
    image.checksum_bad.add((4, "label"))
    words = [1, 2, 3, 4, 5, 6, 7]
    apply_record(image, 4, "label", words)
    once = image.digest()
    assert (4, "label") not in image.checksum_bad
    apply_record(image, 4, "label", words)
    assert image.digest() == once


# ----------------------------------------------------------------------------
# The standby machine
# ----------------------------------------------------------------------------

def test_standby_reassembles_across_chunks_and_acks():
    net = PacketNetwork()
    standby = ReplicaStandby(net, tiny_test_disk())
    net.attach("primary")
    standby.connect("primary")
    # A value record (261 words) cannot fit one packet: it must survive
    # chunked shipment with stream-offset headers.
    words = encode_record(1, 6, "value", list(range(256)))
    for start in range(0, len(words), CHUNK_WORDS):
        payload = ((start >> 16) & 0xFFFF, start & 0xFFFF,
                   *words[start:start + CHUNK_WORDS])
        assert net.send(Packet("primary", standby.host, TYPE_DATA, payload))
    assert standby.poll() == 1
    assert standby.applied_seq == 1
    assert standby.image.sector(6).value == list(range(256))
    ack = net.receive("primary")
    assert ack is not None and ack.payload == (0, 1)


def test_standby_drops_out_of_order_chunks():
    net = PacketNetwork()
    standby = ReplicaStandby(net, tiny_test_disk())
    words = encode_record(1, 6, "header", [9, 9])
    # Stream offset 100 when 0 is expected: a gap from a dropped packet.
    net.send(Packet("x", standby.host, TYPE_DATA, (0, 100, *words)))
    assert standby.poll() == 0
    assert standby.obs.registry.counter("replica.out_of_order").value == 1
    assert standby.applied_seq == 0


def test_standby_skips_records_already_covered_by_snapshot():
    net = PacketNetwork()
    standby = ReplicaStandby(net, tiny_test_disk())
    standby.install(DiskImage(tiny_test_disk()).snapshot(), seq=5)
    stale = encode_record(4, 6, "header", [1, 1])
    fresh = encode_record(6, 6, "header", [2, 2])
    net.send(Packet("x", standby.host, TYPE_DATA,
                    (0, 0, *stale, *fresh)))
    assert standby.poll() == 1                 # only the post-snapshot record
    assert standby.applied_seq == 6
    assert standby.image.sector(6).header_words() == [2, 2]


# ----------------------------------------------------------------------------
# The replicated server: two packs or no answer
# ----------------------------------------------------------------------------

def test_served_writes_reach_both_packs():
    net, fs, standby, server = build_pair()
    client = FileClient(net, "ws", pump=pump_both(server, standby))
    client.write_file("memo.txt", b"x" * 700)
    assert client.read_file("memo.txt") == b"x" * 700
    assert server.replication.standby_lag == 0
    assert standby.image.digest() == fs.drive.image.digest()
    stats = server.obs.registry
    assert stats.counter("replica.records").value > 0
    assert stats.counter("server.repl.released").value > 0


def test_reads_are_not_delayed_by_the_gate():
    net, fs, standby, server = build_pair()
    # The standby never polls: acks never arrive.  A LIST causes no
    # journal writes, so its barrier is already acked and it answers.
    client = FileClient(net, "ws", pump=server.poll)
    assert "SysDir" in client.listdir()


def test_write_response_is_withheld_until_ack_and_retries_suppressed():
    net, fs, standby, server = build_pair()
    client = FileClient(net, "ws", pump=server.poll, max_retries=3)
    # The standby never polls, so the create's journal barrier is never
    # acked: the response stays gated and the client's retries die.
    with pytest.raises(RequestTimeout):
        client.write_file("gated.txt", b"never acked")
    registry = server.obs.registry
    assert registry.counter("server.repl.released").value == 0
    assert registry.counter("server.repl.suppressed").value >= 1
    assert len(server._held) == 1
    assert server.replication.standby_lag > 0
    # The ack arrives late: the held response is released exactly once.
    standby.poll()
    server.poll()
    assert registry.counter("server.repl.released").value == 1
    assert not server._held
    assert server.replication.standby_lag == 0


# ----------------------------------------------------------------------------
# Promotion
# ----------------------------------------------------------------------------

def test_promotion_serves_the_replicated_files():
    net, fs, standby, server = build_pair()
    client = FileClient(net, "ws", pump=pump_both(server, standby))
    client.write_file("keep.txt", b"survives the failover")
    # The primary dies; the standby had acked everything, so promotion
    # replays no tail and the file is simply there.
    promo = promote(standby)
    assert promo.server.host == standby.host
    assert promo.applied_seq == standby.applied_seq
    after = FileClient(net, "ws2", server=standby.host,
                       pump=promo.server.poll)
    net.attach("ws2")
    assert after.read_file("keep.txt") == b"survives the failover"


def test_promotion_replays_the_journal_tail():
    net, fs, standby, server = build_pair()
    # Serve a write but never let the standby poll: the journal sits
    # shipped-but-unapplied on the link, exactly the crash window.
    client = FileClient(net, "ws", pump=server.poll, max_retries=2)
    with pytest.raises(RequestTimeout):
        client.write_file("tail.txt", b"in flight")
    promo = promote(standby)
    assert promo.tail_records > 0
    after = FileClient(net, "ws2", server=standby.host,
                       pump=promo.server.poll)
    net.attach("ws2")
    # The client died waiting on the gated OPEN, so only the create was
    # ever journaled -- and the tail replay recovered exactly that: the
    # file exists (empty), never a half-applied record.
    assert "tail.txt" in after.listdir()
    assert after.read_file("tail.txt") == b""
