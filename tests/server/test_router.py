"""Router tests: routing, handle virtualization, scatter-gather LIST,
backpressure, PR-5 observational equivalence, rebalancing, recovery.

The promise under test: sharding is invisible to clients except as
throughput.  A client speaking the unmodified wire protocol to the
unmodified ``"fileserver"`` host sees the same statuses, bytes, handle
sequences, and LIST contents at any shard count.
"""

import pytest

from repro.errors import RequestFailed, ServerError
from repro.server import (
    FileClient,
    FileServer,
    ST_BAD_HANDLE,
    ST_BAD_REQUEST,
    ST_BUSY,
    build_cluster,
    build_system,
    merge_names,
)
from repro.server.router import ShardRouter


def make_cluster(clients=1, shards=2, seed=1979, **kw):
    system = build_cluster(clients=clients, shards=shards, seed=seed,
                           tiny=True, **kw)
    for client in system.clients:
        client.pump = system.router.poll
    return system


def raw_transact(system, client, request, rounds=400):
    """Submit one frame and return the raw Response -- no busy backoff,
    no retry -- so router-generated ST_BUSY is observable."""
    pending = client.submit(request)
    for _ in range(rounds):
        system.router.poll()
        response = client._check_arrivals(pending)
        if response is not None:
            return response
        system.clock.advance_us(1_000, "server.client.wait")
    raise AssertionError(f"no response to {request.op_name}")


# -- merge_names --------------------------------------------------------------


def test_merge_names_unions_sorts_and_dedupes():
    merged = merge_names([{"b.txt", "SysDir", "DiskDescriptor"},
                          {"A.txt", "SysDir", "DiskDescriptor"},
                          {"a2.txt"}])
    assert merged == ["A.txt", "a2.txt", "b.txt", "DiskDescriptor", "SysDir"]
    assert merge_names([]) == []
    # Case-insensitive order, but distinct spellings both survive (the
    # exact-name tiebreaker keeps the order total and deterministic).
    assert merge_names([{"B.txt"}, {"b.txt"}]) == ["B.txt", "b.txt"]


# -- routing and the client-visible contract ---------------------------------


def test_files_land_on_the_shard_the_map_names():
    system = make_cluster(shards=4)
    [client] = system.clients
    names = [f"file{i:02d}.dat" for i in range(12)]
    for index, name in enumerate(names):
        client.write_file(name, bytes([index]) * 300)
    for name in names:
        owner = system.router.shard_map.shard_of(name)
        for index, shard in enumerate(system.shards):
            assert (name in shard.fs.list_files()) == (index == owner)
        assert client.read_file(name) == bytes([names.index(name)]) * 300


def test_list_scatter_gathers_the_union_of_all_shards():
    system = make_cluster(shards=3)
    [client] = system.clients
    names = [f"doc{i}.txt" for i in range(9)]
    for name in names:
        client.write_file(name, name.encode())
    listed = client.listdir()
    assert listed == sorted(set(listed), key=lambda n: (n.lower(), n))
    for name in names:
        assert name in listed
    # Per-pack bookkeeping files appear once despite existing on every pack.
    assert listed.count("SysDir") == 1
    assert listed.count("DiskDescriptor") == 1
    assert system.router.stats()["router.scatters"] == 1


def test_handles_are_virtualized_in_one_client_sequence():
    system = make_cluster(shards=4)
    [client] = system.clients
    names = [f"h{i}.dat" for i in range(6)]
    for name in names:
        client.write_file(name, b"x" * 100)
    handles = [client.open(name)[0] for name in names]
    # Router-issued handles are sequential regardless of owning shard,
    # exactly like a single server's grant order.
    assert handles == list(range(handles[0], handles[0] + len(names)))
    assert len({system.router.shard_map.shard_of(n) for n in names}) > 1
    for handle in handles:
        client.close(handle)


def test_bogus_handle_and_empty_name_fail_at_the_router():
    system = make_cluster(shards=2)
    [client] = system.clients
    with pytest.raises(RequestFailed) as excinfo:
        client.transact(client.build_read(42, 1, 1))
    assert excinfo.value.status == ST_BAD_HANDLE
    with pytest.raises(RequestFailed) as excinfo:
        client.transact(client.build_open(""))
    assert excinfo.value.status == ST_BAD_REQUEST
    # Router-local errors never touch a shard.
    assert system.router.stats()["router.forwarded"] == 0


def test_closed_vhandle_is_rejected_without_forwarding():
    system = make_cluster(shards=2)
    [client] = system.clients
    client.write_file("f.dat", b"data")
    handle, _ = client.open("f.dat")
    client.close(handle)
    forwarded = system.router.stats()["router.forwarded"]
    with pytest.raises(RequestFailed) as excinfo:
        client.transact(client.build_close(handle))
    assert excinfo.value.status == ST_BAD_HANDLE
    assert system.router.stats()["router.forwarded"] == forwarded


# -- backpressure -------------------------------------------------------------


def test_router_pending_window_answers_busy():
    system = make_cluster(shards=2, max_pending=0)
    [client] = system.clients
    response = raw_transact(system, client, client.build_list())
    assert response.status == ST_BUSY
    stats = system.router.stats()
    assert stats["router.rejected"] == 1
    assert stats["router.forwarded"] == 0


def test_per_shard_window_answers_busy():
    system = make_cluster(shards=2, per_shard_window=0)
    [client] = system.clients
    response = raw_transact(system, client, client.build_open("f", create=True))
    assert response.status == ST_BUSY
    assert system.router.stats()["router.rejected"] == 1
    # Busy is never cached: the retry is admitted fresh, not replayed.
    assert system.router.stats()["router.replayed"] == 0


def test_busy_resolves_through_client_backoff():
    """With a tiny per-shard window the client's retry discipline still
    completes every request -- busy is flow control, not failure."""
    system = make_cluster(clients=3, shards=2, per_shard_window=1)
    for index, client in enumerate(system.clients):
        name = f"slow{index}.dat"
        client.write_file(name, bytes([index]) * 600)
    for index, client in enumerate(system.clients):
        assert client.read_file(f"slow{index}.dat") == bytes([index]) * 600


# -- observational equivalence with the PR-5 single server -------------------


def drive_workload(client):
    """One deterministic mixed workload; returns every visible outcome."""
    visible = []
    for index in range(4):
        name = f"eq{index}.dat"
        data = bytes((index * 7 + j) % 256 for j in range(150 + 400 * index))
        visible.append(client.write_file(name, data))
        visible.append(client.read_file(name))
    handle, size = client.open("eq1.dat")
    visible.append((handle, size))
    client.close(handle)
    try:
        client.open("missing.dat")
    except RequestFailed as exc:
        visible.append(("open-missing", exc.status))
    try:
        client.transact(client.build_read(99, 1, 1))
    except RequestFailed as exc:
        visible.append(("bogus-read", exc.status))
    # LIST equivalence is set-level: the single server lists in directory
    # order, the cluster's scatter-gather merge sorts deterministically.
    visible.append(sorted(client.listdir()))
    return visible


def test_one_shard_cluster_is_observationally_equivalent_to_pr5_server():
    plain = build_system(clients=1, seed=11, tiny=True)
    [plain_client] = plain.clients
    plain_client.pump = plain.server.poll
    cluster = make_cluster(clients=1, shards=1, seed=11)

    assert drive_workload(plain_client) == drive_workload(cluster.clients[0])


def test_shard_count_does_not_change_what_clients_see():
    outcomes = [drive_workload(make_cluster(shards=n).clients[0])
                for n in (1, 2, 4)]
    assert outcomes[0] == outcomes[1] == outcomes[2]


# -- rebalancing --------------------------------------------------------------


def pick_file_and_target(system, names):
    """A served name plus a shard it does not live on."""
    name = names[0]
    source = system.router.shard_map.shard_of(name)
    target = (source + 1) % len(system.shards)
    return name, source, target


def test_rebalance_ships_a_slot_and_serving_continues():
    system = make_cluster(shards=2)
    [client] = system.clients
    names = [f"r{i}.dat" for i in range(6)]
    contents = {n: n.encode() * 40 for n in names}
    for name in names:
        client.write_file(name, contents[name])
    name, source, target = pick_file_and_target(system, names)
    slot = system.router.shard_map.slot_of(name)
    epoch = system.router.shard_map.epoch

    plan = system.router.start_rebalance(slot, target)
    assert (plan.slot, plan.target) == (slot, target)
    system.router.poll()                 # nothing holds the slot: ships now

    assert not system.router.rebalancing
    assert system.router.shard_map.slot_shard(slot) == target
    assert system.router.shard_map.epoch == epoch + 1
    moved = [n for n in names if system.router.shard_map.slot_of(n) == slot]
    for n in moved:
        assert n in system.shards[target].fs.list_files()
        assert n not in system.shards[source].fs.list_files()
    # Every file still serves, through the new placement.
    for n in names:
        assert client.read_file(n) == contents[n]
    assert sorted(set(client.listdir())) == sorted(client.listdir())


def test_rebalance_waits_for_open_handles_and_pauses_new_opens():
    system = make_cluster(shards=2)
    [client] = system.clients
    client.write_file("held.dat", b"held" * 50)
    slot = system.router.shard_map.slot_of("held.dat")
    source = system.router.shard_map.slot_shard(slot)
    target = 1 - source

    handle, _ = client.open("held.dat")
    system.router.start_rebalance(slot, target)
    system.router.poll()
    # The open handle pins the slot: nothing ships, the map is unchanged.
    assert system.router.rebalancing
    assert system.router.shard_map.slot_shard(slot) == source

    # A new OPEN of a paused name answers busy (and is not cached).
    response = raw_transact(system, client, client.build_open("held.dat"))
    assert response.status == ST_BUSY
    assert system.router.stats()["router.paused"] >= 1

    client.close(handle)
    system.router.poll()                 # drained: ships and applies
    assert not system.router.rebalancing
    assert system.router.shard_map.slot_shard(slot) == target
    assert "held.dat" in system.shards[target].fs.list_files()
    assert client.read_file("held.dat") == b"held" * 50


def test_only_one_rebalance_at_a_time():
    system = make_cluster(shards=2)
    [client] = system.clients
    client.write_file("a.dat", b"a")
    handle, _ = client.open("a.dat")     # pin, so the first move stays live
    slot = system.router.shard_map.slot_of("a.dat")
    system.router.start_rebalance(slot, 1 - system.router.shard_map.slot_shard(slot))
    with pytest.raises(ServerError):
        system.router.start_rebalance((slot + 1) % 64, 0)
    client.close(handle)


# -- restart and recovery -----------------------------------------------------


def restart_router(system, seed=1979):
    """A new router over the same shard file systems -- the restart path."""
    from repro.net import PacketNetwork
    from repro.server import FileServer

    network = PacketNetwork()
    shards = []
    for index, old in enumerate(system.shards):
        host = f"shard{index:02d}"
        network.attach(host, queue_limit=4096, clock=old.fs.drive.clock)
        shards.append(FileServer(old.fs, network, host=host))
    router = ShardRouter(shards, network, seed=seed)
    network.attach("ws000")
    client = FileClient(network, "ws000", pump=router.poll)
    return router, client


def test_restarted_router_adopts_placement_from_the_packs():
    system = make_cluster(shards=2)
    [client] = system.clients
    names = [f"adopt{i}.dat" for i in range(5)]
    for name in names:
        client.write_file(name, name.encode() * 30)
    name, source, target = pick_file_and_target(system, names)
    slot = system.router.shard_map.slot_of(name)
    system.router.start_rebalance(slot, target)
    system.router.poll()
    moved_placement = system.router.shard_map.placement(names)

    router, client2 = restart_router(system)
    assert router.recover() == []        # no shipment was in flight
    # The fresh map re-learned the moved slot from where the files live.
    assert router.shard_map.placement(names) == moved_placement
    for n in names:
        assert client2.read_file(n) == n.encode() * 30


def test_recover_finishes_a_committed_shipment_on_restart():
    from repro.server.rebalance import MANIFEST_NAME, SHIP_SUFFIX, Shipment

    system = make_cluster(shards=2)
    [client] = system.clients
    client.write_file("mid.dat", b"mid-flight" * 20)
    slot = system.router.shard_map.slot_of("mid.dat")
    source = system.router.shard_map.slot_shard(slot)
    target = 1 - source
    # Forge the crash state one write after the commit point: staged copy
    # plus committed manifest, originals still on the source.
    data = system.shards[source].fs.open_file("mid.dat").read_data()
    target_fs = system.shards[target].fs
    target_fs.create_file("mid.dat" + SHIP_SUFFIX).write_data(data)
    manifest = Shipment(slot=slot, source=source, target=target,
                        names=["mid.dat"])
    target_fs.create_file(MANIFEST_NAME).write_data(manifest.encode())
    target_fs.flush()

    router, client2 = restart_router(system)
    shipments = router.recover()
    assert [s.slot for s in shipments] == [slot]
    assert router.shard_map.slot_shard(slot) == target
    assert "mid.dat" not in system.shards[source].fs.list_files()
    assert client2.read_file("mid.dat") == b"mid-flight" * 20


def test_adopt_placement_rejects_a_split_slot():
    system = make_cluster(shards=2)
    [client] = system.clients
    client.write_file("twin.dat", b"twin")
    slot = system.router.shard_map.slot_of("twin.dat")
    other = 1 - system.router.shard_map.slot_shard(slot)
    # Outside interference: a second copy of the slot on the other pack.
    system.shards[other].fs.create_file("twin.dat").write_data(b"imposter")
    with pytest.raises(ServerError):
        system.router.adopt_placement()


# -- construction errors ------------------------------------------------------


def test_router_rejects_empty_or_mismatched_clusters():
    from repro.net import PacketNetwork
    from repro.server import ShardMap

    with pytest.raises(ServerError):
        ShardRouter([], PacketNetwork())
    system = make_cluster(shards=2)
    from repro.net import PacketNetwork as PN
    net = PN()
    for index, shard in enumerate(system.shards):
        net.attach(f"shard{index:02d}")
    with pytest.raises(ServerError):
        ShardRouter(system.shards, net, host="front2",
                    shard_map=ShardMap(shards=3))
