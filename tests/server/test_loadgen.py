"""Load-generator tests: determinism and the concurrency win.

The acceptance bar for the server subsystem: two runs from the same seed
and schedule produce a byte-identical disk image and an identical metrics
snapshot, and multiplexing N clients beats serving them sequentially.
"""

from repro.server.loadgen import LoadGenerator, build_system, percentile


def run_load(mode="concurrent", clients=6, seed=5):
    system = build_system(clients=clients, seed=seed, tiny=True)
    generator = LoadGenerator(system, seed=seed, file_bytes=700, read_rounds=1)
    result = generator.run() if mode == "concurrent" else generator.run_sequential()
    return system, result


def images_identical(img_a, img_b):
    for s1, s2 in zip(img_a.sectors(), img_b.sectors()):
        if (s1.header.pack() != s2.header.pack()
                or s1.label.pack() != s2.label.pack()
                or list(s1.value) != list(s2.value)):
            return False
    return True


def test_served_runs_are_deterministic():
    system_a, result_a = run_load()
    system_b, result_b = run_load()
    assert result_a.to_json() == result_b.to_json()
    assert result_a.latencies_ms == result_b.latencies_ms
    assert system_a.clock.now_us == system_b.clock.now_us
    assert system_a.clock.obs.stats() == system_b.clock.obs.stats()
    system_a.fs.flush()
    system_b.fs.flush()
    assert images_identical(system_a.fs.drive.image, system_b.fs.drive.image)


def test_different_seeds_diverge():
    system_a, result_a = run_load(seed=5)
    system_b, result_b = run_load(seed=6)
    assert result_a.to_json() != result_b.to_json()
    system_a.fs.flush()
    system_b.fs.flush()
    assert not images_identical(system_a.fs.drive.image, system_b.fs.drive.image)


def test_concurrent_beats_sequential():
    _, concurrent = run_load("concurrent")
    _, sequential = run_load("sequential")
    assert concurrent.errors == sequential.errors == 0
    assert concurrent.requests == sequential.requests
    assert concurrent.requests_per_sec > sequential.requests_per_sec
    assert concurrent.flushes < sequential.flushes


def test_served_files_verify_after_the_run():
    system, result = run_load()
    assert result.errors == 0
    names = [n for n in system.fs.list_files() if n.startswith("load")]
    assert len(names) == len(system.clients)
    for name in names:
        data = system.fs.open_file(name).read_data()
        assert 700 <= len(data) < 700 + 256             # seeded size window


def test_percentile_nearest_rank():
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.99) == 7.0
    values = [float(v) for v in range(1, 101)]
    assert percentile(values, 0.50) == 51.0
    assert percentile(values, 0.99) == 99.0


def test_sequential_latencies_are_lower_but_wall_time_higher():
    """The tradeoff the benchmark reports: sequential requests see an idle
    server (low p50) but the aggregate run takes longer."""
    _, concurrent = run_load("concurrent")
    _, sequential = run_load("sequential")
    assert sequential.p50_ms <= concurrent.p50_ms
    assert sequential.elapsed_s > concurrent.elapsed_s


def test_histogram_and_list_percentiles_both_reported():
    """Satellite of the telemetry PR: the loadgen's raw-list percentiles
    and the ``loadgen.request_us`` registry histogram are reported side
    by side, and ``_result`` asserts they agree within one log bucket."""
    _, result = run_load()
    assert result.p50_hist_ms > 0
    assert result.p99_hist_ms >= result.p50_hist_ms
    # The histogram estimate never undershoots the true nearest-rank and
    # overshoots by at most a bucket width (12.5% at SUB_BUCKET_BITS=3).
    assert result.p99_hist_ms <= result.p99_ms * 1.126


def test_check_quantile_agreement_rejects_a_drifted_histogram():
    import pytest

    from repro.obs import Histogram
    from repro.server.loadgen import check_quantile_agreement

    hist = Histogram("h")
    for value in (100, 200, 400):
        hist.observe(value)
    assert check_quantile_agreement([100, 200, 400], hist, 0.5) >= 200
    hist.observe(10_000)  # histogram no longer matches the list
    with pytest.raises(AssertionError):
        check_quantile_agreement([100, 200, 400], hist, 1.0)


def test_open_loop_below_capacity_completes_everything():
    system = build_system(clients=4, seed=7, tiny=True)
    result = LoadGenerator(system, seed=7).run_open_loop(100, 0.5)
    assert result.errors == 0
    assert result.completed == result.offered > 0
    assert abs(result.achieved_rps - 100) / 100 < 0.25
    assert result.p50_hist_ms > 0


def test_open_loop_is_deterministic_on_one_server():
    def run():
        system = build_system(clients=4, seed=7, tiny=True)
        return LoadGenerator(system, seed=7).run_open_loop(100, 0.5)

    assert run().to_json() == run().to_json()
