"""Engine tests: the five operations, error codes, replay, fairness,
backpressure, and the one-flush-per-poll batching discipline."""

import pytest

from repro.disk import CachedDrive, DiskDrive, DiskImage, tiny_test_disk
from repro.errors import RequestFailed
from repro.fs import FileSystem
from repro.net import PacketNetwork
from repro.server import (
    FileClient,
    FileServer,
    OP_LIST,
    Request,
    ST_BAD_HANDLE,
    ST_BAD_PAGE,
    ST_BAD_REQUEST,
    ST_BUSY,
    ST_NOT_FOUND,
    ST_OK,
)


def make_served(clients=("ws",), cached=False, **server_kw):
    """A formatted pack, its server, and one FileClient per name."""
    image = DiskImage(tiny_test_disk(cylinders=24))
    drive = CachedDrive(image) if cached else DiskDrive(image)
    fs = FileSystem.format(drive)
    network = PacketNetwork(clock=drive.clock)
    network.attach("fileserver", queue_limit=4096)
    server = FileServer(fs, network, **server_kw)
    stations = [FileClient(network, host, pump=server.poll)
                for host in clients if network.attach(host) or True]
    return fs, server, stations


# -- the five operations ------------------------------------------------------


def test_write_read_roundtrip():
    fs, server, [client] = make_served()
    data = bytes(range(256)) * 5                       # 1280 bytes: 3 pages
    assert client.write_file("data.bin", data) == len(data)
    assert client.read_file("data.bin") == data
    # The served file is a real file on the served FileSystem.
    assert fs.open_file("data.bin").read_data() == data


def test_open_reports_size_and_close_releases():
    _, server, [client] = make_served()
    client.write_file("f.txt", b"x" * 700)
    handle, size = client.open("f.txt")
    assert size == 700
    client.close(handle)
    with pytest.raises(RequestFailed) as excinfo:
        client.transact(client.build_close(handle))
    assert excinfo.value.status == ST_BAD_HANDLE


def test_list_returns_served_names():
    _, server, [client] = make_served()
    client.write_file("one.txt", b"1")
    client.write_file("two.txt", b"22")
    names = client.listdir()
    assert "one.txt" in names and "two.txt" in names
    assert "SysDir" in names                            # the real directory


def test_read_past_eof_returns_zero_pages():
    _, server, [client] = make_served()
    client.write_file("short.txt", b"tiny")
    handle, _ = client.open("short.txt")
    response = client.transact(client.build_read(handle, 99, 1))
    assert response.status == ST_OK and response.result0 == 0
    client.close(handle)


def test_rewrite_shrinks_and_grows():
    _, server, [client] = make_served()
    client.write_file("f.dat", bytes(range(200)) * 10)  # 2000 bytes
    client.write_file("f.dat", b"now small")
    assert client.read_file("f.dat") == b"now small"
    big = bytes(reversed(range(256))) * 9               # 2304 bytes
    client.write_file("f.dat", big)
    assert client.read_file("f.dat") == big


# -- error codes --------------------------------------------------------------


def test_open_missing_without_create_is_not_found():
    _, server, [client] = make_served()
    with pytest.raises(RequestFailed) as excinfo:
        client.open("no-such-file.txt")
    assert excinfo.value.status == ST_NOT_FOUND


def test_read_with_unknown_handle_is_bad_handle():
    _, server, [client] = make_served()
    with pytest.raises(RequestFailed) as excinfo:
        client.transact(client.build_read(77, 1, 1))
    assert excinfo.value.status == ST_BAD_HANDLE


def test_read_with_bad_batch_count_is_bad_request():
    _, server, [client] = make_served()
    client.write_file("f.txt", b"data")
    handle, _ = client.open("f.txt")
    for first, count in ((0, 1), (1, 0), (1, 99)):
        with pytest.raises(RequestFailed) as excinfo:
            client.transact(client.build_read(handle, first, count))
        assert excinfo.value.status == ST_BAD_REQUEST


def test_write_with_page_gap_is_bad_page():
    _, server, [client] = make_served()
    handle, _ = client.open("gap.txt", create=True)
    with pytest.raises(RequestFailed) as excinfo:
        client.transact(client.build_write(handle, 5, b"skipped ahead"))
    assert excinfo.value.status == ST_BAD_PAGE


def test_open_with_empty_name_is_bad_request():
    _, server, [client] = make_served()
    with pytest.raises(RequestFailed) as excinfo:
        client.open("")
    assert excinfo.value.status == ST_BAD_REQUEST


# -- at-most-once replay ------------------------------------------------------


def test_duplicate_request_id_is_answered_from_the_replay_cache():
    _, server, [client] = make_served()
    handle, _ = client.open("once.txt", create=True)
    request = client.build_write(handle, 1, b"exactly once")
    before = server.stats().get("server.pages_written", 0)

    pending = client.submit(request)
    server.poll()
    response = client.step(pending)
    assert response is not None and response.ok

    duplicate = client.submit(request)                  # same request id
    server.poll()
    replayed = client.step(duplicate)
    assert replayed == response                         # byte-identical answer
    stats = server.stats()
    assert stats["server.replayed"] == 1
    assert stats["server.pages_written"] == before + 1  # executed only once


# -- fairness and backpressure ------------------------------------------------


def test_round_robin_serves_each_client_per_turn():
    _, server, clients = make_served(clients=("a", "b"), quantum=1)
    pendings = {}
    for client in clients:
        first = client.submit(client.build_list())
        second = client.submit(client.build_list())
        pendings[client] = (first, second)
    served = server.poll(budget=2)
    assert served == 2
    # One request from each client was answered -- not two from the first.
    for client in clients:
        first, second = pendings[client]
        assert client.step(first) is not None
        assert client.step(second) is None
    server.poll()
    for client in clients:
        assert client.step(pendings[client][1]) is not None


def test_admission_overflow_is_rejected_busy():
    _, server, clients = make_served(clients=("a", "b", "c"), max_pending=1)
    pendings = [client.submit(client.build_list()) for client in clients]
    server.poll()
    statuses = []
    for client, pending in zip(clients, pendings):
        response = client._check_arrivals(pending)
        statuses.append(response.status if response else None)
    assert statuses.count(ST_OK) == 1
    assert statuses.count(ST_BUSY) == 2
    assert server.stats()["server.rejected"] == 2


def test_busy_client_retries_and_succeeds():
    _, server, clients = make_served(clients=("a", "b"), max_pending=1)
    blocker = clients[0].submit(clients[0].build_list())
    victim = clients[1].submit(clients[1].build_list())
    server.poll()                                       # victim got ST_BUSY
    clock = server.clock
    response = None
    for _ in range(50):
        response = clients[1].step(victim)              # schedules/fires resend
        if response is not None:
            break
        clock.advance_us(2_000, "test.wait")
        server.poll()
    assert response is not None and response.ok
    assert clients[1].clock.obs.stats()["server.client.busy_retries"] >= 1
    del blocker


# -- flush batching -----------------------------------------------------------


def test_one_flush_covers_every_write_in_a_poll_cycle():
    _, server, clients = make_served(clients=("a", "b", "c"), cached=True)
    handles = {}
    for client in clients:
        pending = client.submit(client.build_open(f"{client.host}.dat",
                                                  create=True))
        server.poll()
        handles[client] = client.step(pending).handle
    flushes_before = server.stats().get("server.flushes", 0)
    pendings = [client.submit(client.build_write(handles[client], 1,
                                                 client.host.encode() * 30))
                for client in clients]
    server.poll()                                       # three writes, one cycle
    for client, pending in zip(clients, pendings):
        assert client.step(pending).ok
    assert server.stats()["server.flushes"] == flushes_before + 1


def test_read_only_poll_does_not_flush():
    _, server, [client] = make_served(cached=True)
    client.write_file("r.txt", b"warm")
    flushes = server.stats()["server.flushes"]
    client.read_file("r.txt")
    assert server.stats()["server.flushes"] == flushes


def test_malformed_packets_do_not_kill_the_server():
    _, server, [client] = make_served()
    from repro.net.network import Packet, TYPE_CONTROL

    server.network.send(Packet("ws", "fileserver", TYPE_CONTROL, (0xBAD,) * 7))
    server.poll()
    assert server.stats()["server.errors"] == 1
    assert client.listdir()                             # still serving


def test_poll_returns_served_count_and_stats_accumulate():
    _, server, [client] = make_served()
    pending = client.submit(client.build_list())
    assert server.poll() == 1
    assert client.step(pending).ok
    stats = server.stats()
    assert stats["server.requests"] == 1
    assert stats["server.sessions"] == 1
    assert stats["server.polls"] >= 1
