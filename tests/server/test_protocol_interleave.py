"""FrameAssembler under arbitrary cross-host interleaving.

The reassembler's contract: packets from different hosts may interleave
freely -- per-host order is all the network guarantees (the engine relies
on this; workstations do not take turns).  Hypothesis chooses the merge
order; the property is that any interleaving of ≥3 hosts' packet streams
completes exactly the frames that sequential delivery completes, with
identical contents, and abandons/strays nothing.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.server.protocol import (
    OP_WRITE,
    FrameAssembler,
    Request,
    encode_request,
)

HOSTS = ("alpha", "bravo", "charlie", "delta")

payloads = st.lists(
    st.integers(min_value=0, max_value=0xFFFF), min_size=0, max_size=700)


def encode_streams(per_host_payloads):
    """Each host's packet stream: one multi-packet WRITE request frame."""
    streams = []
    for i, payload in enumerate(per_host_payloads):
        request = Request(OP_WRITE, request_id=i + 1, handle=i,
                          payload=tuple(payload))
        streams.append(encode_request(request, HOSTS[i], "srv"))
    return streams


def completed_frames(assembler, packets):
    """Feed *packets*; collect completed frames keyed by source host."""
    out = {}
    for packet in packets:
        done = assembler.feed(packet)
        if done is not None:
            source, frame = done
            assert source not in out, "one frame per host in this property"
            out[source] = frame
    return out


def interleave(streams, draw):
    """Merge the streams in a hypothesis-chosen order, per-host order kept."""
    cursors = [0] * len(streams)
    merged = []
    live = [i for i, s in enumerate(streams) if s]
    while live:
        i = draw(st.sampled_from(live))
        merged.append(streams[i][cursors[i]])
        cursors[i] += 1
        if cursors[i] == len(streams[i]):
            live.remove(i)
    return merged


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(payloads, min_size=3, max_size=4), st.data())
def test_any_interleaving_equals_sequential_delivery(per_host, data):
    streams = encode_streams(per_host)

    sequential = completed_frames(
        FrameAssembler(), [p for stream in streams for p in stream])
    assembler = FrameAssembler()
    interleaved = completed_frames(assembler, interleave(streams, data.draw))

    assert set(interleaved) == set(sequential) == set(HOSTS[:len(per_host)])
    for host, frame in interleaved.items():
        expected = sequential[host]
        assert frame.payload == expected.payload
        assert frame.request_id == expected.request_id
        assert frame.op == expected.op
    assert assembler.abandoned == 0
    assert assembler.stray == 0


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(payloads, min_size=3, max_size=3), st.data())
def test_word_level_interleaving_of_continuations(per_host, data):
    """Even the tightest interleaving (alternating single packets from
    hosts whose frames all need continuations) reassembles cleanly."""
    # Force every frame to span packets: ≥300 payload words each.
    per_host = [list(p) + [7] * 300 for p in per_host]
    streams = encode_streams(per_host)
    assert all(len(s) >= 2 for s in streams)

    interleaved = completed_frames(
        FrameAssembler(), interleave(streams, data.draw))
    for i, payload in enumerate(per_host):
        assert interleaved[HOSTS[i]].payload == tuple(payload)
