"""Property suite for the shard map: the routing invariants, under fuzz.

Three invariants carry the whole cluster design, so they get hypothesis
rather than examples:

* **exactly one shard** -- for any seed and any name set, every name
  routes to exactly one in-range shard, repeatably;
* **restart stability** -- a map rebuilt from the same parameters (what a
  router restart does) routes every name identically;
* **rebalance is a permutation** -- applying a plan moves exactly the
  chosen slot's names and neither loses nor duplicates any name.
"""

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given
from hypothesis import strategies as st

from repro.server.shardmap import DEFAULT_SLOTS, ShardMap, hash_name

#: Arbitrary non-empty unicode names -- routing never parses them.
names_sets = st.lists(
    st.text(min_size=1, max_size=24), min_size=1, max_size=40, unique=True
)
seeds = st.integers(min_value=0, max_value=2**32 - 1)
shard_counts = st.integers(min_value=1, max_value=8)


@given(names=names_sets, seed=seeds, shards=shard_counts)
def test_every_name_routes_to_exactly_one_shard(names, seed, shards):
    shard_map = ShardMap(shards, seed=seed)
    placement = shard_map.placement(names)
    assert sorted(placement) == sorted(names)
    for name, shard in placement.items():
        assert 0 <= shard < shards
        assert shard_map.shard_of(name) == shard           # repeatable
        assert shard_map.slot_of(name) == shard_map.slot_of(name)
    assert sum(shard_map.counts(names)) == len(names)


@given(names=names_sets, seed=seeds, shards=shard_counts)
def test_routing_is_stable_across_router_restarts(names, seed, shards):
    before = ShardMap(shards, seed=seed)
    restarted = ShardMap(shards, seed=seed)
    for name in names:
        assert before.slot_of(name) == restarted.slot_of(name)
        assert before.shard_of(name) == restarted.shard_of(name)


@given(name=st.text(min_size=1, max_size=24), seed=seeds)
def test_hashing_is_case_insensitive_like_the_directory(name, seed):
    # The directory treats names with equal lowercase foldings as the
    # same file, so the hash must too.  (Unicode upper() is not always a
    # round trip -- 'µ'.upper() case-folds differently -- so the upper
    # spelling is only checked when it folds back to the same name.)
    assert hash_name(name, seed) == hash_name(name.lower(), seed)
    if name.upper().lower() == name.lower():
        assert hash_name(name, seed) == hash_name(name.upper(), seed)


@given(
    names=names_sets,
    seed=seeds,
    shards=st.integers(min_value=2, max_value=8),
    slot_pick=st.integers(min_value=0, max_value=DEFAULT_SLOTS - 1),
    target_pick=st.integers(min_value=1, max_value=7),
)
def test_rebalance_plan_is_a_permutation(names, seed, shards, slot_pick,
                                         target_pick):
    shard_map = ShardMap(shards, seed=seed)
    source = shard_map.slot_shard(slot_pick)
    target = (source + 1 + target_pick % (shards - 1)) % shards
    assert target != source

    before = shard_map.placement(names)
    epoch = shard_map.epoch
    plan = shard_map.plan_move(slot_pick, target)
    shard_map.apply(plan)
    after = shard_map.placement(names)

    # No name lost, none duplicated: same key set, each exactly once.
    assert sorted(after) == sorted(before) == sorted(names)
    assert shard_map.epoch == epoch + 1
    for name in names:
        if shard_map.slot_of(name) == slot_pick:
            assert after[name] == target
        else:
            assert after[name] == before[name]
    assert sum(shard_map.counts(names)) == len(names)


@given(seed=seeds, shards=shard_counts)
def test_every_slot_is_assigned_an_in_range_shard(seed, shards):
    shard_map = ShardMap(shards, seed=seed)
    assert len(shard_map.assignment) == DEFAULT_SLOTS
    for slot in range(DEFAULT_SLOTS):
        assert 0 <= shard_map.slot_shard(slot) < shards
    covered = sorted(set(shard_map.assignment))
    assert covered == list(range(shards))          # round-robin covers all


def test_stale_plans_are_rejected():
    shard_map = ShardMap(shards=2)
    slot = shard_map.shard_slots(0)[0]
    plan = shard_map.plan_move(slot, 1)
    shard_map.apply(plan)
    with pytest.raises(ValueError):
        shard_map.apply(plan)                      # slot no longer on source
    with pytest.raises(ValueError):
        shard_map.plan_move(slot, 1)               # no-op move
    with pytest.raises(ValueError):
        shard_map.plan_move(DEFAULT_SLOTS, 0)
    with pytest.raises(ValueError):
        ShardMap(shards=0)
    with pytest.raises(ValueError):
        ShardMap(shards=9, slots=8)
