"""Tests for Swat, the state-file debugger."""

import pytest

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.fs import FileSystem
from repro.os.swat import Swat
from repro.world import (
    Halt,
    Machine,
    ProgramRegistry,
    Transfer,
    WorldEngine,
    WorldProgram,
)


@pytest.fixture
def world():
    drive = DiskDrive(DiskImage(tiny_test_disk(cylinders=60)))
    fs = FileSystem.format(drive)
    machine = Machine()
    registry = ProgramRegistry()
    engine = WorldEngine(machine, fs, registry)
    return machine, fs, registry, engine


@pytest.fixture
def swatee(world):
    machine, fs, registry, engine = world
    machine.memory.write_block(0x2000, [10, 20, 30, 40])
    machine.set_register(3, 0x077)
    engine.swapper.outload("Swatee", "victim", "checkpointed")
    return world


class TestExamining:
    def test_where(self, swatee):
        machine, fs, registry, engine = swatee
        swat = Swat(fs)
        assert swat.where() == ("victim", "checkpointed")

    def test_read_memory_and_registers(self, swatee):
        machine, fs, registry, engine = swatee
        swat = Swat(fs)
        assert swat.read_block(0x2000, 4) == [10, 20, 30, 40]
        assert swat.read_register(3) == 0x077

    def test_search(self, swatee):
        machine, fs, registry, engine = swatee
        swat = Swat(fs)
        assert 0x2002 in swat.search(30)

    def test_dump_format(self, swatee):
        machine, fs, registry, engine = swatee
        swat = Swat(fs)
        line = swat.dump(0x2000, 4)
        assert line == "2000: 000a 0014 001e 0028"

    def test_bounds(self, swatee):
        machine, fs, registry, engine = swatee
        swat = Swat(fs)
        with pytest.raises(IndexError):
            swat.read_word(0x10000)
        with pytest.raises(IndexError):
            swat.read_register(9)


class TestAltering:
    def test_patch_commit_reload(self, swatee):
        machine, fs, registry, engine = swatee
        swat = Swat(fs)
        swat.write_word(0x2001, 999)
        swat.write_register(0, 5)
        swat.commit()
        again = Swat(fs)
        assert again.read_word(0x2001) == 999
        assert again.read_register(0) == 5

    def test_patches_never_touch_the_live_machine(self, swatee):
        machine, fs, registry, engine = swatee
        swat = Swat(fs)
        swat.write_word(0x2000, 0xDEAD)
        swat.commit()
        assert machine.memory[0x2000] == 10  # live machine untouched

    def test_word_validation(self, swatee):
        machine, fs, registry, engine = swatee
        swat = Swat(fs)
        with pytest.raises(ValueError):
            swat.write_word(0, 0x10000)


class TestResuming:
    def test_full_debug_cycle(self, world):
        """Victim breakpoints, Swat patches the bug, victim completes."""
        machine, fs, registry, engine = world

        @registry.register
        class Victim(WorldProgram):
            name = "victim"

            def phase_start(self, ctx, message):
                ctx.machine.memory[0x1500] = 0  # BUG: divisor of zero
                ctx.outload("Swatee", "compute")
                return Transfer("Debugger.state")

            def phase_compute(self, ctx, message):
                divisor = ctx.machine.memory[0x1500]
                if divisor == 0:
                    return Halt("would have crashed")
                return Halt(1000 // divisor)

        @registry.register
        class Debugger(WorldProgram):
            name = "debugger"

            def phase_start(self, ctx, message):
                swat = Swat(ctx.fs)
                assert swat.where() == ("victim", "compute")
                swat.write_word(0x1500, 8)  # fix the divisor
                return swat.resume()

        engine.swapper.outload("Debugger.state", "debugger", "start")
        assert engine.run("victim") == 125

    def test_resume_redirects_phase(self, world):
        machine, fs, registry, engine = world

        @registry.register
        class Victim(WorldProgram):
            name = "victim"

            def phase_bad(self, ctx, message):
                return Halt("wrong path")

            def phase_good(self, ctx, message):
                return Halt("patched path")

        engine.swapper.outload("Swatee", "victim", "bad")
        swat = Swat(fs)
        swat.set_resume_phase("good")
        swat.commit()
        assert engine.run_from_file("Swatee") == "patched path"
