"""Diskless-OS tests (section 5.2's alternate assembly)."""

import pytest

from repro.net import PacketNetwork
from repro.os.diskless import DisklessOS


@pytest.fixture
def diskless():
    return DisklessOS()


@pytest.fixture
def networked():
    network = PacketNetwork()
    network.attach("diskless")
    network.attach("peer")
    return DisklessOS(network=network), network


class TestAssembly:
    def test_no_disk_anywhere(self, diskless):
        assert not hasattr(diskless, "fs")
        assert not hasattr(diskless, "drive")

    def test_keyboard_display_work(self, diskless):
        out = diskless.run_monitor("echo hello diagnostics\nquit\n")
        assert "hello diagnostics" in out

    def test_zones_work(self, diskless):
        zone = diskless.new_zone(500)
        address = zone.allocate(100)
        diskless.machine.memory[address] = 42

    def test_unknown_diagnostic(self, diskless):
        out = diskless.run_monitor("warpcore\nquit\n")
        assert "unknown diagnostic" in out


class TestDiagnostics:
    def test_memtest(self, diskless):
        out = diskless.run_monitor("memtest\nquit\n")
        assert "8000 words checked, 0 bad" in out

    def test_zonetest(self, diskless):
        out = diskless.run_monitor("zonetest\nquit\n")
        assert "free list sound" in out

    def test_nettest_loopback(self, networked):
        diskless, network = networked
        out = diskless.run_monitor("nettest\nquit\n")
        assert "64 words echoed, ok=True" in out

    def test_nettest_without_network(self, diskless):
        out = diskless.run_monitor("nettest\nquit\n")
        assert "no network attached" in out


class TestNetworkStreams:
    def test_write_then_read(self, networked):
        diskless, network = networked
        out = diskless.network_write_stream("peer")
        for word in (10, 20, 30):
            out.put(word)
        out.close()
        # The peer reads with its own stream.
        from repro.net.streams import network_read_stream

        peer = network_read_stream(network, "peer")
        assert [peer.get(), peer.get(), peer.get()] == [10, 20, 30]
        assert peer.endof()
        assert peer.call("source") == "diskless"

    def test_packet_batching(self, networked):
        diskless, network = networked
        out = diskless.network_write_stream("peer")
        out.state["packet_words"] = 4
        for word in range(10):
            out.put(word)
        out.close()
        assert network.pending("peer") == 3  # 4 + 4 + 2

    def test_read_skips_non_data_packets(self, networked):
        from repro.net import Packet, TYPE_CONTROL, TYPE_DATA

        diskless, network = networked
        network.send(Packet("peer", "diskless", TYPE_CONTROL, (1,)))
        network.send(Packet("peer", "diskless", TYPE_DATA, (7,)))
        stream = diskless.network_read_stream()
        assert stream.get() == 7

    def test_streams_need_a_network(self, diskless):
        from repro.errors import CommandError

        with pytest.raises(CommandError):
            diskless.network_read_stream()
