"""Junta / CounterJunta tests (section 5.2)."""

import pytest

from repro.errors import JuntaError
from repro.memory import Memory, Zone
from repro.os.junta import JuntaController
from repro.os.levels import LEVELS, spec_for


@pytest.fixture
def junta():
    return JuntaController(Memory())


class TestJunta:
    def test_removes_higher_levels(self, junta):
        junta.junta(7)
        for spec in LEVELS:
            assert junta.is_resident(spec.number) == (spec.number <= 7)
        assert junta.retained_level() == 7

    def test_freed_region_is_contiguous_below_the_kept_levels(self, junta):
        freed = junta.junta(4)
        assert freed.end == junta.regions[4].start
        expected = sum(spec.size_words for spec in LEVELS if spec.number > 4)
        assert len(freed) == expected

    def test_freed_memory_is_usable(self, junta):
        """The caller owns the space: build a zone in it and allocate."""
        freed = junta.junta(6)
        zone = Zone(freed, "mine")
        address = zone.allocate(1000)
        freed.memory.write(address, 0xFEED)

    def test_keep_everything_frees_nothing(self, junta):
        freed = junta.junta(13)
        assert len(freed) == 0
        assert junta.retained_level() == 13

    def test_level_bounds(self, junta):
        with pytest.raises(JuntaError):
            junta.junta(0)
        with pytest.raises(JuntaError):
            junta.junta(14)

    def test_free_words_available(self, junta):
        expected = sum(s.size_words for s in LEVELS if s.number > 4)
        assert junta.free_words_available(4) == expected
        junta.junta(4)
        assert junta.free_words_available(4) == 0

    def test_resident_words_drop(self, junta):
        full = junta.resident_words()
        junta.junta(1)
        assert junta.resident_words() == spec_for(1).size_words < full


class TestServiceGating:
    def test_services_fault_after_removal(self, junta):
        junta.require_service("disk-stream")  # fine while resident
        junta.junta(7)
        with pytest.raises(JuntaError):
            junta.require_service("disk-stream")
        junta.require_service("zone-object")  # level 7 kept

    def test_unknown_service(self, junta):
        with pytest.raises(ValueError):
            junta.require_service("quantum-disk")


class TestCounterJunta:
    def test_restores_all_levels(self, junta):
        junta.junta(2)
        junta.counter_junta()
        assert junta.retained_level() == 13
        for spec in LEVELS:
            assert junta.level_intact(spec.number)

    def test_reinitializers_run(self, junta):
        ran = []
        junta.set_initializer(13, lambda region: ran.append(len(region)))
        junta.junta(5)
        junta.counter_junta()
        assert ran == [spec_for(13).size_words]

    def test_initializers_not_run_for_retained_levels(self, junta):
        ran = []
        junta.set_initializer(2, lambda region: ran.append(2))
        junta.junta(5)  # level 2 retained
        junta.counter_junta()
        assert ran == []

    def test_counter_junta_needs_level_one(self, junta):
        """An errant program clobbering level 1 (where the residency
        bookkeeping lives) takes CounterJunta down with it -- the danger
        section 4.1 describes."""
        junta.regions[1].write(0, 0)  # stomp the mask word
        with pytest.raises(JuntaError):
            junta.counter_junta()

    def test_residency_lives_in_memory(self, junta):
        """The mask is a memory word: dump/load round-trips it, so world
        swaps carry the junta state."""
        junta.junta(5)
        image = junta.memory.dump()
        junta.counter_junta()
        assert junta.retained_level() == 13
        junta.memory.load(image)
        assert junta.retained_level() == 5

    def test_junta_clears_the_storage(self, junta):
        freed = junta.junta(10)
        assert all(freed.read(i) == 0 for i in range(0, len(freed), 97))
        assert not junta.level_intact(12)

    def test_counters(self, junta):
        junta.junta(3)
        junta.counter_junta()
        junta.junta(12)
        assert junta.juntas == 2
        assert junta.counter_juntas == 1
