"""AltoOS facade tests: service gating, scavenge integration, zones."""

import pytest

from repro.disk import DiskDrive
from repro.errors import JuntaError
from repro.os import AltoOS
from repro.streams import read_string, write_string


@pytest.fixture
def os(drive):
    return AltoOS.format(drive)


class TestStreams:
    def test_write_and_read_streams(self, os):
        ws = os.write_stream("note.txt")
        write_string(ws, "remember the scavenger")
        ws.close()
        rs = os.read_stream("note.txt")
        assert read_string(rs) == "remember the scavenger"

    def test_write_stream_create_flag(self, os):
        from repro.errors import FileNotFound

        with pytest.raises(FileNotFound):
            os.write_stream("absent.txt", create=False)


class TestServiceGating:
    def test_streams_gated_by_junta(self, os):
        os.call_junta(7)
        with pytest.raises(JuntaError):
            os.read_stream("anything")
        with pytest.raises(JuntaError):
            os.write_stream("anything")
        os.call_counter_junta()

    def test_zones_gated(self, os):
        os.call_junta(6)
        with pytest.raises(JuntaError):
            os.new_zone(100)
        os.call_counter_junta()
        zone = os.new_zone(100)
        assert zone.allocate(10)

    def test_raw_components_remain_usable(self, os):
        """Openness: Junta removes the *packages*, not the programmer's
        ability to use the smaller components directly."""
        os.call_junta(1)
        file = os.fs.create_file("raw.txt")  # direct fs access still works
        file.write_data(b"no system needed")
        assert os.fs.open_file("raw.txt").read_data() == b"no system needed"
        os.call_counter_junta()


class TestZones:
    def test_new_zone_comes_from_system_storage(self, os):
        free_before = os.system_zone.free_words()
        zone = os.new_zone(200, "user")
        assert os.system_zone.free_words() < free_before
        address = zone.allocate(50)
        assert address in zone.region

    def test_counter_junta_rebuilds_system_zone(self, os):
        os.new_zone(200)
        os.call_junta(7)
        os.call_counter_junta()
        assert os.system_zone.free_words() == len(os.junta.regions[13])


class TestScavengeIntegration:
    def test_scavenge_remounts(self, os, image, injector):
        os.write_stream("keep.txt").close()
        for address in injector.random_in_use_addresses(4):
            injector.scramble_links(address)
        report = os.scavenge()
        assert report.links_repaired >= 4
        assert "keep.txt" in os.fs.list_files()

    def test_swapper_hints_dropped_after_scavenge(self, os):
        os.engine.swapper.state_file("s.state")
        os.scavenge()
        assert os.engine.swapper._files == {}


class TestTypeAhead:
    def test_type_ahead_reaches_the_memory_buffer(self, os):
        os.type_ahead("x")
        assert os.keyboard_process.available() == 1

    def test_repr(self, os):
        assert "level=13" in repr(os)
