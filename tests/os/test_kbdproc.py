"""Keyboard-process tests: the buffer lives in simulated memory."""

import pytest

from repro.memory import Memory
from repro.os.kbdproc import KeyboardProcess, buffered_keyboard_stream
from repro.streams import KeyboardDevice


@pytest.fixture
def setup():
    memory = Memory(0x1000)
    device = KeyboardDevice()
    process = KeyboardProcess(memory.region(0x100, 0x40), device)
    return memory, device, process


class TestRingBuffer:
    def test_pump_and_read(self, setup):
        memory, device, process = setup
        device.type_text("abc")
        assert process.pump() == 3
        assert process.available() == 3
        assert process.read_char() == "a"
        assert process.peek_char() == "b"
        assert process.contents() == "bc"

    def test_empty_reads(self, setup):
        memory, device, process = setup
        assert process.read_char() is None
        assert process.peek_char() is None

    def test_wraparound(self, setup):
        memory, device, process = setup
        for round_ in range(5):
            device.type_text("0123456789")
            process.pump()
            for i in range(10):
                assert process.read_char() == str(i)

    def test_overflow_drops(self, setup):
        memory, device, process = setup
        device.type_text("x" * 100)  # capacity is 62
        process.pump()
        assert process.available() == process.capacity - 1
        assert process.dropped >= 1

    def test_buffer_words_are_in_memory(self, setup):
        """The point of the design: the type-ahead is part of the memory
        image, so world swaps and Junta preserve it."""
        memory, device, process = setup
        device.type_text("Z")
        process.pump()
        stored = [memory[a] for a in range(0x100, 0x140)]
        assert ord("Z") in stored

    def test_survives_a_memory_dump_restore(self, setup):
        memory, device, process = setup
        device.type_text("kept")
        process.pump()
        image = memory.dump()
        process.initialize()  # wiped
        memory.load(image)  # world restored
        assert process.contents() == "kept"

    def test_region_too_small(self):
        memory = Memory(0x100)
        with pytest.raises(ValueError):
            KeyboardProcess(memory.region(0, 3), KeyboardDevice())


class TestBufferedStream:
    def test_get_pumps_automatically(self, setup):
        memory, device, process = setup
        stream = buffered_keyboard_stream(process)
        device.type_text("q")
        assert not stream.endof()
        assert stream.get() == "q"
        assert stream.endof()

    def test_get_empty_raises(self, setup):
        from repro.errors import EndOfStream

        memory, device, process = setup
        stream = buffered_keyboard_stream(process)
        with pytest.raises(EndOfStream):
            stream.get()

    def test_peek(self, setup):
        memory, device, process = setup
        stream = buffered_keyboard_stream(process)
        device.type_text("ab")
        process.pump()
        assert stream.call("peek") == "a"
