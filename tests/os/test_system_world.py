"""Tests for entering the operating system by InLoad (section 5.1)."""

import pytest

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.os import AltoOS, CodeFile, write_code_file
from repro.words import string_to_words


@pytest.fixture
def os():
    return AltoOS.format(DiskDrive(DiskImage(tiny_test_disk(cylinders=60))))


class TestSystemWorld:
    def test_state_file_created(self, os):
        os.install_system_world()
        assert "AltoOS.world" in os.fs.list_files()

    def test_foreign_environment_invokes_a_program_by_message(self, os):
        """"The message vector passed to InLoad may contain the name of a
        file containing the program to be invoked"."""
        os.executables.register("Greet", lambda o, args: "greetings from under the OS")
        write_code_file(os.fs, "greet.run", CodeFile(entry="Greet", code=[0]))
        os.install_system_world()

        # The "Lisp system" hands control to the OS, asking for greet.run.
        message = string_to_words("greet.run")
        result = os.engine.run("alto-os", phase="boot", message=message)
        assert result == "greetings from under the OS"

    def test_empty_message_runs_the_executive(self, os):
        os.install_system_world()
        os.type_ahead("write from-typeahead.txt it worked\nquit\n")
        os.engine.run("alto-os", phase="boot")
        assert "from-typeahead.txt" in os.fs.list_files()

    def test_entry_reinitializes_the_levels(self, os):
        """Loading-and-initializing the system undoes a prior Junta."""
        os.install_system_world()
        os.call_junta(4)
        os.type_ahead("quit\n")
        os.engine.run("alto-os", phase="boot")
        assert os.junta.retained_level() == 13

    def test_install_is_idempotent(self, os):
        os.install_system_world()
        os.install_system_world()
        assert os.programs.names().count("alto-os") == 1
