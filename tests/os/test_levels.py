"""Tests for the level definitions and layout."""

import pytest

from repro.memory import Memory
from repro.os.levels import (
    LEVELS,
    MAX_LEVEL,
    MIN_LEVEL,
    fill_pattern,
    layout,
    level_providing,
    resident_words,
    services_at_or_below,
    spec_for,
)


class TestDefinitions:
    def test_thirteen_levels(self):
        """Section 5.2 enumerates levels 1 through 13."""
        assert MIN_LEVEL == 1 and MAX_LEVEL == 13
        assert [spec.number for spec in LEVELS] == list(range(1, 14))

    def test_level_one_is_swapping(self):
        spec = spec_for(1)
        assert "outload" in spec.services and "counter-junta" in spec.services

    def test_inload_outload_size_matches_the_paper(self):
        """Section 4.1: "quite small (about 900 words)"."""
        assert spec_for(1).size_words == 900

    def test_unknown_level(self):
        with pytest.raises(ValueError):
            spec_for(0)
        with pytest.raises(ValueError):
            spec_for(14)

    def test_every_service_has_a_unique_home(self):
        seen = {}
        for spec in LEVELS:
            for service in spec.services:
                assert service not in seen, f"{service} in two levels"
                seen[service] = spec.number
        assert level_providing("disk-stream").number == 8
        with pytest.raises(ValueError):
            level_providing("time-travel")

    def test_services_accumulate(self):
        assert services_at_or_below(1) == list(spec_for(1).services)
        assert len(services_at_or_below(13)) == sum(len(s.services) for s in LEVELS)


class TestLayout:
    def test_packs_down_from_the_top(self):
        """"the lowest level ... is at the very top of memory.  Less
        ubiquitous services are in levels with higher numbers, located
        lower in memory"."""
        memory = Memory()
        regions = layout(memory)
        assert regions[1].end == memory.size
        for number in range(1, 13):
            assert regions[number + 1].end == regions[number].start

    def test_sizes_respected(self):
        regions = layout(Memory())
        for spec in LEVELS:
            assert len(regions[spec.number]) == spec.size_words

    def test_resident_words_total(self):
        assert resident_words() == sum(s.size_words for s in LEVELS)
        assert resident_words() < Memory().size  # room left for programs

    def test_fill_patterns_distinct(self):
        patterns = {fill_pattern(s.number) for s in LEVELS}
        assert len(patterns) == len(LEVELS)
