"""Executive tests (section 5.1) and the Com.cm protocol (section 4)."""

import pytest

from repro.os import AltoOS, COMMAND_FILE, CodeFile, Fixup, write_code_file
from repro.streams import open_read_stream, read_string


@pytest.fixture
def os(drive):
    return AltoOS.format(drive)


def run(os, script):
    return os.run_executive(script)


class TestBuiltins:
    def test_write_type_ls(self, os):
        out = run(os, "write a.txt alpha beta\ntype a.txt\nls\nquit\n")
        assert "alpha beta" in out
        assert "a.txt" in out
        assert "10 bytes" in out

    def test_delete_and_rename(self, os):
        out = run(os, "write a.txt data\nrename a.txt b.txt\nls\ndelete b.txt\nls\nquit\n")
        assert "renamed" in out and "deleted" in out
        lines = out.splitlines()
        assert lines.count("b.txt") == 1  # listed once, then deleted
        assert "a.txt" not in lines  # never listed after the rename

    def test_free(self, os):
        out = run(os, "free\nquit\n")
        assert "free pages" in out

    def test_ls_subdirectory(self, os):
        os.fs.create_file("inner.txt", directory=os.fs.create_directory("Sub"))
        out = run(os, "ls Sub\nquit\n")
        assert "inner.txt" in out

    def test_scavenge_command(self, os):
        out = run(os, "scavenge\nquit\n")
        assert "scavenged" in out

    def test_unknown_command(self, os):
        out = run(os, "frobnicate\nquit\n")
        assert "?" in out and "frobnicate" in out

    def test_usage_errors(self, os):
        out = run(os, "type\nrename onlyone\nquit\n")
        assert out.count("usage:") == 2

    def test_programs_listing(self, os):
        os.executables.register("Zed", lambda o, a: None)
        out = run(os, "programs\nquit\n")
        assert "Zed" in out


class TestComCm:
    def test_command_recorded_before_execution(self, os):
        """Section 4: the command scanner writes the command string on a
        file with a standard name for the invoked program to read."""
        recorded = {}

        def snoop(o, args):
            stream = open_read_stream(o.fs.open_file(COMMAND_FILE), update_dates=False)
            recorded["line"] = read_string(stream)
            stream.close()
            return None

        os.executables.register("Snoop", snoop)
        write_code_file(os.fs, "snoop.run", CodeFile(entry="Snoop", code=[0]))
        run(os, "snoop with args\nquit\n")
        assert recorded["line"] == "snoop with args\n"


class TestProgramInvocation:
    def test_run_by_bare_name(self, os):
        os.executables.register("Banner", lambda o, args: f"<{' '.join(args)}>")
        write_code_file(os.fs, "banner.run", CodeFile(entry="Banner", code=[0]))
        out = run(os, "banner one two\nquit\n")
        assert "<one two>" in out

    def test_run_by_full_name(self, os):
        os.executables.register("Banner", lambda o, args: "ran")
        write_code_file(os.fs, "banner.run", CodeFile(entry="Banner", code=[0]))
        out = run(os, "banner.run\nquit\n")
        assert "ran" in out

    def test_program_with_fixups_runs(self, os):
        os.executables.register("Probe", lambda o, args: "probe-ok")
        write_code_file(
            os.fs, "probe.run",
            CodeFile(entry="Probe", code=[0, 0], fixups=[Fixup(1, "directory")]),
        )
        out = run(os, "probe\nquit\n")
        assert "probe-ok" in out

    def test_echo_goes_to_display(self, os):
        out = run(os, "quit\n")
        assert out.startswith("quit")

    def test_repl_stops_without_input(self, os):
        assert run(os, "") == ""

    def test_type_ahead_between_commands(self, os):
        """Characters typed during one command are interpreted by the
        next (the level-2 buffer's whole purpose)."""
        os.type_ahead("write t.txt hi\n")
        os.type_ahead("type t.txt\nquit\n")  # "typed ahead" before repl ran
        out = os.run_executive()
        assert "hi" in out.splitlines()
