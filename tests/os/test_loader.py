"""Program loader tests (section 5.1)."""

import pytest

from repro.errors import FixupError, LoadError
from repro.memory import Memory
from repro.os import AltoOS, CodeFile, Fixup, LOAD_ADDRESS, write_code_file
from repro.os.junta import JuntaController
from repro.os.loader import ExecutableRegistry, ProgramLoader
from repro.world.machine import Machine


@pytest.fixture
def os(drive):
    return AltoOS.format(drive)


class TestCodeFileFormat:
    def test_round_trip(self):
        code_file = CodeFile(
            entry="MyProgram",
            code=[1, 2, 3, 4, 5],
            fixups=[Fixup(offset=1, service="disk-stream"), Fixup(offset=3, service="zone-object")],
        )
        again = CodeFile.unpack_words(code_file.pack_words())
        assert again.entry == "MyProgram"
        assert again.code == [1, 2, 3, 4, 5]
        assert again.fixups == code_file.fixups

    def test_no_entry_rejected(self):
        with pytest.raises(LoadError):
            CodeFile(entry="", code=[]).pack_words()

    def test_bad_magic(self):
        words = CodeFile(entry="P", code=[1]).pack_words()
        words[0] = 0
        with pytest.raises(LoadError):
            CodeFile.unpack_words(words)

    def test_truncated_code(self):
        words = CodeFile(entry="P", code=[1, 2, 3]).pack_words()
        with pytest.raises(LoadError):
            CodeFile.unpack_words(words[:-2])

    def test_fixup_offset_validated(self):
        words = CodeFile(entry="P", code=[1], fixups=[Fixup(5, "loader")]).pack_words()
        with pytest.raises(LoadError):
            CodeFile.unpack_words(words)


class TestBinding:
    def test_fixups_bound_to_level_addresses(self, os):
        """Binding is real: the fixed-up word holds the service's dispatch
        address inside its level's region."""
        code_file = CodeFile(entry="P", code=[0, 0, 0], fixups=[Fixup(1, "disk-stream")])
        os.executables.register("P", lambda o, args: "ran")
        loaded = os.loader.load_words(code_file.pack_words())
        bound = loaded.bound_services["disk-stream"]
        assert bound in os.junta.regions[8]
        assert os.machine.memory[LOAD_ADDRESS + 1] == bound

    def test_fixup_to_removed_level_fails(self, os):
        code_file = CodeFile(entry="P", code=[0, 0], fixups=[Fixup(0, "display-stream")])
        os.call_junta(9)
        with pytest.raises(FixupError):
            os.loader.load_words(code_file.pack_words())
        os.call_counter_junta()
        os.executables.register("P", lambda o, args: None)
        os.loader.load_words(code_file.pack_words())  # now fine

    def test_unknown_service_fails(self, os):
        code_file = CodeFile(entry="P", code=[0], fixups=[Fixup(0, "warp-drive")])
        with pytest.raises(FixupError):
            os.loader.load_words(code_file.pack_words())

    def test_overlay_replaces_previous_program(self, os):
        """Section 5.1: a program may terminate "by calling the program
        loader to read in another program and thus overlay the first"."""
        os.executables.register("A", lambda o, args: "a")
        os.executables.register("B", lambda o, args: "b")
        os.loader.load_words(CodeFile(entry="A", code=[0xAAAA]).pack_words())
        assert os.machine.memory[LOAD_ADDRESS] == 0xAAAA
        os.loader.load_words(CodeFile(entry="B", code=[0xBBBB]).pack_words())
        assert os.machine.memory[LOAD_ADDRESS] == 0xBBBB
        assert os.loader.invoke(os) == "b"


class TestLoadFromDisk:
    def test_write_then_load_code_file(self, os):
        os.executables.register("Hello", lambda o, args: f"hello {args[0]}")
        code_file = CodeFile(entry="Hello", code=[9, 9], fixups=[Fixup(0, "loader")])
        write_code_file(os.fs, "hello.run", code_file)
        loaded = os.loader.load_file(os.fs.open_file("hello.run"))
        assert loaded.entry == "Hello"
        assert os.loader.invoke(os, ["world"]) == "hello world"

    def test_invoke_without_load(self, os):
        with pytest.raises(LoadError):
            ProgramLoader(Machine(), JuntaController(Memory()), ExecutableRegistry()).invoke(os)

    def test_unregistered_entry(self, os):
        os.loader.load_words(CodeFile(entry="Ghost", code=[1]).pack_words())
        with pytest.raises(LoadError):
            os.loader.invoke(os)


class TestExecutableRegistry:
    def test_decorator_form(self):
        registry = ExecutableRegistry()

        @registry.register("Deco")
        def run(os, args):
            return "deco"

        assert registry.lookup("Deco") is run
        assert registry.names() == ["Deco"]
