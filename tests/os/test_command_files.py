"""Tests for Executive command files (@file) and the copy/compact builtins."""

import pytest

from repro.os import AltoOS


@pytest.fixture
def os(drive):
    return AltoOS.format(drive)


def script_file(os, name, text):
    os.fs.create_file(name).write_data(text.encode())


class TestCommandFiles:
    def test_runs_each_line(self, os):
        script_file(os, "Setup.cm", "write a.txt alpha\nwrite b.txt beta\n")
        out = os.run_executive("@Setup\nls\nquit\n")
        assert "a.txt" in out and "b.txt" in out
        assert ">write a.txt alpha" in out  # script echo marker

    def test_bare_name_resolves_cm_extension(self, os):
        script_file(os, "Job.cm", "free\n")
        out = os.run_executive("@Job\nquit\n")
        assert "free pages" in out

    def test_literal_name_wins(self, os):
        script_file(os, "Job", "write from-literal.txt x\n")
        script_file(os, "Job.cm", "write from-cm.txt x\n")
        out = os.run_executive("@Job\nls\nquit\n")
        assert "from-literal.txt" in out
        assert "from-cm.txt" not in out.replace("write from-cm", "")

    def test_missing_file(self, os):
        out = os.run_executive("@nothing\nquit\n")
        assert "no command file" in out

    def test_nested_scripts(self, os):
        script_file(os, "Inner.cm", "write deep.txt nested\n")
        script_file(os, "Outer.cm", "@Inner\ntype deep.txt\n")
        out = os.run_executive("@Outer\nquit\n")
        assert "nested" in out

    def test_nesting_depth_limited(self, os):
        script_file(os, "Loop.cm", "@Loop\n")
        out = os.run_executive("@Loop\nquit\n")
        assert "nested too deeply" in out

    def test_quit_inside_script_stops_the_repl(self, os):
        script_file(os, "Bye.cm", "write early.txt x\nquit\nwrite late.txt x\n")
        out = os.run_executive("@Bye\nls\n")  # ls must never run
        assert "early.txt" in out
        assert "late.txt" not in out
        assert "\nls\n" not in out


class TestCopyCommand:
    def test_copy(self, os):
        out = os.run_executive("write src.txt hello copy\ncopy src.txt dst.txt\ntype dst.txt\nquit\n")
        assert "10 bytes copied" in out
        assert out.count("hello copy") >= 1

    def test_copy_overwrites(self, os):
        out = os.run_executive(
            "write a.txt AAA\nwrite b.txt BBBBBB\ncopy a.txt b.txt\ntype b.txt\nquit\n"
        )
        assert "type b.txt\nAAA\n" in out  # b.txt now holds exactly AAA

    def test_usage(self, os):
        out = os.run_executive("copy onlyone\nquit\n")
        assert "usage: copy" in out


class TestCompactCommand:
    def test_compact_from_the_executive(self, os):
        out = os.run_executive(
            "write f1.txt data one\nwrite f2.txt data two\ncompact\ntype f1.txt\nquit\n"
        )
        assert "compacted:" in out
        assert "data one" in out  # files still readable afterwards


class TestInfoAndDump:
    def test_info(self, os):
        out = os.run_executive("write x.txt twelve bytes.\ninfo x.txt\nquit\n")
        assert "13 bytes in 2 pages" in out
        assert "serial 0x" in out

    def test_info_directory_flag(self, os):
        os.fs.create_directory("Sub")
        out = os.run_executive("info Sub\nquit\n")
        assert "[directory]" in out

    def test_dump(self, os):
        out = os.run_executive("write x.txt AB\ndump x.txt\nquit\n")
        assert "page 1 (L=2):" in out
        assert "4142" in out  # 'AB' packed into the first word

    def test_dump_usage(self, os):
        out = os.run_executive("dump\nquit\n")
        assert "usage: dump" in out
