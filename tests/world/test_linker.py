"""Tests for the boot-file linker (section 4)."""

import pytest

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.errors import LoadError
from repro.os import AltoOS, CodeFile, Fixup
from repro.world import create_boot_file, hardware_boot
from repro.world.linker import (
    LINKED_RUNNER,
    link_boot_program,
    read_launch_vector,
    register_linked_runner,
    write_launch_vector,
)


@pytest.fixture
def os():
    return AltoOS.format(DiskDrive(DiskImage(tiny_test_disk(cylinders=60))))


class TestLaunchVector:
    def test_round_trip(self, os):
        write_launch_vector(os.machine.memory, "MyEntry", ["a", "b c".replace(" ", "-")])
        entry, args = read_launch_vector(os.machine.memory)
        assert entry == "MyEntry"
        assert args == ["a", "b-c"]

    def test_no_args(self, os):
        write_launch_vector(os.machine.memory, "Solo", [])
        assert read_launch_vector(os.machine.memory) == ("Solo", [])

    def test_missing_vector(self, os):
        with pytest.raises(LoadError):
            read_launch_vector(os.machine.memory)


class TestLinkAndBoot:
    def test_linked_program_runs_on_boot(self, os):
        """The whole section-4 story: link, power off, press the button."""
        results = []

        def diagnostics(o, args):
            results.append(list(args))
            return f"diagnosed {' '.join(args)}"

        os.executables.register("Diagnose", diagnostics)
        create_boot_file(os.fs)
        code = CodeFile(entry="Diagnose", code=[1, 2, 3], fixups=[Fixup(0, "zone-object")])
        link_boot_program(os, code, args=["disk0", "verbose"])

        # Power off: wipe the live machine utterly.
        os.machine.memory.fill(0, os.machine.memory.size, 0)
        outcome = hardware_boot(os.engine)
        assert outcome == "diagnosed disk0 verbose"
        assert results == [["disk0", "verbose"]]

    def test_program_code_travels_in_the_image(self, os):
        """After boot, the linked code words are back in low memory even
        though the live machine was wiped -- they came from the image."""
        from repro.os.loader import LOAD_ADDRESS

        os.executables.register("Probe", lambda o, a: o.machine.memory[LOAD_ADDRESS])
        create_boot_file(os.fs)
        link_boot_program(os, CodeFile(entry="Probe", code=[0xBEEF]))
        os.machine.memory.fill(0, os.machine.memory.size, 0)
        assert hardware_boot(os.engine) == 0xBEEF

    def test_register_runner_idempotent(self, os):
        register_linked_runner(os)
        register_linked_runner(os)
        assert os.programs.names().count(LINKED_RUNNER) == 1

    def test_relink_replaces_the_boot_world(self, os):
        os.executables.register("First", lambda o, a: "first")
        os.executables.register("Second", lambda o, a: "second")
        create_boot_file(os.fs)
        link_boot_program(os, CodeFile(entry="First", code=[1]))
        link_boot_program(os, CodeFile(entry="Second", code=[2]))
        assert hardware_boot(os.engine) == "second"
