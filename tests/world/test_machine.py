"""Tests for the machine model."""

import pytest

from repro.world.machine import Machine, REGISTER_COUNT


class TestRegisters:
    def test_read_write(self):
        machine = Machine()
        machine.set_register(3, 0x1234)
        assert machine.get_register(3) == 0x1234

    def test_bounds(self):
        machine = Machine()
        with pytest.raises(IndexError):
            machine.set_register(REGISTER_COUNT, 0)
        with pytest.raises(IndexError):
            machine.get_register(-1)

    def test_word_range(self):
        with pytest.raises(ValueError):
            Machine().set_register(0, 0x10000)


class TestCaptureRestore:
    def test_round_trip(self):
        machine = Machine()
        machine.memory[0x42] = 7
        machine.set_register(0, 99)
        machine.keyboard.type_text("pending")
        state = machine.capture()

        other = Machine()
        other.restore(state)
        assert other.memory[0x42] == 7
        assert other.get_register(0) == 99
        assert other.keyboard.snapshot() == "pending"

    def test_capture_is_a_snapshot(self):
        machine = Machine()
        state = machine.capture()
        machine.memory[0] = 1
        assert state["memory"][0] == 0

    def test_restore_validates_registers(self):
        machine = Machine()
        state = machine.capture()
        state["registers"] = [0, 1]
        with pytest.raises(ValueError):
            machine.restore(state)
