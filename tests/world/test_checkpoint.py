"""Checkpointing tests (section 4)."""

import pytest

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.errors import BadStateFile, FileNotFound
from repro.fs import FileSystem
from repro.world import (
    Checkpointer,
    Halt,
    Machine,
    ProgramRegistry,
    Transfer,
    WorldEngine,
    WorldProgram,
    resume_from_checkpoint,
)


@pytest.fixture
def world():
    drive = DiskDrive(DiskImage(tiny_test_disk(cylinders=60)))
    fs = FileSystem.format(drive)
    machine = Machine()
    registry = ProgramRegistry()
    engine = WorldEngine(machine, fs, registry)
    return machine, fs, registry, engine


class TestCheckpointer:
    def test_interval_gating(self, world):
        machine, fs, registry, engine = world
        checkpointer = Checkpointer("c.state", interval_s=100.0)

        @registry.register
        class Worker(WorldProgram):
            name = "worker"

            def phase_start(self, ctx, message):
                took_first = checkpointer.maybe_checkpoint(ctx)
                took_second = checkpointer.maybe_checkpoint(ctx)  # too soon
                return Halt((took_first, took_second))

        assert engine.run("worker") == (True, False)
        assert checkpointer.checkpoints_taken == 1

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            Checkpointer("c.state", interval_s=0)

    def test_crash_and_resume(self, world):
        """Save, "crash" (wipe the machine), resume from the checkpoint."""
        machine, fs, registry, engine = world
        checkpointer = Checkpointer("c.state", interval_s=1.0, resume_phase="resume")

        @registry.register
        class LongJob(WorldProgram):
            name = "longjob"

            def phase_start(self, ctx, message):
                ctx.machine.memory[0x800] = 31415  # progress so far
                checkpointer.checkpoint(ctx)
                return Halt("crashed before finishing")

            def phase_resume(self, ctx, message):
                return Halt(("resumed-with", ctx.machine.memory[0x800]))

        engine.run("longjob")
        machine.memory[0x800] = 0  # the crash

        assert resume_from_checkpoint(engine, "c.state") == ("resumed-with", 31415)

    def test_missing_checkpoint(self, world):
        machine, fs, registry, engine = world
        with pytest.raises(FileNotFound):
            resume_from_checkpoint(engine, "never.state")
