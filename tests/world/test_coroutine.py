"""Tests for the coroutine-linkage helpers (section 4.1)."""

import pytest

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.fs import FileSystem
from repro.world import (
    Halt,
    Machine,
    ProgramRegistry,
    Transfer,
    WorldEngine,
    WorldProgram,
    coroutine_call,
    full_name_to_words,
    full_name_from_words,
    reply,
)


@pytest.fixture
def world():
    drive = DiskDrive(DiskImage(tiny_test_disk(cylinders=60)))
    fs = FileSystem.format(drive)
    machine = Machine()
    registry = ProgramRegistry()
    return machine, fs, registry, WorldEngine(machine, fs, registry)


class TestCoroutineHelpers:
    def test_call_saves_then_transfers(self, world):
        machine, fs, registry, engine = world

        @registry.register
        class Caller(WorldProgram):
            name = "caller"

            def phase_start(self, ctx, message):
                return coroutine_call(ctx, "caller.state", "callee.state", message=[5])

            def phase_resumed(self, ctx, message):
                return Halt(("reply-was", list(message)))

        @registry.register
        class Callee(WorldProgram):
            name = "callee"

            def phase_start(self, ctx, message):
                return reply(ctx, "caller.state", message=[message[0] * 2],
                             my_state_file="callee.state")

        engine.swapper.outload("callee.state", "callee", "start")
        assert engine.run("caller") == ("reply-was", [10])

    def test_reply_without_saving_self(self, world):
        machine, fs, registry, engine = world

        @registry.register
        class OneShot(WorldProgram):
            name = "oneshot"

            def phase_start(self, ctx, message):
                # A terminal partner: answers and never expects resumption.
                return reply(ctx, "caller.state", message=[99])

        @registry.register
        class Caller(WorldProgram):
            name = "caller"

            def phase_start(self, ctx, message):
                return coroutine_call(ctx, "caller.state", "oneshot.state")

            def phase_resumed(self, ctx, message):
                return Halt(list(message))

        engine.swapper.outload("oneshot.state", "oneshot", "start")
        assert engine.run("caller") == [99]
        assert fs.root.lookup("oneshot.state") is not None  # never re-saved

    def test_return_address_in_message(self, world):
        """"Often the message contains a return address, that is, the full
        name of a file to restore upon return"."""
        machine, fs, registry, engine = world

        @registry.register
        class Service(WorldProgram):
            name = "service"

            def phase_start(self, ctx, message):
                # Decode the return address from the message words.
                return_to = full_name_from_words(list(message[:4]))
                state_file = ctx.fs.open_entry(
                    next(e for e in ctx.fs.root.entries()
                         if e.fid == return_to.fid)
                )
                return Transfer(state_file.name, message=[1234])

        @registry.register
        class Client(WorldProgram):
            name = "client"

            def phase_start(self, ctx, message):
                ctx.outload("client.state", "resumed")
                mine = ctx.fs.open_file("client.state").full_name()
                return Transfer("service.state", message=full_name_to_words(mine))

            def phase_resumed(self, ctx, message):
                return Halt(message[0])

        engine.swapper.outload("service.state", "service", "start")
        assert engine.run("client") == 1234
