"""Boot-file tests (section 4)."""

import pytest

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.errors import FileFormatError, WorldError
from repro.fs import BOOT_PAGE_ADDRESS, FileSystem
from repro.world import (
    Halt,
    Machine,
    ProgramRegistry,
    WorldEngine,
    WorldProgram,
    create_boot_file,
    hardware_boot,
    read_boot_pointer,
)


@pytest.fixture
def world():
    drive = DiskDrive(DiskImage(tiny_test_disk(cylinders=60)))
    fs = FileSystem.format(drive)
    machine = Machine()
    registry = ProgramRegistry()
    engine = WorldEngine(machine, fs, registry)
    return machine, fs, registry, engine


class TestBootFile:
    def test_page_one_pinned_at_fixed_address(self, world):
        machine, fs, registry, engine = world
        boot = create_boot_file(fs)
        assert boot.page_name(1).address == BOOT_PAGE_ADDRESS
        assert boot.page_name(0).address != BOOT_PAGE_ADDRESS

    def test_listed_in_root(self, world):
        machine, fs, registry, engine = world
        create_boot_file(fs)
        assert "Sys.boot" in fs.list_files()

    def test_duplicate_rejected(self, world):
        machine, fs, registry, engine = world
        create_boot_file(fs)
        with pytest.raises(FileFormatError):
            create_boot_file(fs)

    def test_boot_pointer_follows_back_link(self, world):
        machine, fs, registry, engine = world
        boot = create_boot_file(fs)
        pointer = read_boot_pointer(fs.drive)
        assert pointer.fid == boot.fid
        assert pointer.address == boot.leader_address()

    def test_no_boot_file(self, world):
        machine, fs, registry, engine = world
        with pytest.raises(WorldError):
            read_boot_pointer(fs.drive)


class TestHardwareBoot:
    def test_boot_restores_saved_world(self, world):
        """"the file may have been written by saving the state of a running
        program that will be resumed each time the machine is
        bootstrapped"."""
        machine, fs, registry, engine = world

        @registry.register
        class Resumable(WorldProgram):
            name = "resumable"

            def phase_saved(self, ctx, message):
                return Halt(ctx.machine.memory[0x900])

        create_boot_file(fs)
        machine.memory[0x900] = 1979
        engine.swapper.outload("Sys.boot", "resumable", "saved")
        machine.memory[0x900] = 0  # power off wipes memory

        assert hardware_boot(engine) == 1979

    def test_boot_survives_scavenge(self, world):
        """The boot page is pinned; a scavenge must leave it bootable."""
        from repro.fs.scavenger import Scavenger

        machine, fs, registry, engine = world

        @registry.register
        class Resumable(WorldProgram):
            name = "resumable"

            def phase_saved(self, ctx, message):
                return Halt("alive")

        create_boot_file(fs)
        machine.memory[0x900] = 1
        engine.swapper.outload("Sys.boot", "resumable", "saved")
        Scavenger(DiskDrive(fs.drive.image, clock=fs.drive.clock)).scavenge()

        fs2 = FileSystem.mount(DiskDrive(fs.drive.image, clock=fs.drive.clock))
        engine2 = WorldEngine(machine, fs2, registry)
        assert hardware_boot(engine2) == "alive"
