"""Tests for world-image serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BadStateFile, MessageTooLong
from repro.fs.names import FileId, FullName, make_serial
from repro.memory.core import MEMORY_WORDS
from repro.world.statefile import (
    FULL_NAME_WORDS,
    MESSAGE_WORDS,
    STATE_FILE_BYTES,
    check_message,
    full_name_from_words,
    full_name_to_words,
    pack_state,
    unpack_state,
)

REGISTERS = [1, 2, 3, 4, 5, 6, 7, 8]


def sample_memory():
    memory = [0] * MEMORY_WORDS
    memory[0x100] = 0xDEAD
    memory[0xFFFF] = 0xBEEF
    return memory


class TestPackUnpack:
    def test_round_trip(self):
        data = pack_state(sample_memory(), REGISTERS, "editor", "resume", "ls\n")
        memory, registers, program, phase, typeahead = unpack_state(data)
        assert memory[0x100] == 0xDEAD and memory[0xFFFF] == 0xBEEF
        assert registers == REGISTERS
        assert (program, phase, typeahead) == ("editor", "resume", "ls\n")

    def test_size_is_constant(self):
        data = pack_state(sample_memory(), REGISTERS, "p", "s", "")
        assert len(data) == STATE_FILE_BYTES

    def test_memory_size_enforced(self):
        with pytest.raises(BadStateFile):
            pack_state([0] * 100, REGISTERS, "p", "s", "")

    def test_register_count_enforced(self):
        with pytest.raises(BadStateFile):
            pack_state(sample_memory(), [1, 2], "p", "s", "")


class TestValidation:
    def test_truncated(self):
        data = pack_state(sample_memory(), REGISTERS, "p", "s", "")
        with pytest.raises(BadStateFile):
            unpack_state(data[:-10])

    def test_bad_magic(self):
        data = bytearray(pack_state(sample_memory(), REGISTERS, "p", "s", ""))
        data[0] ^= 0xFF
        with pytest.raises(BadStateFile):
            unpack_state(bytes(data))

    def test_checksum_catches_torn_image(self):
        """A torn OutLoad must never be silently resumed (section 4)."""
        data = bytearray(pack_state(sample_memory(), REGISTERS, "p", "s", ""))
        data[-3] ^= 0x40  # flip a bit deep in the memory image
        with pytest.raises(BadStateFile):
            unpack_state(bytes(data))

    def test_empty_program_name(self):
        with pytest.raises(BadStateFile):
            pack_unpack = unpack_state(pack_state(sample_memory(), REGISTERS, "", "s", ""))


class TestMessages:
    def test_none_becomes_empty(self):
        assert check_message(None) == []

    def test_limit(self):
        check_message([0] * MESSAGE_WORDS)
        with pytest.raises(MessageTooLong):
            check_message([0] * (MESSAGE_WORDS + 1))

    def test_word_range(self):
        with pytest.raises(MessageTooLong):
            check_message([0x10000])

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=MESSAGE_WORDS))
    def test_valid_messages_pass_through(self, message):
        assert check_message(message) == message


class TestFullNameEncoding:
    def test_round_trip(self):
        name = FullName(FileId(make_serial(77), version=3), 0, 1234)
        words = full_name_to_words(name)
        assert len(words) == FULL_NAME_WORDS
        assert full_name_from_words(words) == name

    def test_fits_in_message(self):
        name = FullName(FileId(make_serial(1)))
        message = check_message(full_name_to_words(name) + [42])
        assert full_name_from_words(message) == name

    def test_too_short(self):
        with pytest.raises(BadStateFile):
            full_name_from_words([1, 2])
