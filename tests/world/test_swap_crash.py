"""Crash consistency of OutLoad (ISSUE 1 tentpole applied to world swap).

:meth:`WorldSwapper.atomic_outload` promises old-state-or-new-state at every
write boundary.  An exhaustive 2077-point sweep (clean and torn alternating)
holds offline; here a deterministic sample of those points keeps the promise
under continuous test at pytest cost.  The plain :meth:`outload` gets the
weaker-but-honest check: a crash mid-write may lose the state file, but the
loss is always *detected* (checksums -> BadStateFile), never silent.
"""

import pytest

from repro.disk import DiskDrive, DiskImage, FaultPlan, tiny_test_disk
from repro.errors import BadStateFile, PowerFailure
from repro.fs import FileSystem, Scavenger
from repro.world import Machine, SHADOW_SUFFIX, WorldSwapper

STATE_FILE = "Swatee"
OLD_MARK, NEW_MARK = 0xAAAA, 0xBBBB


def build_world():
    """A pack holding one committed world image (phaseA, OLD_MARK)."""
    image = DiskImage(tiny_test_disk(cylinders=30))
    fs = FileSystem.format(DiskDrive(image))
    machine = Machine()
    machine.set_register(0, OLD_MARK)
    WorldSwapper(fs, machine).outload(STATE_FILE, "prog", "phaseA")
    fs.sync()
    return image


def run_outload(image, plan=None, atomic=True):
    """Mount and OutLoad the NEW state (phaseB, NEW_MARK) through *plan*."""
    drive = DiskDrive(image, fault_injector=plan)
    fs = FileSystem.mount(drive)
    machine = Machine()
    machine.set_register(0, NEW_MARK)
    swapper = WorldSwapper(fs, machine)
    if atomic:
        swapper.atomic_outload(STATE_FILE, "prog", "phaseB")
    else:
        swapper.outload(STATE_FILE, "prog", "phaseB")
    fs.sync()


def recover_and_inload(image):
    """Scavenge the wreckage, remount, InLoad; return (phase, marker)."""
    Scavenger(DiskDrive(image)).scavenge()
    fs = FileSystem.mount(DiskDrive(image))
    machine = Machine()
    program, phase = WorldSwapper(fs, machine).inload(STATE_FILE)
    assert program == "prog"
    return phase, machine.get_register(0)


def count_writes(image, atomic):
    plan = FaultPlan(image.snapshot())
    run_outload(plan.image, plan, atomic=atomic)
    return plan.writes_seen


def sample_points(total, repro_seed, count=12):
    """A deterministic spread: the edges plus seeded interior points."""
    import random

    rng = random.Random(repro_seed)
    interior = rng.sample(range(2, total), min(count - 2, total - 2))
    return sorted({1, total, *interior})


class TestAtomicOutload:
    def test_old_or_new_at_sampled_crash_points(self, repro_seed):
        baseline = build_world()
        total = count_writes(baseline, atomic=True)
        assert total > 50  # a world image is many pages
        for n in sample_points(total, repro_seed):
            for tear in (False, True):
                image = baseline.snapshot()
                plan = FaultPlan(image, seed=repro_seed)
                plan.tear_at_write(n) if tear else plan.crash_at_write(n)
                with pytest.raises(PowerFailure):
                    run_outload(image, plan)
                phase, marker = recover_and_inload(image)
                expected = {("phaseA", OLD_MARK), ("phaseB", NEW_MARK)}
                assert (phase, marker) in expected, (
                    f"crash@{n} tear={tear}: got phase={phase} marker={marker:#x}"
                )

    def test_uninterrupted_atomic_outload_commits_and_cleans_up(self):
        image = build_world()
        run_outload(image, atomic=True)
        fs = FileSystem.mount(DiskDrive(image))
        assert STATE_FILE + SHADOW_SUFFIX not in fs.list_files()
        phase, marker = recover_and_inload(image)
        assert (phase, marker) == ("phaseB", NEW_MARK)

    def test_shadow_fallback_when_commit_was_interrupted(self):
        """Crash in the commit window (old deleted, shadow not yet renamed):
        InLoad must find the complete new state under the shadow name."""
        image = build_world()
        fs = FileSystem.mount(DiskDrive(image))
        machine = Machine()
        machine.set_register(0, NEW_MARK)
        swapper = WorldSwapper(fs, machine)
        # Reproduce atomic_outload stopped right before the rename.
        from repro.world.statefile import pack_state

        state = machine.capture()
        data = pack_state(
            state["memory"], state["registers"], "prog", "phaseB", state["typeahead"]
        )
        fs.create_file(STATE_FILE + SHADOW_SUFFIX).write_data(data)
        fs.delete_file(STATE_FILE)
        fs.sync()

        phase, marker = recover_and_inload(image)
        assert (phase, marker) == ("phaseB", NEW_MARK)


class TestPlainOutload:
    def test_crash_is_detected_never_silent(self, repro_seed):
        """The in-place OutLoad may lose the old state, but a crashed write
        is always either a valid state or a checksum-detected BadStateFile."""
        baseline = build_world()
        total = count_writes(baseline, atomic=False)
        detected = 0
        for n in sample_points(total, repro_seed, count=8):
            image = baseline.snapshot()
            plan = FaultPlan(image, seed=repro_seed)
            plan.tear_at_write(n)
            with pytest.raises(PowerFailure):
                run_outload(image, plan, atomic=False)
            Scavenger(DiskDrive(image)).scavenge()
            fs = FileSystem.mount(DiskDrive(image))
            machine = Machine()
            try:
                program, phase = WorldSwapper(fs, machine).inload(STATE_FILE)
            except BadStateFile:
                detected += 1  # torn image caught by the state checksums
                continue
            assert (phase, machine.get_register(0)) in {
                ("phaseA", OLD_MARK),
                ("phaseB", NEW_MARK),
            }
        # At least one sampled point must actually exercise the detection
        # path, or the test proves nothing.
        assert detected > 0
