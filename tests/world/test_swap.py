"""InLoad/OutLoad and engine tests (section 4.1)."""

import pytest

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.errors import BadStateFile, WorldError
from repro.fs import FileSystem
from repro.world import (
    Halt,
    Machine,
    ProgramRegistry,
    Transfer,
    WorldEngine,
    WorldProgram,
    WorldSwapper,
    coroutine_call,
)


@pytest.fixture
def world():
    drive = DiskDrive(DiskImage(tiny_test_disk(cylinders=60)))
    fs = FileSystem.format(drive)
    machine = Machine()
    registry = ProgramRegistry()
    engine = WorldEngine(machine, fs, registry)
    return machine, fs, registry, engine


class TestSwapper:
    def test_outload_inload_round_trip(self, world):
        machine, fs, registry, engine = world
        machine.memory[0x500] = 777
        machine.set_register(2, 42)
        machine.keyboard.type_text("typed ahead")
        swapper = engine.swapper
        swapper.outload("w.state", "prog", "next")

        machine.memory[0x500] = 0
        machine.set_register(2, 0)
        machine.keyboard.flush()

        program, phase = swapper.inload("w.state")
        assert (program, phase) == ("prog", "next")
        assert machine.memory[0x500] == 777
        assert machine.get_register(2) == 42
        assert machine.keyboard.snapshot() == "typed ahead"

    def test_repeated_outload_reuses_the_file(self, world):
        machine, fs, registry, engine = world
        swapper = engine.swapper
        swapper.outload("w.state", "p", "a")
        free_after_first = fs.free_pages()
        swapper.outload("w.state", "p", "b")
        assert fs.free_pages() == free_after_first  # no new pages

    def test_reused_outload_takes_about_a_second(self, world):
        """Section 4.1: each routine "requires about a second"."""
        machine, fs, registry, engine = world
        swapper = engine.swapper
        swapper.outload("w.state", "p", "a")  # creation (installation phase)
        watch = fs.drive.clock.stopwatch()
        swapper.outload("w.state", "p", "b")
        assert 0.5 < watch.elapsed_s < 2.5
        watch = fs.drive.clock.stopwatch()
        swapper.inload("w.state")
        assert 0.5 < watch.elapsed_s < 2.5

    def test_emergency_outload_loses_registers(self, world):
        """Section 4.1: the emergency method "could not preserve some of
        the most vital state (e.g., processor registers)"."""
        machine, fs, registry, engine = world
        machine.set_register(0, 99)
        machine.memory[0x10] = 5
        engine.swapper.emergency_outload("crash.state", "prog")
        program, phase = engine.swapper.inload("crash.state")
        assert phase == "emergency"
        assert machine.memory[0x10] == 5  # memory preserved
        assert machine.get_register(0) == 0  # registers lost

    def test_inload_of_torn_state_file_rejected(self, world):
        machine, fs, registry, engine = world
        file = engine.swapper.outload("w.state", "p", "a")
        # Corrupt one memory word inside the image on disk.
        contents = file.read_page(5)
        data = list(contents.value)
        data[17] ^= 0x0101
        file.write_full_page(5, data)
        with pytest.raises(BadStateFile):
            engine.swapper.inload("w.state")


class TestEngine:
    def test_halt_returns_result(self, world):
        machine, fs, registry, engine = world

        @registry.register
        class Quick(WorldProgram):
            name = "quick"

            def phase_start(self, ctx, message):
                return Halt("done")

        assert engine.run("quick") == "done"

    def test_message_delivery(self, world):
        machine, fs, registry, engine = world

        @registry.register
        class Receiver(WorldProgram):
            name = "receiver"

            def phase_start(self, ctx, message):
                return Halt(list(message))

        engine.swapper.outload("r.state", "receiver", "start")

        @registry.register
        class Sender(WorldProgram):
            name = "sender"

            def phase_start(self, ctx, message):
                return Transfer("r.state", message=[7, 8, 9])

        assert engine.run("sender") == [7, 8, 9]

    def test_memory_is_per_world(self, world):
        """InLoad restores the whole image: another world's memory writes
        do not leak in (data must travel in the message or on files)."""
        machine, fs, registry, engine = world

        @registry.register
        class A(WorldProgram):
            name = "a"

            def phase_start(self, ctx, message):
                ctx.machine.memory[0x100] = 11
                ctx.outload("a.state", "back")
                return Transfer("b.state")

            def phase_back(self, ctx, message):
                return Halt(ctx.machine.memory[0x100])

        @registry.register
        class B(WorldProgram):
            name = "b"

            def phase_start(self, ctx, message):
                ctx.machine.memory[0x100] = 99  # B's world only
                return Transfer("a.state")

        engine.swapper.outload("b.state", "b", "start")
        assert engine.run("a") == 11

    def test_coroutine_ping_pong(self, world):
        machine, fs, registry, engine = world

        @registry.register
        class Ping(WorldProgram):
            name = "ping"

            def phase_start(self, ctx, message):
                return coroutine_call(ctx, "ping.state", "pong.state", message=[0])

            def phase_resumed(self, ctx, message):
                if message[0] >= 4:
                    return Halt(message[0])
                return coroutine_call(ctx, "ping.state", "pong.state", message=[message[0]])

        @registry.register
        class Pong(WorldProgram):
            name = "pong"

            def phase_start(self, ctx, message):
                return coroutine_call(
                    ctx, "pong.state", "ping.state", message=[message[0] + 1],
                    resume_phase="start",
                )

            phase_resumed = phase_start

        engine.swapper.outload("pong.state", "pong", "start")
        assert engine.run("ping") == 4
        assert len(engine.transfer_log) >= 8

    def test_unknown_phase(self, world):
        machine, fs, registry, engine = world

        @registry.register
        class Lost(WorldProgram):
            name = "lost"

        with pytest.raises(WorldError):
            engine.run("lost", phase="nowhere")

    def test_unknown_program(self, world):
        machine, fs, registry, engine = world
        with pytest.raises(WorldError):
            engine.run("ghost")

    def test_bad_action_rejected(self, world):
        machine, fs, registry, engine = world

        @registry.register
        class Wrong(WorldProgram):
            name = "wrong"

            def phase_start(self, ctx, message):
                return "not an action"

        with pytest.raises(WorldError):
            engine.run("wrong")

    def test_runaway_guard(self, world):
        machine, fs, registry, engine = world
        engine.max_transfers = 3

        @registry.register
        class Loop(WorldProgram):
            name = "loop"

            def phase_start(self, ctx, message):
                ctx.outload("loop.state", "start")
                return Transfer("loop.state")

        with pytest.raises(WorldError):
            engine.run("loop")

    def test_nameless_program_rejected(self, world):
        machine, fs, registry, engine = world

        class NoName(WorldProgram):
            pass

        with pytest.raises(WorldError):
            registry.register(NoName)
