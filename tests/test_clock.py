"""Unit tests for the simulated clock."""

import pytest

from repro.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        clock = SimClock()
        assert clock.now_us == 0
        assert clock.now_ms == 0.0
        assert clock.now_s == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance_us(1500)
        clock.advance_ms(2.5)
        assert clock.now_us == 4000
        assert clock.now_ms == 4.0

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance_us(-1)

    def test_tallies_by_category(self):
        clock = SimClock()
        clock.advance_us(100, "seek")
        clock.advance_us(200, "seek")
        clock.advance_us(50, "rotation")
        assert clock.tally_us("seek") == 300
        assert clock.tally_us("rotation") == 50
        assert clock.tally_us("missing") == 0
        assert clock.tallies() == {"seek": 300, "rotation": 50}

    def test_tallies_returns_copy(self):
        clock = SimClock()
        clock.advance_us(10, "x")
        clock.tallies()["x"] = 999
        assert clock.tally_us("x") == 10

    def test_watchers_fire_on_advance(self):
        clock = SimClock()
        seen = []
        clock.add_watcher(seen.append)
        clock.advance_us(5)
        clock.advance_us(7)
        assert seen == [5, 12]
        clock.remove_watcher(seen.append)
        clock.advance_us(1)
        assert seen == [5, 12]


class TestStopwatch:
    def test_elapsed(self):
        clock = SimClock()
        clock.advance_us(1000)
        watch = clock.stopwatch()
        clock.advance_us(2500, "io")
        assert watch.elapsed_us == 2500
        assert watch.elapsed_ms == 2.5

    def test_category_delta(self):
        clock = SimClock()
        clock.advance_us(100, "io")
        watch = clock.stopwatch()
        clock.advance_us(40, "io")
        clock.advance_us(60, "cpu")
        assert watch.category_delta_us("io") == 40
        assert watch.breakdown_ms() == {"io": 0.04, "cpu": 0.06}

    def test_breakdown_omits_untouched_categories(self):
        clock = SimClock()
        clock.advance_us(100, "io")
        watch = clock.stopwatch()
        clock.advance_us(10, "cpu")
        assert "io" not in watch.breakdown_ms()
