#!/usr/bin/env python3
"""Check intra-repository Markdown links and anchors.  Stdlib only.

Scans every ``*.md`` file under the repository root for inline links
(``[text](target)``), resolves relative targets against the linking file,
and fails when a target file -- or a ``#heading-anchor`` within one -- does
not exist.  External schemes (http, https, mailto) are skipped: this is a
repository-consistency check, not a crawler.

Anchors are matched against GitHub-style heading slugs: lowercase, spaces
to hyphens, punctuation dropped.  Fenced code blocks are ignored on both
sides (links inside them are examples; headings inside them are not
headings).

Usage::

    python tools/check_md_links.py [ROOT]

Exits 0 when every link resolves, 1 otherwise (one line per broken link).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Set, Tuple

INLINE_LINK = re.compile(r"(?<!\!)\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)\)")
IMAGE_LINK = re.compile(r"\!\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(?P<title>.+?)\s*#*\s*$")
FENCE = re.compile(r"^(```|~~~)")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def visible_lines(text: str) -> Iterator[str]:
    """The file's lines with fenced code blocks replaced by blanks."""
    fenced = False
    for line in text.splitlines():
        if FENCE.match(line.strip()):
            fenced = not fenced
            yield ""
            continue
        yield "" if fenced else line


def github_slug(title: str) -> str:
    """GitHub's heading-to-anchor rule (close enough for ASCII docs)."""
    title = re.sub(r"`([^`]*)`", r"\1", title)            # strip code spans
    title = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", title)  # links: keep text
    title = title.strip().lower()
    title = re.sub(r"[^\w\- ]", "", title)
    return title.replace(" ", "-")


def anchors_of(path: Path) -> Set[str]:
    """Every anchor a heading in *path* generates (repeats get -1, -2...)."""
    counts: dict = {}
    anchors: Set[str] = set()
    for line in visible_lines(path.read_text(encoding="utf-8")):
        match = HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group("title"))
        repeat = counts.get(slug, 0)
        counts[slug] = repeat + 1
        anchors.add(slug if repeat == 0 else f"{slug}-{repeat}")
    return anchors


def iter_links(path: Path) -> Iterator[Tuple[int, str]]:
    for number, line in enumerate(visible_lines(path.read_text(encoding="utf-8")), 1):
        for pattern in (INLINE_LINK, IMAGE_LINK):
            for match in pattern.finditer(line):
                yield number, match.group("target")


def check_file(path: Path, root: Path) -> List[str]:
    problems: List[str] = []
    for line_number, target in iter_links(path):
        if EXTERNAL.match(target):
            continue
        target, _, anchor = target.partition("#")
        if target:
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(f"{path.relative_to(root)}:{line_number}: "
                                f"broken link -> {target}")
                continue
        else:
            resolved = path
        if anchor and resolved.suffix.lower() == ".md":
            if anchor.lower() not in anchors_of(resolved):
                problems.append(f"{path.relative_to(root)}:{line_number}: "
                                f"missing anchor -> {target or path.name}#{anchor}")
    return problems


def check_tree(root: Path) -> List[str]:
    """Every problem in every ``*.md`` under *root* (skipping junk dirs)."""
    skip = {".git", "node_modules", ".venv", "__pycache__", ".pytest_cache"}
    problems: List[str] = []
    for path in sorted(root.rglob("*.md")):
        if any(part in skip for part in path.parts):
            continue
        problems.extend(check_file(path, root))
    return problems


def main(argv: List[str]) -> int:
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parents[1]
    problems = check_tree(root)
    for problem in problems:
        print(problem)
    checked = sum(1 for p in root.rglob("*.md")
                  if not any(part in {".git", "node_modules"} for part in p.parts))
    if problems:
        print(f"\n{len(problems)} broken link(s) across {checked} Markdown files")
        return 1
    print(f"all links resolve across {checked} Markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
