"""E2 -- Sequential-read speedup from the compacting scavenger (section 3.5).

Claim: consecutive placement "increases the speed with which the files can
be read sequentially by an order of magnitude over what is possible if the
pages have become scattered."
"""

import pytest

from repro.disk import DiskDrive
from repro.fs import Compactor, FileSystem

from paper import populated_disk, report, scatter_file

PAYLOAD = bytes(range(256)) * 200  # 51,200 bytes = 101 pages


def measure():
    image, fs, _payloads = populated_disk(files=60)
    fs = scatter_file(image, fs, "seq.dat", PAYLOAD, seed=11)
    clock = fs.drive.clock

    t0 = clock.now_s
    assert fs.open_file("seq.dat").read_data() == PAYLOAD
    scattered_s = clock.now_s - t0

    Compactor(DiskDrive(image, clock=clock)).compact()
    fs2 = FileSystem.mount(DiskDrive(image, clock=clock))
    t0 = clock.now_s
    assert fs2.open_file("seq.dat").read_data() == PAYLOAD
    compacted_s = clock.now_s - t0
    return scattered_s, compacted_s


def bench(profile: str = "full"):
    """Structured entries for ``python -m repro bench`` (same measures)."""
    if profile == "smoke":
        return []  # populated-disk setup dominates; covered by the full profile
    scattered_s, compacted_s = measure()
    return [
        report(
            "E2", "sequential reads ~10x faster after compaction",
            f"scattered {scattered_s:.2f}s vs compacted {compacted_s:.2f}s",
            name="E2.sequential_read_compacted", simulated_seconds=compacted_s,
            cached=False, scattered_s=scattered_s,
            speedup=scattered_s / compacted_s,
        )
    ]


def test_compaction_order_of_magnitude(benchmark):
    scattered_s, compacted_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = scattered_s / compacted_s
    benchmark.extra_info["scattered_s"] = scattered_s
    benchmark.extra_info["compacted_s"] = compacted_s
    benchmark.extra_info["speedup"] = ratio
    report(
        "E2",
        "sequential reads ~10x faster after compaction",
        f"scattered {scattered_s:.2f}s vs compacted {compacted_s:.2f}s "
        f"= {ratio:.1f}x speedup (101-page file)",
        "order of magnitude" if ratio >= 5 else "MISMATCH",
    )
    assert ratio > 5.0, f"expected order-of-magnitude speedup, got {ratio:.1f}x"


def test_compacted_read_approaches_raw_transfer_rate(benchmark):
    """After compaction a sequential read should approach the raw rate of
    E6 (76,800 words/s): the pages chain with no positioning waits."""

    def measure_rate():
        image, fs, _ = populated_disk(files=10)
        fs.create_file("seq.dat").write_data(PAYLOAD)
        Compactor(fs.drive).compact()
        fs2 = FileSystem.mount(DiskDrive(image, clock=fs.drive.clock))
        clock = fs2.drive.clock
        t0 = clock.now_s
        fs2.open_file("seq.dat").read_data()
        elapsed = clock.now_s - t0
        return (len(PAYLOAD) / 2) / elapsed  # words per second

    rate = benchmark.pedantic(measure_rate, rounds=1, iterations=1)
    benchmark.extra_info["words_per_second"] = rate
    report(
        "E2b",
        "compacted sequential reads run near raw disk speed (~77k words/s)",
        f"{rate:,.0f} words/s",
    )
    assert rate > 30_000  # each page costs one label+value pass
