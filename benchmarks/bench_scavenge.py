"""E1 -- Scavenging time (section 3.5).

Claim: scavenging "takes about a minute for a 2.5 megabyte disk".

Regenerates: simulated scavenge time on a realistically loaded standard
disk, plus a size sweep (half / full / double) showing time scales with
the sectors swept.
"""

import pytest

from repro.disk import DiskDrive, DiskShape
from repro.fs import Scavenger

from paper import populated_disk, report


def scavenge_loaded_disk(shape=None, files=150):
    image, fs, payloads = populated_disk(shape=shape, files=files)
    scavenge_report = Scavenger(DiskDrive(image)).scavenge()
    return scavenge_report


def test_scavenge_full_disk_about_a_minute(benchmark):
    result = benchmark.pedantic(scavenge_loaded_disk, rounds=1, iterations=1)
    benchmark.extra_info["simulated_seconds"] = result.elapsed_s
    benchmark.extra_info["sectors"] = result.sectors_swept
    report(
        "E1",
        "scavenging takes about a minute for a 2.5 MB disk",
        f"{result.elapsed_s:.1f} simulated seconds for {result.sectors_swept} sectors "
        f"({result.files_found} files)",
        "same order of magnitude" if 15 <= result.elapsed_s <= 120 else "MISMATCH",
    )
    breakdown = {k: round(v / 1000, 1) for k, v in sorted(result.breakdown_ms.items())}
    print(f"[E1] breakdown (s): {breakdown}")
    assert 15.0 < result.elapsed_s < 120.0
    assert result.table_fits_in_memory


def bench(profile: str = "full"):
    """Structured entries for ``python -m repro bench`` (same measures)."""
    if profile == "smoke":
        shape = DiskShape(name="smoke102cyl", cylinders=102)
        result = scavenge_loaded_disk(shape=shape, files=40)
        name = "E1.scavenge_half_disk_smoke"
    else:
        result = scavenge_loaded_disk()
        name = "E1.scavenge_full_disk"
    return [
        report(
            "E1", "scavenging takes about a minute for a 2.5 MB disk",
            f"{result.elapsed_s:.1f} simulated seconds for {result.sectors_swept} sectors",
            name=name, simulated_seconds=result.elapsed_s, cached=False,
            sectors=result.sectors_swept, files_found=result.files_found,
        )
    ]


@pytest.mark.slow
def test_scavenge_scales_with_disk_size(benchmark):
    def sweep():
        times = {}
        for cylinders in (102, 203, 406):
            shape = DiskShape(name=f"{cylinders}cyl", cylinders=cylinders)
            files = max(20, 150 * cylinders // 203)
            times[cylinders] = scavenge_loaded_disk(shape=shape, files=files).elapsed_s
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for cylinders, seconds in times.items():
        benchmark.extra_info[f"cyl{cylinders}_s"] = seconds
    report(
        "E1",
        "scavenge time follows disk size (label sweep dominates)",
        " / ".join(f"{c} cyl: {s:.1f}s" for c, s in sorted(times.items())),
    )
    assert times[102] < times[203] < times[406]
    # Roughly linear: doubling the disk should not much more than double it.
    assert times[406] / times[203] < 3.0
