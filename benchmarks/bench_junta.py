"""E8 -- Junta memory reclamation (section 5.2).

Claims: Junta "removes all higher-numbered levels and frees the storage
they occupy"; CounterJunta "restores all levels that were removed, and
reinitializes any data structures they contain"; the scheme "guarantees the
performance of the resident system" (no swapping: freeing is instant).
"""

import pytest

from repro.disk import DiskDrive, DiskImage, tiny_test_disk
from repro.memory import Zone
from repro.os import AltoOS, LEVELS

from paper import report


def measure_freed_per_level():
    os = AltoOS.format(DiskDrive(DiskImage(tiny_test_disk(cylinders=30))))
    freed_by_level = {}
    for spec in reversed(LEVELS):
        keep = spec.number
        os.call_counter_junta()
        freed = os.call_junta(keep)
        freed_by_level[keep] = len(freed)
        if len(freed):
            zone = Zone(freed, f"level{keep}")  # the space is really usable
            zone.allocate(min(100, zone.largest_free()))
        os.call_counter_junta()
    return freed_by_level


def test_memory_freed_monotonically(benchmark):
    freed = benchmark.pedantic(measure_freed_per_level, rounds=1, iterations=1)
    for level, words in freed.items():
        benchmark.extra_info[f"level{level}_freed_words"] = words
    rows = ", ".join(f"keep<= {level}: {words}w" for level, words in sorted(freed.items()))
    report(
        "E8",
        "Junta frees the storage of all higher-numbered levels",
        rows,
    )
    ordered = [freed[spec.number] for spec in LEVELS]
    assert ordered == sorted(ordered, reverse=True)
    assert freed[13] == 0  # keeping everything frees nothing
    total = sum(spec.size_words for spec in LEVELS[1:])
    assert freed[1] == total


def test_counter_junta_restores_everything(benchmark):
    def churn():
        os = AltoOS.format(DiskDrive(DiskImage(tiny_test_disk(cylinders=30))))
        for keep in (1, 4, 7, 12):
            os.call_junta(keep)
            os.call_counter_junta()
        # Levels 2 and 13 hold live data structures (the type-ahead ring
        # and the system zone), so the code-pattern check applies to the
        # other eleven.
        intact = all(
            os.junta.level_intact(spec.number) for spec in LEVELS if spec.number not in (2, 13)
        )
        # The restored system still works end to end.
        stream = os.write_stream("alive.txt")
        stream.put(65)
        stream.close()
        return intact, os.read_stream("alive.txt").get()

    intact, byte = benchmark.pedantic(churn, rounds=1, iterations=1)
    benchmark.extra_info["levels_intact"] = intact
    report(
        "E8b",
        "CounterJunta restores all removed levels and reinitializes them",
        f"all 13 levels intact after 4 junta/counter-junta cycles: {intact}; "
        f"system functional (read back {byte!r})",
    )
    assert intact and byte == 65


def test_junta_guarantees_resident_performance(benchmark):
    """"Unlike more elaborate mechanisms such as swapping code segments,
    this scheme guarantees the performance of the resident system":
    junta/counter-junta cost zero simulated disk time."""

    def measure_disk_cost():
        os = AltoOS.format(DiskDrive(DiskImage(tiny_test_disk(cylinders=30))))
        clock = os.drive.clock
        t0 = clock.now_us
        os.call_junta(4)
        os.call_counter_junta()
        return clock.now_us - t0

    cost_us = benchmark.pedantic(measure_disk_cost, rounds=1, iterations=1)
    benchmark.extra_info["junta_disk_us"] = cost_us
    report(
        "E8c",
        "level removal is memory-only: the resident system's performance "
        "is guaranteed (no swapping)",
        f"{cost_us} microseconds of simulated device time for a full "
        f"junta/counter-junta cycle",
    )
    assert cost_us == 0
