"""E6 -- Raw disk transfer rate (section 2).

Claim: each drive "can transfer 64k words in about one second".
"""

import pytest

from repro.disk import DiskDrive, DiskImage, Label, diablo31, diablo44, value_words

from paper import report

WORDS_64K = 65536


def sequential_read_seconds(shape):
    """Claim 256 consecutive sectors, then read them back-to-back."""
    drive = DiskDrive(DiskImage(shape))
    labels = []
    for address in range(256):
        label = Label(serial=0x4000_0001, version=1, page_number=address + 1, length=0)
        drive.check_label_then_rewrite(address, Label.free(), label, value_words([]))
        labels.append(label)
    watch = drive.clock.stopwatch()
    for address in range(256):
        drive.check_label_read_value(address, labels[address])
    return watch.elapsed_s


def test_64k_words_in_about_a_second(benchmark):
    seconds = benchmark.pedantic(lambda: sequential_read_seconds(diablo31()), rounds=1, iterations=1)
    benchmark.extra_info["seconds_64k_words"] = seconds
    benchmark.extra_info["words_per_second"] = WORDS_64K / seconds
    report(
        "E6",
        "the disk can transfer 64k words in about one second",
        f"{seconds:.2f}s for 64k words ({WORDS_64K / seconds:,.0f} words/s)",
    )
    assert 0.7 < seconds < 1.3


def bench(profile: str = "full"):
    """Structured entries for ``python -m repro bench`` (same measures)."""
    small_s = sequential_read_seconds(diablo31())
    results = [
        report(
            "E6", "the disk can transfer 64k words in about one second",
            f"{small_s:.2f}s for 64k words",
            name="E6.sequential_read_64k", simulated_seconds=small_s,
            cached=False, words_per_second=WORDS_64K / small_s,
        )
    ]
    if profile != "smoke":
        big_s = sequential_read_seconds(diablo44())
        results.append(report(
            "E6b", "the big disk is about twice as fast",
            f"{big_s:.2f}s for 64k words on the big disk",
            name="E6b.sequential_read_64k_big_disk", simulated_seconds=big_s,
            cached=False, speed_ratio=small_s / big_s,
        ))
    return results


def test_big_disk_twice_the_performance(benchmark):
    """Section 2: the other disk has "about twice the size and
    performance"."""

    def measure_both():
        return sequential_read_seconds(diablo31()), sequential_read_seconds(diablo44())

    small_s, big_s = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    ratio = small_s / big_s
    benchmark.extra_info["speed_ratio"] = ratio
    report(
        "E6b",
        "the big disk is about twice as fast",
        f"standard {small_s:.2f}s vs big {big_s:.2f}s for 64k words ({ratio:.1f}x)",
    )
    assert 1.3 < ratio < 2.5
