"""E4 -- Label-discipline costs (section 3.3).

Claims: "This scheme costs a disk revolution each time a page is allocated
or freed ... On any other write the label is checked, at no cost in time."
"""

import pytest

from repro.disk import DiskDrive, DiskImage, diablo31
from repro.disk.timing import ROTATION
from repro.fs import FileSystem

from paper import report

PAGES = 50


def measure():
    image = DiskImage(diablo31())
    fs = FileSystem.format(DiskDrive(image))
    drive = fs.drive
    rotation_us = drive.shape.rotation_ms * 1000
    from repro.fs import FullName

    fid = fs.new_fid()
    # --- pure allocation: the claim (check-free, then write the label) --------
    watch = drive.clock.stopwatch()
    addresses = [
        fs.allocator.allocate(fs.page_io, fid.label_for(pn, length=512), [pn])
        for pn in range(PAGES)
    ]
    alloc_revs = watch.category_delta_us(ROTATION) / rotation_us / PAGES

    # --- ordinary data writes: zero extra rotational cost ----------------------
    watch = drive.clock.stopwatch()
    for pn, address in enumerate(addresses):
        fs.page_io.write(FullName(fid, pn, address), [pn] * 256)
    write_revs = watch.category_delta_us(ROTATION) / rotation_us / PAGES

    # --- pure free: check the label, then write ones ---------------------------
    watch = drive.clock.stopwatch()
    for pn, address in enumerate(addresses):
        fs.allocator.release(fs.page_io, FullName(fid, pn, address))
    free_revs = watch.category_delta_us(ROTATION) / rotation_us / PAGES

    checks = drive.stats.label_checks
    failures = drive.stats.label_check_failures
    return alloc_revs, write_revs, free_revs, checks, failures


def test_allocation_and_free_cost_revolutions(benchmark):
    alloc_revs, write_revs, free_revs, checks, failures = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {"alloc_revs": alloc_revs, "write_revs": write_revs, "free_revs": free_revs}
    )
    report(
        "E4",
        "a revolution per allocate/free; ordinary writes check labels at "
        "no cost in time",
        f"allocate {alloc_revs:.2f} rev/page, free {free_revs:.2f} rev/page, "
        f"ordinary write {write_revs:.2f} rev/page "
        f"({checks} label checks, {failures} failures)",
    )
    # The claim waits one revolution (minus a sector) to rewrite the label
    # it just checked; positioning adds a fraction more.
    assert 0.7 <= alloc_revs <= 1.8
    assert 0.7 <= free_revs <= 1.8
    # Sequential ordinary writes ride the rotation: essentially free.
    assert write_revs < 0.2


def test_label_checks_cost_nothing_on_sequential_writes(benchmark):
    """Writing N consecutive pre-allocated pages with label checks takes
    the same time as the raw transfer would."""

    def measure_overhead():
        image = DiskImage(diablo31())
        fs = FileSystem.format(DiskDrive(image))
        file = fs.create_file("seq.dat")
        file.write_data(b"\0" * (512 * 40))
        drive = fs.drive
        sector_ms = drive.shape.sector_time_ms()
        watch = drive.clock.stopwatch()
        for pn in range(1, 40):
            file.write_full_page(pn, [1] * 256)
        elapsed_ms = watch.elapsed_ms
        ideal_ms = 39 * sector_ms
        return elapsed_ms, ideal_ms

    elapsed_ms, ideal_ms = benchmark.pedantic(measure_overhead, rounds=1, iterations=1)
    overhead = elapsed_ms / ideal_ms
    benchmark.extra_info["overhead_factor"] = overhead
    report(
        "E4b",
        "checked sequential writes run at raw disk speed",
        f"{elapsed_ms:.0f}ms vs ideal {ideal_ms:.0f}ms ({overhead:.2f}x)",
    )
    assert overhead < 1.6  # allow arm settling between distant pages
