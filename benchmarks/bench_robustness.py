"""E7 -- Robustness campaign (sections 3.3, 6).

Claims: label checking makes "accidental overwriting of a page quite
unlikely"; the system permits "full automatic recovery after a crash"; "the
incidence of complaints about lost information is negligible".

Regenerates: a corruption campaign over many trials.  For every trial the
scavenger must restore a mountable, consistent file system, and no file
whose sectors were untouched may lose a byte.
"""

import random

import pytest

from repro.disk import DiskDrive, DiskImage, FaultInjector, tiny_test_disk
from repro.errors import TornWriteError
from repro.fs import FileSystem, Scavenger
from repro.words import random_bytes

from paper import report

TRIALS = 12
FAULTS_PER_TRIAL = 5


def build_trial(seed):
    image = DiskImage(tiny_test_disk(cylinders=30))
    fs = FileSystem.format(DiskDrive(image))
    rng = random.Random(seed)
    payloads, serial_to_name = {}, {}
    for i in range(10):
        name = f"f{i:02}.dat"
        data = random_bytes(rng, rng.randrange(1, 2500))
        file = fs.create_file(name)
        file.write_data(data)
        payloads[name] = data
        serial_to_name[file.fid.serial] = name
    fs.sync()
    return image, payloads, serial_to_name, rng


def run_campaign():
    stats = {"trials": 0, "faults": 0, "recovered": 0, "files_checked": 0, "bytes_lost": 0,
             "torn_writes": 0}
    for seed in range(TRIALS):
        image, payloads, serial_to_name, rng = build_trial(seed)
        injector = FaultInjector(image, seed=seed + 1000)
        damaged = set()
        for _ in range(FAULTS_PER_TRIAL):
            kind = rng.choice(["links", "label", "swap", "torn"])
            in_use = [s.header.address for s in image.sectors() if s.label.in_use]
            if kind == "links":
                injector.scramble_links(rng.choice(in_use))
            elif kind == "label":
                address = rng.choice(in_use)
                # Attribute the damage by the owner at fault time.
                damaged.add(serial_to_name.get(image.sector(address).label.serial))
                injector.scramble_label(address)
            elif kind == "swap":
                injector.swap_sectors(*rng.sample(in_use, 2))
            elif kind == "torn":
                from repro.errors import ReproError

                drive = DiskDrive(image, fault_injector=injector)
                injector.schedule_power_failure(after_writes=rng.randrange(1, 6))
                victim = rng.choice(sorted(payloads))
                try:
                    fs = FileSystem.mount(drive)
                    file = fs.open_file(victim)
                except ReproError:
                    # Earlier faults already made the pack unmountable or
                    # the victim unreachable; nothing was rewritten -- the
                    # user reboots into the Scavenger instead.
                    injector.cancel_power_failure()
                    continue
                try:
                    file.write_data(b"X" * 900)
                    injector.cancel_power_failure()
                    payloads[victim] = b"X" * 900
                except TornWriteError:
                    stats["torn_writes"] += 1
                    del payloads[victim]  # its content is indeterminate
                except ReproError:
                    # The rewrite began and was then interrupted (e.g. a
                    # stale hint mid-update): like a torn write, the file's
                    # content is indeterminate, but nothing else may suffer.
                    injector.cancel_power_failure()
                    del payloads[victim]
            stats["faults"] += 1

        Scavenger(DiskDrive(image)).scavenge()
        fs = FileSystem.mount(DiskDrive(image))
        stats["recovered"] += 1
        for name, data in payloads.items():
            if name in damaged:
                continue
            found = next(
                (c for c in fs.list_files() if c == name or c.startswith(name + "!")), None
            )
            stats["files_checked"] += 1
            if found is None or fs.open_file(found).read_data() != data:
                stats["bytes_lost"] += len(data)
        stats["trials"] += 1
    return stats


def test_no_lost_information(benchmark):
    stats = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
    benchmark.extra_info.update(stats)
    report(
        "E7",
        "full automatic recovery after a crash; lost information negligible",
        f"{stats['trials']} trials x {FAULTS_PER_TRIAL} faults "
        f"({stats['torn_writes']} torn writes): "
        f"{stats['recovered']}/{stats['trials']} recovered, "
        f"{stats['files_checked']} files verified, {stats['bytes_lost']} bytes lost",
        "no loss" if stats["bytes_lost"] == 0 else "LOSS DETECTED",
    )
    assert stats["recovered"] == stats["trials"]
    assert stats["bytes_lost"] == 0


def test_accidental_overwrite_is_prevented(benchmark):
    """Drive-level claim: overwriting through stale hints is stopped by the
    label check every single time."""

    def attempt_overwrites():
        image, payloads, owners, rng = build_trial(99)
        fs = FileSystem.mount(DiskDrive(image))
        from repro.errors import HintFailed
        from repro.fs import FullName

        blocked = 0
        attempts = 200
        in_use = [s.header.address for s in image.sectors() if s.label.in_use]
        file = fs.open_file("f00.dat")
        for i in range(attempts):
            # A program with a wildly stale hint tries to write "its" page.
            address = rng.choice(in_use)
            stale = FullName(file.fid, 1, address)
            try:
                fs.page_io.write(stale, [0xBAAD] * 256)
            except HintFailed:
                blocked += 1
        true_address = file.page_name(1).address
        hits = attempts - blocked
        expected_hits = sum(1 for _ in range(1))  # only the true sector can match
        return blocked, hits, true_address, in_use.count(true_address), payloads, image

    blocked, hits, _true, _count, payloads, image = benchmark.pedantic(
        attempt_overwrites, rounds=1, iterations=1
    )
    benchmark.extra_info["blocked"] = blocked
    report(
        "E7b",
        "accidental overwriting of a page is quite unlikely",
        f"{blocked} of {blocked + hits} stray writes blocked by label checks "
        f"(the {hits} 'hits' were writes through a correct name)",
    )
    # Every write through a wrong name was blocked; only the page's own
    # sector accepted the write.
    fs = FileSystem.mount(DiskDrive(image))
    for name, data in payloads.items():
        if name == "f00.dat":
            continue
        assert fs.open_file(name).read_data() == data
