"""Shared helpers for the paper-claim benchmarks.

Every benchmark prints a `paper vs measured` table row and asserts the
claim's *shape* (who wins, rough factor).  Absolute simulated numbers are
deterministic model outputs, so the assertions are hard, not flaky.

Results are also structured: :func:`report` returns a :class:`BenchResult`,
and each ``bench_*.py`` module exposes ``bench(profile)`` returning a list
of them, built from the *same* measure functions the pytest tests call.
``python -m repro bench`` (see :mod:`repro.bench`) collects these into
``BENCH_PR2.json`` and enforces the checked-in baselines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.disk import DiskDrive, DiskImage, DiskShape, FaultInjector, diablo31
from repro.fs import FileSystem, Scavenger
from repro.words import random_bytes


@dataclass
class BenchResult:
    """One benchmark measurement, machine-readable.

    ``simulated_seconds`` is the regression-tracked quantity: it is a
    deterministic output of the timing model, so any drift is a real
    performance change, not noise.  ``cached`` records whether the run used
    the write-back cache (``None``: not applicable).
    """

    name: str
    experiment: str
    simulated_seconds: float
    cached: Optional[bool] = None
    metrics: Dict[str, float] = field(default_factory=dict)
    claim: str = ""
    measured: str = ""
    verdict: str = "matches"
    obs: Dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "experiment": self.experiment,
            "simulated_seconds": self.simulated_seconds,
            "cached": self.cached,
            "metrics": self.metrics,
            "claim": self.claim,
            "measured": self.measured,
            "verdict": self.verdict,
            "obs": self.obs,
        }


def report(
    experiment: str,
    claim: str,
    measured: str,
    verdict: str = "matches",
    *,
    name: Optional[str] = None,
    simulated_seconds: float = 0.0,
    cached: Optional[bool] = None,
    **metrics: float,
) -> BenchResult:
    """Print the `paper vs measured` row and return it as a record.

    Under ``python -m repro bench`` (which turns on
    :func:`repro.obs.runtime.retain_stats`) every row also carries the
    merged metrics snapshot of all clocks created since the previous row;
    under pytest retention is off and ``obs`` stays empty.
    """
    from repro.obs import runtime as obs_runtime

    print(f"\n[{experiment}] paper: {claim}")
    print(f"[{experiment}] measured: {measured}  ({verdict})")
    return BenchResult(
        name=name or experiment,
        experiment=experiment,
        simulated_seconds=simulated_seconds,
        cached=cached,
        metrics=dict(metrics),
        claim=claim,
        measured=measured,
        verdict=verdict,
        obs=obs_runtime.drain_stats(),
    )


def populated_disk(
    shape: Optional[DiskShape] = None,
    files: int = 150,
    mean_bytes: int = 6000,
    seed: int = 1979,
    deletions: int = 30,
) -> Tuple[DiskImage, FileSystem, Dict[str, bytes]]:
    """A realistically loaded pack: many files, some churn, synced map."""
    image = DiskImage(shape if shape is not None else diablo31())
    fs = FileSystem.format(DiskDrive(image))
    rng = random.Random(seed)
    payloads: Dict[str, bytes] = {}
    for i in range(files):
        name = f"file{i:04}.dat"
        size = max(0, int(rng.gauss(mean_bytes, mean_bytes / 2)))
        data = random_bytes(rng, min(size, 20_000))
        fs.create_file(name).write_data(data)
        payloads[name] = data
    victims = rng.sample(sorted(payloads), min(deletions, len(payloads)))
    for name in victims:
        fs.delete_file(name)
        del payloads[name]
    fs.sync()
    return image, fs, payloads


def scatter_file(image: DiskImage, fs: FileSystem, name: str, payload: bytes, seed: int = 7):
    """Create *name* and scatter its pages over the whole disk, repairing
    links with a scavenge.  Returns a freshly mounted FileSystem."""
    rng = random.Random(seed)
    fs.create_file(name).write_data(payload)
    fs.sync()
    injector = FaultInjector(image, seed=seed)
    file = fs.open_file(name)
    addresses = [file.page_name(pn).address for pn in range(file.page_count())]
    free = [s.header.address for s in image.sectors() if s.label.is_free]
    rng.shuffle(free)
    for address in addresses:
        injector.swap_sectors(address, free.pop())
    clock = fs.drive.clock
    Scavenger(DiskDrive(image, clock=clock)).scavenge()
    return FileSystem.mount(DiskDrive(image, clock=clock))
