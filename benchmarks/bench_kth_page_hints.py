"""E9 -- Hints for every k-th page (section 3.6).

Claim: "Hint addresses can also be kept for every k-th page of the file to
reduce the number of links that must be followed."

Regenerates: link follows and simulated access time after a failed direct
hint, as a function of k.
"""

import pytest

from repro.fs import HintLadder, KthPageHints

from paper import populated_disk, report

FILE_PAGES = 96
TARGET_PAGES = (13, 37, 61, 85)


def build():
    image, fs, _ = populated_disk(files=30)
    fs.create_file("long.dat").write_data(b"\0" * (512 * (FILE_PAGES - 1) + 100))
    fs.sync()
    return fs


def measure():
    results = {}
    for k in (1, 2, 4, 8, 16, None):
        fs = build()
        file = fs.open_file("long.dat")
        kth = None
        if k is not None:
            kth = KthPageHints(file.fid, k)
            kth.build(file)
        ladder = HintLadder(fs)
        clock = fs.drive.clock
        t0 = clock.now_ms
        for target in TARGET_PAGES:
            stale = file.page_name(target).with_address(5)
            ladder.read_page("long.dat", stale, known=file.full_name(), kth=kth)
        elapsed = clock.now_ms - t0
        label = k if k is not None else "none"
        results[label] = (ladder.stats.link_follows / len(TARGET_PAGES), elapsed / len(TARGET_PAGES))
    return results


def test_kth_page_hints_bound_link_follows(benchmark):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    for k, (follows, ms) in results.items():
        benchmark.extra_info[f"k{k}_follows"] = follows
    rows = ", ".join(f"k={k}: {f:.1f} follows/{ms:.0f}ms" for k, (f, ms) in results.items())
    report(
        "E9",
        "hints every k pages reduce the links that must be followed",
        rows,
    )
    follows = {k: f for k, (f, _ms) in results.items()}
    # Bounded by k (at most ~k/2 from the nearest kept hint)...
    for k in (1, 2, 4, 8, 16):
        assert follows[k] <= k / 2 + 0.5
    # ...monotone in k, and all beat the no-hint leader walk.
    assert follows[1] <= follows[4] <= follows[16] < follows["none"]
    # Without hints, reaching a mid-file page costs a long walk.
    assert follows["none"] > 20


def test_time_follows_link_count(benchmark):
    """Each link follow is a disk access: time tracks the follow count."""
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    times = {k: ms for k, (_f, ms) in results.items()}
    report(
        "E9b",
        "every saved link follow saves a disk access",
        ", ".join(f"k={k}: {ms:.0f}ms" for k, ms in times.items()),
    )
    assert times[1] < times[16] < times["none"]
