"""E3 -- The hint recovery ladder (section 3.6).

Claim: a valid hint gives direct page access "without going through a
directory lookup and without scanning down the chain of data blocks"; each
fallback rung costs more, ending in the Scavenger.

Regenerates: simulated access cost at each rung for the same page.
"""

import pytest

from repro.disk import DiskDrive, FaultInjector
from repro.fs import FileSystem, HintLadder

from paper import populated_disk, report

TARGET_PAGE = 40


def build():
    image, fs, _ = populated_disk(files=40)
    fs.create_file("target.dat").write_data(bytes(range(256)) * 100)  # 51200 B
    fs.sync()
    file = fs.open_file("target.dat")
    good_hint = file.page_name(TARGET_PAGE)  # resolves (and caches) the chain
    return image, fs, file, good_hint


def timed_read(fs, hint, known=None):
    ladder = HintLadder(fs)
    clock = fs.drive.clock
    t0 = clock.now_ms
    ladder.read_page("target.dat", hint, known=known)
    return clock.now_ms - t0, ladder.stats


def measure_all():
    results = {}

    image, fs, file, good = build()
    results["direct"], _ = timed_read(fs, good)

    image, fs, file, good = build()
    results["known-page"], _ = timed_read(fs, good.with_address(5), known=file.full_name())

    image, fs, file, good = build()
    results["directory-fv"], _ = timed_read(fs, good.with_address(5))

    # Scavenge rung: the directory entry itself goes stale (leader moved
    # behind everyone's back), so only a full reconstruction helps.
    image, fs, file, good = build()
    injector = FaultInjector(image, seed=3)
    free = next(s.header.address for s in image.sectors() if s.label.is_free)
    injector.swap_sectors(file.leader_address(), free)
    results["scavenge"], stats = timed_read(fs, good.with_address(5))
    assert stats.successes["scavenge"] == 1
    return results


def bench(profile):
    """The harness hook: one row with per-rung costs (same measures as the
    tests).  Under ``bench --trace`` each rung shows up as a named
    ``hints.<rung>`` span in the merged Chrome trace."""
    results = measure_all()
    return [
        report(
            "E3",
            "hints give direct access; each recovery rung costs more, "
            "ending in a full scavenge",
            " / ".join(f"{rung}: {ms:.0f}ms" for rung, ms in results.items()),
            name="E3.hint_ladder_rungs",
            simulated_seconds=sum(results.values()) / 1000.0,
            **{f"{rung}_ms": ms for rung, ms in results.items()},
        )
    ]


def test_ladder_costs_increase_by_rung(benchmark):
    results = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    for rung, ms in results.items():
        benchmark.extra_info[f"{rung}_ms"] = ms
    report(
        "E3",
        "hints give direct access; each recovery rung costs more, "
        "ending in a full scavenge",
        " / ".join(f"{rung}: {ms:.0f}ms" for rung, ms in results.items()),
    )
    assert results["direct"] < results["known-page"] < results["scavenge"]
    assert results["directory-fv"] < results["scavenge"]
    # Direct access is a single sector operation: well under 200 ms even
    # with a full-stroke seek; the scavenge rung is tens of seconds.
    assert results["direct"] < 200
    assert results["scavenge"] > 10_000


def test_direct_access_beats_chain_scan(benchmark):
    """The deeper the page, the more a valid hint saves."""

    def measure():
        image, fs, file, good = build()
        direct_ms, _ = timed_read(fs, good)
        # A fresh mount with a cold cache: the stale hint forces the full
        # leader-to-page-40 link walk.
        fs2 = FileSystem.mount(DiskDrive(image, clock=fs.drive.clock))
        ladder = HintLadder(fs2)
        clock = fs2.drive.clock
        t0 = clock.now_ms
        ladder.read_page("target.dat", good.with_address(5))
        walk_ms = clock.now_ms - t0
        return direct_ms, walk_ms, ladder.stats.link_follows

    direct_ms, walk_ms, follows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["direct_ms"] = direct_ms
    benchmark.extra_info["walk_ms"] = walk_ms
    report(
        "E3b",
        "a hint avoids scanning down the chain of data blocks",
        f"direct {direct_ms:.0f}ms vs {follows}-link walk {walk_ms:.0f}ms "
        f"({walk_ms / max(direct_ms, 0.001):.0f}x)",
    )
    assert follows >= TARGET_PAGE
    assert walk_ms > 3 * direct_ms
