"""E13 -- Sharded file service: throughput scaling with shard count.

The structural claim behind the shard router: N single-pack file servers
behind one hash-routing front door serve the same client population
near-linearly faster than one server, because each shard machine owns
its own pack, cache, and elevator -- per poll cycle the cluster's
elapsed time is the *slowest* shard, not the sum of shards.  The pinned
bar is 4 shards >= 3.0x the single-shard request rate on the identical
workload, with zero errors and zero client-visible busy at either scale.

Rows sweep 1, 2, 4 (smoke) and 8 (full) shards over the same 16-client
load.  Baselines are exact: the whole run is simulated time derived from
one seed, and a 1-shard cluster is observationally equivalent to the
PR-5 single server (``tests/server/test_router.py`` proves it).
"""

from repro.server.loadgen import LoadGenerator, build_cluster

from paper import report

SEED = 1979
CLIENTS = 16
FILE_BYTES = 2048
READ_ROUNDS = 2

#: Shard counts per profile; 8 shards is the full profile's headroom row.
SMOKE_SHARDS = (1, 2, 4)
FULL_SHARDS = (1, 2, 4, 8)


def serve_cluster_load(shards: int):
    """The standard 16-client load against a *shards*-shard cluster."""
    system = build_cluster(CLIENTS, shards=shards, seed=SEED)
    generator = LoadGenerator(system, seed=SEED, file_bytes=FILE_BYTES,
                              read_rounds=READ_ROUNDS)
    return generator.run()


def _row(result, shards: int):
    return report(
        "E13",
        "(sec 5.2) sharding the file service scales its throughput",
        f"{shards} shard(s), {result.clients} clients: "
        f"{result.requests_per_sec:.2f} req/s, "
        f"p50 {result.p50_ms:.2f}ms, p99 {result.p99_ms:.2f}ms",
        name=f"E13.cluster_{shards}s",
        simulated_seconds=result.elapsed_s,
        cached=True,
        requests_per_sec=result.requests_per_sec,
        p50_ms=result.p50_ms,
        p99_ms=result.p99_ms,
        requests=result.requests,
        retries=result.retries,
        rejected=result.rejected,
        errors=result.errors,
    )


def test_four_shards_triple_single_shard_throughput():
    """The pinned scaling bar: 4 shards >= 3.0x one shard's req/s on the
    identical workload, with no errors and no admission rejects."""
    single = serve_cluster_load(1)
    quad = serve_cluster_load(4)
    assert single.errors == quad.errors == 0
    assert single.rejected == quad.rejected == 0
    assert single.requests == quad.requests
    speedup = quad.requests_per_sec / single.requests_per_sec
    assert speedup >= 3.0, f"4-shard speedup only {speedup:.2f}x"


def test_cluster_load_is_deterministic():
    first = serve_cluster_load(2)
    second = serve_cluster_load(2)
    assert first.to_json() == second.to_json()
    assert first.latencies_ms == second.latencies_ms


def bench(profile: str = "full"):
    """Structured entries for ``python -m repro bench``."""
    shard_counts = SMOKE_SHARDS if profile == "smoke" else FULL_SHARDS
    results = []
    by_shards = {}
    for shards in shard_counts:
        result = serve_cluster_load(shards)
        by_shards[shards] = result
        results.append(_row(result, shards))
    speedup = (by_shards[4].requests_per_sec
               / by_shards[1].requests_per_sec)
    assert speedup >= 3.0, (
        f"4-shard cluster only {speedup:.2f}x the single shard "
        f"({by_shards[4].requests_per_sec} vs "
        f"{by_shards[1].requests_per_sec} req/s)")
    for shards, result in by_shards.items():
        assert result.errors == 0, f"{shards}-shard run saw errors"
    return results
