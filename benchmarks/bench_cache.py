"""E11 -- Write-back cache and elevator scheduler speedups.

Not a paper claim: the paper's numbers (E1-E10) are all raw per-sector
disk costs, and stay exactly as they were with the cache off.  These
benchmarks measure what the acceleration layer of ``repro.disk.cache``
buys on the two workloads the ROADMAP's "as fast as the hardware allows"
goal cares about -- re-reading a working set and repeated world swaps --
and pin the cache-off path to the plain drive, byte for byte and
microsecond for microsecond.
"""

import pytest

from repro.disk import CachedDrive, DiskDrive, DiskImage, diablo31
from repro.fs import FileSystem
from repro.world import Machine, WorldSwapper

from paper import populated_disk, report, scatter_file

WORDS_64K = 65536

#: A 64k-word working set spans 257 sectors; give the cache comfortable
#: room so the benchmark measures hits, not LRU scan-thrash.
CACHE_SECTORS = 512

OUTLOAD_REPEATS = 4

SCATTER_PAYLOAD = bytes(range(256)) * 200  # 51,200 bytes = 101 pages


def make_drive(image, cached: bool):
    if cached:
        return CachedDrive(image, cache_sectors=CACHE_SECTORS)
    return DiskDrive(image)


def sequential_read_64k_seconds(cached: bool):
    """Write a 64k-word file, sync, then read it back sequentially.

    The timed region is the read.  With the cache on, the write just
    warmed all 257 sectors, so the read is served from memory; with it
    off, the read pays full disk time -- the E6 scenario.
    """
    image = DiskImage(diablo31())
    drive = make_drive(image, cached)
    fs = FileSystem.format(drive)
    payload = bytes((i * 31) & 0xFF for i in range(WORDS_64K * 2))
    fs.create_file("seq.dat").write_data(payload)
    fs.sync()
    watch = drive.clock.stopwatch()
    assert fs.open_file("seq.dat").read_data() == payload
    return watch.elapsed_s, drive


def repeat_outload_seconds(cached: bool, repeats: int = OUTLOAD_REPEATS):
    """OutLoad the same world *repeats* times (the printing server's
    spooler/printer coroutine pattern), ending durable.

    The first OutLoad (file creation) is setup; the timed region covers
    the repeats plus a final flush, so the cached run gets no durability
    discount: everything is on the platter when the clock stops.
    """
    image = DiskImage(diablo31())
    drive = make_drive(image, cached)
    fs = FileSystem.format(drive)
    machine = Machine()
    machine.memory.write_block(0x1000, list(range(256)))
    swapper = WorldSwapper(fs, machine)
    swapper.outload("World.state", "prog", "phase")
    fs.flush()
    watch = drive.clock.stopwatch()
    for _ in range(repeats):
        swapper.outload("World.state", "prog", "phase")
    fs.flush()
    return watch.elapsed_s, drive


def scattered_reread_seconds(cached: bool):
    """Re-read a deliberately scattered 101-page file (the E2 scenario).

    Compaction is the paper's answer to scatter; the cache is the modern
    one: after a first (warming) read, the re-read no longer pays the
    scatter penalty at all.  The timed region is the second read.
    """
    image, fs, _payloads = populated_disk(files=60)
    fs = scatter_file(image, fs, "seq.dat", SCATTER_PAYLOAD, seed=11)
    if cached:
        drive = CachedDrive(image, clock=fs.drive.clock, cache_sectors=CACHE_SECTORS)
        fs = FileSystem.mount(drive)
    else:
        drive = fs.drive
    assert fs.open_file("seq.dat").read_data() == SCATTER_PAYLOAD  # warm
    watch = drive.clock.stopwatch()
    assert fs.open_file("seq.dat").read_data() == SCATTER_PAYLOAD
    return watch.elapsed_s, drive


def _hit_rate(drive) -> float:
    return drive.cache_stats.hit_rate() if isinstance(drive, CachedDrive) else 0.0


def bench(profile: str = "full"):
    """Structured entries for ``python -m repro bench`` (same measures)."""
    results = []
    seq = {}
    for cached in (False, True):
        seconds, drive = sequential_read_64k_seconds(cached)
        seq[cached] = seconds
        results.append(report(
            "E11", "(no paper claim) cached re-read of a 64k-word file",
            f"{seconds:.3f}s cache {'on' if cached else 'off'}",
            name=f"E11.sequential_reread_64k_{'cached' if cached else 'uncached'}",
            simulated_seconds=seconds, cached=cached, hit_rate=_hit_rate(drive),
        ))
    out = {}
    for cached in (False, True):
        seconds, drive = repeat_outload_seconds(cached)
        out[cached] = seconds
        results.append(report(
            "E11b", "(no paper claim) repeated OutLoad of the same world",
            f"{seconds:.3f}s for {OUTLOAD_REPEATS} OutLoads, cache {'on' if cached else 'off'}",
            name=f"E11b.repeat_outload_{'cached' if cached else 'uncached'}",
            simulated_seconds=seconds, cached=cached, hit_rate=_hit_rate(drive),
        ))
    if profile != "smoke":  # populated-disk setup dominates; full only
        for cached in (False, True):
            seconds, drive = scattered_reread_seconds(cached)
            results.append(report(
                "E11d", "(no paper claim) cached re-read of a scattered file",
                f"{seconds:.3f}s cache {'on' if cached else 'off'}",
                name=f"E11d.scattered_reread_{'cached' if cached else 'uncached'}",
                simulated_seconds=seconds, cached=cached, hit_rate=_hit_rate(drive),
            ))
    results.append(report(
        "E11c", "(acceptance) cache wins >= 2x on both workloads",
        f"re-read {seq[False] / seq[True]:.1f}x, repeat-OutLoad {out[False] / out[True]:.1f}x",
        name="E11c.cache_speedups", simulated_seconds=0.0, cached=True,
        reread_speedup=seq[False] / seq[True],
        outload_speedup=out[False] / out[True],
    ))
    return results


def test_cached_sequential_read_at_least_2x(benchmark):
    def measure():
        plain_s, _ = sequential_read_64k_seconds(cached=False)
        cached_s, drive = sequential_read_64k_seconds(cached=True)
        return plain_s, cached_s, drive

    plain_s, cached_s, drive = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = plain_s / cached_s
    benchmark.extra_info.update(
        {"plain_s": plain_s, "cached_s": cached_s, "speedup": ratio,
         "hit_rate": drive.cache_stats.hit_rate()}
    )
    report(
        "E11",
        "(no paper claim) a warm write-back cache serves re-reads from memory",
        f"64k-word re-read: {plain_s:.2f}s uncached vs {cached_s:.3f}s cached "
        f"= {ratio:.0f}x ({drive.cache_stats.hit_rate():.0%} hits)",
    )
    assert ratio >= 2.0, f"cached sequential read only {ratio:.2f}x faster"
    # Lifetime rate includes the cold format/write phase; the timed read
    # itself is all hits, which is what the 2x bound above demonstrates.
    assert drive.cache_stats.hit_rate() > 0.5


def test_cached_repeat_outload_at_least_2x(benchmark):
    def measure():
        plain_s, _ = repeat_outload_seconds(cached=False)
        cached_s, drive = repeat_outload_seconds(cached=True)
        return plain_s, cached_s, drive

    plain_s, cached_s, drive = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = plain_s / cached_s
    benchmark.extra_info.update(
        {"plain_s": plain_s, "cached_s": cached_s, "speedup": ratio,
         "coalesced": drive.scheduler.stats.coalesced}
    )
    report(
        "E11b",
        "(no paper claim) repeated OutLoads coalesce in the write-back queue",
        f"{OUTLOAD_REPEATS} OutLoads + flush: {plain_s:.2f}s uncached vs "
        f"{cached_s:.2f}s cached = {ratio:.1f}x "
        f"({drive.scheduler.stats.coalesced} writes coalesced)",
    )
    assert ratio >= 2.0, f"cached repeat-OutLoad only {ratio:.2f}x faster"


def test_cache_off_is_byte_and_time_identical():
    """``cache_sectors=0`` must be the plain drive exactly: same platter
    bytes, same simulated microseconds, same command counts -- the
    paper-faithful numbers of E1-E10 are measured on this path."""

    def run(drive_cls, **kw):
        image = DiskImage(diablo31())
        drive = drive_cls(image, **kw)
        fs = FileSystem.format(drive)
        fs.create_file("a.dat").write_data(bytes(range(256)) * 40)
        fs.open_file("a.dat").read_data()
        fs.delete_file("a.dat")
        fs.sync()
        return image, drive

    img_plain, plain = run(DiskDrive)
    img_off, off = run(CachedDrive, cache_sectors=0)
    assert plain.clock.now_us == off.clock.now_us
    assert plain.stats.snapshot() == off.stats.snapshot()
    for s1, s2 in zip(img_plain.sectors(), img_off.sectors()):
        assert s1.header.pack() == s2.header.pack()
        assert s1.label.pack() == s2.label.pack()
        assert list(s1.value) == list(s2.value)
