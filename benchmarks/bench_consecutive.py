"""E10 -- Consecutive-file address arithmetic (section 3.6).

Claim: "A program is free to assume that a file is consecutive and, knowing
the address a_i of page i, to compute the address of page j as a_i + j - i.
The label check will prevent any incorrect overwriting of data, and will
inform the program whether the disk access succeeds."

Regenerates: arithmetic hit rate and read time on a fragmented file vs the
same file after compaction.
"""

import pytest

from repro.disk import DiskDrive
from repro.fs import Compactor, ConsecutiveReader, FileSystem

from paper import populated_disk, report, scatter_file

PAYLOAD = bytes(range(256)) * 80  # 40,960 bytes = 81 pages


def measure():
    image, fs, _ = populated_disk(files=40)
    fs = scatter_file(image, fs, "guess.dat", PAYLOAD, seed=5)
    clock = fs.drive.clock

    file = fs.open_file("guess.dat")
    reader = ConsecutiveReader(fs.page_io, file)
    t0 = clock.now_s
    data = bytearray()
    for pn in range(1, file.last_page_number + 1):
        contents = reader.read_page(pn)
        from repro.words import words_to_bytes

        data += words_to_bytes(contents.value, nbytes=contents.label.length)
    assert bytes(data) == PAYLOAD
    scattered = (reader.stats.hit_rate, clock.now_s - t0)

    Compactor(DiskDrive(image, clock=clock)).compact()
    fs2 = FileSystem.mount(DiskDrive(image, clock=clock))
    file2 = fs2.open_file("guess.dat")
    reader2 = ConsecutiveReader(fs2.page_io, file2)
    t0 = clock.now_s
    for pn in range(1, file2.last_page_number + 1):
        reader2.read_page(pn)
    compacted = (reader2.stats.hit_rate, clock.now_s - t0)
    return scattered, compacted, file2.leader.maybe_consecutive


def test_consecutive_assumption_hit_rate(benchmark):
    scattered, compacted, flag = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["scattered_hit_rate"] = scattered[0]
    benchmark.extra_info["compacted_hit_rate"] = compacted[0]
    report(
        "E10",
        "programs may compute a_i + j - i; the label check catches "
        "every wrong guess harmlessly",
        f"hit rate fragmented {scattered[0]:.0%} ({scattered[1]:.2f}s) vs "
        f"compacted {compacted[0]:.0%} ({compacted[1]:.2f}s); "
        f"maybe-consecutive flag = {flag}",
    )
    assert scattered[0] < 0.3  # guesses mostly miss on a scattered file
    assert compacted[0] == 1.0  # and always hit after compaction
    assert flag is True
    assert compacted[1] < scattered[1]


def test_failed_guesses_never_corrupt(benchmark):
    """Writing through wrong arithmetic is impossible: the check aborts the
    write before anything lands (measured as zero value writes)."""

    def measure_writes():
        image, fs, payloads = populated_disk(files=20)
        fs = scatter_file(image, fs, "guess.dat", PAYLOAD, seed=6)
        from repro.errors import HintFailed
        from repro.fs import FullName

        file = fs.open_file("guess.dat")
        base = file.leader_address()
        drive = fs.drive
        blocked = 0
        before = drive.stats.value_writes
        for pn in range(1, file.last_page_number + 1):
            guess = base + pn
            try:
                fs.page_io.write(FullName(file.fid, pn, guess), [0xDEAD] * 256)
            except HintFailed:
                blocked += 1
        stray_writes = drive.stats.value_writes - before
        return blocked, stray_writes, file.last_page_number

    blocked, writes, pages = benchmark.pedantic(measure_writes, rounds=1, iterations=1)
    benchmark.extra_info["blocked"] = blocked
    report(
        "E10b",
        "the label check prevents any incorrect overwriting of data",
        f"{blocked}/{pages} wrong-address writes aborted before writing; "
        f"{writes} writes landed (only where the guess was actually right)",
    )
    assert blocked + writes == pages
    assert writes <= pages - blocked
