"""E16 -- Always-on service: incremental scavenge pauses and failover time.

Section 3.5's scavenger "takes about a minute" -- and for that minute the
Alto is down.  A 24/7 file server cannot take the minute, so two new
numbers are pinned here:

* **E16.incremental_scavenge_max_pause** -- the worst client-visible
  request latency while :class:`~repro.fs.online.OnlineMaintenance`
  sweeps and compacts the *same* pack an offline scavenge would freeze.
  The regression-tracked quantity is that worst pause (simulated
  seconds); the offline scavenge of an identical pack rides along as a
  metric, and the claim is the gap between them: the pause is bounded by
  one maintenance slice, two-plus orders of magnitude below the offline
  downtime.

* **E16.failover_promotion** -- killing the replicated primary
  mid-workload at a fixed crash point and promoting the hot standby:
  replay the journal tail, scavenge the standby pack, mount, swap the
  shard.  The regression-tracked quantity is the simulated promotion
  time; the replayed-tail length and the acked-page count (all verified
  intact -- the drill fails the bench otherwise) ride along.
"""

from repro.disk import DiskDrive, DiskShape
from repro.fs import OnlineMaintenance, Scavenger
from repro.net import PacketNetwork
from repro.server import FileClient, FileServer
from repro.server.failover import failover_drill

from paper import populated_disk, report

SEED = 1979

#: Pack sizes per profile (cylinders, populated files, read rounds).
#: The full profile is the paper's own disk (E1's "about a minute"
#: scavenge); smoke is a fast proxy with the same mechanics.
FULL_SCALE = (203, 150, 2)
SMOKE_SCALE = (24, 10, 2)

#: How far below the offline freeze the worst pause must stay.  The
#: pause is near-O(1) -- one slice: at worst a single page move (whose
#: seeks grow only with pack *diameter*) plus the request's own disk
#: work -- while offline downtime grows with every sector on the pack,
#: so the demanded gap widens with scale.
FULL_PAUSE_FACTOR = 12
SMOKE_PAUSE_FACTOR = 3

#: Absolute ceiling on any single request's latency during maintenance
#: (one worst-case compaction move's writes and seeks, budget overshoot
#: included -- never a whole-pack stall).
PAUSE_CEILING_S = 2.5

#: The crash point the promotion row pins (mid-workload; the sweep in CI
#: covers every point, the bench tracks one representative's cost).
CRASH_POINT = 45


class _TimedClient(FileClient):
    """A FileClient that tracks its worst single-request latency.

    One protocol request is the unit a user-visible pause is charged to:
    a whole-file read is many requests, each individually delayed (or
    not) by whatever maintenance slice its poll cycle ran.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.worst_request_us = 0
        self.timed_requests = 0

    def transact(self, request):
        started = self.clock.now_us
        response = super().transact(request)
        elapsed = self.clock.now_us - started
        self.worst_request_us = max(self.worst_request_us, elapsed)
        self.timed_requests += 1
        return response


def incremental_pause_run(cylinders: int, files: int, rounds: int):
    """Serve reads while maintenance patrols; returns (max_pause_s, offline_s,
    requests, maintenance report)."""
    shape = DiskShape(name=f"e16_{cylinders}cyl", cylinders=cylinders)
    # The offline yardstick: scavenging a snapshot of this very pack.
    image, fs, payloads = populated_disk(shape=shape, files=files, seed=SEED,
                                         deletions=files // 4)
    offline_image = image.snapshot()
    offline_s = Scavenger(DiskDrive(offline_image)).scavenge().elapsed_s

    net = PacketNetwork(clock=fs.drive.clock)
    net.attach("fileserver")
    net.attach("ws")
    server = FileServer(fs, net)
    server.maintenance = OnlineMaintenance(fs)
    client = _TimedClient(net, "ws", pump=server.poll, read_batch_pages=4)

    names = sorted(payloads)
    reads = 0
    round_index = 0
    # Read the pack end to end until maintenance finishes its pass (and
    # at least `rounds` times, so requests overlap every phase).
    while round_index < rounds or server.maintenance.phase != "done":
        name = names[reads % len(names)]
        data = client.read_file(name)
        assert data == payloads[name], f"{name} corrupted mid-maintenance"
        reads += 1
        if reads % len(names) == 0:
            round_index += 1
    return (client.worst_request_us / 1e6, offline_s,
            client.timed_requests, server.maintenance.report)


def promotion_run():
    """The drill at the pinned crash point; returns its report."""
    drill = failover_drill(seed=SEED, crash_at=CRASH_POINT)
    assert drill.ok, f"failover drill failed: {drill.problems}"
    assert drill.promotion_us > 0
    return drill


def test_incremental_pause_is_orders_below_offline_downtime():
    max_pause_s, offline_s, requests, maint = incremental_pause_run(*SMOKE_SCALE)
    assert maint.repairs_made() >= 0 and maint.checks_passed > 0
    assert requests > 0
    # The whole point: no request ever waits anything like the offline
    # scavenge's full-pack freeze.
    assert max_pause_s < offline_s / SMOKE_PAUSE_FACTOR
    # ... and the pause is absolutely bounded too (one slice + one
    # request's own disk work, not an unbounded stall).
    assert max_pause_s < PAUSE_CEILING_S


def test_promotion_preserves_every_acked_write():
    drill = promotion_run()
    assert not drill.problems
    assert drill.crash_point == CRASH_POINT


def bench(profile: str = "full"):
    """Structured entries for ``python -m repro bench``."""
    scale = SMOKE_SCALE if profile == "smoke" else FULL_SCALE
    factor = SMOKE_PAUSE_FACTOR if profile == "smoke" else FULL_PAUSE_FACTOR
    max_pause_s, offline_s, requests, maint = incremental_pause_run(*scale)
    assert max_pause_s < offline_s / factor, (
        f"incremental maintenance stalled a request {max_pause_s:.3f}s "
        f"(offline scavenge: {offline_s:.1f}s)")
    assert max_pause_s < PAUSE_CEILING_S
    rows = [
        report(
            "E16",
            "(sec 3.5) scavenging freezes the machine for about a minute; "
            "an always-on server must not stop",
            f"worst request pause {max_pause_s * 1000:.1f}ms across "
            f"{requests} requests served during a full sweep+compact pass "
            f"(offline scavenge of the same pack: {offline_s:.1f}s)",
            name="E16.incremental_scavenge_max_pause",
            simulated_seconds=max_pause_s,
            cached=False,
            offline_scavenge_s=offline_s,
            requests=requests,
            slices=maint.slices,
            pages_moved=maint.pages_moved,
            boundary_checks=maint.checks_passed,
        )
    ]
    drill = promotion_run()
    rows.append(
        report(
            "E16",
            "single-machine service stops when the machine does; a hot "
            "standby bounds the outage by promotion, not repair",
            f"promotion in {drill.promotion_us / 1e6:.2f} simulated s at "
            f"crash point {drill.crash_point} ({drill.tail_records} journal "
            f"records replayed, {drill.acked_pages} acked pages verified)",
            name="E16.failover_promotion",
            simulated_seconds=drill.promotion_us / 1e6,
            cached=False,
            tail_records=drill.tail_records,
            acked_pages=drill.acked_pages,
        )
    )
    return rows
