"""E15 -- Saturation: open-loop offered load vs measured p50/p99.

The closed-loop load generator (E12/E13) cannot see saturation: every
client waits for its response before issuing again, so offered load
politely falls to whatever the server can do -- the coordinated-omission
trap.  ``LoadGenerator.run_open_loop`` instead draws a Poisson arrival
schedule up front and measures each request's latency **from its
scheduled arrival time**: when a station is still busy as its next
arrival falls due, the wait to even get on the wire counts.

Swept against a 4-shard cluster serving 1-page cached READs, the curve
has the classic shape this bench pins: latency is flat and low while the
offered rate is below cluster capacity (~1780 req/s with 8 stations --
up from ~1030 before the router stopped double-charging the response
relay to the producing shard's link; see E17 in EXPERIMENTS.md), and
past the knee the backlog grows without bound -- p99 is then set by the
*length of the run*, not the service time, roughly doubling with every
doubling of offered load.  The percentiles come from the
``loadgen.request_us`` log-bucket histogram (cross-checked against the
raw latency list inside the generator itself).
"""

from repro.server.loadgen import LoadGenerator, build_cluster

from paper import report

SEED = 1979
CLIENTS = 8
SHARDS = 4
DURATION_S = 1.0

#: Offered rates (req/s) per profile: the smoke sweep brackets the knee
#: with one point each side; the full sweep shows the whole curve.
SMOKE_RATES = (200, 1600, 6400)
FULL_RATES = (200, 400, 800, 1600, 3200, 6400)

#: Below this offered rate the cluster must keep up (achieved ~= offered).
BELOW_KNEE_RPS = 1600


def saturation_point(rate: float):
    """One open-loop run at *rate* req/s against the standard cluster."""
    system = build_cluster(CLIENTS, shards=SHARDS, seed=SEED)
    generator = LoadGenerator(system, seed=SEED)
    return generator.run_open_loop(rate, DURATION_S)


def _row(result, rate: int):
    return report(
        "E15",
        "(sec 5.2) offered load vs latency: the saturation curve",
        f"{rate} req/s offered at {SHARDS} shards: "
        f"achieved {result.achieved_rps:.1f} req/s, "
        f"p50 {result.p50_hist_ms:.2f}ms, p99 {result.p99_hist_ms:.2f}ms",
        name=f"E15.saturation_{rate}rps",
        simulated_seconds=result.elapsed_s,
        cached=True,
        offered_rps=result.offered_rps,
        achieved_rps=result.achieved_rps,
        p50_ms=result.p50_hist_ms,
        p99_ms=result.p99_hist_ms,
        offered=result.offered,
        completed=result.completed,
        errors=result.errors,
    )


def test_below_knee_keeps_up_and_stays_fast():
    result = saturation_point(200)
    assert result.errors == 0
    assert result.completed == result.offered
    # Achieved tracks offered within the rounding of a finite window.
    assert abs(result.achieved_rps - 200) / 200 < 0.10
    assert result.p99_hist_ms < 50


def test_past_knee_p99_explodes():
    below = saturation_point(1600)
    above = saturation_point(6400)
    assert above.errors == below.errors == 0
    # Past capacity the backlog grows for the whole window: p99 is two
    # orders of magnitude above the uncongested tail.
    assert above.p99_hist_ms > below.p99_hist_ms * 10
    # ... while achieved throughput caps at cluster capacity.
    assert above.achieved_rps < 6400 * 0.5


def test_open_loop_is_deterministic():
    first = saturation_point(400)
    second = saturation_point(400)
    assert first.to_json() == second.to_json()


def bench(profile: str = "full"):
    """Structured entries for ``python -m repro bench``."""
    rates = SMOKE_RATES if profile == "smoke" else FULL_RATES
    results = []
    by_rate = {}
    for rate in rates:
        result = saturation_point(rate)
        by_rate[rate] = result
        results.append(_row(result, rate))
    p99s = [by_rate[rate].p99_hist_ms for rate in rates]
    assert all(later >= earlier for earlier, later in zip(p99s, p99s[1:])), (
        f"p99 must grow with offered load, got {p99s}")
    assert p99s[-1] > p99s[0] * 10, (
        f"the sweep never saturated: p99 went {p99s[0]} -> {p99s[-1]}ms")
    for rate, result in by_rate.items():
        assert result.errors == 0, f"open-loop run at {rate} req/s saw errors"
        if rate <= BELOW_KNEE_RPS:
            assert abs(result.achieved_rps - rate) / rate < 0.10, (
                f"below the knee the cluster must keep up: offered {rate}, "
                f"achieved {result.achieved_rps}")
    return results
