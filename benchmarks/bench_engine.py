"""E17 -- The event-driven engine: 10k sessions, the moved knee, QoS isolation.

Three claims from the engine restructure, each pinned:

* **Session scale.**  One server holds ten thousand concurrent client
  sessions (every station OPENs a shared file and keeps the handle) and
  still answers through every one of them, with zero errors and zero
  rejections.  The scaling mechanism is visible in the counters: the
  wakeup count tracks the *request* count, not ``sessions x polls`` --
  sleeping sessions cost a poll cycle nothing.

* **The capacity knee moved.**  PR-8's E15 sweep pinned the 4-shard
  cluster's knee at ~1030 req/s, dominated by the response relay being
  charged to the producing shard's link *twice* (the server's send and
  the router's cut-through forward).  The relay now lands on the front
  clock -- each side of the switch pays its own wire -- and the knee
  sits near ~1780 req/s.  This bench re-runs the saturated point and
  asserts the achieved plateau stays strictly above the old knee.

* **QoS isolation.**  Four bulk hogs keep deep read backlogs while one
  interactive client does request/response.  Under the event engine's
  class rotation the interactive request is served at the head of each
  cycle; under the PR-5 polling loop (kept alive as
  :class:`~repro.server.polled.PolledFileServer`, which ignores QoS) it
  queues behind a full pass of hog traffic.  The interactive p99 gap
  between the two engines is the isolation the weights buy.
"""

from repro.disk import CachedDrive, DiskImage, tiny_test_disk
from repro.fs import FileSystem
from repro.net import PacketNetwork
from repro.server import (
    QOS_BULK,
    FileClient,
    FileServer,
    FrameAssembler,
    PolledFileServer,
    run_session_storm,
)
from repro.server.loadgen import percentile

from bench_saturation import saturation_point
from paper import report

SEED = 1979

#: PR-8's measured 4-shard capacity knee (req/s); E17 must beat it.
OLD_KNEE_RPS = 1030

#: Offered rate for the saturated point -- far past the new knee.
SATURATED_RPS = 6400

HOGS = 4
HOG_DEPTH = 4

#: Requests served per poll cycle -- deliberately one full hog pass, so
#: an engine that scans in admission order spends whole cycles on hog
#: traffic before it reaches the interactive client.
CYCLE_BUDGET = 4


def storm_point(clients: int = 10_000, shared_files: int = 32):
    """The ten-thousand-session smoke, as a measured row."""
    storm = run_session_storm(clients=clients, shared_files=shared_files,
                              seed=SEED)
    assert storm.sessions == clients, "every client holds a live session"
    assert storm.errors == 0 and storm.rejected == 0 and storm.evicted == 0
    assert storm.wakeups < storm.requests * 2, (
        "wakeups must track requests, not sessions x polls")
    return storm


def qos_isolation(server_cls, rounds: int = 200):
    """Interactive latency behind four bulk hogs, on *server_cls*.

    Returns ``(p50_ms, p99_ms, elapsed_s)`` for the interactive client's
    closed-loop READs while the hogs are kept ``HOG_DEPTH`` deep and the
    server serves ``CYCLE_BUDGET`` requests per cycle.
    """
    image = DiskImage(tiny_test_disk(cylinders=40))
    drive = CachedDrive(image)
    fs = FileSystem.format(drive)
    network = PacketNetwork(clock=drive.clock)
    network.attach("fileserver", queue_limit=4096)
    server = server_cls(fs, network, max_pending=128)
    hogs = []
    for index in range(HOGS):
        host = f"hog{index}"
        network.attach(host)
        hogs.append(FileClient(network, host))
    network.attach("app")
    app = FileClient(network, "app")

    # Setup (hogs first, so the interactive client has the *latest*
    # admission seq -- the worst case for the old position-based scan).
    handles = {}
    for client in hogs + [app]:
        client.pump = server.poll
        name = f"{client.host}.dat"
        client.write_file(name, b"\x5a" * 512)
        handles[client] = client.open(name)[0]
        client.pump = None
    for hog in hogs:
        server.set_qos(hog.host, QOS_BULK)

    assemblers = {hog: FrameAssembler() for hog in hogs}
    outstanding = {hog: 0 for hog in hogs}
    latencies_ms = []
    started_us = server.clock.now_us
    for _ in range(rounds):
        for hog in hogs:
            while outstanding[hog] < HOG_DEPTH:
                hog.submit(hog.build_read(handles[hog], 1, 1))
                outstanding[hog] += 1
        pending = app.submit(app.build_read(handles[app], 1, 1))
        sent_us = server.clock.now_us
        response = None
        while response is None:
            server.poll(budget=CYCLE_BUDGET)
            response = app.step(pending)
            for hog in hogs:
                while True:
                    packet = network.receive(hog.host)
                    if packet is None:
                        break
                    if assemblers[hog].feed(packet) is not None:
                        outstanding[hog] -= 1
        assert response.ok
        latencies_ms.append((server.clock.now_us - sent_us) / 1000.0)
    elapsed_s = (server.clock.now_us - started_us) / 1_000_000.0
    latencies_ms.sort()
    return (percentile(latencies_ms, 0.50), percentile(latencies_ms, 0.99),
            elapsed_s)


# -- pytest entry points --------------------------------------------------------


def test_ten_thousand_sessions_one_server():
    storm = storm_point()
    assert storm.clients == 10_000


def test_knee_is_strictly_above_the_pr8_capacity():
    saturated = saturation_point(SATURATED_RPS)
    assert saturated.errors == 0
    assert saturated.achieved_rps > OLD_KNEE_RPS, (
        f"capacity regressed: plateau {saturated.achieved_rps} req/s is not "
        f"above the old {OLD_KNEE_RPS} req/s knee")


def test_qos_isolates_interactive_from_bulk_hogs():
    event_p50, event_p99, _ = qos_isolation(FileServer)
    polled_p50, polled_p99, _ = qos_isolation(PolledFileServer)
    assert event_p99 < polled_p99, (
        f"QoS bought nothing: event p99 {event_p99}ms vs "
        f"polled p99 {polled_p99}ms")
    assert event_p50 < polled_p50


# -- the harness hook -------------------------------------------------------------


def bench(profile: str = "full"):
    """Structured entries for ``python -m repro bench``."""
    rounds = 60 if profile == "smoke" else 200
    results = []

    storm = storm_point()
    results.append(report(
        "E17",
        "(sec 5.2) one machine serves the whole local network",
        f"{storm.sessions} concurrent sessions on one server: "
        f"{storm.requests} requests, {storm.errors} errors, "
        f"{storm.wakeups} wakeups",
        name="E17.sessions_10k",
        simulated_seconds=storm.elapsed_s,
        cached=True,
        sessions=storm.sessions,
        requests=storm.requests,
        wakeups=storm.wakeups,
        rejected=storm.rejected,
    ))

    saturated = saturation_point(SATURATED_RPS)
    assert saturated.achieved_rps > OLD_KNEE_RPS, (
        f"capacity regressed below the PR-8 knee: {saturated.achieved_rps}")
    results.append(report(
        "E17",
        f"engine restructure moves the 4-shard knee above {OLD_KNEE_RPS} req/s",
        f"{SATURATED_RPS} req/s offered: plateau "
        f"{saturated.achieved_rps:.0f} req/s "
        f"(old knee {OLD_KNEE_RPS} req/s)",
        name="E17.knee_plateau",
        simulated_seconds=saturated.elapsed_s,
        cached=True,
        achieved_rps=saturated.achieved_rps,
        old_knee_rps=OLD_KNEE_RPS,
        p99_ms=saturated.p99_hist_ms,
    ))

    event_p50, event_p99, event_s = qos_isolation(FileServer, rounds)
    polled_p50, polled_p99, polled_s = qos_isolation(PolledFileServer, rounds)
    assert event_p99 < polled_p99, "QoS isolation failed"
    results.append(report(
        "E17",
        "weighted QoS shields interactive latency from bulk backlogs",
        f"interactive p99 behind {HOGS} bulk hogs: "
        f"{event_p99:.2f}ms (event/QoS) vs {polled_p99:.2f}ms (polled), "
        f"{polled_p99 / event_p99:.1f}x isolation",
        name="E17.qos_isolation",
        simulated_seconds=event_s + polled_s,
        cached=True,
        event_p50_ms=event_p50,
        event_p99_ms=event_p99,
        polled_p50_ms=polled_p50,
        polled_p99_ms=polled_p99,
    ))
    return results
