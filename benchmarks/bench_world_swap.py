"""E5 -- InLoad/OutLoad timing (section 4.1).

Claim: each routine "requires about a second to complete its operation".

Regenerates: simulated time for OutLoad and InLoad of a 64k-word world
against an existing state file (the steady-state case the paper measures),
plus the slow first-time "installation" cost of creating the state file.
"""

import pytest

from repro.disk import DiskDrive, DiskImage, diablo31
from repro.fs import FileSystem
from repro.world import Machine, WorldSwapper

from paper import report


def build():
    image = DiskImage(diablo31())
    fs = FileSystem.format(DiskDrive(image))
    machine = Machine()
    machine.memory.write_block(0x1000, list(range(256)))
    return fs, WorldSwapper(fs, machine)


def measure():
    fs, swapper = build()
    clock = fs.drive.clock

    t0 = clock.now_s
    swapper.outload("World.state", "prog", "phase")
    create_s = clock.now_s - t0

    t0 = clock.now_s
    swapper.outload("World.state", "prog", "phase")
    outload_s = clock.now_s - t0

    t0 = clock.now_s
    swapper.inload("World.state")
    inload_s = clock.now_s - t0
    return create_s, outload_s, inload_s


def bench(profile: str = "full"):
    """Structured entries for ``python -m repro bench`` (same measures)."""
    create_s, outload_s, inload_s = measure()
    return [
        report(
            "E5", "OutLoad and InLoad each require about a second",
            f"OutLoad {outload_s:.2f}s, InLoad {inload_s:.2f}s",
            name="E5.outload_steady_state", simulated_seconds=outload_s,
            cached=False, inload_s=inload_s, first_outload_s=create_s,
        )
    ]


def test_world_swap_about_a_second(benchmark):
    create_s, outload_s, inload_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"first_outload_s": create_s, "outload_s": outload_s, "inload_s": inload_s}
    )
    report(
        "E5",
        "OutLoad and InLoad each require about a second",
        f"OutLoad {outload_s:.2f}s, InLoad {inload_s:.2f}s (existing state file); "
        f"first OutLoad (file creation) {create_s:.1f}s",
    )
    assert 0.5 < outload_s < 2.5
    assert 0.5 < inload_s < 2.5
    # Creating the state file is the slow installation path.
    assert create_s > 3 * outload_s


def test_coroutine_switch_cost(benchmark):
    """One activity switch (save A, restore B) is two world operations:
    the printing server pays this per spooler/printer swap."""

    def measure_switch():
        fs, swapper = build()
        swapper.outload("A.state", "a", "x")
        swapper.outload("B.state", "b", "y")
        clock = fs.drive.clock
        t0 = clock.now_s
        swapper.outload("A.state", "a", "x")
        swapper.inload("B.state")
        return clock.now_s - t0

    switch_s = benchmark.pedantic(measure_switch, rounds=1, iterations=1)
    benchmark.extra_info["switch_s"] = switch_s
    report(
        "E5b",
        "a coroutine switch = OutLoad + InLoad (about two seconds)",
        f"{switch_s:.2f}s per switch",
    )
    assert 1.0 < switch_s < 5.0
