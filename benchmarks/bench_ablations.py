"""Ablations -- what the design choices buy (and cost).

Three knobs the paper's design turns, each measured with the knob on and
off:

* A1: allocation locality (the `near` hint passed to the allocator);
* A2: the serial-number lease (identity safety vs descriptor writes);
* A3: the label-check discipline itself (robustness vs raw writes).
"""

import pytest

from repro.disk import Action, DiskDrive, DiskImage, Header, Label, PartCommand, diablo31, tiny_test_disk, value_words
from repro.fs import FileSystem
from repro.fs.allocator import PageAllocator
from repro.fs.file import AltoFile
from repro.fs.names import FileId, make_serial
from repro.fs.page import PageIO

from paper import report


# ----------------------------------------------------------------------------
# A1: allocation locality
# ----------------------------------------------------------------------------


class ScatterAllocator(PageAllocator):
    """The ablation: ignore the locality hint entirely."""

    def __init__(self, shape, seed=13):
        super().__init__(shape)
        import random

        self._rng = random.Random(seed)

    def candidates(self, near=None):
        free = [a for a in range(self.shape.total_sectors()) if self.is_free(a)]
        self._rng.shuffle(free)
        return iter(free)


def _grow_and_read(allocator_class):
    image = DiskImage(diablo31())
    drive = DiskDrive(image)
    pio = PageIO(drive)
    allocator = allocator_class(image.shape)
    allocator.reserve([0])
    file = AltoFile.create(pio, allocator, FileId(make_serial(1)), "grown.dat")
    payload = bytes(range(256)) * 120  # 61,440 bytes
    file.write_data(payload)
    watch = drive.clock.stopwatch()
    assert file.read_data() == payload
    return watch.elapsed_s


def test_a1_locality_hint(benchmark):
    def measure():
        return _grow_and_read(PageAllocator), _grow_and_read(ScatterAllocator)

    near_s, scatter_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["near_s"] = near_s
    benchmark.extra_info["scatter_s"] = scatter_s
    report(
        "A1",
        "(design choice) allocate near the previous page",
        f"sequential read of a 121-page file: near-allocation {near_s:.2f}s "
        f"vs no-locality allocation {scatter_s:.2f}s "
        f"({scatter_s / near_s:.1f}x worse without the hint)",
    )
    assert scatter_s > 3 * near_s


# ----------------------------------------------------------------------------
# A2: the serial lease
# ----------------------------------------------------------------------------


def test_a2_serial_lease(benchmark):
    """Identity safety costs one descriptor rewrite per lease of serials;
    a lease of 1 (sync every file) would be prohibitive."""

    def measure():
        costs = {}
        for lease in (1, 16, 64, 256):
            import repro.fs.filesystem as fsmod

            original = fsmod.SERIAL_LEASE
            fsmod.SERIAL_LEASE = lease
            try:
                image = DiskImage(tiny_test_disk(cylinders=40))
                fs = FileSystem.format(DiskDrive(image))
                watch = fs.drive.clock.stopwatch()
                for i in range(64):
                    fs.new_fid()
                costs[lease] = watch.elapsed_s
            finally:
                fsmod.SERIAL_LEASE = original
        return costs

    costs = benchmark.pedantic(measure, rounds=1, iterations=1)
    for lease, seconds in costs.items():
        benchmark.extra_info[f"lease{lease}_s"] = seconds
    report(
        "A2",
        "(design choice) lease serial numbers in blocks so a crash skips, "
        "never reuses, identities",
        "64 identities cost " + ", ".join(
            f"{s:.2f}s at lease={l}" for l, s in sorted(costs.items())
        ),
    )
    assert costs[1] > 5 * costs[64]
    assert costs[256] <= costs[16]


# ----------------------------------------------------------------------------
# A3: what the label discipline costs
# ----------------------------------------------------------------------------


def test_a3_label_discipline_price(benchmark):
    """The claim protocol costs ~1 revolution per allocation over a
    hypothetical unchecked allocator that trusts its free list blindly --
    the measured price of "accidental overwriting ... quite unlikely"."""

    def measure():
        shape = diablo31()
        fid = FileId(make_serial(1))

        # Checked: the real claim protocol.
        image = DiskImage(shape)
        drive = DiskDrive(image)
        pio = PageIO(drive)
        allocator = PageAllocator(shape)
        watch = drive.clock.stopwatch()
        for pn in range(50):
            allocator.allocate(pio, fid.label_for(pn, length=512), [pn])
        checked_s = watch.elapsed_s

        # Unchecked ablation: write header+label+value blind (one pass),
        # trusting the map -- fast, and one stale bit destroys data.
        image = DiskImage(shape)
        drive = DiskDrive(image)
        watch = drive.clock.stopwatch()
        address = 1
        for pn in range(50):
            drive.write_header_label_value(
                address + pn, Header(image.pack_id, address + pn),
                fid.label_for(pn, length=512), value_words([pn]),
            )
        unchecked_s = watch.elapsed_s
        return checked_s, unchecked_s

    checked_s, unchecked_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["checked_s"] = checked_s
    benchmark.extra_info["unchecked_s"] = unchecked_s
    price_rev = (checked_s - unchecked_s) / 50 / (diablo31().rotation_ms / 1000)
    report(
        "A3",
        "(design trade) robustness costs one revolution per allocation",
        f"50 checked allocations {checked_s:.2f}s vs 50 blind writes "
        f"{unchecked_s:.2f}s = {price_rev:.2f} revolutions per page of "
        f"safety margin",
    )
    assert 0.7 < price_rev < 1.5
