"""E12 -- File-server throughput under concurrent multiplexed load.

Not a paper claim with a number attached: section 5.2 reports that the
file-server configuration of the OS serves many workstations from one
machine, and the claim worth pinning is *structural* -- multiplexing N
clients through the event-driven engine must beat serving the same N
workloads to completion one client at a time, because the engine drains
all admitted writes through the elevator scheduler in one batched flush
per poll cycle and amortises its per-wakeup CPU charge.

Rows measure requests/sec and p50/p99 request latency at 1, 8, and 64
simulated clients (smoke profile: 1 and 8).  Baselines are exact: the
whole run is simulated time derived from one seed.
"""

from repro.server.loadgen import LoadGenerator, build_system

from paper import report

SEED = 1979

#: (clients, file_bytes, read_rounds) per scale row; small files at 64
#: clients keep the full profile's wall time reasonable.
SCALES = {
    1: (1, 2048, 2),
    8: (8, 2048, 2),
    64: (64, 1024, 1),
}


def serve_load(clients: int, sequential: bool = False):
    """Run the standard load at *clients* scale; returns the LoadResult."""
    n, file_bytes, read_rounds = SCALES[clients]
    system = build_system(n, seed=SEED)
    generator = LoadGenerator(system, seed=SEED, file_bytes=file_bytes,
                              read_rounds=read_rounds)
    return generator.run_sequential() if sequential else generator.run()


def _row(result, suffix: str = ""):
    name = f"E12.server_{result.mode}_{result.clients}c{suffix}"
    return report(
        "E12",
        "(sec 5.2) one file server multiplexes many workstations",
        f"{result.clients} clients {result.mode}: "
        f"{result.requests_per_sec:.2f} req/s, "
        f"p50 {result.p50_ms:.2f}ms, p99 {result.p99_ms:.2f}ms, "
        f"{result.flushes} flushes",
        name=name,
        simulated_seconds=result.elapsed_s,
        cached=True,
        requests_per_sec=result.requests_per_sec,
        p50_ms=result.p50_ms,
        p99_ms=result.p99_ms,
        requests=result.requests,
        flushes=result.flushes,
        retries=result.retries,
        rejected=result.rejected,
    )


def test_concurrent_beats_sequential_at_scale():
    """64 concurrent clients must finish strictly faster (higher aggregate
    req/s) than the same 64 workloads served sequentially -- the batched
    flush per poll is the mechanism, visible in the flush counts."""
    concurrent = serve_load(64)
    sequential = serve_load(64, sequential=True)
    assert concurrent.errors == sequential.errors == 0
    assert concurrent.requests == sequential.requests
    assert concurrent.requests_per_sec > sequential.requests_per_sec
    assert concurrent.flushes < sequential.flushes


def test_served_load_is_deterministic():
    """Same seed and schedule: identical request counts, simulated time,
    and latency distribution."""
    first = serve_load(8)
    second = serve_load(8)
    assert first.to_json() == second.to_json()
    assert first.latencies_ms == second.latencies_ms


def bench(profile: str = "full"):
    """Structured entries for ``python -m repro bench``."""
    results = []
    scales = (1, 8) if profile == "smoke" else (1, 8, 64)
    for clients in scales:
        results.append(_row(serve_load(clients)))
    # The structural claim: at the largest scale, the sequential baseline
    # for the same workloads, so the report shows what multiplexing buys.
    top = scales[-1]
    sequential = serve_load(top, sequential=True)
    results.append(_row(sequential))
    concurrent_rps = results[-2].metrics["requests_per_sec"]
    assert concurrent_rps > sequential.requests_per_sec, (
        f"concurrent {concurrent_rps} req/s not above sequential "
        f"{sequential.requests_per_sec} req/s at {top} clients")
    return results
