"""The packet network and the printing-server tasks (section 4)."""

from .network import (
    MAX_PAYLOAD_WORDS,
    NetworkError,
    Packet,
    PacketNetwork,
    TYPE_CONTROL,
    TYPE_DATA,
    TYPE_END_OF_FILE,
    send_file,
)
from .streams import network_read_stream, network_write_stream
from .printing import (
    PRINTER_STATE,
    PrinterDevice,
    QUEUE_FILE,
    SHUTDOWN_WORD,
    SPOOLER_STATE,
    bootstrap_printer_state,
    build_printing_server,
    read_queue,
    write_queue,
)

__all__ = [
    "MAX_PAYLOAD_WORDS",
    "NetworkError",
    "PRINTER_STATE",
    "Packet",
    "PacketNetwork",
    "PrinterDevice",
    "QUEUE_FILE",
    "SHUTDOWN_WORD",
    "SPOOLER_STATE",
    "TYPE_CONTROL",
    "TYPE_DATA",
    "TYPE_END_OF_FILE",
    "bootstrap_printer_state",
    "network_read_stream",
    "network_write_stream",
    "build_printing_server",
    "read_queue",
    "send_file",
    "write_queue",
]
