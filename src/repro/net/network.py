"""A minimal packet network (the substrate for section 4's printing server).

The Alto's Ethernet carried PUP packets between hosts; the printing server
"accepts files from a local communications network and prints them".  This
module gives the reproduction the same shape: named hosts, word-payload
packets, per-host receive queues, and delivery statistics -- enough to
exercise the activity-switching world-swap discipline without modelling
CSMA/CD.

>>> net = PacketNetwork()
>>> net.attach("alto"); net.attach("printserver")
>>> net.send(Packet("alto", "printserver", TYPE_DATA, (1, 2, 3)))
True
>>> net.receive("printserver").payload
(1, 2, 3)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..clock import SimClock
from ..errors import ReproError
from ..words import check_word


class NetworkError(ReproError):
    """Malformed packet or unknown host."""


#: Packet types used by the printing protocol (and free for others).
TYPE_DATA = 1
TYPE_END_OF_FILE = 2
TYPE_CONTROL = 3

#: Maximum payload words per packet (a PUP carried up to 266 words; we use a
#: page-friendly 256).
MAX_PAYLOAD_WORDS = 256


@dataclass(frozen=True)
class Packet:
    """One packet: addressing, a type word, and a word payload.

    Payload words must fit a 16-bit word, and at most
    :data:`MAX_PAYLOAD_WORDS` of them fit one packet:

    >>> Packet("a", "b", TYPE_DATA, (65535,)).destination
    'b'
    >>> Packet("a", "b", TYPE_DATA, tuple([0] * 257))
    Traceback (most recent call last):
        ...
    repro.net.network.NetworkError: payload of 257 words exceeds 256
    """

    source: str
    destination: str
    ptype: int
    payload: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if len(self.payload) > MAX_PAYLOAD_WORDS:
            raise NetworkError(f"payload of {len(self.payload)} words exceeds {MAX_PAYLOAD_WORDS}")
        for w in self.payload:
            check_word(w, "payload word")


class PacketNetwork:
    """Hosts with receive queues; delivery charges simulated wire time.

    >>> net = PacketNetwork()
    >>> net.attach("a"); net.attach("b", queue_limit=1)
    >>> net.send(Packet("a", "b", TYPE_DATA, (7,)))
    True
    >>> net.send(Packet("a", "b", TYPE_DATA, (8,)))   # queue full: dropped
    False
    >>> net.delivered, net.dropped
    (1, 1)
    """

    #: 3 Mbit/s Ethernet ~ 5.3 us per word of payload; round up generously
    #: to cover framing.
    WIRE_US_PER_WORD = 6

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._queues: Dict[str, Deque[Packet]] = {}
        self._limits: Dict[str, int] = {}
        self._clocks: Dict[str, SimClock] = {}
        self.delivered = 0
        self.dropped = 0

    # -- membership -----------------------------------------------------------------

    def attach(self, host: str, queue_limit: int = 1024,
               clock: Optional[SimClock] = None) -> None:
        """Join *host* to the network with a bounded receive queue.

        A host may bind its own *clock* -- the model of a machine with its
        own link to the switch.  Wire time for a packet is then charged on
        the destination's bound clock (its inbound link), else the
        source's (its outbound link), else the network clock -- so
        transfers between differently-bound hosts proceed in parallel
        simulated time, and everything else keeps the single shared-wire
        behaviour.

        >>> net = PacketNetwork()
        >>> net.attach("alto")
        >>> net.attach("alto")
        Traceback (most recent call last):
            ...
        repro.net.network.NetworkError: host 'alto' already attached
        """
        if host in self._queues:
            raise NetworkError(f"host {host!r} already attached")
        self._queues[host] = deque()
        self._limits[host] = queue_limit
        if clock is not None:
            self._clocks[host] = clock

    def detach(self, host: str) -> int:
        """Unplug *host*: its queue (and clock binding) are dropped.

        Returns how many undelivered packets died with the queue.  After
        a detach, sends to the host raise :class:`NetworkError` again --
        the server's eviction path (``server.sessions_evicted``) is what
        keeps a disconnected client's queued requests from pinning
        admission slots forever.

        >>> net = PacketNetwork()
        >>> net.attach("a"); net.attach("b")
        >>> _ = net.send(Packet("a", "b", TYPE_DATA, (1,)))
        >>> net.detach("b")
        1
        >>> net.attached("b")
        False
        """
        queue = self._queues.pop(host, None)
        if queue is None:
            raise NetworkError(f"unknown host {host!r}")
        self._limits.pop(host, None)
        self._clocks.pop(host, None)
        return len(queue)

    def attached(self, host: str) -> bool:
        """True while *host* has a live receive queue.

        >>> net = PacketNetwork()
        >>> net.attach("a")
        >>> net.attached("a"), net.attached("ghost")
        (True, False)
        """
        return host in self._queues

    def host_clock(self, host: str) -> Optional[SimClock]:
        """The clock bound at :meth:`attach` time, or None.

        >>> from repro.clock import SimClock
        >>> net = PacketNetwork()
        >>> net.attach("a", clock=net.clock)
        >>> net.host_clock("a") is net.clock
        True
        """
        return self._clocks.get(host)

    def hosts(self) -> List[str]:
        """The attached host names, sorted.

        >>> net = PacketNetwork()
        >>> net.attach("b"); net.attach("a")
        >>> net.hosts()
        ['a', 'b']
        """
        return sorted(self._queues)

    # -- sending and receiving ---------------------------------------------------------

    def send(self, packet: Packet, clock: Optional[SimClock] = None) -> bool:
        """Deliver a packet; returns False (and counts a drop) when the
        destination queue is full -- datagram semantics, no backpressure.

        Wire time lands on the first of: the explicit *clock* argument, the
        destination host's bound clock, the source host's bound clock, the
        network clock.  It is charged whether or not the packet is
        delivered:

        >>> net = PacketNetwork()
        >>> net.attach("a"); net.attach("b")
        >>> _ = net.send(Packet("a", "b", TYPE_DATA, (1, 2)))
        >>> net.clock.now_us                            # (2 + 4 words) * 6 us
        36
        """
        queue = self._queues.get(packet.destination)
        if queue is None:
            raise NetworkError(f"unknown destination {packet.destination!r}")
        if clock is None:
            clock = self._clocks.get(packet.destination)
        if clock is None:
            clock = self._clocks.get(packet.source)
        if clock is None:
            clock = self.clock
        clock.advance_us(
            (len(packet.payload) + 4) * self.WIRE_US_PER_WORD, "net.wire"
        )
        if len(queue) >= self._limits[packet.destination]:
            self.dropped += 1
            return False
        queue.append(packet)
        self.delivered += 1
        return True

    def receive(self, host: str) -> Optional[Packet]:
        """The next pending packet for *host*, or None.

        >>> net = PacketNetwork()
        >>> net.attach("a")
        >>> net.receive("a") is None
        True
        """
        queue = self._queues.get(host)
        if queue is None:
            raise NetworkError(f"unknown host {host!r}")
        return queue.popleft() if queue else None

    def pending(self, host: str) -> int:
        """How many packets are queued for *host*.

        >>> net = PacketNetwork()
        >>> net.attach("a"); net.attach("b")
        >>> _ = net.send(Packet("a", "b", TYPE_DATA, ()))
        >>> net.pending("b")
        1
        """
        queue = self._queues.get(host)
        if queue is None:
            raise NetworkError(f"unknown host {host!r}")
        return len(queue)


def send_file(
    network: PacketNetwork,
    source: str,
    destination: str,
    title: str,
    data: bytes,
    chunk_words: int = MAX_PAYLOAD_WORDS,
) -> int:
    """Transmit *data* as a print job: data packets then an end marker whose
    payload is the job title (BCPL string).  Returns packets sent.

    >>> net = PacketNetwork()
    >>> net.attach("alto"); net.attach("printserver")
    >>> send_file(net, "alto", "printserver", "memo", b"x" * 1024)
    3
    >>> net.receive("printserver").ptype == TYPE_DATA
    True
    """
    from ..words import bytes_to_words, string_to_words

    words = bytes_to_words(data)
    sent = 0
    for base in range(0, max(len(words), 1), chunk_words):
        chunk = tuple(words[base : base + chunk_words])
        network.send(Packet(source, destination, TYPE_DATA, chunk))
        sent += 1
    trailer = tuple(string_to_words(title)) + (len(data) >> 16, len(data) & 0xFFFF)
    network.send(Packet(source, destination, TYPE_END_OF_FILE, trailer))
    return sent + 1
