"""The printing server (section 4): spooler and printer as coroutines.

"One example is a printing server, a program that accepts files from a
local communications network and prints them.  The program is divided into
two tasks: a spooler that reads files from the network and queues them in a
disk file, and a printer that removes entries from the queue and controls
the hardware that prints them. ... Whenever the spooler is idle but the
queue is not empty, it saves its state and calls the printer.  Whenever the
printer is finished or detects incoming network traffic, it stops the
printer hardware, saves its state, and invokes the spooler.  This scheme
easily allows printing to be interrupted in order to respond quickly to
incoming files."

The two tasks communicate ONLY via disk files and world swaps: the spool
queue is a directory-listed queue file, each job's data is its own file.
The network and printer hardware are devices outside the swapped image.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import FileNotFound
from ..streams.disk_stream import open_read_stream, open_write_stream, read_string
from ..words import bytes_to_words, from_double_word, words_to_bytes, words_to_string
from ..world.swap import Halt, ProgramRegistry, Transfer, WorldProgram
from .network import Packet, PacketNetwork, TYPE_CONTROL, TYPE_DATA, TYPE_END_OF_FILE

SPOOLER_STATE = "Spooler.state"
PRINTER_STATE = "Printer.state"
QUEUE_FILE = "Spool.queue"

#: Control payload asking the server to shut down after draining.
SHUTDOWN_WORD = 0xDEAD


class PrinterDevice:
    """The printing hardware: consumes text, charges time per line.

    >>> from repro.clock import SimClock
    >>> device = PrinterDevice(SimClock(), ms_per_line=20.0)
    >>> device.print_job("memo", "line one\\nline two")
    2
    >>> device.clock.now_us                        # 2 lines * 20 ms
    40000
    >>> device.jobs_printed
    [('memo', 2)]
    """

    def __init__(self, clock, ms_per_line: float = 20.0, columns: int = 80) -> None:
        self.clock = clock
        self.ms_per_line = ms_per_line
        self.columns = columns
        self.jobs_printed: List[Tuple[str, int]] = []
        self.output: List[str] = []

    def print_job(self, title: str, text: str) -> int:
        lines = text.split("\n")
        for line in lines:
            self.clock.advance_ms(self.ms_per_line, "printer")
            self.output.append(line[: self.columns])
        self.jobs_printed.append((title, len(lines)))
        return len(lines)


# ----------------------------------------------------------------------------
# The spool queue on disk
# ----------------------------------------------------------------------------


def read_queue(fs) -> List[str]:
    """Job-data file names queued, in arrival order.

    >>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
    >>> fs = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
    >>> read_queue(fs)                             # no queue file yet
    []
    >>> write_queue(fs, ["Spool.job.1.memo"])
    >>> read_queue(fs)
    ['Spool.job.1.memo']
    """
    try:
        file = fs.open_file(QUEUE_FILE)
    except FileNotFound:
        return []
    text = file.read_data().decode("ascii")
    return [line for line in text.split("\n") if line]


def write_queue(fs, entries: List[str]) -> None:
    """Replace the on-disk spool queue with *entries* (see :func:`read_queue`)."""
    try:
        file = fs.open_file(QUEUE_FILE)
    except FileNotFound:
        file = fs.create_file(QUEUE_FILE)
    file.write_data("\n".join(entries).encode("ascii") + (b"\n" if entries else b""))


# ----------------------------------------------------------------------------
# The two tasks
# ----------------------------------------------------------------------------


def build_printing_server(
    registry: ProgramRegistry,
    network: PacketNetwork,
    printer: PrinterDevice,
    host: str = "printserver",
) -> None:
    """Register the spooler and printer programs, bound to their devices.

    (Binding by closure is the stand-in for the device driver code that was
    part of each task's memory image.)

    >>> from repro.clock import SimClock
    >>> from repro.net.network import PacketNetwork
    >>> from repro.world.swap import ProgramRegistry
    >>> clock = SimClock()
    >>> registry = ProgramRegistry()
    >>> network = PacketNetwork(clock=clock); network.attach("printserver")
    >>> build_printing_server(registry, network, PrinterDevice(clock))
    >>> registry.names()
    ['printer', 'spooler']
    """

    class Spooler(WorldProgram):
        name = "spooler"

        def phase_start(self, ctx, message):
            return self._spool(ctx)

        phase_resumed = phase_start

        def _spool(self, ctx):
            """Drain the network into the queue, then decide what's next."""
            shutdown = False
            while True:
                packet = network.receive(host)
                if packet is None:
                    break
                if packet.ptype == TYPE_CONTROL and SHUTDOWN_WORD in packet.payload:
                    shutdown = True
                    continue
                if packet.ptype == TYPE_DATA:
                    self._append_data(ctx, packet)
                elif packet.ptype == TYPE_END_OF_FILE:
                    self._finish_job(ctx, packet)
            queue = read_queue(ctx.fs)
            if queue:
                # "Whenever the spooler is idle but the queue is not empty,
                # it saves its state and calls the printer."
                ctx.outload(SPOOLER_STATE, "resumed")
                return Transfer(PRINTER_STATE, message=[1 if shutdown else 0])
            if shutdown:
                return Halt(("printed", list(printer.jobs_printed)))
            # Idle with nothing queued: save state and halt politely; a
            # later boot of SPOOLER_STATE resumes listening.
            ctx.outload(SPOOLER_STATE, "resumed")
            return Halt(("idle", list(printer.jobs_printed)))

        def _append_data(self, ctx, packet) -> None:
            name = f"Spool.incoming.{packet.source}"
            try:
                file = ctx.fs.open_file(name)
            except FileNotFound:
                file = ctx.fs.create_file(name)
            data = file.read_data() + words_to_bytes(list(packet.payload))
            file.write_data(data)

        def _finish_job(self, ctx, packet) -> None:
            payload = list(packet.payload)
            title = words_to_string(payload[:-2])
            nbytes = from_double_word(payload[-2], payload[-1])
            incoming = f"Spool.incoming.{packet.source}"
            try:
                file = ctx.fs.open_file(incoming)
                data = file.read_data()[:nbytes]
                ctx.fs.delete_file(incoming)
            except FileNotFound:
                data = b""
            queue = read_queue(ctx.fs)
            job_name = f"Spool.job.{len(printer.jobs_printed) + len(queue) + 1}.{title}"
            job = ctx.fs.create_file(job_name)
            job.write_data(data)
            write_queue(ctx.fs, queue + [job_name])

    class Printer(WorldProgram):
        name = "printer"

        def phase_start(self, ctx, message):
            return self._print(ctx, message)

        phase_resumed = phase_start

        def _print(self, ctx, message):
            shutdown = bool(message and message[0])
            while True:
                if network.pending(host):
                    # "Whenever the printer ... detects incoming network
                    # traffic, it stops the printer hardware, saves its
                    # state, and invokes the spooler."
                    ctx.outload(PRINTER_STATE, "resumed")
                    return Transfer(SPOOLER_STATE)
                queue = read_queue(ctx.fs)
                if not queue:
                    ctx.outload(PRINTER_STATE, "resumed")
                    if shutdown:
                        return Halt(("printed", list(printer.jobs_printed)))
                    return Transfer(SPOOLER_STATE)
                job_name, rest = queue[0], queue[1:]
                file = ctx.fs.open_file(job_name)
                text = file.read_data().decode("ascii", errors="replace")
                title = job_name.split(".", 3)[-1]
                printer.print_job(title, text)
                ctx.fs.delete_file(job_name)
                write_queue(ctx.fs, rest)

    registry.register(Spooler)
    registry.register(Printer)


def bootstrap_printer_state(engine) -> None:
    """Write an initial printer state file so the spooler can call it.

    >>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
    >>> from repro.clock import SimClock
    >>> from repro.world import Machine, ProgramRegistry, WorldEngine
    >>> fs = FileSystem.format(
    ...     DiskDrive(DiskImage(tiny_test_disk(cylinders=80))))
    >>> network = PacketNetwork(clock=fs.drive.clock)
    >>> network.attach("printserver")
    >>> registry = ProgramRegistry()
    >>> build_printing_server(registry, network,
    ...                       PrinterDevice(fs.drive.clock))
    >>> engine = WorldEngine(Machine(), fs, registry)
    >>> bootstrap_printer_state(engine)
    >>> PRINTER_STATE in fs.list_files()
    True
    """
    engine.swapper.outload(PRINTER_STATE, "printer", "start")
