"""Network streams: the stream protocol over packet queues.

Used by the diskless operating system (section 5.2: programs "that depend
on network communications rather than on local disk storage").  A network
read stream produces the payload words of successive packets addressed to a
host; a write stream batches put words into packets.  Both are ordinary
stream records -- one more demonstration that the protocol of section 2 is
the interface, not any particular device.

>>> from repro.net.network import PacketNetwork
>>> net = PacketNetwork(); net.attach("a"); net.attach("b")
>>> writer = network_write_stream(net, "a", "b", packet_words=2)
>>> for word in (10, 20, 30):
...     writer.put(word)
>>> writer.close()                               # flushes the short tail
>>> reader = network_read_stream(net, "b")
>>> [reader.get() for _ in range(3)]
[10, 20, 30]
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import EndOfStream
from ..streams.base import Stream
from .network import MAX_PAYLOAD_WORDS, Packet, PacketNetwork, TYPE_DATA


def network_read_stream(network: PacketNetwork, host: str) -> Stream:
    """Produce the payload words of data packets arriving at *host*.

    ``endof`` means "nothing pending right now" (a network stream has no
    true end, like the keyboard).  Non-data packets are passed over.

    >>> from repro.net.network import Packet, PacketNetwork, TYPE_DATA
    >>> net = PacketNetwork(); net.attach("a"); net.attach("b")
    >>> _ = net.send(Packet("a", "b", TYPE_DATA, (5, 6)))
    >>> reader = network_read_stream(net, "b")
    >>> reader.get(), reader.get(), reader.endof()
    (5, 6, True)
    >>> reader.call("source")                    # who sent the last packet
    'a'
    """

    def _fill(stream: Stream) -> bool:
        state = stream.state
        while state["position"] >= len(state["payload"]):
            packet = state["network"].receive(state["host"])
            if packet is None:
                return False
            if packet.ptype != TYPE_DATA:
                continue
            state["payload"] = list(packet.payload)
            state["position"] = 0
            state["last_source"] = packet.source
        return True

    def get(stream: Stream) -> int:
        if not _fill(stream):
            raise EndOfStream(f"no packets pending for {stream.state['host']}")
        word = stream.state["payload"][stream.state["position"]]
        stream.state["position"] += 1
        return word

    def endof(stream: Stream) -> bool:
        return not _fill(stream)

    stream = Stream(
        get=get,
        endof=endof,
        reset=lambda s: s.state.update(payload=[], position=0),
        network=network,
        host=host,
        payload=[],
        position=0,
        last_source=None,
    )
    stream.set_operation("source", lambda s: s.state["last_source"])
    return stream


def network_write_stream(
    network: PacketNetwork,
    source: str,
    destination: str,
    packet_words: int = MAX_PAYLOAD_WORDS,
) -> Stream:
    """Consume words into data packets; ``flush``/``close`` sends the tail.

    A full buffer sends immediately, so long transfers pipeline:

    >>> from repro.net.network import PacketNetwork
    >>> net = PacketNetwork(); net.attach("a"); net.attach("b")
    >>> writer = network_write_stream(net, "a", "b", packet_words=2)
    >>> writer.put(1); writer.put(2)             # full buffer: sent now
    >>> net.pending("b")
    1
    >>> writer.put(3); writer.call("flush")      # short tail on demand
    >>> net.receive("b").payload, net.receive("b").payload
    ((1, 2), (3,))
    """
    if not 1 <= packet_words <= MAX_PAYLOAD_WORDS:
        raise ValueError(f"packet size must be 1..{MAX_PAYLOAD_WORDS}")

    def _send(stream: Stream) -> None:
        buffer: List[int] = stream.state["buffer"]
        if buffer:
            stream.state["network"].send(
                Packet(stream.state["source"], stream.state["destination"], TYPE_DATA,
                       tuple(buffer))
            )
            stream.state["buffer"] = []

    def put(stream: Stream, word: int) -> None:
        stream.state["buffer"].append(word)
        if len(stream.state["buffer"]) >= stream.state["packet_words"]:
            _send(stream)

    stream = Stream(
        put=put,
        endof=lambda s: False,
        reset=lambda s: s.state.update(buffer=[]),
        close=_send,
        network=network,
        source=source,
        destination=destination,
        buffer=[],
        packet_words=packet_words,
    )
    stream.set_operation("flush", _send)
    return stream
