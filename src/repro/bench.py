"""The benchmark regression harness: ``python -m repro bench``.

Runs every ``benchmarks/bench_*.py`` module that exposes a
``bench(profile)`` function, collects the :class:`BenchResult` records they
return (the same measure functions the pytest benchmarks call), and writes
a machine-readable report (default ``BENCH_PR2.json``) with simulated
seconds, cache on/off, and hit rates.

Simulated time is a deterministic output of the timing model, so the
checked-in ``benchmarks/baselines.json`` is exact, not statistical: a
result more than ``--tolerance`` (default 20%) *slower* than its baseline
fails the run.  ``--update-baselines`` rewrites the baseline file from the
current run (do this when a deliberate change moves the numbers, and say
why in the commit).

The harness always runs with :func:`repro.obs.runtime.retain_stats` on, so
every result row carries the merged metrics snapshot of the clocks that
produced it (the ``obs`` key).  ``--trace out.json`` additionally records
simulated-time spans on every clock and writes one merged Chrome
``trace_event`` JSON next to the report (open it in Perfetto).
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

DEFAULT_TOLERANCE = 0.20
DEFAULT_OUTPUT = "BENCH_PR2.json"
BASELINES_NAME = "baselines.json"


def find_benchmarks_dir(start: Optional[Path] = None) -> Path:
    """The repository's ``benchmarks/`` directory.

    Looked up relative to this file (source checkout) and then upward from
    the working directory, so the harness runs from any subdirectory.
    """
    candidates = [Path(__file__).resolve().parents[2] / "benchmarks"]
    here = (start or Path.cwd()).resolve()
    candidates.extend(parent / "benchmarks" for parent in [here, *here.parents])
    for candidate in candidates:
        if candidate.is_dir() and list(candidate.glob("bench_*.py")):
            return candidate
    raise FileNotFoundError("no benchmarks/ directory with bench_*.py found")


def load_bench_modules(bench_dir: Path) -> List[object]:
    """Import every ``bench_*.py`` file (with ``paper.py`` importable)."""
    modules = []
    sys.path.insert(0, str(bench_dir))  # the modules do `from paper import ...`
    try:
        for path in sorted(bench_dir.glob("bench_*.py")):
            spec = importlib.util.spec_from_file_location(f"repro_bench_{path.stem}", path)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            modules.append(module)
    finally:
        sys.path.remove(str(bench_dir))
    return modules


def run_benchmarks(profile: str, only: Optional[str] = None, bench_dir: Optional[Path] = None):
    """Run all ``bench(profile)`` hooks.

    Returns ``(results, wall_clock_seconds)``: the :class:`BenchResult`
    list plus a per-module wall-clock dict (with a ``"total"`` key).
    Simulated seconds are the regression-tracked output; wall seconds are
    informational -- they track how fast the *simulator itself* runs, which
    the fast-path work (ARCHITECTURE.md, "Fast paths") optimizes without
    being allowed to move the simulated numbers.
    """
    bench_dir = bench_dir or find_benchmarks_dir()
    # Resolve the optional numpy fast path up front: its (one-time, lazy)
    # import otherwise lands inside whichever module happens to hit a bulk
    # operation first, skewing that row's wall clock.
    from . import fastpath

    fastpath.numpy()
    results = []
    wall: Dict[str, float] = {}
    for module in load_bench_modules(bench_dir):
        hook = getattr(module, "bench", None)
        if hook is None:
            continue
        name = Path(module.__file__).stem
        if only and only not in name:
            continue
        print(f"== {name} (profile={profile}) ==")
        started = time.perf_counter()
        results.extend(hook(profile))
        wall[name] = round(time.perf_counter() - started, 3)
    wall["total"] = round(sum(wall.values()), 3)
    return results, wall


def compare_to_baselines(
    results, baselines: Dict[str, float], tolerance: float
) -> Dict[str, dict]:
    """Per-result regression verdicts against the exact baselines.

    Only slowdowns fail; a speedup (or a result with no baseline yet) is
    reported but never an error -- new benchmarks get baselines when they
    are deliberately checked in.
    """
    comparison: Dict[str, dict] = {}
    for result in results:
        baseline = baselines.get(result.name)
        entry = {
            "measured_s": result.simulated_seconds,
            "baseline_s": baseline,
            "ok": True,
        }
        if baseline is not None and baseline > 0:
            ratio = result.simulated_seconds / baseline
            entry["ratio"] = round(ratio, 4)
            entry["ok"] = ratio <= 1.0 + tolerance
        comparison[result.name] = entry
    return comparison


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Run the paper-claim benchmarks and enforce regression baselines",
    )
    parser.add_argument("--profile", choices=("full", "smoke"), default="full",
                        help="smoke: smaller packs for CI; full: the paper-scale runs")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"JSON report path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--baselines", default=None,
                        help=f"baseline file (default benchmarks/{BASELINES_NAME})")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed slowdown fraction before failing (default 0.20)")
    parser.add_argument("--only", metavar="SUBSTR",
                        help="run only bench modules whose name contains SUBSTR")
    parser.add_argument("--update-baselines", action="store_true",
                        help="rewrite the baseline file from this run instead of checking")
    parser.add_argument("--trace", metavar="PATH",
                        help="record simulated-time spans on every clock and "
                             "write one merged Chrome trace JSON")
    args = parser.parse_args(argv)

    bench_dir = find_benchmarks_dir()
    baselines_path = Path(args.baselines) if args.baselines else bench_dir / BASELINES_NAME

    from .obs import runtime as obs_runtime

    obs_runtime.retain_stats(True)
    if args.trace:
        obs_runtime.enable_trace_all()
    try:
        results, wall_clock = run_benchmarks(args.profile, only=args.only, bench_dir=bench_dir)
        if args.trace:
            trace = obs_runtime.collect_trace()
            Path(args.trace).write_text(
                json.dumps(trace, indent=1, sort_keys=True) + "\n")
            spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
            print(f"\n[trace written to {args.trace}: {spans} spans]")
    finally:
        if args.trace:
            obs_runtime.disable_trace_all()
        obs_runtime.retain_stats(False)
    if not results:
        print("no benchmark results collected")
        return 1

    all_baselines: Dict[str, Dict[str, float]] = {}
    if baselines_path.exists():
        all_baselines = json.loads(baselines_path.read_text())
    baselines = all_baselines.get(args.profile, {})

    if args.update_baselines:
        all_baselines[args.profile] = {
            r.name: r.simulated_seconds for r in results
        }
        baselines_path.write_text(json.dumps(all_baselines, indent=2, sort_keys=True) + "\n")
        print(f"baselines updated: {baselines_path} ({len(results)} entries, "
              f"profile {args.profile})")
        comparison = compare_to_baselines(results, all_baselines[args.profile], args.tolerance)
    else:
        comparison = compare_to_baselines(results, baselines, args.tolerance)

    regressions = [name for name, entry in comparison.items() if not entry["ok"]]
    report = {
        "profile": args.profile,
        "tolerance": args.tolerance,
        "results": [r.to_json() for r in results],
        "baseline_comparison": comparison,
        "regressions": regressions,
        "wall_clock_seconds": wall_clock,
        "ok": not regressions,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    print(f"\n{len(results)} results -> {args.output} "
          f"(wall clock {wall_clock['total']:.1f}s)")
    for result in results:
        entry = comparison[result.name]
        flag = "" if entry["ok"] else "  << REGRESSION"
        base = (f" (baseline {entry['baseline_s']:.3f}s, x{entry['ratio']:.2f})"
                if entry.get("ratio") is not None else " (no baseline)")
        cached = {True: " cache=on", False: " cache=off", None: ""}[result.cached]
        print(f"  {result.name}: {result.simulated_seconds:.3f}s{cached}{base}{flag}")
    if regressions:
        print(f"\nFAIL: {len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%}: {', '.join(regressions)}")
        return 1
    print("\nall benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
