"""The optional-acceleration gate: lazy numpy with a clean fallback.

The bulk fast paths in :mod:`repro.words` (and anything else that wants
vectorized help) never import numpy at module load.  They ask this gate,
which tries the import exactly once, remembers the answer, and can be
forced off -- either by the ``REPRO_NO_NUMPY=1`` environment variable (the
CI "numpy absent" leg) or programmatically by the test suite
(:func:`force_pure_python` / :func:`reset`), which also covers machines
where numpy simply is not installed.

Everything downstream must behave *identically* with and without numpy:
the differential harness in ``tests/equivalence/`` runs both branches and
asserts byte-identical results.  Fast paths therefore use numpy only for
operations whose output is exactly reproducible in pure Python (packing,
unpacking, summing 16-bit words) -- never for anything with float
rounding.
"""

from __future__ import annotations

import os

#: Tri-state: "unknown" until the first query, then the module or None.
_NUMPY = "unknown"

#: When True, :func:`numpy` answers None regardless of installation.
_FORCED_OFF = False


def numpy():
    """The numpy module, or None when unavailable or disabled.

    The import is attempted once and cached; any import failure (missing
    package, broken installation) degrades silently to the pure-Python
    bulk paths.
    """
    global _NUMPY
    if _FORCED_OFF or os.environ.get("REPRO_NO_NUMPY"):
        return None
    if _NUMPY == "unknown":
        try:
            import numpy as np  # deferred: never a hard dependency

            _NUMPY = np
        except Exception:
            _NUMPY = None
    return _NUMPY


def numpy_available() -> bool:
    """True when the numpy fast paths are active."""
    return numpy() is not None


def force_pure_python(flag: bool = True) -> None:
    """Test hook: disable (or re-enable) the numpy branch at runtime."""
    global _FORCED_OFF
    _FORCED_OFF = flag


def reset() -> None:
    """Test hook: forget the cached import so the next query re-probes.

    Used with ``sys.modules`` monkeypatching to simulate an absent numpy
    on a machine that has it installed.
    """
    global _NUMPY, _FORCED_OFF
    _NUMPY = "unknown"
    _FORCED_OFF = False
