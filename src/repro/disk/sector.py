"""Sectors: header, label, value.

Section 3.3: "The physical representation of a page on the disk is called a
sector, and consists of three parts: a header, which contains the disk pack
number ... and the disk address; a label, which contains the seven words
specified in Section 3.1; a value, which contains the 256 data words."

This module defines the word-exact layouts of those three parts.  The label
is the load-bearing structure of the whole system: it is the *absolute*
identity of the page, against which every hint is checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Sequence

from ..words import (
    PAGE_DATA_WORDS,
    WORD_MASK,
    check_word,
    from_double_word,
    ones_words,
    to_double_word,
    zero_words,
)
from .geometry import NIL

#: Words in each sector part.
HEADER_WORDS = 2
LABEL_WORDS = 7
VALUE_WORDS = PAGE_DATA_WORDS

#: Serial number of a free page: freeing writes "ones ... into label and
#: value" (section 3.3), so the all-ones serial means free.
SERIAL_FREE = 0xFFFFFFFF

#: Serial number marking a permanently bad page: "During scavenging any
#: permanently bad pages are marked in the label with a special value so
#: that they will never be used again" (section 3.5).
SERIAL_BAD = 0xFFFFFFFE

#: High-word bit reserved to mark directory files: "we reserve a subset of
#: the file identifiers for directory files" (section 3.4).
DIRECTORY_SERIAL_FLAG = 0x8000_0000

#: Highest serial a normal (allocatable) file may carry; keeps the special
#: values above out of the ordinary namespace.
MAX_ORDINARY_SERIAL = 0xFFFF_FFF0


@dataclass(frozen=True)
class Header:
    """Sector header: pack number and disk address (both hints, H)."""

    pack_id: int
    address: int

    def pack(self) -> List[int]:
        return [check_word(self.pack_id, "pack id"), check_word(self.address, "address")]

    @staticmethod
    def unpack(words: Sequence[int]) -> "Header":
        if len(words) != HEADER_WORDS:
            raise ValueError(f"header needs {HEADER_WORDS} words, got {len(words)}")
        return Header(pack_id=words[0], address=words[1])


@dataclass(frozen=True)
class Label:
    """The seven-word label of section 3.1.

    F (serial, two words) + V (version) + PN (page number) + L (byte length)
    are absolutes (A); NL and PL (next/previous links) are hints (H).
    """

    serial: int = SERIAL_FREE
    version: int = WORD_MASK
    page_number: int = WORD_MASK
    length: int = WORD_MASK
    next_link: int = NIL
    prev_link: int = NIL

    # -- predicates -----------------------------------------------------------

    @property
    def is_free(self) -> bool:
        return self.serial == SERIAL_FREE

    @property
    def is_bad(self) -> bool:
        return self.serial == SERIAL_BAD

    @property
    def in_use(self) -> bool:
        return not self.is_free and not self.is_bad

    @property
    def is_directory(self) -> bool:
        """True when the serial is in the reserved directory subset."""
        return self.in_use and bool(self.serial & DIRECTORY_SERIAL_FLAG)

    @property
    def is_last(self) -> bool:
        """True when this label names the last page of its file."""
        return self.in_use and self.next_link == NIL

    # -- packing --------------------------------------------------------------

    def pack(self) -> List[int]:
        """Serialize to the seven on-disk words."""
        high, low = to_double_word(self.serial)
        return [
            high,
            low,
            check_word(self.version, "version"),
            check_word(self.page_number, "page number"),
            check_word(self.length, "length"),
            check_word(self.next_link, "next link"),
            check_word(self.prev_link, "prev link"),
        ]

    @staticmethod
    def unpack(words: Sequence[int]) -> "Label":
        if len(words) != LABEL_WORDS:
            raise ValueError(f"label needs {LABEL_WORDS} words, got {len(words)}")
        return Label(
            serial=from_double_word(words[0], words[1]),
            version=words[2],
            page_number=words[3],
            length=words[4],
            next_link=words[5],
            prev_link=words[6],
        )

    @staticmethod
    def free() -> "Label":
        """The all-ones label written when a page is freed."""
        return Label.unpack(ones_words(LABEL_WORDS))

    @staticmethod
    def bad() -> "Label":
        """The label marking a permanently bad sector."""
        return Label(serial=SERIAL_BAD, version=WORD_MASK, page_number=WORD_MASK, length=0)

    def with_links(self, next_link: int = None, prev_link: int = None) -> "Label":
        """A copy with one or both links replaced."""
        out = self
        if next_link is not None:
            out = replace(out, next_link=next_link)
        if prev_link is not None:
            out = replace(out, prev_link=prev_link)
        return out

    def absolute_key(self):
        """The absolute name (serial, version, page number) for sorting.

        Section 3.5: the scavenger creates "a list of all the labels not
        marked free and sort[s] it by absolute name."
        """
        return (self.serial, self.version, self.page_number)


@dataclass
class Sector:
    """The full on-disk state of one sector."""

    header: Header
    label: Label = field(default_factory=Label.free)
    value: List[int] = field(default_factory=lambda: ones_words(VALUE_WORDS))

    def __post_init__(self) -> None:
        if len(self.value) != VALUE_WORDS:
            raise ValueError(f"sector value needs {VALUE_WORDS} words, got {len(self.value)}")

    def copy(self) -> "Sector":
        return Sector(header=self.header, label=self.label, value=list(self.value))

    @staticmethod
    def fresh(pack_id: int, address: int) -> "Sector":
        """A factory-fresh (never-written) sector: free label, ones value."""
        return Sector(header=Header(pack_id=pack_id, address=address))


def value_words(data: Sequence[int]) -> List[int]:
    """Pad or validate *data* to exactly one sector value (256 words)."""
    data = list(data)
    if len(data) > VALUE_WORDS:
        raise ValueError(f"value too long: {len(data)} > {VALUE_WORDS}")
    for w in data:
        check_word(w, "value word")
    return data + zero_words(VALUE_WORDS - len(data))
