"""Sectors: header, label, value.

Section 3.3: "The physical representation of a page on the disk is called a
sector, and consists of three parts: a header, which contains the disk pack
number ... and the disk address; a label, which contains the seven words
specified in Section 3.1; a value, which contains the 256 data words."

This module defines the word-exact layouts of those three parts.  The label
is the load-bearing structure of the whole system: it is the *absolute*
identity of the page, against which every hint is checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Sequence

from ..words import (
    PAGE_DATA_WORDS,
    WORD_MASK,
    check_word,
    from_double_word,
    ones_words,
    to_double_word,
    zero_words,
)
from .geometry import NIL

#: Words in each sector part.
HEADER_WORDS = 2
LABEL_WORDS = 7
VALUE_WORDS = PAGE_DATA_WORDS

#: Serial number of a free page: freeing writes "ones ... into label and
#: value" (section 3.3), so the all-ones serial means free.
SERIAL_FREE = 0xFFFFFFFF

#: Serial number marking a permanently bad page: "During scavenging any
#: permanently bad pages are marked in the label with a special value so
#: that they will never be used again" (section 3.5).
SERIAL_BAD = 0xFFFFFFFE

#: High-word bit reserved to mark directory files: "we reserve a subset of
#: the file identifiers for directory files" (section 3.4).
DIRECTORY_SERIAL_FLAG = 0x8000_0000

#: Highest serial a normal (allocatable) file may carry; keeps the special
#: values above out of the ordinary namespace.
MAX_ORDINARY_SERIAL = 0xFFFF_FFF0


@dataclass(frozen=True)
class Header:
    """Sector header: pack number and disk address (both hints, H)."""

    pack_id: int
    address: int

    def pack(self) -> List[int]:
        """Serialize to the two on-disk words (memoized; Header is frozen)."""
        packed = self.__dict__.get("_packed")
        if packed is None:
            packed = [check_word(self.pack_id, "pack id"), check_word(self.address, "address")]
            object.__setattr__(self, "_packed", packed)
        return list(packed)

    @staticmethod
    def unpack(words: Sequence[int]) -> "Header":
        if len(words) != HEADER_WORDS:
            raise ValueError(f"header needs {HEADER_WORDS} words, got {len(words)}")
        # Intern: frozen, and every sweep/restore re-derives the same few
        # hundred (pack, address) pairs (see Label.unpack).
        try:
            key = (words[0], words[1])
            cached = _HEADER_CACHE.get(key)
        except TypeError:
            key = cached = None
        if cached is not None:
            return cached
        header = Header(pack_id=words[0], address=words[1])
        if key is not None:
            if len(_HEADER_CACHE) >= _UNPACK_CACHE_MAX:
                _HEADER_CACHE.clear()
            _HEADER_CACHE[key] = header
        return header


@dataclass(frozen=True)
class Label:
    """The seven-word label of section 3.1.

    F (serial, two words) + V (version) + PN (page number) + L (byte length)
    are absolutes (A); NL and PL (next/previous links) are hints (H).
    """

    serial: int = SERIAL_FREE
    version: int = WORD_MASK
    page_number: int = WORD_MASK
    length: int = WORD_MASK
    next_link: int = NIL
    prev_link: int = NIL

    # -- predicates -----------------------------------------------------------

    @property
    def is_free(self) -> bool:
        return self.serial == SERIAL_FREE

    @property
    def is_bad(self) -> bool:
        return self.serial == SERIAL_BAD

    @property
    def in_use(self) -> bool:
        return not self.is_free and not self.is_bad

    @property
    def is_directory(self) -> bool:
        """True when the serial is in the reserved directory subset."""
        return self.in_use and bool(self.serial & DIRECTORY_SERIAL_FLAG)

    @property
    def is_last(self) -> bool:
        """True when this label names the last page of its file."""
        return self.in_use and self.next_link == NIL

    # -- packing --------------------------------------------------------------

    def pack(self) -> List[int]:
        """Serialize to the seven on-disk words (memoized; Label is frozen)."""
        packed = self.__dict__.get("_packed")
        if packed is None:
            serial = self.serial
            version = self.version
            page_number = self.page_number
            length = self.length
            next_link = self.next_link
            prev_link = self.prev_link
            if (type(serial) is int and 0 <= serial <= 0xFFFFFFFF
                    and type(version) is int and 0 <= version <= WORD_MASK
                    and type(page_number) is int and 0 <= page_number <= WORD_MASK
                    and type(length) is int and 0 <= length <= WORD_MASK
                    and type(next_link) is int and 0 <= next_link <= WORD_MASK
                    and type(prev_link) is int and 0 <= prev_link <= WORD_MASK):
                packed = [serial >> 16, serial & WORD_MASK, version,
                          page_number, length, next_link, prev_link]
            else:
                # Out-of-range or non-int fields raise exactly as always.
                high, low = to_double_word(serial)
                packed = [
                    high,
                    low,
                    check_word(version, "version"),
                    check_word(page_number, "page number"),
                    check_word(length, "length"),
                    check_word(next_link, "next link"),
                    check_word(prev_link, "prev link"),
                ]
            object.__setattr__(self, "_packed", packed)
        return list(packed)

    @staticmethod
    def unpack(words: Sequence[int]) -> "Label":
        if len(words) != LABEL_WORDS:
            raise ValueError(f"label needs {LABEL_WORDS} words, got {len(words)}")
        # Intern: Label is frozen, so identical on-disk words can share one
        # object (a sweep unpacks the same few thousand labels over and
        # over).  Unhashable words fall through to plain construction.
        try:
            key = tuple(words)
            cached = _UNPACK_CACHE.get(key)
        except TypeError:
            key = cached = None
        if cached is not None:
            return cached
        label = Label(
            serial=from_double_word(words[0], words[1]),
            version=words[2],
            page_number=words[3],
            length=words[4],
            next_link=words[5],
            prev_link=words[6],
        )
        if key is not None:
            # Seed the pack() memo only when round-tripping is exact (all
            # plain in-range words); otherwise pack() must keep raising.
            if all(type(w) is int and 0 <= w <= WORD_MASK for w in key):
                label.__dict__["_packed"] = list(key)
            if len(_UNPACK_CACHE) >= _UNPACK_CACHE_MAX:
                _UNPACK_CACHE.clear()
            _UNPACK_CACHE[key] = label
        return label

    @staticmethod
    def free() -> "Label":
        """The all-ones label written when a page is freed.

        Returns a shared singleton: Label is frozen, so every fresh or
        freed sector can carry the same object (pack formatting creates
        thousands at once).
        """
        return _FREE_LABEL

    @staticmethod
    def bad() -> "Label":
        """The label marking a permanently bad sector."""
        return Label(serial=SERIAL_BAD, version=WORD_MASK, page_number=WORD_MASK, length=0)

    def with_links(self, next_link: int = None, prev_link: int = None) -> "Label":
        """A copy with one or both links replaced."""
        if next_link is None and prev_link is None:
            return self
        return Label(
            serial=self.serial,
            version=self.version,
            page_number=self.page_number,
            length=self.length,
            next_link=self.next_link if next_link is None else next_link,
            prev_link=self.prev_link if prev_link is None else prev_link,
        )

    def absolute_key(self):
        """The absolute name (serial, version, page number) for sorting.

        Section 3.5: the scavenger creates "a list of all the labels not
        marked free and sort[s] it by absolute name."
        """
        return (self.serial, self.version, self.page_number)


#: Interned labels/headers by their exact packed words (see the
#: ``unpack`` methods).
_UNPACK_CACHE: dict = {}
_HEADER_CACHE: dict = {}
_UNPACK_CACHE_MAX = 8192

#: The shared free label (see :meth:`Label.free`).
_FREE_LABEL = Label(
    serial=SERIAL_FREE,
    version=WORD_MASK,
    page_number=WORD_MASK,
    length=WORD_MASK,
    next_link=NIL,
    prev_link=NIL,
)


class Sector:
    """The full on-disk state of one sector.

    Internally the header and label are held as their *packed word lists*
    -- what the platter actually stores and what the drive's per-part
    commands move -- with the ``Header``/``Label`` object views
    materialized lazily and cached.  ``sector.header`` / ``sector.label``
    read and assign exactly as before; the drive's hot paths use
    :meth:`header_words` / :meth:`label_words` and skip object
    construction entirely.  The two representations are kept in lockstep:
    writing either one invalidates the other's cache.
    """

    __slots__ = ("_header_obj", "_header_words", "_label_obj", "_label_words", "value")

    def __init__(self, header: Header, label: Label = None, value: List[int] = None) -> None:
        self._header_obj = header
        self._header_words = None
        self._label_obj = label if label is not None else _FREE_LABEL
        self._label_words = None
        if value is None:
            value = ones_words(VALUE_WORDS)
        elif len(value) != VALUE_WORDS:
            raise ValueError(f"sector value needs {VALUE_WORDS} words, got {len(value)}")
        self.value = value

    # -- object views (cached) -----------------------------------------------

    @property
    def header(self) -> Header:
        obj = self._header_obj
        if obj is None:
            obj = self._header_obj = Header.unpack(self._header_words)
        return obj

    @header.setter
    def header(self, header: Header) -> None:
        self._header_obj = header
        self._header_words = None

    @property
    def label(self) -> Label:
        obj = self._label_obj
        if obj is None:
            obj = self._label_obj = Label.unpack(self._label_words)
        return obj

    @label.setter
    def label(self, label: Label) -> None:
        self._label_obj = label
        self._label_words = None

    # -- packed views (what the head reads and writes) ------------------------

    def header_words(self) -> List[int]:
        """The packed header, as stored.  The drive treats the returned
        list as read-only; replace it only through :meth:`set_header_words`."""
        packed = self._header_words
        if packed is None:
            packed = self._header_words = self._header_obj.pack()
        return packed

    def label_words(self) -> List[int]:
        """The packed label, as stored (read-only; see :meth:`set_label_words`)."""
        packed = self._label_words
        if packed is None:
            packed = self._label_words = self._label_obj.pack()
        return packed

    def set_header_words(self, data: List[int]) -> None:
        """Install *data* (length-validated by the caller) as the header."""
        self._header_words = data
        self._header_obj = None

    def set_label_words(self, data: List[int]) -> None:
        """Install *data* as the label.

        Suspect words (out of range, or not ints at all) are routed through
        ``Label.unpack`` so a bad write fails -- or, for the fields unpack
        historically left unchecked, succeeds -- exactly as the object path
        did."""
        try:
            suspect = min(data) < 0 or max(data) > WORD_MASK
        except TypeError:
            suspect = True
        if suspect:
            self._label_obj = Label.unpack(data)
            self._label_words = None
            return
        self._label_words = data
        self._label_obj = None

    # -- copying ---------------------------------------------------------------

    def copy(self) -> "Sector":
        """A deep copy (value words fresh; frozen objects shared)."""
        clone = Sector.__new__(Sector)
        clone._header_obj = self._header_obj
        clone._header_words = list(self._header_words) if self._header_words is not None else None
        clone._label_obj = self._label_obj
        clone._label_words = list(self._label_words) if self._label_words is not None else None
        clone.value = list(self.value)
        return clone

    @staticmethod
    def fresh(pack_id: int, address: int) -> "Sector":
        """A factory-fresh (never-written) sector: free label, ones value.

        Pack formatting creates one per sector in a tight loop, so in-range
        inputs install the packed header words directly; anything else goes
        through the ``Header`` object, whose ``pack()`` raises exactly
        where it always did.
        """
        sector = Sector.__new__(Sector)
        if (type(pack_id) is int and 0 <= pack_id <= WORD_MASK
                and type(address) is int and 0 <= address <= WORD_MASK):
            sector._header_obj = None
            sector._header_words = [pack_id, address]
        else:
            sector._header_obj = Header(pack_id=pack_id, address=address)
            sector._header_words = None
        sector._label_obj = _FREE_LABEL
        sector._label_words = None
        sector.value = [WORD_MASK] * VALUE_WORDS
        return sector

    def __repr__(self) -> str:
        return f"Sector(header={self.header!r}, label={self.label!r}, value=<{len(self.value)} words>)"


def value_words(data: Sequence[int]) -> List[int]:
    """Pad or validate *data* to exactly one sector value (256 words)."""
    data = list(data)
    if len(data) > VALUE_WORDS:
        raise ValueError(f"value too long: {len(data)} > {VALUE_WORDS}")
    if data:
        try:
            out_of_range = min(data) < 0 or max(data) > WORD_MASK
        except TypeError:
            out_of_range = True  # non-int present: find it below
        if out_of_range:
            for w in data:
                check_word(w, "value word")
    return data + zero_words(VALUE_WORDS - len(data))
