"""The simulated Alto disk: geometry, sectors, drive, timing, faults.

This package is the hardware substrate beneath the file system of
sections 3.1-3.3 of the paper.  It exposes exactly the contract the paper
relies on: per-part sector commands (read / check / write on header, label,
value independently), the 0-wildcard check semantics, and a seek/rotation
timing model calibrated to the Diablo Model 31.
"""

from .cache import CACHE_HIT_US, DEFAULT_CACHE_SECTORS, CachedDrive, CacheStats
from .drive import MAX_READ_RETRIES, Action, DiskDrive, PartCommand, TransferResult
from .faults import FaultInjector, FaultPlan
from .geometry import NIL, DiskShape, diablo31, diablo44, tiny_test_disk
from .image import DiskImage
from .sector import (
    DIRECTORY_SERIAL_FLAG,
    HEADER_WORDS,
    LABEL_WORDS,
    SERIAL_BAD,
    SERIAL_FREE,
    VALUE_WORDS,
    Header,
    Label,
    Sector,
    value_words,
)
from .timing import ROTATION, SEEK, TRANSFER, ArmTimer
from .trace import TRACE_POINTS, DiskTrace, TraceRecord, check_point, point_name

from .scheduler import RequestScheduler, SchedulerStats

__all__ = [
    "Action",
    "ArmTimer",
    "CACHE_HIT_US",
    "CachedDrive",
    "CacheStats",
    "DEFAULT_CACHE_SECTORS",
    "DIRECTORY_SERIAL_FLAG",
    "DiskDrive",
    "RequestScheduler",
    "SchedulerStats",
    "DiskImage",
    "DiskShape",
    "DiskTrace",
    "TraceRecord",
    "TRACE_POINTS",
    "FaultInjector",
    "FaultPlan",
    "HEADER_WORDS",
    "MAX_READ_RETRIES",
    "Header",
    "LABEL_WORDS",
    "Label",
    "NIL",
    "PartCommand",
    "ROTATION",
    "SEEK",
    "SERIAL_BAD",
    "SERIAL_FREE",
    "Sector",
    "TRANSFER",
    "TransferResult",
    "VALUE_WORDS",
    "check_point",
    "diablo31",
    "diablo44",
    "point_name",
    "tiny_test_disk",
    "value_words",
]
