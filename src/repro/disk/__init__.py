"""The simulated Alto disk: geometry, sectors, drive, timing, faults.

This package is the hardware substrate beneath the file system of
sections 3.1-3.3 of the paper.  It exposes exactly the contract the paper
relies on: per-part sector commands (read / check / write on header, label,
value independently), the 0-wildcard check semantics, and a seek/rotation
timing model calibrated to the Diablo Model 31.
"""

from .drive import Action, DiskDrive, PartCommand, TransferResult
from .faults import FaultInjector
from .geometry import NIL, DiskShape, diablo31, diablo44, tiny_test_disk
from .image import DiskImage
from .sector import (
    DIRECTORY_SERIAL_FLAG,
    HEADER_WORDS,
    LABEL_WORDS,
    SERIAL_BAD,
    SERIAL_FREE,
    VALUE_WORDS,
    Header,
    Label,
    Sector,
    value_words,
)
from .timing import ROTATION, SEEK, TRANSFER, ArmTimer
from .trace import DiskTrace, TraceRecord

__all__ = [
    "Action",
    "ArmTimer",
    "DIRECTORY_SERIAL_FLAG",
    "DiskDrive",
    "DiskImage",
    "DiskShape",
    "DiskTrace",
    "TraceRecord",
    "FaultInjector",
    "HEADER_WORDS",
    "Header",
    "LABEL_WORDS",
    "Label",
    "NIL",
    "PartCommand",
    "ROTATION",
    "SEEK",
    "SERIAL_BAD",
    "SERIAL_FREE",
    "Sector",
    "TRANSFER",
    "TransferResult",
    "VALUE_WORDS",
    "diablo31",
    "diablo44",
    "tiny_test_disk",
    "value_words",
]
