"""The simulated drive: per-part sector commands with hardware semantics.

Section 3.3: "A single disk operation can perform read, check or write
actions independently on each of these parts [header, label, value], with
the restriction that once a write is begun, it must continue through the
rest of the sector.  A check action compares data on the disk with
corresponding data taken from memory, word by word, and aborts the entire
operation if they don't match.  If a memory word is 0, however, it is
replaced by the corresponding disk word, so that a check action is a simple
kind of pattern match."

The drive is policy-free: it knows nothing about files, allocation, or the
label-write discipline.  Those live in ``repro.fs``.  What the drive does
enforce is the hardware contract above, plus the timing model of
``timing.ArmTimer``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..clock import SimClock
from ..obs import CounterAttr, MetricsRegistry
from ..errors import (
    BadSectorError,
    CheckError,
    LabelCheckError,
    ReadRetriesExhausted,
    SectorChecksumError,
    TransientReadError,
)
from .image import DiskImage
from .sector import HEADER_WORDS, LABEL_WORDS, VALUE_WORDS, Header, Label, Sector
from .timing import ROTATION, ArmTimer


class Action(enum.Enum):
    """What to do with one part of a sector during a command."""

    NONE = "none"
    READ = "read"
    CHECK = "check"
    WRITE = "write"


#: Part names in the order they pass under the head.
PART_ORDER = ("header", "label", "value")
_PART_SIZES = {"header": HEADER_WORDS, "label": LABEL_WORDS, "value": VALUE_WORDS}


def merge_check(expected, disk_words):
    """The check action's compare-and-merge, as a bulk operation.

    Same contract as :func:`repro.reference.merge_check_reference` (the
    word-at-a-time twin the equivalence suite pins this against): returns
    ``(effective, None)`` on success, ``(None, (index, want, have))`` at
    the first non-wildcard mismatch.

    The dominant case -- a label check against exactly what the platter
    holds -- is one C-level list comparison.  Wildcards and mismatches
    drop to the reference loop, whose cost only matters on the failure
    path.
    """
    if type(expected) is not list:
        expected = list(expected)
    if expected == disk_words:
        return list(disk_words), None
    if 0 in expected:
        # Wildcard merge in one comprehension; on success every non-zero
        # word matched, so the merge equals the disk prefix.  A mismatch
        # (rare: it is the failure path) reruns the reference loop to find
        # the first offending index.
        merged = [have if want == 0 else want
                  for want, have in zip(expected, disk_words)]
        if merged == (disk_words if len(merged) == len(disk_words)
                      else list(disk_words[: len(merged)])):
            return merged, None
        from ..reference import merge_check_reference

        return merge_check_reference(expected, disk_words)
    for i, (want, have) in enumerate(zip(expected, disk_words)):
        if want != have:
            return None, (i, want, have)
    # Only reachable when the buffers differ in length: mirror the
    # reference's zip semantics (effective covers the common prefix).
    return list(disk_words[: len(expected)]), None

def _parts_summary(commands: dict) -> str:
    """Compact ``header:read,label:check`` form for span annotations."""
    return ",".join(
        f"{part}:{command.action.value}"
        for part, command in commands.items()
        if command.action is not Action.NONE
    )


#: Default bounded retry budget for transient read errors: a marginal read
#: is retried on later revolutions with linearly growing backoff; past the
#: budget the typed :class:`~repro.errors.ReadRetriesExhausted` surfaces.
MAX_READ_RETRIES = 4


@dataclass(slots=True)
class PartCommand:
    """One part's action and (for CHECK/WRITE) its memory buffer."""

    action: Action = Action.NONE
    data: Optional[List[int]] = None

    def __post_init__(self) -> None:
        if self.action in (Action.CHECK, Action.WRITE) and self.data is None:
            raise ValueError(f"{self.action.value} requires a data buffer")


#: Shared default for parts a transfer does not touch (never mutated).
_NO_ACTION = PartCommand()

#: Static (part, action, data) shapes for the read-only convenience
#: commands (READ carries no buffer, so these are fully constant).
_READ_ALL_PARTS = (
    ("header", Action.READ, None),
    ("label", Action.READ, None),
    ("value", Action.READ, None),
)
_READ_LABEL_PARTS = (("label", Action.READ, None),)
_READ_LABEL_VALUE_PARTS = (
    ("label", Action.READ, None),
    ("value", Action.READ, None),
)

#: Shared READ command (a READ carries no buffer and is never mutated).
_READ_CMD = PartCommand(Action.READ)


@dataclass(slots=True)
class TransferResult:
    """Buffers produced by a command: disk contents for each READ or CHECK
    part (a CHECK buffer has its 0-wildcards replaced by disk words)."""

    header: Optional[List[int]] = None
    label: Optional[List[int]] = None
    value: Optional[List[int]] = None

    def label_object(self) -> Label:
        if self.label is None:
            raise ValueError("label was not read by this transfer")
        return Label.unpack(self.label)

    def header_object(self) -> Header:
        if self.header is None:
            raise ValueError("header was not read by this transfer")
        return Header.unpack(self.header)


class DriveStats:
    """Operation counts kept by the drive (benchmarks decompose costs here).

    A thin view over ``disk.drive.*`` counters in a per-drive
    :class:`~repro.obs.MetricsRegistry`; increments roll up into the
    clock-level registry at ``clock.obs.registry``, so drives sharing a
    clock sum there while each drive's own numbers stay separate.
    """

    _FIELDS = ("commands", "label_checks", "label_check_failures",
               "label_writes", "value_reads", "value_writes",
               "transient_read_errors", "read_retries")

    commands = CounterAttr("disk.drive.commands")
    label_checks = CounterAttr("disk.drive.label_checks")
    label_check_failures = CounterAttr("disk.drive.label_check_failures")
    label_writes = CounterAttr("disk.drive.label_writes")
    value_reads = CounterAttr("disk.drive.value_reads")
    value_writes = CounterAttr("disk.drive.value_writes")
    transient_read_errors = CounterAttr("disk.drive.transient_read_errors")
    read_retries = CounterAttr("disk.drive.read_retries")

    def __init__(self, parent: Optional[MetricsRegistry] = None) -> None:
        self.registry = MetricsRegistry(parent=parent)
        for field in self._FIELDS:
            self.registry.counter(type(self).__dict__[field].metric)

    def snapshot(self) -> dict:
        return {field: getattr(self, field) for field in self._FIELDS}


class DiskDrive:
    """One spindle holding one pack, exposing the per-part command interface."""

    def __init__(
        self,
        image: DiskImage,
        clock: Optional[SimClock] = None,
        fault_injector=None,
        max_read_retries: int = MAX_READ_RETRIES,
    ) -> None:
        self.image = image
        self.clock = clock if clock is not None else SimClock()
        self.timer = ArmTimer(image.shape, self.clock)
        self.stats = DriveStats(parent=self.clock.obs.registry)
        self.fault_injector = fault_injector
        self.max_read_retries = max_read_retries
        #: Optional observer (see :class:`repro.disk.trace.DiskTrace`).
        self.trace = None
        #: Optional durability observer: called as ``tap(address, part, data)``
        #: after every part-write lands on the platter (never for torn
        #: writes -- the injector raises before the tap).  This is the
        #: replication journal's capture point (:mod:`repro.server.replica`).
        self.journal_tap = None
        # Direct references to the stats counters: the per-command hot path
        # increments these a few times per sector and must not re-run the
        # descriptor-protocol read-modify-write of ``stats.x += 1``.  Both
        # routes mutate the same Counter objects (and their mirrors).
        # True when this instance uses the base per-part implementations,
        # letting _process_parts read sector storage without the method
        # dispatch.  Any override (ReferenceDrive's word-at-a-time loops)
        # turns the inlining off and everything routes through the methods.
        cls = type(self)
        self._plain_parts = (
            cls._get_part is DiskDrive._get_part
            and cls._check_part is DiskDrive._check_part
            and cls._write_part is DiskDrive._write_part
        )
        registry = self.stats.registry
        self._c_commands = registry.counter("disk.drive.commands")
        self._c_label_checks = registry.counter("disk.drive.label_checks")
        self._c_label_check_failures = registry.counter("disk.drive.label_check_failures")
        self._c_label_writes = registry.counter("disk.drive.label_writes")
        self._c_value_reads = registry.counter("disk.drive.value_reads")
        self._c_value_writes = registry.counter("disk.drive.value_writes")
        self._c_transient_read_errors = registry.counter("disk.drive.transient_read_errors")
        self._c_read_retries = registry.counter("disk.drive.read_retries")

    @property
    def shape(self):
        return self.image.shape

    # ------------------------------------------------------------------------
    # The fundamental command
    # ------------------------------------------------------------------------

    def transfer(
        self,
        address: int,
        header: PartCommand = None,
        label: PartCommand = None,
        value: PartCommand = None,
    ) -> TransferResult:
        """Execute one sector command.

        Positions the arm and head (charging seek + rotation), then processes
        header, label, and value in passing order, charging one sector time.
        A failed CHECK aborts the remaining parts -- in particular a write
        scheduled *after* the check never happens, "so that a subsequent
        write operation can be aborted before anything is written, without
        taking an extra revolution" (section 3.3).

        Transient read errors (dust, marginal signal -- injected through the
        fault plan) are absorbed here: the pass is retried with linearly
        growing rotational backoff, up to ``max_read_retries`` times.  The
        write-continuation rule means writes are always a suffix of the
        parts, so an aborted pass has written nothing and the retry is safe.
        Past the budget, :class:`~repro.errors.ReadRetriesExhausted` surfaces
        to the caller with the last transient error chained.
        """
        # Validate continuation and flatten to (part, action, data) triples
        # in one pass; the dict of PartCommands is only materialized for the
        # observed paths (trace, span, fault injector) that take it.
        parts = []
        writing = False
        for part, command in (("header", header), ("label", label), ("value", value)):
            action = Action.NONE if command is None else command.action
            if writing and action is not Action.WRITE:
                raise ValueError(
                    f"write begun before {part} must continue: {part} may not be {action.value}"
                )
            if action is Action.WRITE:
                writing = True
            if action is not Action.NONE:
                parts.append((part, action, command.data))
        self.shape.check_address(address)

        obs = self.clock.obs
        if obs.tracing or self.trace is not None:
            commands = {
                "header": header if header is not None else _NO_ACTION,
                "label": label if label is not None else _NO_ACTION,
                "value": value if value is not None else _NO_ACTION,
            }
            if obs.tracing:
                with obs.span("disk.transfer", "disk", address=address,
                              cylinder=self.shape.decompose(address)[0],
                              parts=_parts_summary(commands)):
                    return self._execute(address, parts, commands)
            return self._execute(address, parts, commands)
        return self._execute(address, parts, None)

    def _execute(self, address: int, parts: list,
                 commands: Optional[dict] = None) -> TransferResult:
        """The transfer body, after validation (span-wrapped when tracing)."""
        self._c_commands.inc(1)
        self.timer.position_and_transfer(address)
        if self.trace is not None:
            self.trace.record(self, address, commands)

        if address in self.image.bad_media:
            raise BadSectorError(f"unrecoverable media error at address {address}")
        if self.fault_injector is not None:
            self.fault_injector.before_parts(self, address, parts)

        attempt = 0
        while True:
            try:
                return self._process_parts(address, parts)
            except TransientReadError as exc:
                attempt += 1
                self._c_transient_read_errors.inc(1)
                if attempt > self.max_read_retries:
                    raise ReadRetriesExhausted(address, attempt) from exc
                self._c_read_retries.inc(1)
                self._retry_backoff(attempt)

    def _process_parts(self, address: int, parts: list) -> TransferResult:
        """One pass over the sector: parts in head order."""
        injector = self.fault_injector
        hook = getattr(injector, "before_part", None) if injector is not None else None
        # transfer() validated the address before any time was charged;
        # index the platter directly rather than re-validating per pass.
        sector = self.image._sectors[address]
        if sector is None:
            sector = self.image._materialize(address)
        checksum_bad = self.image.checksum_bad
        plain = self._plain_parts
        result = TransferResult()
        for part, action, data in parts:
            if hook is not None:
                hook(self, address, part, action.value)
            if plain:
                # The base part implementations, inlined (same storage
                # reads _get_part performs; overrides disable `plain`).
                if part == "value":
                    disk_words = sector.value
                elif part == "label":
                    disk_words = sector.label_words()
                else:
                    disk_words = sector.header_words()
            else:
                disk_words = self._get_part(sector, part)
            if action is Action.WRITE:
                self._write_part(sector, address, part, data)
                if checksum_bad:
                    checksum_bad.discard((address, part))
                if part == "label":
                    self._c_label_writes.inc(1)
                elif part == "value":
                    self._c_value_writes.inc(1)
            else:
                # A part a torn write left half-written fails its checksum on
                # every read until something writes it afresh.
                if checksum_bad and (address, part) in checksum_bad:
                    raise SectorChecksumError(address, part)
                if action is Action.READ:
                    buffer = list(disk_words)
                else:
                    buffer = self._check_part(address, part, data, disk_words)
                if part == "value":
                    result.value = buffer
                    self._c_value_reads.inc(1)
                elif part == "label":
                    result.label = buffer
                else:
                    result.header = buffer
        return result

    def _retry_backoff(self, attempt: int) -> None:
        """Wait out *attempt* extra revolutions, then re-read the sector."""
        rotation_us = round(self.shape.rotation_ms * 1000)
        self.clock.advance_us(attempt * rotation_us, ROTATION)
        self.timer.transfer_sector()

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _validate_write_continuation(commands: dict) -> None:
        """Enforce "once a write is begun, it must continue through the rest
        of the sector"."""
        writing = False
        for part in PART_ORDER:
            action = commands[part].action
            if writing and action is not Action.WRITE:
                raise ValueError(
                    f"write begun before {part} must continue: {part} may not be {action.value}"
                )
            if action is Action.WRITE:
                writing = True

    def _get_part(self, sector: Sector, part: str) -> List[int]:
        """The part's packed words, straight from the sector's storage.

        The returned list is the sector's own (callers copy before
        mutating; READ and CHECK results are built as fresh lists).
        Reference twin: ``repro.reference.make_reference_drive``, which
        re-packs through the object views on every access.
        """
        if part == "header":
            return sector.header_words()
        if part == "label":
            return sector.label_words()
        return sector.value

    def _check_part(
        self, address: int, part: str, expected: Sequence[int], disk_words: Sequence[int]
    ) -> List[int]:
        """Pattern match via :func:`merge_check`; 0 in memory is a wildcard."""
        if len(expected) != _PART_SIZES[part]:
            raise ValueError(f"{part} check buffer must be {_PART_SIZES[part]} words")
        effective, mismatch = merge_check(expected, disk_words)
        if mismatch is not None:
            i, want, have = mismatch
            if part == "label":
                self._c_label_checks.inc(1)
                self._c_label_check_failures.inc(1)
                raise LabelCheckError(i, want, have)
            raise CheckError(part, i, want, have)
        if part == "label":
            self._c_label_checks.inc(1)
        return effective

    def _write_part(self, sector: Sector, address: int, part: str, data: Sequence[int]) -> None:
        if len(data) != _PART_SIZES[part]:
            raise ValueError(f"{part} write buffer must be {_PART_SIZES[part]} words")
        data = list(data)
        if self.fault_injector is not None:
            # The injector may hand back a list it also keeps; re-copy so
            # the sector never aliases anything outside the platter.
            data = list(self.fault_injector.filter_write(self, address, part, data))
        if part == "header":
            sector.set_header_words(data)
        elif part == "label":
            sector.set_label_words(data)
        else:
            sector.value = data
        if self.journal_tap is not None:
            self.journal_tap(address, part, data)

    # ------------------------------------------------------------------------
    # Convenience commands (each is exactly one hardware command)
    # ------------------------------------------------------------------------
    #
    # Each shapes a statically valid command (write-continuation holds by
    # construction), so on a plain DiskDrive with neither a tracer nor an
    # active span collection the PartCommand packaging and transfer()
    # re-validation add nothing: address check + _execute is the identical
    # computation.  A fault injector rides the direct route too -- it
    # observes the flattened (part, action, data) triples, which the
    # static shapes below already are.  Subclasses (CachedDrive intercepts
    # transfer; ReferenceDrive replays the slow loops) and traced drives
    # always take the full route.

    def _direct(self) -> bool:
        return (type(self) is DiskDrive
                and self.trace is None and not self.clock.obs.tracing)

    def read_sector(self, address: int) -> TransferResult:
        """Read header, label, and value in one pass."""
        if self._direct():
            self.shape.check_address(address)
            return self._execute(address, _READ_ALL_PARTS)
        return self.transfer(
            address, header=_READ_CMD, label=_READ_CMD, value=_READ_CMD
        )

    def read_label(self, address: int) -> Label:
        """Read just the label (the scavenger's sweep primitive)."""
        if self._direct():
            self.shape.check_address(address)
            return self._execute(address, _READ_LABEL_PARTS).label_object()
        return self.transfer(address, label=_READ_CMD).label_object()

    def read_label_value(self, address: int) -> TransferResult:
        """Read the label and value in one pass (the sweep's per-sector
        command: both ride the same revolution, section 3.5)."""
        if self._direct():
            self.shape.check_address(address)
            return self._execute(address, _READ_LABEL_VALUE_PARTS)
        return self.transfer(address, label=_READ_CMD, value=_READ_CMD)

    def check_label(self, address: int, expected: Label) -> TransferResult:
        """Check just the label; the result's label buffer has the pattern's
        0-wildcards replaced by the disk words (the first pass of the
        change-length sequence)."""
        if self._direct():
            self.shape.check_address(address)
            return self._execute(address, (("label", Action.CHECK, expected.pack()),))
        return self.transfer(address, label=PartCommand(Action.CHECK, expected.pack()))

    def write_label_value(self, address: int, label: Label, value: Sequence[int]) -> None:
        """Write the label and value with no preceding check (the second
        pass of the change-length sequence; the first pass did the check)."""
        if self._direct():
            self.shape.check_address(address)
            self._execute(address, (
                ("label", Action.WRITE, label.pack()),
                ("value", Action.WRITE, value),
            ))
            return
        self.transfer(
            address,
            label=PartCommand(Action.WRITE, label.pack()),
            value=PartCommand(Action.WRITE, list(value)),
        )

    def check_label_read_value(self, address: int, expected: Label) -> TransferResult:
        """Ordinary page read: confirm identity, then take the data.

        One pass; raises :class:`LabelCheckError` when the hint is stale.
        """
        if self._direct():
            self.shape.check_address(address)
            return self._execute(address, (
                ("label", Action.CHECK, expected.pack()),
                ("value", Action.READ, None),
            ))
        return self.transfer(
            address,
            label=PartCommand(Action.CHECK, expected.pack()),
            value=PartCommand(Action.READ),
        )

    def check_label_write_value(
        self, address: int, expected: Label, value: Sequence[int]
    ) -> TransferResult:
        """Ordinary page write: "On any other write the label is checked, at
        no cost in time" (section 3.3).  One pass; aborts before writing when
        the check fails."""
        if self._direct():
            self.shape.check_address(address)
            return self._execute(address, (
                ("label", Action.CHECK, expected.pack()),
                ("value", Action.WRITE, value),
            ))
        return self.transfer(
            address,
            label=PartCommand(Action.CHECK, expected.pack()),
            value=PartCommand(Action.WRITE, list(value)),
        )

    def check_label_then_rewrite(
        self,
        address: int,
        expected: Label,
        new_label: Label,
        value: Optional[Sequence[int]] = None,
    ) -> None:
        """Check the label, then rewrite the label (and optionally the value).

        This is the allocate/free/change-length primitive.  The label has
        already passed under the head when the check completes, so rewriting
        it requires a second pass -- one full revolution later.  The timing
        model charges that revolution automatically (section 3.3: "This
        scheme costs a disk revolution each time a page is allocated or
        freed").
        """
        if self._direct():
            self.shape.check_address(address)
            self._execute(address, (("label", Action.CHECK, expected.pack()),))
            self._execute(address, (
                ("label", Action.WRITE, new_label.pack()),
                # Once a write begins it must continue through the sector,
                # so a label rewrite alone still rewrites the value with its
                # current contents (the hardware streams it back out).
                ("value", Action.WRITE,
                 value if value is not None else self.current_value(address)),
            ))
            return
        self.transfer(address, label=PartCommand(Action.CHECK, expected.pack()))
        parts = {"label": PartCommand(Action.WRITE, new_label.pack())}
        if value is not None:
            parts["value"] = PartCommand(Action.WRITE, list(value))
        else:
            parts["value"] = PartCommand(Action.WRITE, self.current_value(address))
        self.transfer(address, **parts)

    def current_value(self, address: int) -> List[int]:
        """The logically current data words of *address* -- what a value
        READ through this drive would return.  The plain drive answers from
        the platter; a caching drive (:class:`repro.disk.cache.CachedDrive`)
        answers from its buffer when a write is pending, so a label rewrite
        that streams the value back out never resurrects stale words."""
        return list(self.image.sector(address).value)

    def write_header_label_value(
        self, address: int, header: Header, label: Label, value: Sequence[int]
    ) -> None:
        """Full sector format (used only by pack formatting and the
        compacting scavenger, which owns the whole disk)."""
        if self._direct():
            self.shape.check_address(address)
            self._execute(address, (
                ("header", Action.WRITE, header.pack()),
                ("label", Action.WRITE, label.pack()),
                ("value", Action.WRITE, value),
            ))
            return
        self.transfer(
            address,
            header=PartCommand(Action.WRITE, header.pack()),
            label=PartCommand(Action.WRITE, label.pack()),
            value=PartCommand(Action.WRITE, list(value)),
        )
