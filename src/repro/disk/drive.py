"""The simulated drive: per-part sector commands with hardware semantics.

Section 3.3: "A single disk operation can perform read, check or write
actions independently on each of these parts [header, label, value], with
the restriction that once a write is begun, it must continue through the
rest of the sector.  A check action compares data on the disk with
corresponding data taken from memory, word by word, and aborts the entire
operation if they don't match.  If a memory word is 0, however, it is
replaced by the corresponding disk word, so that a check action is a simple
kind of pattern match."

The drive is policy-free: it knows nothing about files, allocation, or the
label-write discipline.  Those live in ``repro.fs``.  What the drive does
enforce is the hardware contract above, plus the timing model of
``timing.ArmTimer``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..clock import SimClock
from ..obs import CounterAttr, MetricsRegistry
from ..errors import (
    BadSectorError,
    CheckError,
    LabelCheckError,
    ReadRetriesExhausted,
    SectorChecksumError,
    TransientReadError,
)
from .image import DiskImage
from .sector import HEADER_WORDS, LABEL_WORDS, VALUE_WORDS, Header, Label, Sector
from .timing import ROTATION, ArmTimer


class Action(enum.Enum):
    """What to do with one part of a sector during a command."""

    NONE = "none"
    READ = "read"
    CHECK = "check"
    WRITE = "write"


#: Part names in the order they pass under the head.
PART_ORDER = ("header", "label", "value")
_PART_SIZES = {"header": HEADER_WORDS, "label": LABEL_WORDS, "value": VALUE_WORDS}

def _parts_summary(commands: dict) -> str:
    """Compact ``header:read,label:check`` form for span annotations."""
    return ",".join(
        f"{part}:{command.action.value}"
        for part, command in commands.items()
        if command.action is not Action.NONE
    )


#: Default bounded retry budget for transient read errors: a marginal read
#: is retried on later revolutions with linearly growing backoff; past the
#: budget the typed :class:`~repro.errors.ReadRetriesExhausted` surfaces.
MAX_READ_RETRIES = 4


@dataclass
class PartCommand:
    """One part's action and (for CHECK/WRITE) its memory buffer."""

    action: Action = Action.NONE
    data: Optional[List[int]] = None

    def __post_init__(self) -> None:
        if self.action in (Action.CHECK, Action.WRITE) and self.data is None:
            raise ValueError(f"{self.action.value} requires a data buffer")


@dataclass
class TransferResult:
    """Buffers produced by a command: disk contents for each READ or CHECK
    part (a CHECK buffer has its 0-wildcards replaced by disk words)."""

    header: Optional[List[int]] = None
    label: Optional[List[int]] = None
    value: Optional[List[int]] = None

    def label_object(self) -> Label:
        if self.label is None:
            raise ValueError("label was not read by this transfer")
        return Label.unpack(self.label)

    def header_object(self) -> Header:
        if self.header is None:
            raise ValueError("header was not read by this transfer")
        return Header.unpack(self.header)


class DriveStats:
    """Operation counts kept by the drive (benchmarks decompose costs here).

    A thin view over ``disk.drive.*`` counters in a per-drive
    :class:`~repro.obs.MetricsRegistry`; increments roll up into the
    clock-level registry at ``clock.obs.registry``, so drives sharing a
    clock sum there while each drive's own numbers stay separate.
    """

    _FIELDS = ("commands", "label_checks", "label_check_failures",
               "label_writes", "value_reads", "value_writes",
               "transient_read_errors", "read_retries")

    commands = CounterAttr("disk.drive.commands")
    label_checks = CounterAttr("disk.drive.label_checks")
    label_check_failures = CounterAttr("disk.drive.label_check_failures")
    label_writes = CounterAttr("disk.drive.label_writes")
    value_reads = CounterAttr("disk.drive.value_reads")
    value_writes = CounterAttr("disk.drive.value_writes")
    transient_read_errors = CounterAttr("disk.drive.transient_read_errors")
    read_retries = CounterAttr("disk.drive.read_retries")

    def __init__(self, parent: Optional[MetricsRegistry] = None) -> None:
        self.registry = MetricsRegistry(parent=parent)
        for field in self._FIELDS:
            self.registry.counter(type(self).__dict__[field].metric)

    def snapshot(self) -> dict:
        return {field: getattr(self, field) for field in self._FIELDS}


class DiskDrive:
    """One spindle holding one pack, exposing the per-part command interface."""

    def __init__(
        self,
        image: DiskImage,
        clock: Optional[SimClock] = None,
        fault_injector=None,
        max_read_retries: int = MAX_READ_RETRIES,
    ) -> None:
        self.image = image
        self.clock = clock if clock is not None else SimClock()
        self.timer = ArmTimer(image.shape, self.clock)
        self.stats = DriveStats(parent=self.clock.obs.registry)
        self.fault_injector = fault_injector
        self.max_read_retries = max_read_retries
        #: Optional observer (see :class:`repro.disk.trace.DiskTrace`).
        self.trace = None

    @property
    def shape(self):
        return self.image.shape

    # ------------------------------------------------------------------------
    # The fundamental command
    # ------------------------------------------------------------------------

    def transfer(
        self,
        address: int,
        header: PartCommand = None,
        label: PartCommand = None,
        value: PartCommand = None,
    ) -> TransferResult:
        """Execute one sector command.

        Positions the arm and head (charging seek + rotation), then processes
        header, label, and value in passing order, charging one sector time.
        A failed CHECK aborts the remaining parts -- in particular a write
        scheduled *after* the check never happens, "so that a subsequent
        write operation can be aborted before anything is written, without
        taking an extra revolution" (section 3.3).

        Transient read errors (dust, marginal signal -- injected through the
        fault plan) are absorbed here: the pass is retried with linearly
        growing rotational backoff, up to ``max_read_retries`` times.  The
        write-continuation rule means writes are always a suffix of the
        parts, so an aborted pass has written nothing and the retry is safe.
        Past the budget, :class:`~repro.errors.ReadRetriesExhausted` surfaces
        to the caller with the last transient error chained.
        """
        commands = {
            "header": header if header is not None else PartCommand(),
            "label": label if label is not None else PartCommand(),
            "value": value if value is not None else PartCommand(),
        }
        self._validate_write_continuation(commands)
        self.shape.check_address(address)

        obs = self.clock.obs
        if obs.tracing:
            with obs.span("disk.transfer", "disk", address=address,
                          cylinder=self.shape.decompose(address)[0],
                          parts=_parts_summary(commands)):
                return self._execute(address, commands)
        return self._execute(address, commands)

    def _execute(self, address: int, commands: dict) -> TransferResult:
        """The transfer body, after validation (span-wrapped when tracing)."""
        self.stats.commands += 1
        self.timer.position_for(address)
        self.timer.transfer_sector()
        if self.trace is not None:
            self.trace.record(self, address, commands)

        if address in self.image.bad_media:
            raise BadSectorError(f"unrecoverable media error at address {address}")
        if self.fault_injector is not None:
            self.fault_injector.before_parts(self, address, commands)

        attempt = 0
        while True:
            try:
                return self._process_parts(address, commands)
            except TransientReadError as exc:
                attempt += 1
                self.stats.transient_read_errors += 1
                if attempt > self.max_read_retries:
                    raise ReadRetriesExhausted(address, attempt) from exc
                self.stats.read_retries += 1
                self._retry_backoff(attempt)

    def _process_parts(self, address: int, commands: dict) -> TransferResult:
        """One pass over the sector: parts in head order."""
        hook = getattr(self.fault_injector, "before_part", None)
        sector = self.image.sector(address)
        result = TransferResult()
        for part in PART_ORDER:
            command = commands[part]
            if command.action is Action.NONE:
                continue
            if hook is not None:
                hook(self, address, part, command.action.value)
            disk_words = self._get_part(sector, part)
            if command.action in (Action.READ, Action.CHECK):
                # A part a torn write left half-written fails its checksum on
                # every read until something writes it afresh.
                if (address, part) in self.image.checksum_bad:
                    raise SectorChecksumError(address, part)
            if command.action is Action.READ:
                setattr(result, part, list(disk_words))
                self._count(part, reading=True)
            elif command.action is Action.CHECK:
                effective = self._check_part(address, part, command.data, disk_words)
                setattr(result, part, effective)
                self._count(part, reading=True)
            elif command.action is Action.WRITE:
                self._write_part(sector, address, part, command.data)
                self.image.checksum_bad.discard((address, part))
                self._count(part, reading=False)
        return result

    def _retry_backoff(self, attempt: int) -> None:
        """Wait out *attempt* extra revolutions, then re-read the sector."""
        rotation_us = round(self.shape.rotation_ms * 1000)
        self.clock.advance_us(attempt * rotation_us, ROTATION)
        self.timer.transfer_sector()

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _validate_write_continuation(commands: dict) -> None:
        """Enforce "once a write is begun, it must continue through the rest
        of the sector"."""
        writing = False
        for part in PART_ORDER:
            action = commands[part].action
            if writing and action is not Action.WRITE:
                raise ValueError(
                    f"write begun before {part} must continue: {part} may not be {action.value}"
                )
            if action is Action.WRITE:
                writing = True

    def _get_part(self, sector: Sector, part: str) -> List[int]:
        if part == "header":
            return sector.header.pack()
        if part == "label":
            return sector.label.pack()
        return sector.value

    def _check_part(
        self, address: int, part: str, expected: Sequence[int], disk_words: Sequence[int]
    ) -> List[int]:
        """Word-by-word pattern match; 0 in memory is a wildcard."""
        if len(expected) != _PART_SIZES[part]:
            raise ValueError(f"{part} check buffer must be {_PART_SIZES[part]} words")
        effective = []
        for i, (want, have) in enumerate(zip(expected, disk_words)):
            if want == 0:
                effective.append(have)
                continue
            if want != have:
                if part == "label":
                    self.stats.label_checks += 1
                    self.stats.label_check_failures += 1
                    raise LabelCheckError(i, want, have)
                raise CheckError(part, i, want, have)
            effective.append(have)
        if part == "label":
            self.stats.label_checks += 1
        return effective

    def _write_part(self, sector: Sector, address: int, part: str, data: Sequence[int]) -> None:
        if len(data) != _PART_SIZES[part]:
            raise ValueError(f"{part} write buffer must be {_PART_SIZES[part]} words")
        data = list(data)
        if self.fault_injector is not None:
            data = self.fault_injector.filter_write(self, address, part, data)
        if part == "header":
            sector.header = Header.unpack(data)
        elif part == "label":
            sector.label = Label.unpack(data)
        else:
            sector.value = list(data)

    def _count(self, part: str, reading: bool) -> None:
        if part == "label" and not reading:
            self.stats.label_writes += 1
        elif part == "value":
            if reading:
                self.stats.value_reads += 1
            else:
                self.stats.value_writes += 1

    # ------------------------------------------------------------------------
    # Convenience commands (each is exactly one hardware command)
    # ------------------------------------------------------------------------

    def read_sector(self, address: int) -> TransferResult:
        """Read header, label, and value in one pass."""
        return self.transfer(
            address,
            header=PartCommand(Action.READ),
            label=PartCommand(Action.READ),
            value=PartCommand(Action.READ),
        )

    def read_label(self, address: int) -> Label:
        """Read just the label (the scavenger's sweep primitive)."""
        return self.transfer(address, label=PartCommand(Action.READ)).label_object()

    def check_label_read_value(self, address: int, expected: Label) -> TransferResult:
        """Ordinary page read: confirm identity, then take the data.

        One pass; raises :class:`LabelCheckError` when the hint is stale.
        """
        return self.transfer(
            address,
            label=PartCommand(Action.CHECK, expected.pack()),
            value=PartCommand(Action.READ),
        )

    def check_label_write_value(
        self, address: int, expected: Label, value: Sequence[int]
    ) -> TransferResult:
        """Ordinary page write: "On any other write the label is checked, at
        no cost in time" (section 3.3).  One pass; aborts before writing when
        the check fails."""
        return self.transfer(
            address,
            label=PartCommand(Action.CHECK, expected.pack()),
            value=PartCommand(Action.WRITE, list(value)),
        )

    def check_label_then_rewrite(
        self,
        address: int,
        expected: Label,
        new_label: Label,
        value: Optional[Sequence[int]] = None,
    ) -> None:
        """Check the label, then rewrite the label (and optionally the value).

        This is the allocate/free/change-length primitive.  The label has
        already passed under the head when the check completes, so rewriting
        it requires a second pass -- one full revolution later.  The timing
        model charges that revolution automatically (section 3.3: "This
        scheme costs a disk revolution each time a page is allocated or
        freed").
        """
        self.transfer(address, label=PartCommand(Action.CHECK, expected.pack()))
        parts = {"label": PartCommand(Action.WRITE, new_label.pack())}
        if value is not None:
            parts["value"] = PartCommand(Action.WRITE, list(value))
        else:
            # Once a write begins it must continue through the sector, so a
            # label rewrite alone still rewrites the value with its current
            # contents (the hardware streams it back out).
            parts["value"] = PartCommand(Action.WRITE, self.current_value(address))
        self.transfer(address, **parts)

    def current_value(self, address: int) -> List[int]:
        """The logically current data words of *address* -- what a value
        READ through this drive would return.  The plain drive answers from
        the platter; a caching drive (:class:`repro.disk.cache.CachedDrive`)
        answers from its buffer when a write is pending, so a label rewrite
        that streams the value back out never resurrects stale words."""
        return list(self.image.sector(address).value)

    def write_header_label_value(
        self, address: int, header: Header, label: Label, value: Sequence[int]
    ) -> None:
        """Full sector format (used only by pack formatting and the
        compacting scavenger, which owns the whole disk)."""
        self.transfer(
            address,
            header=PartCommand(Action.WRITE, header.pack()),
            label=PartCommand(Action.WRITE, label.pack()),
            value=PartCommand(Action.WRITE, list(value)),
        )
