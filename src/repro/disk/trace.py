"""Disk-activity tracing: what the arm actually did.

Attach a ``DiskTrace`` to a drive to record every sector command -- when it
started (simulated time), where the arm went, which parts were read,
checked, or written.  The summaries answer the questions the paper's
design reasons about: how far did the arm travel, how many revolutions were
spent waiting, how sequential was the access pattern.

Tracing is pure observation: it never changes timing or behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Named trace points: one per (part, action) pair the drive can perform.
#: Fault plans (see :mod:`repro.disk.faults`) address crash points by these
#: names, e.g. ``"label:write"`` = the moment a label write reaches the head.
TRACE_POINTS = tuple(
    f"{part}:{action}"
    for part in ("header", "label", "value")
    for action in ("read", "check", "write")
)


def point_name(part: str, action: str) -> str:
    """The canonical trace-point name for one part action."""
    return f"{part}:{action}"


def check_point(name: str) -> str:
    """Validate a trace-point name; returns it unchanged or raises."""
    if name not in TRACE_POINTS:
        raise ValueError(f"unknown trace point {name!r}; one of {', '.join(TRACE_POINTS)}")
    return name


@dataclass(frozen=True)
class TraceRecord:
    """One sector command."""

    time_us: int
    address: int
    cylinder: int
    actions: Tuple[Tuple[str, str], ...]  # ((part, action), ...)

    def did(self, part: str, action: str) -> bool:
        return (part, action) in self.actions

    def points(self) -> Tuple[str, ...]:
        """The named trace points this command passed through."""
        return tuple(point_name(part, action) for part, action in self.actions)


class DiskTrace:
    """Records commands issued to one drive.

    Install with :meth:`attach`; the drive calls :meth:`record` from its
    command path (via the ``trace`` attribute).
    """

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    # -- wiring --------------------------------------------------------------------

    def attach(self, drive) -> "DiskTrace":
        drive.trace = self
        return self

    @staticmethod
    def detach(drive) -> None:
        drive.trace = None

    def record(self, drive, address: int, commands: dict) -> None:
        actions = tuple(
            (part, command.action.value)
            for part, command in commands.items()
            if command.action.value != "none"
        )
        self.records.append(
            TraceRecord(
                time_us=drive.clock.now_us,
                address=address,
                cylinder=drive.shape.cylinder_of(address),
                actions=actions,
            )
        )

    def clear(self) -> None:
        self.records.clear()

    # -- summaries --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def commands_by_part_action(self) -> Dict[Tuple[str, str], int]:
        out: Dict[Tuple[str, str], int] = {}
        for record in self.records:
            for key in record.actions:
                out[key] = out.get(key, 0) + 1
        return out

    def point_counts(self) -> Dict[str, int]:
        """How many times each named trace point was passed."""
        return {
            point_name(part, action): count
            for (part, action), count in self.commands_by_part_action().items()
        }

    def arm_travel(self) -> int:
        """Total cylinders of arm movement across the trace."""
        travel = 0
        for previous, current in zip(self.records, self.records[1:]):
            travel += abs(current.cylinder - previous.cylinder)
        return travel

    def seek_count(self) -> int:
        return sum(
            1
            for previous, current in zip(self.records, self.records[1:])
            if current.cylinder != previous.cylinder
        )

    def sequentiality(self) -> float:
        """Fraction of consecutive commands hitting address+1 -- 1.0 for a
        perfect sweep, ~0.0 for random access."""
        if len(self.records) < 2:
            return 1.0
        hits = sum(
            1
            for previous, current in zip(self.records, self.records[1:])
            if current.address == previous.address + 1
        )
        return hits / (len(self.records) - 1)

    def hottest_addresses(self, count: int = 5) -> List[Tuple[int, int]]:
        """The most-visited addresses as (address, visits)."""
        visits: Dict[int, int] = {}
        for record in self.records:
            visits[record.address] = visits.get(record.address, 0) + 1
        return sorted(visits.items(), key=lambda kv: (-kv[1], kv[0]))[:count]

    def span_us(self) -> int:
        if not self.records:
            return 0
        return self.records[-1].time_us - self.records[0].time_us

    def summary(self) -> str:
        by = self.commands_by_part_action()
        reads = sum(n for (p, a), n in by.items() if a in ("read", "check"))
        writes = sum(n for (p, a), n in by.items() if a == "write")
        return (
            f"{len(self.records)} commands over {self.span_us() / 1e6:.2f}s: "
            f"{reads} part-reads/checks, {writes} part-writes, "
            f"{self.seek_count()} seeks ({self.arm_travel()} cylinders), "
            f"sequentiality {self.sequentiality():.0%}"
        )
