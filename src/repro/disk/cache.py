"""A write-back sector cache above the policy-free drive.

The paper's drive (section 3.3) executes one label-checked command per
revolution-ride; every layer above it pays raw per-sector latency.  This
module adds the classic buffer-cache layer between ``repro.fs`` and the
drive: recently used sectors are kept in memory, ordinary data writes are
buffered and written back in elevator order through a
:class:`~repro.disk.scheduler.RequestScheduler`, and repeated reads of a
working set cost memory time instead of revolutions.

The crash guarantees of sections 3.3-3.5 rest on the *order* in which
labels reach the platter: a page's label (its absolute identity) commits
before or together with the data it guards, and the allocate / free /
change-length label rewrites happen in program order.  The cache preserves
that discipline by construction:

* **Label writes are never deferred.**  Any command that writes a header or
  label -- claim, free, change-length, format, scavenger repair -- goes
  straight through to the drive, in program order, exactly as without the
  cache.  (The hardware's write-continuation rule means such a command
  always carries its value too, so the data a label guards lands with it.)
* **Only ordinary data writes are buffered** (the section 3.3 "label is
  checked, at no cost in time" single-pass write).  Reordering those among
  themselves is harmless: losing one in a crash leaves the page's previous
  contents under an unchanged label, one of the states an uncrashed
  execution could also have produced -- the scavenger and the
  prefix-consistency invariant of :mod:`repro.fs.check` already cover it.
* **The cache itself is a hint.**  Every cached label is re-checked against
  the caller's expectation in memory with the hardware's exact wildcard
  semantics; a failed check on a clean entry drops the entry and retries
  against the platter, which remains the only absolute truth.

A flush writes ``CHECK(cached label) + WRITE(value)`` -- the same one-pass
guarded write the uncached path would have issued, so a stale or corrupted
platter can never be silently overwritten.

Coherency is per-drive: all traffic through one ``CachedDrive`` sees its
own buffered writes.  A second drive on the same image (a scavenger after a
crash, a foreign mount) must flush-and-invalidate first -- which
:class:`~repro.fs.scavenger.Scavenger` does, and which a crash does for
free (the buffer dies with the machine; only the platter survives).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from ..clock import SimClock
from ..obs import CounterAttr, MetricsRegistry
from ..errors import CheckError, LabelCheckError, PowerFailure
from .drive import (MAX_READ_RETRIES, Action, DiskDrive, PartCommand,
                    TransferResult, _NO_ACTION)
from .image import DiskImage
from .scheduler import RequestScheduler
from .sector import VALUE_WORDS

#: Default cache size in sectors.  128 sectors is 32k data words plus
#: bookkeeping -- half the real machine's memory, the upper end of what a
#: resident buffer pool could plausibly have claimed.
DEFAULT_CACHE_SECTORS = 128

#: Simulated cost of serving one command from memory: a few hundred
#: word-moves at the machine's 800 ns memory cycle.
CACHE_HIT_US = 200

#: Clock tally category for time spent in cache hits.
CACHE = "disk.cache"


class CacheEntry:
    """One cached sector: whatever parts have been seen, plus dirt and pins."""

    __slots__ = ("header", "label", "value", "dirty", "pins")

    def __init__(self) -> None:
        self.header: Optional[List[int]] = None
        self.label: Optional[List[int]] = None
        self.value: Optional[List[int]] = None
        self.dirty = False
        self.pins = 0

    def has(self, part: str) -> bool:
        return getattr(self, part) is not None


class CacheStats:
    """Hit/miss/flush counters (benchmarks report these).

    A thin view over ``disk.cache.*`` counters in a per-cache
    :class:`~repro.obs.MetricsRegistry`, rolled up into the clock-level
    registry so ``python -m repro stats`` sees them alongside everything
    else.
    """

    _FIELDS = ("hits", "misses", "deferred_writes", "write_through",
               "flushes", "evictions", "invalidations", "cancelled_writes",
               "overflows")

    hits = CounterAttr("disk.cache.hits")
    misses = CounterAttr("disk.cache.misses")
    deferred_writes = CounterAttr("disk.cache.deferred_writes")
    write_through = CounterAttr("disk.cache.write_through")  # structural pass-downs
    flushes = CounterAttr("disk.cache.flushes")
    evictions = CounterAttr("disk.cache.evictions")
    invalidations = CounterAttr("disk.cache.invalidations")
    cancelled_writes = CounterAttr("disk.cache.cancelled_writes")  # superseded
    overflows = CounterAttr("disk.cache.overflows")  # pins forced past capacity

    def __init__(self, parent: Optional[MetricsRegistry] = None) -> None:
        self.registry = MetricsRegistry(parent=parent)
        for field in self._FIELDS:
            self.registry.counter(type(self).__dict__[field].metric)

    def hit_rate(self) -> float:
        served = self.hits + self.misses
        return self.hits / served if served else 0.0

    def snapshot(self) -> dict:
        out = {field: getattr(self, field) for field in self._FIELDS}
        out["hit_rate"] = self.hit_rate()
        return out


class CachedDrive(DiskDrive):
    """A drive with an LRU write-back sector cache and an elevator queue.

    Drop-in for :class:`~repro.disk.drive.DiskDrive`: the whole per-part
    command interface works unchanged, ``stats`` still counts real disk
    commands only, and with ``cache_sectors=0`` every command passes
    through untouched.  ``flush()`` drains the dirty queue in elevator
    order; :meth:`repro.fs.filesystem.FileSystem.sync` calls it.
    """

    def __init__(
        self,
        image: DiskImage,
        clock: Optional[SimClock] = None,
        fault_injector=None,
        max_read_retries: int = MAX_READ_RETRIES,
        cache_sectors: int = DEFAULT_CACHE_SECTORS,
        hit_cost_us: int = CACHE_HIT_US,
    ) -> None:
        super().__init__(image, clock, fault_injector, max_read_retries)
        self.cache_sectors = cache_sectors
        self.hit_cost_us = hit_cost_us
        self.cache_stats = CacheStats(parent=self.clock.obs.registry)
        self.scheduler = RequestScheduler(
            image.shape, parent_registry=self.clock.obs.registry)
        self._drain_hist = self.cache_stats.registry.histogram(
            "disk.cache.drain_sectors")
        self._entries: "OrderedDict[int, CacheEntry]" = OrderedDict()

    # ------------------------------------------------------------------------
    # The command choke point
    # ------------------------------------------------------------------------

    def transfer(
        self,
        address: int,
        header: PartCommand = None,
        label: PartCommand = None,
        value: PartCommand = None,
    ) -> TransferResult:
        commands = {
            "header": header if header is not None else _NO_ACTION,
            "label": label if label is not None else _NO_ACTION,
            "value": value if value is not None else _NO_ACTION,
        }
        self._validate_write_continuation(commands)
        self.shape.check_address(address)
        if self.cache_sectors <= 0:
            return self._pass_through(address, commands)
        if commands["header"].action is Action.WRITE or commands["label"].action is Action.WRITE:
            return self._structural(address, commands)
        if commands["value"].action is Action.WRITE:
            if commands["header"].action is Action.NONE:
                return self._deferred_write(address, commands)
            return self._pass_through(address, commands)
        return self._read(address, commands)

    # ------------------------------------------------------------------------
    # Write-through: label-path commands
    # ------------------------------------------------------------------------

    def _structural(self, address: int, commands: dict) -> TransferResult:
        """A command that writes a header or label: the crash discipline
        lives here, so it goes to the platter now, in program order.

        The write-continuation rule guarantees the command also writes the
        value, so any buffered data write for this sector is superseded --
        cancelled, not flushed (flushing first would write data the very
        next pass overwrites, a pass the uncached path never made).
        """
        entry = self._entries.get(address)
        if entry is not None and entry.dirty:
            entry.dirty = False
            self.scheduler.discard(address)
            self.cache_stats.cancelled_writes += 1
        self.cache_stats.write_through += 1
        return self._pass_through(address, commands)

    def _pass_through(self, address: int, commands: dict) -> TransferResult:
        """Issue the command on the real drive, then refresh the cache from
        what the platter now provably holds."""
        result = DiskDrive.transfer(
            self,
            address,
            header=commands["header"],
            label=commands["label"],
            value=commands["value"],
        )
        if self.cache_sectors > 0:
            self._install(address, commands, result)
        return result

    # ------------------------------------------------------------------------
    # Write-back: ordinary data writes
    # ------------------------------------------------------------------------

    def _deferred_write(self, address: int, commands: dict) -> TransferResult:
        """The section 3.3 single-pass guarded data write, buffered.

        The label check runs now, in memory, against the cached label; the
        data lands in the entry and is queued for write-back.  The flush
        re-issues the same guarded one-pass write, so nothing is ever
        written to the platter unchecked.
        """
        self._require_uncrashed()
        entry = self._entries.get(address)
        if (
            entry is None
            or entry.label is None
            or address in self.image.bad_media
            or (address, "label") in self.image.checksum_bad
        ):
            # Cold (or suspect) sector: the first write costs the same
            # guarded pass it would cost uncached, and warms the cache.
            return self._pass_through(address, commands)
        self._touch(address)
        result = TransferResult()
        label_cmd = commands["label"]
        if label_cmd.action is Action.CHECK:
            try:
                result.label = self._check_part(address, "label", label_cmd.data, entry.label)
            except (LabelCheckError, CheckError):
                if entry.dirty:
                    raise  # buffered data under a label we no longer trust
                self._drop(address)  # the cache was the stale hint; ask the platter
                return self._pass_through(address, commands)
        data = commands["value"].data
        if len(data) != VALUE_WORDS:
            raise ValueError(f"value write buffer must be {VALUE_WORDS} words")
        entry.value = list(data)
        if not entry.dirty:
            entry.dirty = True
        self.scheduler.enqueue(address)
        self.cache_stats.deferred_writes += 1
        self.cache_stats.hits += 1
        with self.clock.obs.span("disk.cache.hit", "disk",
                                 address=address, op="write"):
            self.clock.advance_us(self.hit_cost_us, CACHE)
        return result

    # ------------------------------------------------------------------------
    # Reads and checks
    # ------------------------------------------------------------------------

    def _read(self, address: int, commands: dict) -> TransferResult:
        needed = [part for part in ("header", "label", "value") if commands[part].action is not Action.NONE]
        entry = self._entries.get(address)
        servable = (
            entry is not None
            and all(entry.has(part) for part in needed)
            and address not in self.image.bad_media
            and not any((address, part) in self.image.checksum_bad for part in needed)
        )
        if not servable:
            self.cache_stats.misses += 1
            return self._pass_through(address, commands)
        self._require_uncrashed()
        self._touch(address)
        result = TransferResult()
        for part in needed:
            cached = getattr(entry, part)
            if commands[part].action is Action.READ:
                setattr(result, part, list(cached))
            else:  # CHECK, with the hardware's exact wildcard semantics
                try:
                    effective = self._check_part(address, part, commands[part].data, cached)
                except (LabelCheckError, CheckError):
                    if entry.dirty:
                        raise
                    self._drop(address)
                    self.cache_stats.misses += 1
                    return self._pass_through(address, commands)
                setattr(result, part, effective)
        self.cache_stats.hits += 1
        with self.clock.obs.span("disk.cache.hit", "disk",
                                 address=address, op="read"):
            self.clock.advance_us(self.hit_cost_us, CACHE)
        return result

    # ------------------------------------------------------------------------
    # Flushing (write-back through the elevator)
    # ------------------------------------------------------------------------

    def flush(self) -> int:
        """Write back every dirty sector, serviced in elevator order.

        Returns the number of sectors written.  A failure (power, torn
        write, check mismatch) propagates with the unserviced tail still
        queued -- exactly the state a crashed controller leaves behind.
        """
        flushed = 0
        with self.clock.obs.span("disk.cache.flush", "disk") as span:
            while True:
                address = self.scheduler.next_address(self.timer.cylinder)
                if address is None:
                    break
                self.flush_address(address)
                flushed += 1
            span.annotate(drained=flushed)
        self._drain_hist.observe(flushed)
        return flushed

    def flush_address(self, address: int) -> None:
        """Write back one sector now (no-op if it is not dirty)."""
        entry = self._entries.get(address)
        if entry is None or not entry.dirty:
            self.scheduler.discard(address)
            return
        DiskDrive.transfer(
            self,
            address,
            label=PartCommand(Action.CHECK, list(entry.label)),
            value=PartCommand(Action.WRITE, list(entry.value)),
        )
        entry.dirty = False
        self.scheduler.mark_serviced(address)
        self.cache_stats.flushes += 1

    def dirty_addresses(self) -> List[int]:
        return self.scheduler.pending()

    # ------------------------------------------------------------------------
    # Pinning and invalidation
    # ------------------------------------------------------------------------

    def pin(self, address: int) -> None:
        """Exempt a sector from eviction (refcounted).  Hot singletons --
        the disk descriptor leader, the root directory -- stay resident."""
        self.shape.check_address(address)
        entry = self._entries.get(address)
        if entry is None:
            entry = self._insert(address)
        entry.pins += 1

    def unpin(self, address: int) -> None:
        entry = self._entries.get(address)
        if entry is not None and entry.pins > 0:
            entry.pins -= 1

    def invalidate(self, address: int) -> None:
        """Drop a sector from the cache, buffered data and all.

        For sectors whose contents became moot (a freed page) or whose
        cached copy is suspected stale (a hint-failure retry path).
        """
        if self._drop(address):
            self.cache_stats.invalidations += 1

    def invalidate_all(self) -> None:
        """Drop everything, *including unflushed writes* -- what a power
        failure does.  Live callers wanting durability flush first (see
        :meth:`flush_and_invalidate`).  Pin counts survive as empty
        placeholders: pinning is a residency promise, not cached data."""
        self.cache_stats.invalidations += len(self._entries)
        pinned = {a: e.pins for a, e in self._entries.items() if e.pins > 0}
        self._entries.clear()
        for address, pins in pinned.items():
            placeholder = CacheEntry()
            placeholder.pins = pins
            self._entries[address] = placeholder
        for address in self.scheduler.pending():
            self.scheduler.discard(address)

    def flush_and_invalidate(self) -> None:
        """Make the platter absolute again: write everything back, then
        forget it.  The scavenger calls this before sweeping."""
        self.flush()
        self.invalidate_all()

    # ------------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------------

    def cached_sectors(self) -> int:
        return len(self._entries)

    def cache_counters(self) -> Dict[str, object]:
        """Cache + scheduler counters in one dict (for benchmarks/JSON)."""
        out = {f"cache_{k}": v for k, v in self.cache_stats.snapshot().items()}
        out.update({f"queue_{k}": v for k, v in self.scheduler.stats.snapshot().items()})
        out["cached_sectors"] = len(self._entries)
        return out

    # ------------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------------

    def _require_uncrashed(self) -> None:
        """Memory-served commands must still die with the machine."""
        injector = self.fault_injector
        if injector is not None and getattr(injector, "crashed", False):
            raise PowerFailure(
                f"machine is down ({injector.crash_reason}); revive() to reboot"
            )

    def _touch(self, address: int) -> None:
        self._entries.move_to_end(address)

    def _drop(self, address: int) -> bool:
        """Forget a sector's cached parts; a pin survives as a placeholder."""
        entry = self._entries.pop(address, None)
        self.scheduler.discard(address)
        if entry is not None and entry.pins > 0:
            placeholder = CacheEntry()
            placeholder.pins = entry.pins
            self._entries[address] = placeholder
        return entry is not None

    def _insert(self, address: int) -> CacheEntry:
        entry = self._entries.get(address)
        if entry is not None:
            self._touch(address)
            return entry
        # Evict down to capacity (pins may have held us above it earlier).
        while len(self._entries) >= self.cache_sectors:
            if not self._evict_one():
                break
        entry = CacheEntry()
        self._entries[address] = entry
        return entry

    def _evict_one(self) -> bool:
        """Evict the least recently used unpinned entry, flushing it first
        if dirty.  All pinned: grow past capacity rather than deadlock."""
        for address, entry in self._entries.items():
            if entry.pins == 0:
                if entry.dirty:
                    self.flush_address(address)
                del self._entries[address]
                self.scheduler.discard(address)
                self.cache_stats.evictions += 1
                return True
        self.cache_stats.overflows += 1
        return False

    def _install(self, address: int, commands: dict, result: TransferResult) -> None:
        """Refresh the cache from a completed disk command: READ/CHECK
        parts from the transfer result, written parts from the platter."""
        entry = self._insert(address)
        wrote = False
        for part in ("header", "label", "value"):
            action = commands[part].action
            if action in (Action.READ, Action.CHECK):
                setattr(entry, part, list(getattr(result, part)))
            elif action is Action.WRITE:
                wrote = True
                setattr(entry, part, self._platter_words(address, part))
        if wrote:
            entry.dirty = False
            self.scheduler.discard(address)

    def _platter_words(self, address: int, part: str) -> List[int]:
        """A fresh copy of a part's packed words straight from the platter
        (the cache entry owns its lists, so it must not alias the sector's)."""
        sector = self.image.sector(address)
        if part == "header":
            return list(sector.header_words())
        if part == "label":
            return list(sector.label_words())
        return list(sector.value)

    # ------------------------------------------------------------------------
    # The current-value hook (see DiskDrive.current_value)
    # ------------------------------------------------------------------------

    def current_value(self, address: int) -> List[int]:
        """The logically current data words: buffered copy if one is
        pending, else the platter."""
        entry = self._entries.get(address)
        if entry is not None and entry.dirty and entry.value is not None:
            return list(entry.value)
        return list(self.image.sector(address).value)
