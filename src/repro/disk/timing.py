"""Seek and rotational latency model.

The drive charges three kinds of simulated time against the shared clock:

* ``disk.seek``     -- arm movement between cylinders,
* ``disk.rotation`` -- waiting for the target sector to come under the head,
* ``disk.transfer`` -- one sector time per sector actually transferred.

Rotational position is derived from the clock itself (the platter spins
whether or not anyone is looking), so two back-to-back operations on the
same sector naturally cost one full revolution of waiting -- which is
exactly the paper's "this scheme costs a disk revolution each time a page
is allocated or freed" (section 3.3): allocate and free must check the old
label and then *rewrite the label*, and the label has already passed under
the head by the time the check completes.
"""

from __future__ import annotations

from ..clock import MICROSECONDS_PER_MILLISECOND, SimClock
from .geometry import DiskShape

SEEK = "disk.seek"
ROTATION = "disk.rotation"
TRANSFER = "disk.transfer"


class ArmTimer:
    """Tracks arm position and charges seek/rotation/transfer time."""

    def __init__(self, shape: DiskShape, clock: SimClock) -> None:
        self.shape = shape
        self.clock = clock
        self.cylinder = 0
        self.seeks = 0
        self.sectors_transferred = 0
        # Shape-derived constants, precomputed: these feed every sector
        # command and must not pay float round-trips per call.
        self._rotation_us_cached = round(shape.rotation_ms * MICROSECONDS_PER_MILLISECOND)
        self._sector_us_cached = round(shape.sector_time_ms() * MICROSECONDS_PER_MILLISECOND)

    # -- internal helpers -------------------------------------------------------

    def _rotation_us(self) -> int:
        return self._rotation_us_cached

    def _sector_us(self) -> int:
        return self._sector_us_cached

    def rotational_position_us(self) -> int:
        """Microseconds into the current platter revolution."""
        return self.clock.now_us % self._rotation_us()

    # -- charging ---------------------------------------------------------------

    def seek_to(self, cylinder: int) -> None:
        """Move the arm, charging seek time (zero if already there)."""
        if cylinder != self.cylinder:
            self.clock.advance_ms(self.shape.seek_time_ms(self.cylinder, cylinder), SEEK)
            self.cylinder = cylinder
            self.seeks += 1

    def wait_for_sector(self, sector: int) -> None:
        """Spin until *sector*'s leading edge is under the head."""
        target_us = sector * self._sector_us_cached
        position_us = self.clock.now_us % self._rotation_us_cached
        wait_us = (target_us - position_us) % self._rotation_us_cached
        self.clock.advance_us(wait_us, ROTATION)

    def transfer_sector(self) -> None:
        """Charge one sector time of transfer."""
        self.clock.advance_us(self._sector_us_cached, TRANSFER)
        self.sectors_transferred += 1

    def position_for(self, address: int) -> None:
        """Seek + rotational wait for the sector at *address*.

        The address was validated by the caller (the drive validates every
        command's address before charging time), so the decomposition here
        skips re-validation.
        """
        cylinder, rest = divmod(address, self.shape._per_cylinder)
        self.seek_to(cylinder)
        self.wait_for_sector(rest % self.shape.sectors_per_track)

    def position_and_transfer(self, address: int) -> None:
        """:meth:`position_for` + :meth:`transfer_sector`, fused.

        The per-command charging sequence of the drive's hot path: seek,
        rotational wait, one sector of transfer -- identical microseconds
        and tally categories, one call instead of four.
        """
        shape = self.shape
        cylinder, rest = divmod(address, shape._per_cylinder)
        if cylinder != self.cylinder:
            self.clock.advance_ms(shape.seek_time_ms(self.cylinder, cylinder), SEEK)
            self.cylinder = cylinder
            self.seeks += 1
        clock = self.clock
        rotation_us = self._rotation_us_cached
        sector_us = self._sector_us_cached
        target_us = (rest % shape.sectors_per_track) * sector_us
        wait_us = (target_us - clock._now_us % rotation_us) % rotation_us
        if clock._watchers:
            clock.advance_us(wait_us, ROTATION)
            clock.advance_us(sector_us, TRANSFER)
        else:
            # Both charges applied in one step (watchers would need the
            # intermediate instant; with none registered this is exactly
            # two advance_us calls).
            clock._now_us += wait_us + sector_us
            tallies = clock._tallies
            try:
                tallies[ROTATION] += wait_us
            except KeyError:
                tallies[ROTATION] = wait_us
            try:
                tallies[TRANSFER] += sector_us
            except KeyError:
                tallies[TRANSFER] = sector_us
        self.sectors_transferred += 1

    # -- accounting helpers -------------------------------------------------------

    def revolutions_waited(self) -> float:
        """Total rotational waiting expressed in revolutions."""
        return self.clock.tally_us(ROTATION) / self._rotation_us()
