"""Seek and rotational latency model.

The drive charges three kinds of simulated time against the shared clock:

* ``disk.seek``     -- arm movement between cylinders,
* ``disk.rotation`` -- waiting for the target sector to come under the head,
* ``disk.transfer`` -- one sector time per sector actually transferred.

Rotational position is derived from the clock itself (the platter spins
whether or not anyone is looking), so two back-to-back operations on the
same sector naturally cost one full revolution of waiting -- which is
exactly the paper's "this scheme costs a disk revolution each time a page
is allocated or freed" (section 3.3): allocate and free must check the old
label and then *rewrite the label*, and the label has already passed under
the head by the time the check completes.
"""

from __future__ import annotations

from ..clock import MICROSECONDS_PER_MILLISECOND, SimClock
from .geometry import DiskShape

SEEK = "disk.seek"
ROTATION = "disk.rotation"
TRANSFER = "disk.transfer"


class ArmTimer:
    """Tracks arm position and charges seek/rotation/transfer time."""

    def __init__(self, shape: DiskShape, clock: SimClock) -> None:
        self.shape = shape
        self.clock = clock
        self.cylinder = 0
        self.seeks = 0
        self.sectors_transferred = 0

    # -- internal helpers -------------------------------------------------------

    def _rotation_us(self) -> int:
        return round(self.shape.rotation_ms * MICROSECONDS_PER_MILLISECOND)

    def _sector_us(self) -> int:
        return round(self.shape.sector_time_ms() * MICROSECONDS_PER_MILLISECOND)

    def rotational_position_us(self) -> int:
        """Microseconds into the current platter revolution."""
        return self.clock.now_us % self._rotation_us()

    # -- charging ---------------------------------------------------------------

    def seek_to(self, cylinder: int) -> None:
        """Move the arm, charging seek time (zero if already there)."""
        if cylinder != self.cylinder:
            self.clock.advance_ms(self.shape.seek_time_ms(self.cylinder, cylinder), SEEK)
            self.cylinder = cylinder
            self.seeks += 1

    def wait_for_sector(self, sector: int) -> None:
        """Spin until *sector*'s leading edge is under the head."""
        target_us = sector * self._sector_us()
        position_us = self.rotational_position_us()
        wait_us = (target_us - position_us) % self._rotation_us()
        self.clock.advance_us(wait_us, ROTATION)

    def transfer_sector(self) -> None:
        """Charge one sector time of transfer."""
        self.clock.advance_us(self._sector_us(), TRANSFER)
        self.sectors_transferred += 1

    def position_for(self, address: int) -> None:
        """Seek + rotational wait for the sector at *address*."""
        cylinder, _head, sector = self.shape.decompose(address)
        self.seek_to(cylinder)
        self.wait_for_sector(sector)

    # -- accounting helpers -------------------------------------------------------

    def revolutions_waited(self) -> float:
        """Total rotational waiting expressed in revolutions."""
        return self.clock.tally_us(ROTATION) / self._rotation_us()
