"""Fault injection for robustness experiments.

The paper's central robustness claims (section 3.3, section 6) are about
what happens when things go wrong: stale hints, lying allocation maps,
crashes between related writes, decaying media.  ``FaultInjector`` produces
those wrongs on demand, both *through* the drive (torn writes -- a power
failure mid-sector) and *behind* the drive's back (label scrambling, media
decay -- corruption that no software action caused).

All randomized behaviour goes through an explicitly seeded ``random.Random``
so every campaign is reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..errors import TornWriteError
from ..words import WORD_MASK
from .image import DiskImage
from .sector import Label


class FaultInjector:
    """Corrupts a pack in controlled, reproducible ways.

    Attach to a :class:`~repro.disk.drive.DiskDrive` via its
    ``fault_injector`` argument to intercept writes; the direct-corruption
    methods operate on the image and need no drive at all.
    """

    def __init__(self, image: DiskImage, seed: int = 1979) -> None:
        self.image = image
        self.rng = random.Random(seed)
        self._writes_until_power_failure: Optional[int] = None
        self.torn_writes = 0

    # ------------------------------------------------------------------------
    # Drive hooks
    # ------------------------------------------------------------------------

    def before_parts(self, drive, address: int, commands: dict) -> None:
        """Called by the drive before processing a command's parts."""
        # Currently a hook point only; media errors are raised by the drive
        # itself from ``image.bad_media``.

    def filter_write(self, drive, address: int, part: str, data: List[int]) -> List[int]:
        """Called for every part write; may tear it.

        A torn write models a power failure once the write has begun: the
        hardware contract says the write "must continue through the rest of
        the sector", so a failure leaves a prefix of new words followed by
        garbage -- the worst case the scavenger must survive.
        """
        if self._writes_until_power_failure is None:
            return data
        self._writes_until_power_failure -= 1
        if self._writes_until_power_failure > 0:
            return data
        self._writes_until_power_failure = None
        self.torn_writes += 1
        keep = self.rng.randrange(0, len(data))
        torn = list(data[:keep]) + [self.rng.randrange(WORD_MASK + 1) for _ in range(len(data) - keep)]
        # The torn words land on the platter, then the machine dies.
        sector = self.image.sector(address)
        if part == "header":
            from .sector import Header

            sector.header = Header.unpack(torn)
        elif part == "label":
            sector.label = Label.unpack(torn)
        else:
            sector.value = torn
        raise TornWriteError(f"power failed during {part} write at address {address}")

    # ------------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------------

    def schedule_power_failure(self, after_writes: int) -> None:
        """Tear the Nth subsequent part-write (1 = the very next one)."""
        if after_writes < 1:
            raise ValueError("after_writes must be >= 1")
        self._writes_until_power_failure = after_writes

    def cancel_power_failure(self) -> None:
        self._writes_until_power_failure = None

    # ------------------------------------------------------------------------
    # Direct corruption (behind the drive's back)
    # ------------------------------------------------------------------------

    def decay_sector(self, address: int) -> None:
        """Make a sector an unrecoverable media error (bad oxide)."""
        self.image.shape.check_address(address)
        self.image.bad_media.add(address)

    def heal_sector(self, address: int) -> None:
        """Undo :meth:`decay_sector` (e.g. after reformatting)."""
        self.image.bad_media.discard(address)

    def scramble_label(self, address: int) -> Label:
        """Overwrite a sector's label with random words; returns the old label."""
        sector = self.image.sector(address)
        old = sector.label
        sector.label = Label.unpack([self.rng.randrange(WORD_MASK + 1) for _ in range(7)])
        return old

    def scramble_links(self, address: int) -> None:
        """Corrupt only the (hint) link words of a label, leaving the
        absolute part intact -- the scavenger must repair these silently."""
        sector = self.image.sector(address)
        sector.label = sector.label.with_links(
            next_link=self.rng.randrange(WORD_MASK + 1),
            prev_link=self.rng.randrange(WORD_MASK + 1),
        )

    def scramble_value(self, address: int, nwords: int = 16) -> None:
        """Corrupt part of a sector's data words (detected by higher-level
        checksums where present; labels are unaffected)."""
        sector = self.image.sector(address)
        size = len(sector.value)
        for _ in range(nwords):
            sector.value[self.rng.randrange(size)] = self.rng.randrange(WORD_MASK + 1)

    def swap_sectors(self, a: int, b: int) -> None:
        """Exchange the label+value of two sectors, leaving headers in place.

        Models a wildly confused copy utility; every hint to either page goes
        stale at once, but the absolutes still identify the pages, so the
        scavenger recovers both files.
        """
        sa, sb = self.image.sector(a), self.image.sector(b)
        sa.label, sb.label = sb.label, sa.label
        sa.value, sb.value = sb.value, sa.value

    def random_in_use_addresses(self, count: int) -> List[int]:
        """A reproducible sample of in-use sector addresses."""
        in_use = [s.header.address for s in self.image.sectors() if s.label.in_use]
        if count > len(in_use):
            raise ValueError(f"only {len(in_use)} sectors in use, asked for {count}")
        return self.rng.sample(in_use, count)
