"""Fault injection for robustness experiments.

The paper's central robustness claims (section 3.3, section 6) are about
what happens when things go wrong: stale hints, lying allocation maps,
crashes between related writes, decaying media.  ``FaultInjector`` produces
those wrongs on demand, both *through* the drive (torn writes -- a power
failure mid-sector) and *behind* the drive's back (label scrambling, media
decay -- corruption that no software action caused).

All randomized behaviour goes through an explicitly seeded ``random.Random``
so every campaign is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import PowerFailure, TornWriteError, TransientReadError
from ..words import WORD_MASK
from .image import DiskImage
from .sector import Label
from .trace import check_point, point_name


class FaultInjector:
    """Corrupts a pack in controlled, reproducible ways.

    Attach to a :class:`~repro.disk.drive.DiskDrive` via its
    ``fault_injector`` argument to intercept writes; the direct-corruption
    methods operate on the image and need no drive at all.
    """

    def __init__(self, image: DiskImage, seed: int = 1979) -> None:
        self.image = image
        self.rng = random.Random(seed)
        self._writes_until_power_failure: Optional[int] = None
        self.torn_writes = 0

    # ------------------------------------------------------------------------
    # Drive hooks
    # ------------------------------------------------------------------------

    def before_parts(self, drive, address: int, parts: Sequence) -> None:
        """Called by the drive before processing a command's parts.

        *parts* is the drive's flattened command: a sequence of
        ``(part, Action, data)`` triples covering every non-NONE part in
        head order -- the same shape the drive executes, so observing it
        costs no ``PartCommand`` packaging on the hot path.
        """
        # Currently a hook point only; media errors are raised by the drive
        # itself from ``image.bad_media``.

    def filter_write(self, drive, address: int, part: str, data: List[int]) -> List[int]:
        """Called for every part write; may tear it.

        A torn write models a power failure once the write has begun: the
        hardware contract says the write "must continue through the rest of
        the sector", so a failure leaves a prefix of new words followed by
        garbage -- the worst case the scavenger must survive.
        """
        if self._writes_until_power_failure is None:
            return data
        self._writes_until_power_failure -= 1
        if self._writes_until_power_failure > 0:
            return data
        self._writes_until_power_failure = None
        self.torn_writes += 1
        keep = self.rng.randrange(0, len(data))
        torn = list(data[:keep]) + [self.rng.randrange(WORD_MASK + 1) for _ in range(len(data) - keep)]
        # The torn words land on the platter, then the machine dies.
        sector = self.image.sector(address)
        if part == "header":
            from .sector import Header

            sector.header = Header.unpack(torn)
        elif part == "label":
            sector.label = Label.unpack(torn)
        else:
            sector.value = torn
        raise TornWriteError(f"power failed during {part} write at address {address}")

    # ------------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------------

    def schedule_power_failure(self, after_writes: int) -> None:
        """Tear the Nth subsequent part-write (1 = the very next one)."""
        if after_writes < 1:
            raise ValueError("after_writes must be >= 1")
        self._writes_until_power_failure = after_writes

    def cancel_power_failure(self) -> None:
        self._writes_until_power_failure = None

    # ------------------------------------------------------------------------
    # Direct corruption (behind the drive's back)
    # ------------------------------------------------------------------------

    def decay_sector(self, address: int) -> None:
        """Make a sector an unrecoverable media error (bad oxide)."""
        self.image.shape.check_address(address)
        self.image.bad_media.add(address)

    def heal_sector(self, address: int) -> None:
        """Undo :meth:`decay_sector` (e.g. after reformatting)."""
        self.image.bad_media.discard(address)

    def scramble_label(self, address: int) -> Label:
        """Overwrite a sector's label with random words; returns the old label."""
        sector = self.image.sector(address)
        old = sector.label
        sector.label = Label.unpack([self.rng.randrange(WORD_MASK + 1) for _ in range(7)])
        return old

    def scramble_links(self, address: int) -> None:
        """Corrupt only the (hint) link words of a label, leaving the
        absolute part intact -- the scavenger must repair these silently."""
        sector = self.image.sector(address)
        sector.label = sector.label.with_links(
            next_link=self.rng.randrange(WORD_MASK + 1),
            prev_link=self.rng.randrange(WORD_MASK + 1),
        )

    def scramble_value(self, address: int, nwords: int = 16) -> None:
        """Corrupt part of a sector's data words (detected by higher-level
        checksums where present; labels are unaffected)."""
        sector = self.image.sector(address)
        size = len(sector.value)
        for _ in range(nwords):
            sector.value[self.rng.randrange(size)] = self.rng.randrange(WORD_MASK + 1)

    def swap_sectors(self, a: int, b: int) -> None:
        """Exchange the label+value of two sectors, leaving headers in place.

        Models a wildly confused copy utility; every hint to either page goes
        stale at once, but the absolutes still identify the pages, so the
        scavenger recovers both files.
        """
        sa, sb = self.image.sector(a), self.image.sector(b)
        sa.label, sb.label = sb.label, sa.label
        sa.value, sb.value = sb.value, sa.value

    def random_in_use_addresses(self, count: int) -> List[int]:
        """A reproducible sample of in-use sector addresses."""
        in_use = [s.header.address for s in self.image.sectors() if s.label.in_use]
        if count > len(in_use):
            raise ValueError(f"only {len(in_use)} sectors in use, asked for {count}")
        return self.rng.sample(in_use, count)


# ----------------------------------------------------------------------------
# FaultPlan: a programmable, deterministic schedule of faults
# ----------------------------------------------------------------------------


@dataclass
class _TransientReads:
    """A scheduled burst of transient read failures."""

    remaining: int
    address: Optional[int] = None  # None: any address
    part: Optional[str] = None  # None: any part

    def matches(self, address: int, part: str) -> bool:
        if self.remaining <= 0:
            return False
        if self.address is not None and address != self.address:
            return False
        if self.part is not None and part != self.part:
            return False
        return True


class FaultPlan(FaultInjector):
    """A deterministic schedule of faults: the crash-testing engine.

    Where :class:`FaultInjector` offers one-shot corruption calls, a
    ``FaultPlan`` is *programmable*: attach it to a drive (as its
    ``fault_injector``) and schedule, ahead of time, exactly where the
    machine dies or the media glitches.  Everything is counted
    deterministically, so a campaign that crashes at part-write N is
    replayable bit-for-bit from (seed, N).

    Crash points:

    * :meth:`crash_at_write` -- die *instead of* performing the Nth
      part-write (clean crash at a write boundary: writes 1..N-1 landed,
      write N and everything after did not);
    * :meth:`tear_at_write` -- the Nth part-write lands *torn* (a prefix of
      new words, then garbage), then the machine dies;
    * :meth:`crash_at_point` -- die at the Kth passage of a named trace
      point from :mod:`repro.disk.trace` (e.g. ``"label:write"``);
    * :meth:`tear_between_label_and_value` -- in a command that writes both
      label and value, complete the label write and die before the value
      write: the on-disk identity is new, the data is old.

    Media faults:

    * :meth:`schedule_transient_reads` -- the next K read/check part
      attempts fail transiently; the drive's bounded retry-with-backoff
      must absorb up to its retry budget and surface
      :class:`~repro.errors.ReadRetriesExhausted` beyond it;
    * :meth:`flip_bits` -- XOR a mask into one word of any sector part,
      behind the drive's back (plus everything inherited from
      :class:`FaultInjector`: decay, scrambles, swaps).

    After any crash the plan considers the machine *down*: every further
    drive operation raises :class:`~repro.errors.PowerFailure` until
    :meth:`revive` -- recovery code must run on a fresh drive (or revive
    first), exactly like a real reboot.
    """

    def __init__(self, image: DiskImage, seed: int = 1979) -> None:
        super().__init__(image, seed)
        self.crashed = False
        self.crash_reason: Optional[str] = None
        #: Part-writes seen so far (the crash-point coordinate system).
        self.writes_seen = 0
        #: Read/check part attempts seen so far (includes drive retries).
        self.reads_seen = 0
        self._crash_at_write: Optional[int] = None
        self._tear_at_write: Optional[int] = None
        self._crash_points: Dict[str, int] = {}  # point -> remaining passages
        self._point_counts: Dict[str, int] = {}
        self._tear_label_value: Optional[int] = None  # remaining occurrences
        self._crash_before_value = False  # armed for the current command
        self._transient: List[_TransientReads] = []

    # ------------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------------

    def crash_at_write(self, n: int) -> "FaultPlan":
        """Die cleanly in place of part-write *n* (absolute count, 1-based)."""
        if n <= self.writes_seen:
            raise ValueError(f"write {n} already happened ({self.writes_seen} seen)")
        self._crash_at_write = n
        return self

    def tear_at_write(self, n: int) -> "FaultPlan":
        """Part-write *n* lands torn (new prefix + garbage), then die."""
        if n <= self.writes_seen:
            raise ValueError(f"write {n} already happened ({self.writes_seen} seen)")
        self._tear_at_write = n
        return self

    def crash_at_point(self, point: str, occurrence: int = 1) -> "FaultPlan":
        """Die at the *occurrence*-th future passage of a named trace point."""
        if occurrence < 1:
            raise ValueError("occurrence must be >= 1")
        self._crash_points[check_point(point)] = occurrence
        return self

    def tear_between_label_and_value(self, occurrence: int = 1) -> "FaultPlan":
        """In the *occurrence*-th command writing label AND value, finish the
        label write and die before the value write."""
        if occurrence < 1:
            raise ValueError("occurrence must be >= 1")
        self._tear_label_value = occurrence
        return self

    def schedule_transient_reads(
        self, times: int, address: Optional[int] = None, part: Optional[str] = None
    ) -> "FaultPlan":
        """The next *times* matching read/check part attempts fail
        transiently (each drive retry consumes one failure)."""
        if times < 1:
            raise ValueError("times must be >= 1")
        self._transient.append(_TransientReads(times, address, part))
        return self

    def clear(self) -> None:
        """Drop every scheduled fault (the machine stays up)."""
        self._crash_at_write = None
        self._tear_at_write = None
        self._crash_points.clear()
        self._tear_label_value = None
        self._crash_before_value = False
        self._transient.clear()

    def revive(self) -> None:
        """Power the machine back on (scheduled faults stay cleared)."""
        self.clear()
        self.crashed = False
        self.crash_reason = None

    # ------------------------------------------------------------------------
    # Direct corruption additions
    # ------------------------------------------------------------------------

    def flip_bits(self, address: int, part: str, word_index: int, mask: int) -> None:
        """XOR *mask* into one word of a sector part, behind the drive."""
        from .sector import Header

        sector = self.image.sector(address)
        if part == "header":
            words = sector.header.pack()
            words[word_index] ^= mask & WORD_MASK
            sector.header = Header.unpack(words)
        elif part == "label":
            words = sector.label.pack()
            words[word_index] ^= mask & WORD_MASK
            sector.label = Label.unpack(words)
        elif part == "value":
            sector.value[word_index] ^= mask & WORD_MASK
        else:
            raise ValueError(f"unknown part {part!r}")

    # ------------------------------------------------------------------------
    # Drive hooks
    # ------------------------------------------------------------------------

    def before_parts(self, drive, address: int, parts: Sequence) -> None:
        """Command start: dead-machine check and label+value tear arming."""
        self._require_alive()
        from .drive import Action

        self._crash_before_value = False
        if self._tear_label_value is not None:
            label_write = value_write = False
            for part, action, _data in parts:
                if action is Action.WRITE:
                    if part == "label":
                        label_write = True
                    elif part == "value":
                        value_write = True
            if label_write and value_write:
                self._tear_label_value -= 1
                if self._tear_label_value <= 0:
                    self._tear_label_value = None
                    self._crash_before_value = True

    def before_part(self, drive, address: int, part: str, action: str) -> None:
        """Called for every non-NONE part just before it passes the head."""
        self._require_alive()
        point = point_name(part, action)
        self._point_counts[point] = self._point_counts.get(point, 0) + 1

        if point in self._crash_points:
            self._crash_points[point] -= 1
            if self._crash_points[point] <= 0:
                del self._crash_points[point]
                self._crash(f"power failed at trace point {point} (address {address})")

        if action == "write":
            if self._crash_before_value and part == "value":
                self._crash_before_value = False
                self._crash(
                    f"power failed between label and value writes at address {address}"
                )
            self.writes_seen += 1
            if self._crash_at_write is not None and self.writes_seen >= self._crash_at_write:
                self._crash_at_write = None
                self._crash(
                    f"power failed before {part} write #{self.writes_seen} "
                    f"at address {address}"
                )
        else:  # read or check
            self.reads_seen += 1
            for burst in self._transient:
                if burst.matches(address, part):
                    burst.remaining -= 1
                    if burst.remaining <= 0:
                        self._transient.remove(burst)
                    raise TransientReadError(
                        f"transient {action} failure in {part} at address {address}"
                    )

    def filter_write(self, drive, address: int, part: str, data: List[int]) -> List[int]:
        """Tear the scheduled write: a new-words prefix lands, then garbage.

        The interrupted part never got its checksum laid down, so it is
        marked checksum-bad: every later read of it raises
        :class:`~repro.errors.SectorChecksumError` until something rewrites
        the part (exactly how real hardware surfaces a torn write).
        """
        if self._tear_at_write is None or self.writes_seen < self._tear_at_write:
            return data
        self._tear_at_write = None
        self.torn_writes += 1
        keep = self.rng.randrange(0, len(data))
        torn = list(data[:keep]) + [
            self.rng.randrange(WORD_MASK + 1) for _ in range(len(data) - keep)
        ]
        sector = self.image.sector(address)
        if part == "header":
            from .sector import Header

            sector.header = Header.unpack(torn)
        elif part == "label":
            sector.label = Label.unpack(torn)
        else:
            sector.value = torn
        self.image.checksum_bad.add((address, part))
        self.crashed = True
        self.crash_reason = f"power failed during {part} write at address {address}"
        raise TornWriteError(self.crash_reason, crash_point=self.writes_seen)

    # ------------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------------

    def point_count(self, point: str) -> int:
        """Passages of a named trace point seen so far."""
        return self._point_counts.get(check_point(point), 0)

    def pending_faults(self) -> bool:
        """Is anything still scheduled?"""
        return bool(
            self._crash_at_write is not None
            or self._tear_at_write is not None
            or self._crash_points
            or self._tear_label_value is not None
            or self._transient
        )

    # -- internals ----------------------------------------------------------------

    def _require_alive(self) -> None:
        if self.crashed:
            raise PowerFailure(
                f"machine is down ({self.crash_reason}); revive() to reboot",
                crash_point=self.writes_seen,
            )

    def _crash(self, reason: str) -> None:
        self.crashed = True
        self.crash_reason = reason
        raise PowerFailure(reason, crash_point=self.writes_seen)
