"""Disk shapes and addresses.

The paper's machine used a Diablo Model 31 cartridge drive: 2.5 megabytes on
a removable pack, transferring "64k words in about one second" (section 2).
``DiskShape`` captures the geometry and timing parameters needed to
"parameterize the disk routines for a particular model of disk"
(section 3.3, the disk descriptor's *disk shape*), and ``DiskAddress`` is the
one-word physical location hint used throughout the file system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from ..words import PAGE_DATA_BYTES, WORD_MASK, check_word

#: Sentinel link/address meaning "no such page" (section 3.1: "or NIL if no
#: such pages exist").  All-ones was chosen so that a freed label -- which is
#: overwritten with ones (section 3.3) -- reads as NIL links consistently.
NIL = WORD_MASK


@dataclass(frozen=True)
class DiskShape:
    """Geometry and timing of one disk model.

    The defaults are the Diablo Model 31 as shipped on the Alto; the "big
    disk" mentioned in section 2 ("about twice the size and performance") is
    available via :meth:`trident_t80`-style alternates below.

    Timing parameters are in milliseconds.  One sector operation costs a
    seek (if the arm must move), rotational positioning, and one sector time
    of transfer.
    """

    name: str = "Diablo-31"
    cylinders: int = 203
    heads: int = 2
    sectors_per_track: int = 12
    rotation_ms: float = 40.0
    seek_track_to_track_ms: float = 15.0
    seek_max_ms: float = 135.0

    def __post_init__(self) -> None:
        if self.cylinders <= 0 or self.heads <= 0 or self.sectors_per_track <= 0:
            raise ValueError(f"degenerate disk shape: {self}")
        # Cached derived sizes: address validation and decomposition run on
        # every disk command, so they must not recompute products.  (Extra
        # attributes on a frozen dataclass; field-based eq/repr unaffected.)
        object.__setattr__(self, "_per_cylinder", self.heads * self.sectors_per_track)
        object.__setattr__(self, "_total", self.cylinders * self.heads * self.sectors_per_track)
        if self.total_sectors() - 1 > WORD_MASK - 1:
            # Addresses must fit in one word, and NIL is reserved.
            raise ValueError(f"disk shape too large for one-word addresses: {self}")

    # -- size ---------------------------------------------------------------

    def sectors_per_cylinder(self) -> int:
        return self._per_cylinder

    def total_sectors(self) -> int:
        return self._total

    def capacity_bytes(self) -> int:
        """Data capacity in bytes (page values only, as users see it)."""
        return self.total_sectors() * PAGE_DATA_BYTES

    # -- timing -------------------------------------------------------------

    def sector_time_ms(self) -> float:
        """Time for one sector to pass under the head."""
        return self.rotation_ms / self.sectors_per_track

    def seek_time_ms(self, from_cylinder: int, to_cylinder: int) -> float:
        """Arm movement time, linear between track-to-track and full-stroke."""
        distance = abs(to_cylinder - from_cylinder)
        if distance == 0:
            return 0.0
        if self.cylinders <= 2:
            return self.seek_track_to_track_ms
        span = self.cylinders - 1
        extra = (self.seek_max_ms - self.seek_track_to_track_ms) * (distance - 1) / max(span - 1, 1)
        return self.seek_track_to_track_ms + extra

    def words_per_second(self) -> float:
        """Steady-state sequential transfer rate in data words per second."""
        from ..words import PAGE_DATA_WORDS

        return PAGE_DATA_WORDS / (self.sector_time_ms() / 1000.0)

    # -- address mapping ------------------------------------------------------

    def decompose(self, address: int) -> Tuple[int, int, int]:
        """Split a linear address into (cylinder, head, sector)."""
        self.check_address(address)
        cylinder, rest = divmod(address, self._per_cylinder)
        head, sector = divmod(rest, self.sectors_per_track)
        return cylinder, head, sector

    def compose(self, cylinder: int, head: int, sector: int) -> int:
        """Build a linear address from (cylinder, head, sector)."""
        if not (0 <= cylinder < self.cylinders and 0 <= head < self.heads and 0 <= sector < self.sectors_per_track):
            raise ValueError(f"({cylinder}, {head}, {sector}) not on {self.name}")
        return (cylinder * self.heads + head) * self.sectors_per_track + sector

    def check_address(self, address: int) -> int:
        """Validate a linear address; returns it unchanged.

        This runs (several times) on every disk command, so the in-range
        case is a single comparison chain; only rejects pay for the
        precise typed error.  ``_total <= WORD_MASK`` (enforced at
        construction) makes the NIL and word-range checks subsume into
        ``address < _total``.
        """
        if isinstance(address, int) and 0 <= address < self._total:
            return address
        from ..errors import AddressOutOfRange

        check_word(address, "disk address")
        raise AddressOutOfRange(f"address {address} not on {self.name} ({self.total_sectors()} sectors)")

    def addresses(self) -> Iterator[int]:
        """All valid linear addresses in physical order."""
        return iter(range(self.total_sectors()))

    def cylinder_of(self, address: int) -> int:
        return self.decompose(address)[0]

    def sector_of(self, address: int) -> int:
        return self.decompose(address)[2]


def diablo31() -> DiskShape:
    """The standard Alto disk (2.5 MB removable pack)."""
    return DiskShape()


def diablo44() -> DiskShape:
    """The bigger, faster disk of section 2 ("about twice the size and
    performance"): twice the cylinders, faster rotation and seek."""
    return DiskShape(
        name="Diablo-44",
        cylinders=406,
        heads=2,
        sectors_per_track=12,
        rotation_ms=25.0,
        seek_track_to_track_ms=8.0,
        seek_max_ms=70.0,
    )


def tiny_test_disk(cylinders: int = 8, heads: int = 2, sectors_per_track: int = 12) -> DiskShape:
    """A small shape for fast unit tests; timing matches the Diablo 31."""
    return DiskShape(name="tiny", cylinders=cylinders, heads=heads, sectors_per_track=sectors_per_track)
