"""Disk request scheduling: batching queued transfers in elevator order.

The drive itself (``drive.py``) is policy-free: it executes one command at a
time, charging whatever seek and rotational latency the command's address
happens to cost from wherever the arm last stopped.  A queue of deferred
transfers -- the write-back cache's dirty sectors, a prefetch batch -- can do
much better: service the queue in *elevator* (SCAN) order, sweeping the arm
across the cylinders in one direction and then back, so each request costs
at most a track-to-track seek, and requests on the same cylinder ride the
same rotation.

``RequestScheduler`` holds the queue and decides the order; it issues no
disk traffic itself.  The owner (see :class:`repro.disk.cache.CachedDrive`)
repeatedly asks :meth:`next_address` for the best request given the current
arm position and performs the transfer, popping the request only when the
transfer succeeded -- so a crash mid-drain leaves the unserviced tail still
queued, exactly like a real controller losing power with requests pending.

Scheduling is deterministic: ties break on linear address, and the sweep
direction is part of the scheduler's state, so a replayed crash campaign
drains in exactly the same order.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..obs import CounterAttr, MetricsRegistry
from .geometry import DiskShape


class SchedulerStats:
    """Queue-depth and batching counters (benchmarks report these).

    A thin view over ``disk.sched.*`` metrics: the counts live in a
    per-scheduler :class:`~repro.obs.MetricsRegistry` and the queue depth
    is a gauge, so ``max_depth`` is simply its high-water mark.
    """

    _FIELDS = ("enqueued", "coalesced", "serviced", "max_depth", "sweeps")

    enqueued = CounterAttr("disk.sched.enqueued")
    coalesced = CounterAttr("disk.sched.coalesced")  # address already queued
    serviced = CounterAttr("disk.sched.serviced")
    sweeps = CounterAttr("disk.sched.sweeps")  # direction reversals

    def __init__(self, parent: Optional[MetricsRegistry] = None) -> None:
        self.registry = MetricsRegistry(parent=parent)
        for field in self._FIELDS:
            if field != "max_depth":
                self.registry.counter(type(self).__dict__[field].metric)
        self.depth = self.registry.gauge("disk.sched.depth")

    @property
    def max_depth(self) -> int:
        return self.depth.high_water

    def snapshot(self) -> dict:
        return {field: getattr(self, field) for field in self._FIELDS}


class RequestScheduler:
    """An elevator (SCAN) queue of sector addresses awaiting service."""

    def __init__(self, shape: DiskShape,
                 parent_registry: Optional[MetricsRegistry] = None) -> None:
        self.shape = shape
        self._pending: Set[int] = set()
        self._ascending = True
        self.stats = SchedulerStats(parent=parent_registry)

    # ------------------------------------------------------------------------
    # Queue maintenance
    # ------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, address: int) -> bool:
        return address in self._pending

    def enqueue(self, address: int) -> None:
        """Add *address* to the queue (idempotent: re-dirtying a queued
        sector coalesces into the existing request)."""
        self.shape.check_address(address)
        if address in self._pending:
            self.stats.coalesced += 1
            return
        self._pending.add(address)
        self.stats.enqueued += 1
        self.stats.depth.set(len(self._pending))

    def discard(self, address: int) -> None:
        """Drop a request without servicing it (the sector was superseded,
        e.g. freed or rewritten through a label operation)."""
        self._pending.discard(address)
        self.stats.depth.set(len(self._pending))

    def pending(self) -> List[int]:
        """The queued addresses, in linear order (for introspection)."""
        return sorted(self._pending)

    # ------------------------------------------------------------------------
    # Elevator selection
    # ------------------------------------------------------------------------

    def next_address(self, current_cylinder: int) -> Optional[int]:
        """The best queued address to service from *current_cylinder*.

        Classic SCAN: continue the current sweep direction as long as any
        request lies that way; otherwise reverse.  Within a cylinder,
        requests are taken in linear address order, which is head-then-
        sector order -- the order they pass under the heads.  Returns
        ``None`` when the queue is empty.  The request stays queued until
        :meth:`mark_serviced`.
        """
        if not self._pending:
            return None
        ahead, behind = [], []
        for address in self._pending:
            cylinder, _head, _sector = self.shape.decompose(address)
            delta = cylinder - current_cylinder
            if not self._ascending:
                delta = -delta
            (ahead if delta >= 0 else behind).append((abs(delta), address))
        if not ahead:
            self._ascending = not self._ascending
            self.stats.sweeps += 1
            ahead = [(d, a) for d, a in behind]
        return min(ahead)[1]

    def mark_serviced(self, address: int) -> None:
        """The transfer for *address* completed; retire the request."""
        if address in self._pending:
            self._pending.remove(address)
            self.stats.serviced += 1
            self.stats.depth.set(len(self._pending))
