"""The platter state: every sector of one removable pack.

``DiskImage`` is pure state -- no timing, no policy.  The drive (drive.py)
imposes the command discipline and charges time; the image is "what is on
the oxide".  Keeping it separate lets crash tests snapshot a pack, lets the
fault injector corrupt it behind the drive's back, and lets two independent
software stacks mount the same pack (the openness property of section 1:
the on-disk representation is the interface).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..errors import AddressOutOfRange
from .geometry import DiskShape, diablo31
from .sector import Label, Sector


class DiskImage:
    """All sectors of one pack, indexed by linear disk address."""

    def __init__(self, shape: Optional[DiskShape] = None, pack_id: int = 1) -> None:
        self.shape = shape if shape is not None else diablo31()
        self.pack_id = pack_id
        self._sectors: List[Sector] = [
            Sector.fresh(pack_id, address) for address in self.shape.addresses()
        ]
        #: Addresses the fault injector has marked as unreadable media.
        self.bad_media: set = set()
        #: ``(address, part)`` pairs whose checksum a torn write ruined;
        #: reads fail until the part is rewritten (real disks detect an
        #: interrupted write this way -- the CRC never got laid down).
        self.checksum_bad: set = set()

    # -- access ---------------------------------------------------------------

    def sector(self, address: int) -> Sector:
        """The sector at *address* (validated against the shape)."""
        self.shape.check_address(address)
        return self._sectors[address]

    def set_sector(self, address: int, sector: Sector) -> None:
        self.shape.check_address(address)
        self._sectors[address] = sector

    def __len__(self) -> int:
        return len(self._sectors)

    def sectors(self) -> Iterator[Sector]:
        """All sectors in physical order."""
        return iter(self._sectors)

    # -- whole-pack operations --------------------------------------------------

    def snapshot(self) -> "DiskImage":
        """A deep copy of the pack, for crash/restore experiments."""
        clone = DiskImage.__new__(DiskImage)
        clone.shape = self.shape
        clone.pack_id = self.pack_id
        clone._sectors = [s.copy() for s in self._sectors]
        clone.bad_media = set(self.bad_media)
        clone.checksum_bad = set(self.checksum_bad)
        return clone

    def restore(self, snapshot: "DiskImage") -> None:
        """Overwrite this pack's state from *snapshot* (same shape required)."""
        if snapshot.shape != self.shape:
            raise ValueError("snapshot is from a different disk shape")
        self.pack_id = snapshot.pack_id
        self._sectors = [s.copy() for s in snapshot._sectors]
        self.bad_media = set(snapshot.bad_media)
        self.checksum_bad = set(snapshot.checksum_bad)

    # -- statistics (used by tests and benchmarks) -------------------------------

    def count_free(self) -> int:
        return sum(1 for s in self._sectors if s.label.is_free)

    def count_in_use(self) -> int:
        return sum(1 for s in self._sectors if s.label.in_use)

    def count_bad(self) -> int:
        return sum(1 for s in self._sectors if s.label.is_bad)

    def labels_by_serial(self) -> Dict[int, List[Label]]:
        """In-use labels grouped by file serial (a scavenger-style sweep,
        but without timing; for test assertions only)."""
        out: Dict[int, List[Label]] = {}
        for sector in self._sectors:
            if sector.label.in_use:
                out.setdefault(sector.label.serial, []).append(sector.label)
        return out
