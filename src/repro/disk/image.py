"""The platter state: every sector of one removable pack.

``DiskImage`` is pure state -- no timing, no policy.  The drive (drive.py)
imposes the command discipline and charges time; the image is "what is on
the oxide".  Keeping it separate lets crash tests snapshot a pack, lets the
fault injector corrupt it behind the drive's back, and lets two independent
software stacks mount the same pack (the openness property of section 1:
the on-disk representation is the interface).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional

from ..errors import AddressOutOfRange
from ..words import ones_words, words_to_bytes
from .geometry import DiskShape, diablo31
from .sector import Label, Sector, VALUE_WORDS


class DiskImage:
    """All sectors of one pack, indexed by linear disk address."""

    def __init__(self, shape: Optional[DiskShape] = None, pack_id: int = 1) -> None:
        self.shape = shape if shape is not None else diablo31()
        self.pack_id = pack_id
        # Sectors are materialized on first touch: ``None`` stands for a
        # factory-fresh sector (free label, all-ones value), which is what
        # every address holds until something writes or inspects it.
        # Building, snapshotting, and restoring a pack therefore cost
        # nothing for the (typically large) untouched remainder.  The
        # fresh header captures the pack id at construction time.
        self._fresh_pack_id = pack_id
        self._sectors: List[Optional[Sector]] = [None] * self.shape.total_sectors()
        #: Addresses the fault injector has marked as unreadable media.
        self.bad_media: set = set()
        #: ``(address, part)`` pairs whose checksum a torn write ruined;
        #: reads fail until the part is rewritten (real disks detect an
        #: interrupted write this way -- the CRC never got laid down).
        self.checksum_bad: set = set()

    # -- access ---------------------------------------------------------------

    def _materialize(self, address: int) -> Sector:
        """The sector at *address*, created fresh on first touch."""
        sector = self._sectors[address]
        if sector is None:
            sector = self._sectors[address] = Sector.fresh(self._fresh_pack_id, address)
        return sector

    def sector(self, address: int) -> Sector:
        """The sector at *address* (validated against the shape)."""
        self.shape.check_address(address)
        return self._materialize(address)

    def set_sector(self, address: int, sector: Sector) -> None:
        self.shape.check_address(address)
        self._sectors[address] = sector

    def __len__(self) -> int:
        return len(self._sectors)

    def sectors(self) -> Iterator[Sector]:
        """All sectors in physical order."""
        return (self._materialize(address) for address in range(len(self._sectors)))

    # -- whole-pack operations --------------------------------------------------

    def snapshot(self) -> "DiskImage":
        """A deep copy of the pack, for crash/restore experiments."""
        clone = DiskImage.__new__(DiskImage)
        clone.shape = self.shape
        clone.pack_id = self.pack_id
        clone._fresh_pack_id = self._fresh_pack_id
        clone._sectors = [None if s is None else s.copy() for s in self._sectors]
        clone.bad_media = set(self.bad_media)
        clone.checksum_bad = set(self.checksum_bad)
        return clone

    def digest(self) -> str:
        """A canonical SHA-256 over the full platter state.

        Covers every sector's header, label, and value words (in physical
        order, big-endian packed) plus the fault-tracking sets, so two
        packs digest equal iff they are byte-identical *and* agree on
        which parts are unreadable.  The golden-image suite
        (``tests/equivalence/``) pins workload digests with this.
        """
        h = hashlib.sha256()
        # An unmaterialized sector digests as its factory-fresh words;
        # only the header's address word varies, so the constant parts
        # are packed once.
        fresh_tail = (words_to_bytes(Label.free().pack())
                      + words_to_bytes(ones_words(VALUE_WORDS)))
        pack_id = self._fresh_pack_id
        for address, sector in enumerate(self._sectors):
            if sector is None:
                h.update(words_to_bytes([pack_id, address]))
                h.update(fresh_tail)
            else:
                h.update(words_to_bytes(sector.header_words()))
                h.update(words_to_bytes(sector.label_words()))
                h.update(words_to_bytes(sector.value))
        h.update(repr(sorted(self.bad_media)).encode())
        h.update(repr(sorted(self.checksum_bad)).encode())
        return h.hexdigest()

    def restore(self, snapshot: "DiskImage") -> None:
        """Overwrite this pack's state from *snapshot* (same shape required)."""
        if snapshot.shape != self.shape:
            raise ValueError("snapshot is from a different disk shape")
        self.pack_id = snapshot.pack_id
        self._fresh_pack_id = snapshot._fresh_pack_id
        self._sectors = [None if s is None else s.copy() for s in snapshot._sectors]
        self.bad_media = set(snapshot.bad_media)
        self.checksum_bad = set(snapshot.checksum_bad)

    # -- statistics (used by tests and benchmarks) -------------------------------

    def count_free(self) -> int:
        return sum(1 for s in self._sectors if s is None or s.label.is_free)

    def count_in_use(self) -> int:
        return sum(1 for s in self._sectors if s is not None and s.label.in_use)

    def count_bad(self) -> int:
        return sum(1 for s in self._sectors if s is not None and s.label.is_bad)

    def labels_by_serial(self) -> Dict[int, List[Label]]:
        """In-use labels grouped by file serial (a scavenger-style sweep,
        but without timing; for test assertions only)."""
        out: Dict[int, List[Label]] = {}
        for sector in self._sectors:
            if sector is not None and sector.label.in_use:
                out.setdefault(sector.label.serial, []).append(sector.label)
        return out
