"""Reference ("slow") implementations that pin the bulk fast paths.

Every hot inner loop that was rewritten as a bulk operation keeps its
original word-at-a-time form here, unchanged.  These are not dead code:
the differential harness in ``tests/equivalence/`` runs arbitrary inputs
through both the fast path and its reference twin and asserts the results
are observationally identical -- same values, same exceptions, same
counter increments, same simulated microseconds.  When you add a new fast
path, add its reference twin here and a property test pinning the pair
(see ARCHITECTURE.md, "Fast paths and the differential harness").

The reference forms also serve as the executable specification: they are
the loops the paper describes ("a check action compares data on the disk
with corresponding data taken from memory, word by word", section 3.3).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .words import WORD_MASK


# ----------------------------------------------------------------------------
# repro.words reference twins
# ----------------------------------------------------------------------------


def random_bytes_reference(rng, count: int) -> bytes:
    """Draw-at-a-time twin of :func:`repro.words.random_bytes` (the exact
    historical form: one ``randrange(256)`` call per byte)."""
    return bytes(rng.randrange(256) for _ in range(count))


def checksum_reference(words) -> int:
    """Word-at-a-time twin of :func:`repro.words.checksum`."""
    total = 0
    for w in words:
        total = (total + w) & WORD_MASK
    return total ^ WORD_MASK


def bytes_to_words_reference(data: bytes, pad: int = 0) -> List[int]:
    """Byte-at-a-time twin of :func:`repro.words.bytes_to_words`."""
    words = []
    for i in range(0, len(data) - 1, 2):
        words.append((data[i] << 8) | data[i + 1])
    if len(data) % 2:
        words.append((data[-1] << 8) | (pad & 0xFF))
    return words


def words_to_bytes_reference(words: Sequence[int], nbytes: int = -1) -> bytes:
    """Word-at-a-time twin of :func:`repro.words.words_to_bytes`."""
    if nbytes != -1 and nbytes < 0:
        raise ValueError(f"nbytes must be -1 (no truncation) or >= 0, got {nbytes}")
    if nbytes > 2 * len(words):
        raise ValueError(f"asked for {nbytes} bytes from {2 * len(words)} available")
    out = bytearray()
    for w in words:
        out.append((w >> 8) & 0xFF)
        out.append(w & 0xFF)
    if nbytes >= 0:
        del out[nbytes:]
    return bytes(out)


# ----------------------------------------------------------------------------
# Drive part-check reference twin
# ----------------------------------------------------------------------------

#: Outcome of a check merge: the effective buffer, or the first mismatch.
CheckOutcome = Tuple[Optional[List[int]], Optional[Tuple[int, int, int]]]


def merge_check_reference(expected: Sequence[int], disk_words: Sequence[int]) -> CheckOutcome:
    """Word-by-word pattern match, 0 in memory as a wildcard (section 3.3).

    Twin of :func:`repro.disk.drive.merge_check`.  Returns
    ``(effective, None)`` on success or ``(None, (index, want, have))`` at
    the first non-wildcard mismatch -- exactly where the original loop
    raised.
    """
    effective = []
    for i, (want, have) in enumerate(zip(expected, disk_words)):
        if want == 0:
            effective.append(have)
            continue
        if want != have:
            return None, (i, want, have)
        effective.append(have)
    return effective, None


# ----------------------------------------------------------------------------
# A drive whose part loops are the original word-at-a-time forms
# ----------------------------------------------------------------------------


def make_reference_drive(image, clock=None, fault_injector=None, **kwargs):
    """A :class:`~repro.disk.drive.DiskDrive` running the reference loops.

    Used by ``tests/equivalence/`` to replay identical command sequences
    through the slow and fast part paths and assert byte- and
    microsecond-identical outcomes.  Imported lazily to keep this module
    free of circular imports.
    """
    from .disk.drive import DiskDrive, _PART_SIZES
    from .disk.sector import Header, Label
    from .errors import CheckError, LabelCheckError

    class ReferenceDrive(DiskDrive):
        """The pre-fast-path drive: per-word loops, per-access packing."""

        def _get_part(self, sector, part):
            if part == "header":
                return sector.header.pack()
            if part == "label":
                return sector.label.pack()
            return sector.value

        def _check_part(self, address, part, expected, disk_words):
            if len(expected) != _PART_SIZES[part]:
                raise ValueError(f"{part} check buffer must be {_PART_SIZES[part]} words")
            effective = []
            for i, (want, have) in enumerate(zip(expected, disk_words)):
                if want == 0:
                    effective.append(have)
                    continue
                if want != have:
                    if part == "label":
                        self.stats.label_checks += 1
                        self.stats.label_check_failures += 1
                        raise LabelCheckError(i, want, have)
                    raise CheckError(part, i, want, have)
                effective.append(have)
            if part == "label":
                self.stats.label_checks += 1
            return effective

        def _write_part(self, sector, address, part, data):
            if len(data) != _PART_SIZES[part]:
                raise ValueError(f"{part} write buffer must be {_PART_SIZES[part]} words")
            data = list(data)
            if self.fault_injector is not None:
                data = self.fault_injector.filter_write(self, address, part, data)
            if part == "header":
                sector.header = Header.unpack(data)
            elif part == "label":
                sector.label = Label.unpack(data)
            else:
                sector.value = list(data)

    return ReferenceDrive(image, clock, fault_injector, **kwargs)
