"""Random-access update streams: read-modify-write on one file.

The editor of section 3.6 rewrites the middle of its scratch files; a
truncate-or-append stream cannot do that.  An update stream buffers one
page, serves gets and puts at a settable byte position, and flushes the
buffer (an ordinary label-checked value write) when the position leaves
the page or the stream closes.

Growing the file by putting at end-of-file is supported (it appends pages
through the normal change-length discipline); sparse positioning past the
end is not -- the paper's files have no holes.
"""

from __future__ import annotations

from typing import Optional

from ..errors import EndOfStream, StreamError
from ..fs.file import AltoFile, FULL_PAGE
from ..words import PAGE_DATA_BYTES, bytes_to_words, words_to_bytes
from .base import Stream


def open_update_stream(file: AltoFile, now: Optional[int] = None) -> Stream:
    """A byte-item stream supporting get, put, and set_position anywhere.

    ``get`` past the end raises :class:`EndOfStream`; ``put`` at the end
    extends the file.  ``length``/``read_position``/``set_position``/
    ``flush`` are provided as non-standard operations.
    """

    def _page_of(position: int) -> int:
        return position // PAGE_DATA_BYTES + 1

    def _load(stream: Stream, page_number: int) -> None:
        _flush(stream)
        state = stream.state
        file = state["file"]
        if page_number > file.last_page_number:
            # A fresh page past the current end: appending grows the chain.
            while file.last_page_number < page_number:
                file.append_page([], 0)
            state["buffer"] = bytearray()
        else:
            contents = file.read_page(page_number)
            state["buffer"] = bytearray(
                words_to_bytes(contents.value, nbytes=contents.label.length)
            )
        state["buffer_pn"] = page_number

    def _flush(stream: Stream) -> None:
        state = stream.state
        if state["buffer_pn"] < 0 or not state["dirty"]:
            return
        file = state["file"]
        pn = state["buffer_pn"]
        buffer = bytes(state["buffer"])
        if pn < file.last_page_number:
            # Interior page: must be full (it was when loaded).
            if len(buffer) != PAGE_DATA_BYTES:
                raise StreamError(f"interior page {pn} buffer is {len(buffer)} bytes")
            file.write_full_page(pn, bytes_to_words(buffer))
        else:
            file.write_last_page(bytes_to_words(buffer), length=len(buffer))
        state["dirty"] = False

    def _ensure_loaded(stream: Stream, position: int) -> None:
        page_number = _page_of(position)
        if stream.state["buffer_pn"] != page_number:
            _load(stream, page_number)

    def get(stream: Stream) -> int:
        state = stream.state
        if state["position"] >= state["length"]:
            raise EndOfStream(f"end of {state['file'].name}")
        _ensure_loaded(stream, state["position"])
        byte = state["buffer"][state["position"] % PAGE_DATA_BYTES]
        state["position"] += 1
        return byte

    def put(stream: Stream, item: int) -> None:
        if not 0 <= item <= 0xFF:
            raise StreamError(f"byte item out of range: {item}")
        state = stream.state
        position = state["position"]
        if position > state["length"]:
            raise StreamError(
                f"position {position} past end {state['length']}; files have no holes"
            )
        _ensure_loaded(stream, position)
        offset = position % PAGE_DATA_BYTES
        buffer = state["buffer"]
        if offset < len(buffer):
            buffer[offset] = item
        elif offset == len(buffer):
            buffer.append(item)
        else:
            raise StreamError(f"page buffer gap at offset {offset}")
        state["dirty"] = True
        state["position"] = position + 1
        state["length"] = max(state["length"], state["position"])
        if len(buffer) >= PAGE_DATA_BYTES and state["position"] % PAGE_DATA_BYTES == 0:
            # The page filled exactly: flushing now keeps the invariant
            # simple (a full last page triggers the append in _load later).
            _flush_full_tail(stream)

    def _flush_full_tail(stream: Stream) -> None:
        """A full buffer on the last page: commit it via append promotion."""
        state = stream.state
        file = state["file"]
        pn = state["buffer_pn"]
        if pn == file.last_page_number:
            file.append_page([], 0)
            file.write_full_page(pn, bytes_to_words(bytes(state["buffer"])))
            state["dirty"] = False
        else:
            _flush(stream)

    def endof(stream: Stream) -> bool:
        return stream.state["position"] >= stream.state["length"]

    def reset(stream: Stream) -> None:
        stream.state["position"] = 0

    def close(stream: Stream) -> None:
        _flush(stream)
        file = stream.state["file"]
        stamp = now if now is not None else round(file.page_io.drive.clock.now_s)
        file.touch(written=stamp)

    stream = Stream(
        get=get,
        put=put,
        endof=endof,
        reset=reset,
        close=close,
        file=file,
        position=0,
        length=file.byte_length,
        buffer=bytearray(),
        buffer_pn=-1,
        dirty=False,
    )

    def set_position(stream: Stream, position: int) -> None:
        if not 0 <= position <= stream.state["length"]:
            raise StreamError(
                f"position {position} outside [0, {stream.state['length']}]"
            )
        stream.state["position"] = position

    stream.set_operation("set_position", set_position)
    stream.set_operation("read_position", lambda s: s.state["position"])
    stream.set_operation("length", lambda s: s.state["length"])
    stream.set_operation("flush", lambda s: _flush(s))
    return stream
