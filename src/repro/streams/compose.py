"""Stream combinators: building larger streams out of smaller ones.

The openness thesis applied to streams: because every stream is just a
record of operation slots, wrapping one stream in another is ordinary
programming -- no system support needed.  These combinators are the ones
the Alto world actually used (tees for logging terminal sessions, filters
for character translation, counters for accounting).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..errors import EndOfStream
from .base import Stream


def tee_stream(*sinks: Stream) -> Stream:
    """A put-stream that forwards every item to all *sinks*."""
    return Stream(
        put=lambda s, item: [sink.put(item) for sink in s.state["sinks"]] and None,
        endof=lambda s: False,
        reset=lambda s: [sink.reset() for sink in s.state["sinks"]] and None,
        sinks=list(sinks),
    )


def map_read_stream(source: Stream, fn: Callable[[Any], Any]) -> Stream:
    """A get-stream applying *fn* to each item of *source*."""
    return Stream(
        get=lambda s: s.state["fn"](s.state["source"].get()),
        endof=lambda s: s.state["source"].endof(),
        reset=lambda s: s.state["source"].reset(),
        source=source,
        fn=fn,
    )


def map_write_stream(sink: Stream, fn: Callable[[Any], Any]) -> Stream:
    """A put-stream applying *fn* to each item before it reaches *sink*."""
    return Stream(
        put=lambda s, item: s.state["sink"].put(s.state["fn"](item)),
        endof=lambda s: False,
        reset=lambda s: s.state["sink"].reset(),
        sink=sink,
        fn=fn,
    )


def filter_read_stream(source: Stream, keep: Callable[[Any], bool]) -> Stream:
    """A get-stream passing through only items satisfying *keep*.

    ``endof`` must look ahead, so it buffers at most one item in the
    stream's own state record -- state lives in the record, as always.
    """

    def _fill(stream: Stream) -> bool:
        if stream.state["pending"] is not None:
            return True
        source = stream.state["source"]
        while not source.endof():
            item = source.get()
            if stream.state["keep"](item):
                stream.state["pending"] = item
                return True
        return False

    def get(stream: Stream) -> Any:
        if not _fill(stream):
            raise EndOfStream("filtered stream exhausted")
        item = stream.state["pending"]
        stream.state["pending"] = None
        return item

    def reset(stream: Stream) -> None:
        stream.state["source"].reset()
        stream.state["pending"] = None

    return Stream(
        get=get,
        endof=lambda s: not _fill(s),
        reset=reset,
        source=source,
        keep=keep,
        pending=None,
    )


def counting_stream(inner: Stream) -> Stream:
    """Wrap *inner*, counting gets and puts in ``state['gets'|'puts']``.

    Demonstrates slot replacement: the wrapper presents the same protocol
    with extra behaviour layered on.
    """

    def get(stream: Stream) -> Any:
        item = stream.state["inner"].get()
        stream.state["gets"] += 1
        return item

    def put(stream: Stream, item: Any) -> None:
        stream.state["inner"].put(item)
        stream.state["puts"] += 1

    wrapper = Stream(
        get=get if inner.supports("get") else None,
        put=put if inner.supports("put") else None,
        endof=lambda s: s.state["inner"].endof(),
        reset=lambda s: s.state["inner"].reset(),
        close=lambda s: s.state["inner"].close(),
        inner=inner,
        gets=0,
        puts=0,
    )
    wrapper.set_operation("counts", lambda s: (s.state["gets"], s.state["puts"]))
    return wrapper


def concatenate_read_streams(sources: Sequence[Stream]) -> Stream:
    """A get-stream producing all items of each source in turn."""

    def _advance(stream: Stream) -> None:
        while stream.state["index"] < len(stream.state["sources"]):
            if not stream.state["sources"][stream.state["index"]].endof():
                return
            stream.state["index"] += 1

    def get(stream: Stream) -> Any:
        _advance(stream)
        if stream.state["index"] >= len(stream.state["sources"]):
            raise EndOfStream("concatenated streams exhausted")
        return stream.state["sources"][stream.state["index"]].get()

    def endof(stream: Stream) -> bool:
        _advance(stream)
        return stream.state["index"] >= len(stream.state["sources"])

    def reset(stream: Stream) -> None:
        for source in stream.state["sources"]:
            source.reset()
        stream.state["index"] = 0

    return Stream(get=get, endof=endof, reset=reset, sources=list(sources), index=0)
