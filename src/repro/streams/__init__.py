"""OS6-style streams (section 2): the protocol, disk/keyboard/display
implementations, in-memory streams, and combinators."""

from .base import STANDARD_OPERATIONS, Stream, copy_stream
from .compose import (
    concatenate_read_streams,
    counting_stream,
    filter_read_stream,
    map_read_stream,
    map_write_stream,
    tee_stream,
)
from .disk_stream import (
    BYTE_ITEMS,
    WORD_ITEMS,
    open_read_stream,
    open_write_stream,
    read_string,
    write_string,
)
from .display import DisplayDevice, display_stream
from .raster import MemoryRaster, raster_stream, raster_words
from .update_stream import open_update_stream
from .keyboard import DEBUG_KEY, KeyboardDevice, keyboard_stream
from .memory_stream import (
    byte_read_stream,
    byte_write_stream,
    null_stream,
    string_read_stream,
    string_write_stream,
    vector_read_stream,
    vector_write_stream,
)

__all__ = [
    "BYTE_ITEMS",
    "DEBUG_KEY",
    "DisplayDevice",
    "KeyboardDevice",
    "MemoryRaster",
    "STANDARD_OPERATIONS",
    "Stream",
    "WORD_ITEMS",
    "byte_read_stream",
    "byte_write_stream",
    "concatenate_read_streams",
    "copy_stream",
    "counting_stream",
    "display_stream",
    "filter_read_stream",
    "keyboard_stream",
    "map_read_stream",
    "map_write_stream",
    "null_stream",
    "open_read_stream",
    "raster_stream",
    "raster_words",
    "open_update_stream",
    "open_write_stream",
    "read_string",
    "string_read_stream",
    "string_write_stream",
    "tee_stream",
    "vector_read_stream",
    "vector_write_stream",
    "write_string",
]
