"""A display raster that lives in the simulated memory.

On the real Alto the display was refreshed straight out of main memory (the
bitmap took a substantial fraction of the 64k), which had a striking
consequence for world swapping: OutLoad captured the *screen image* along
with everything else, and InLoad put the caller's screen back.  The plain
:class:`~repro.streams.display.DisplayDevice` keeps its text on the Python
side and misses that behaviour; ``MemoryRaster`` stores the character cells
in a :class:`~repro.memory.core.Region`, so whatever owns that memory
(world images, Junta) owns the screen contents too.

Layout inside the region: word 0 = cursor column, word 1 = cursor line,
then ``lines`` rows of ``columns`` words, one character code per word
(0 renders as a space).
"""

from __future__ import annotations

from typing import List

from ..memory.core import Region
from .base import Stream

_CURSOR_COLUMN = 0
_CURSOR_LINE = 1
_CELLS = 2


def raster_words(columns: int, lines: int) -> int:
    """Words of memory a raster of this geometry needs."""
    return _CELLS + columns * lines


class MemoryRaster:
    """A scrolling character raster stored in simulated memory."""

    def __init__(self, region: Region, columns: int = 64, lines: int = 16) -> None:
        if columns < 1 or lines < 1:
            raise ValueError("degenerate raster geometry")
        if len(region) < raster_words(columns, lines):
            raise ValueError(
                f"raster needs {raster_words(columns, lines)} words, region has {len(region)}"
            )
        self.region = region
        self.columns = columns
        self.lines = lines

    # -- cursor ------------------------------------------------------------------

    def _cursor(self) -> tuple:
        return self.region.read(_CURSOR_COLUMN), self.region.read(_CURSOR_LINE)

    def _set_cursor(self, column: int, line: int) -> None:
        self.region.write(_CURSOR_COLUMN, column)
        self.region.write(_CURSOR_LINE, line)

    def _cell(self, column: int, line: int) -> int:
        return _CELLS + line * self.columns + column

    # -- writing -------------------------------------------------------------------

    def clear(self) -> None:
        self.region.fill(0)

    def put_char(self, ch: str) -> None:
        column, line = self._cursor()
        if ch == "\n":
            column, line = 0, line + 1
        elif ch == "\r":
            column = 0
        elif ch == "\b":
            if column > 0:
                column -= 1
                self.region.write(self._cell(column, line), 0)
        elif ch == "\f":
            self.clear()
            return
        else:
            if column >= self.columns:
                column, line = 0, line + 1
                line = self._maybe_scroll(line)
            self.region.write(self._cell(column, line), ord(ch))
            column += 1
        line = self._maybe_scroll(line)
        self._set_cursor(column, line)

    def _maybe_scroll(self, line: int) -> int:
        while line >= self.lines:
            # Move every row up one; blank the last.
            for row in range(1, self.lines):
                data = self.region.read_block(self._cell(0, row), self.columns)
                self.region.write_block(self._cell(0, row - 1), data)
            self.region.write_block(self._cell(0, self.lines - 1), [0] * self.columns)
            line -= 1
        return line

    def write(self, text: str) -> None:
        for ch in text:
            self.put_char(ch)

    # -- reading ---------------------------------------------------------------------

    def line_text(self, line: int) -> str:
        codes = self.region.read_block(self._cell(0, line), self.columns)
        return "".join(chr(c) if c else " " for c in codes).rstrip()

    def visible_lines(self) -> List[str]:
        return [self.line_text(line) for line in range(self.lines)]

    def text(self) -> str:
        return "\n".join(self.visible_lines()).rstrip("\n")


def raster_stream(raster: MemoryRaster) -> Stream:
    """The standard display stream over a memory raster."""
    stream = Stream(
        put=lambda s, item: s.state["raster"].put_char(
            item if isinstance(item, str) else chr(item)
        ),
        reset=lambda s: s.state["raster"].clear(),
        endof=lambda s: False,
        raster=raster,
    )
    stream.set_operation("text", lambda s: s.state["raster"].text())
    return stream
