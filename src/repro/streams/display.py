"""The display: a character raster and its output stream.

The Alto's bitmap display is represented here as a text raster (the system
display stream "simulate[d] a teletype terminal", section 6 -- which is
exactly what experimental programs used Junta to remove).  The device keeps
a fixed-size screen with scrolling; the stream puts characters.
"""

from __future__ import annotations

from typing import List

from .base import Stream

DEFAULT_COLUMNS = 80
DEFAULT_LINES = 40


class DisplayDevice:
    """A scrolling text screen."""

    def __init__(self, columns: int = DEFAULT_COLUMNS, lines: int = DEFAULT_LINES) -> None:
        if columns < 1 or lines < 1:
            raise ValueError("degenerate display geometry")
        self.columns = columns
        self.lines = lines
        self._screen: List[str] = [""]
        self.scrolled = 0

    # -- writing -------------------------------------------------------------------

    def put_char(self, ch: str) -> None:
        if ch == "\n":
            self._newline()
        elif ch == "\r":
            self._screen[-1] = ""
        elif ch == "\b":
            self._screen[-1] = self._screen[-1][:-1]
        elif ch == "\f":
            self.clear()
        else:
            if len(self._screen[-1]) >= self.columns:
                self._newline()
            self._screen[-1] += ch

    def write(self, text: str) -> None:
        for ch in text:
            self.put_char(ch)

    def _newline(self) -> None:
        self._screen.append("")
        while len(self._screen) > self.lines:
            self._screen.pop(0)
            self.scrolled += 1

    def clear(self) -> None:
        self._screen = [""]

    # -- reading (for tests and the examples) ------------------------------------------

    def text(self) -> str:
        return "\n".join(self._screen)

    def visible_lines(self) -> List[str]:
        return list(self._screen)

    def current_line(self) -> str:
        return self._screen[-1]


def display_stream(device: DisplayDevice) -> Stream:
    """The standard display output stream."""
    stream = Stream(
        put=lambda s, item: s.state["device"].put_char(item if isinstance(item, str) else chr(item)),
        reset=lambda s: s.state["device"].clear(),
        endof=lambda s: False,
        device=device,
    )
    stream.set_operation("text", lambda s: s.state["device"].text())
    return stream
