"""The stream protocol (section 2), after Stoy and Strachey's OS6.

"A stream is an object that can produce or consume items. ... There is a
standard set of operations defined on every stream: Get ... Put ... Reset
... Test for end of input; and a few others. ... A stream is represented by
a record whose first few components contain procedures that provide that
stream's implementation of the standard operations.  The rest of the record
holds state information ... It is also possible for the record to contain
procedures that implement non-standard operations."

``Stream`` is that record: the standard operations are replaceable slots
(they "can change from time to time, even for a particular stream"), each
slot procedure receives the stream itself as its first argument and keeps
its state *in* the stream, and non-standard operations live in the same
namespace via :meth:`call`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional

from ..errors import EndOfStream, OperationNotSupported

#: The standard operation names every stream record reserves slots for.
STANDARD_OPERATIONS = ("get", "put", "reset", "endof", "close")


class Stream:
    """A stream record: operation slots plus arbitrary state.

    Create one either by passing slot procedures directly or by subclassing
    and assigning slots in ``__init__``.  Unset standard operations raise
    :class:`OperationNotSupported` ("normally only one of [Get/Put] is
    defined").
    """

    def __init__(
        self,
        get: Optional[Callable] = None,
        put: Optional[Callable] = None,
        reset: Optional[Callable] = None,
        endof: Optional[Callable] = None,
        close: Optional[Callable] = None,
        **state: Any,
    ) -> None:
        self.ops: Dict[str, Callable] = {}
        for name, fn in zip(STANDARD_OPERATIONS, (get, put, reset, endof, close)):
            if fn is not None:
                self.ops[name] = fn
        self.state: Dict[str, Any] = dict(state)
        self.closed = False

    # ------------------------------------------------------------------------
    # Standard operations
    # ------------------------------------------------------------------------

    def get(self) -> Any:
        """Get an item from the stream."""
        return self._invoke("get")

    def put(self, item: Any) -> None:
        """Put an item into the stream."""
        self._invoke("put", item)

    def reset(self) -> None:
        """Put the stream into its standard initial state (the exact
        meaning depends on the type of the stream)."""
        self._invoke("reset")

    def endof(self) -> bool:
        """Test for end of input."""
        return bool(self._invoke("endof"))

    def close(self) -> None:
        """Finish with the stream (flush buffers, update dates...)."""
        if self.closed:
            return
        if "close" in self.ops:
            self._invoke("close")
        self.closed = True

    # ------------------------------------------------------------------------
    # The open part: replaceable and non-standard operations
    # ------------------------------------------------------------------------

    def set_operation(self, name: str, fn: Callable) -> None:
        """Install or replace an operation slot (standard or not)."""
        self.ops[name] = fn

    def supports(self, name: str) -> bool:
        return name in self.ops

    def call(self, name: str, *args: Any) -> Any:
        """Invoke a non-standard operation by name.

        "A program that uses a non-standard operation sacrifices
        compatibility, since it will only work with streams for which that
        operation is implemented."
        """
        return self._invoke(name, *args)

    def _invoke(self, name: str, *args: Any) -> Any:
        fn = self.ops.get(name)
        if fn is None:
            raise OperationNotSupported(f"stream does not implement {name!r}")
        return fn(self, *args)

    # ------------------------------------------------------------------------
    # Python conveniences (not part of the 1979 protocol, but harmless)
    # ------------------------------------------------------------------------

    def __enter__(self) -> "Stream":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __iter__(self) -> Iterator[Any]:
        while not self.endof():
            yield self.get()


def copy_stream(source: Stream, sink: Stream, count: Optional[int] = None) -> int:
    """Copy items from *source* to *sink*; the universal stream idiom.

    Copies until end of input (or *count* items); returns items copied.
    """
    copied = 0
    while count is None or copied < count:
        if source.endof():
            break
        try:
            item = source.get()
        except EndOfStream:
            break
        sink.put(item)
        copied += 1
    return copied
