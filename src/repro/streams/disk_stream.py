"""Disk file streams: buffered byte/word items over an AltoFile.

Section 2: "the procedure to create a stream object of concrete type 'disk
file stream' takes as parameters two other objects: a disk object which
implements operations to access the storage on which the file resides, and
a zone object which is used to acquire and release working storage for the
stream."  Our factory takes the same parameters (the file already carries
its disk; a zone may be supplied for buffer accounting, defaulted to none,
matching the defaulting described in section 5.2).

A read stream buffers one page; ``set_position`` gives random access.  A
write stream builds the file strictly sequentially: the partial tail page
lives in the buffer and is committed with the change-length operation at
close, so a crash mid-stream loses at most the unflushed tail while the
file structure stays consistent.
"""

from __future__ import annotations

from typing import Optional

from ..errors import EndOfStream, StreamError
from ..fs.file import AltoFile, FULL_PAGE
from ..words import PAGE_DATA_BYTES, bytes_to_words, words_to_bytes
from .base import Stream

BYTE_ITEMS = "byte"
WORD_ITEMS = "word"
_ITEM_SIZES = {BYTE_ITEMS: 1, WORD_ITEMS: 2}


# ----------------------------------------------------------------------------
# Read streams
# ----------------------------------------------------------------------------


def open_read_stream(
    file: AltoFile,
    items: str = BYTE_ITEMS,
    zone=None,
    update_dates: bool = True,
    now: Optional[int] = None,
) -> Stream:
    """A stream producing the file's data as bytes (ints) or words."""
    item_size = _item_size(items)

    def _load(stream: Stream, page_number: int) -> None:
        contents = stream.state["file"].read_page(page_number)
        stream.state["buffer"] = words_to_bytes(contents.value, nbytes=contents.label.length)
        stream.state["buffer_pn"] = page_number

    def get(stream: Stream):
        position = stream.state["position"]
        if position >= stream.state["length"]:
            raise EndOfStream(f"end of {stream.state['file'].name}")
        page_number = position // PAGE_DATA_BYTES + 1
        if stream.state["buffer_pn"] != page_number:
            _load(stream, page_number)
        offset = position % PAGE_DATA_BYTES
        buffer = stream.state["buffer"]
        stream.state["position"] = position + item_size
        if item_size == 1:
            return buffer[offset]
        return (buffer[offset] << 8) | buffer[offset + 1]

    def endof(stream: Stream) -> bool:
        return stream.state["position"] >= stream.state["length"]

    def reset(stream: Stream) -> None:
        stream.state["position"] = 0

    def close(stream: Stream) -> None:
        if update_dates:
            file = stream.state["file"]
            stamp = now if now is not None else _file_now(file)
            file.touch(read=stamp)

    stream = Stream(
        get=get,
        endof=endof,
        reset=reset,
        close=close,
        file=file,
        zone=zone,
        position=0,
        length=file.byte_length,
        buffer=b"",
        buffer_pn=-1,
    )
    stream.set_operation("read_position", lambda s: s.state["position"])
    stream.set_operation("set_position", _set_read_position(item_size))
    stream.set_operation("length", lambda s: s.state["length"])
    return stream


def _set_read_position(item_size: int):
    def set_position(stream: Stream, position: int) -> None:
        if position % item_size:
            raise StreamError(f"position {position} not aligned to {item_size}-byte items")
        stream.state["position"] = max(0, min(position, stream.state["length"]))

    return set_position


# ----------------------------------------------------------------------------
# Write streams
# ----------------------------------------------------------------------------


def open_write_stream(
    file: AltoFile,
    items: str = BYTE_ITEMS,
    append: bool = False,
    zone=None,
    now: Optional[int] = None,
) -> Stream:
    """A stream consuming bytes/words into the file.

    By default the file is truncated; with ``append`` writing continues
    from the current end.  The tail page is buffered in memory and
    committed at close (the change-length label operation).
    """
    item_size = _item_size(items)
    if append:
        tail = file.read_page(file.last_page_number)
        buffer = bytearray(words_to_bytes(tail.value, nbytes=tail.label.length))
    else:
        file.write_data(b"")
        buffer = bytearray()

    def _flush_full(stream: Stream) -> None:
        """Commit the buffered (now full) tail page and start a new one."""
        file = stream.state["file"]
        pn = file.last_page_number
        file.append_page([], 0)  # promotes page pn to a full interior page
        file.write_full_page(pn, bytes_to_words(bytes(stream.state["buffer"])))
        stream.state["buffer"] = bytearray()

    def put(stream: Stream, item: int) -> None:
        buffer = stream.state["buffer"]
        if item_size == 1:
            if not 0 <= item <= 0xFF:
                raise StreamError(f"byte item out of range: {item}")
            buffer.append(item)
        else:
            if not 0 <= item <= 0xFFFF:
                raise StreamError(f"word item out of range: {item}")
            buffer.append(item >> 8)
            buffer.append(item & 0xFF)
        if len(buffer) >= PAGE_DATA_BYTES:
            _flush_full(stream)

    def reset(stream: Stream) -> None:
        """Standard initial state for a write stream: an empty file."""
        stream.state["file"].write_data(b"")
        stream.state["buffer"] = bytearray()

    def close(stream: Stream) -> None:
        file = stream.state["file"]
        tail = bytes(stream.state["buffer"])
        file.write_last_page(bytes_to_words(tail), length=len(tail))
        stamp = now if now is not None else _file_now(file)
        file.touch(written=stamp)

    stream = Stream(
        put=put,
        reset=reset,
        endof=lambda s: False,
        close=close,
        file=file,
        zone=zone,
        buffer=buffer,
    )
    stream.set_operation("flush", lambda s: None if len(s.state["buffer"]) < PAGE_DATA_BYTES else _flush_full(s))
    stream.set_operation(
        "write_position",
        lambda s: (s.state["file"].last_page_number - 1) * PAGE_DATA_BYTES + len(s.state["buffer"]),
    )
    return stream


# ----------------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------------


def _item_size(items: str) -> int:
    if items not in _ITEM_SIZES:
        raise StreamError(f"unknown item kind {items!r} (use 'byte' or 'word')")
    return _ITEM_SIZES[items]


def _file_now(file: AltoFile) -> int:
    return round(file.page_io.drive.clock.now_s)


def write_string(stream: Stream, text: str) -> None:
    """Put each character code of *text* (byte streams only)."""
    for ch in text.encode("ascii"):
        stream.put(ch)


def read_string(stream: Stream, count: Optional[int] = None) -> str:
    """Get up to *count* bytes (or all remaining) as a string."""
    out = bytearray()
    while (count is None or len(out) < count) and not stream.endof():
        out.append(stream.get())
    return out.decode("ascii", errors="replace")
