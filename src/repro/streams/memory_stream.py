"""In-memory streams: vectors of items, byte strings, and sinks.

These are the cheapest concrete stream implementations and double as the
reference semantics for the protocol tests.  ``Reset`` returns a read
stream to its first item and empties a write stream -- the "standard
initial state" for these types.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence

from ..errors import EndOfStream
from .base import Stream


def vector_read_stream(items: Sequence[Any]) -> Stream:
    """A stream producing the items of a sequence, in order."""

    def get(stream: Stream) -> Any:
        if stream.state["position"] >= len(stream.state["items"]):
            raise EndOfStream("vector read stream exhausted")
        item = stream.state["items"][stream.state["position"]]
        stream.state["position"] += 1
        return item

    def endof(stream: Stream) -> bool:
        return stream.state["position"] >= len(stream.state["items"])

    def reset(stream: Stream) -> None:
        stream.state["position"] = 0

    stream = Stream(get=get, endof=endof, reset=reset, items=list(items), position=0)
    stream.set_operation("read_position", lambda s: s.state["position"])
    stream.set_operation(
        "set_position",
        lambda s, p: s.state.__setitem__("position", max(0, min(p, len(s.state["items"])))),
    )
    return stream


def vector_write_stream() -> Stream:
    """A stream consuming items into a growing list (``state['items']``)."""

    def put(stream: Stream, item: Any) -> None:
        stream.state["items"].append(item)

    def reset(stream: Stream) -> None:
        stream.state["items"].clear()

    stream = Stream(put=put, reset=reset, endof=lambda s: False, items=[])
    stream.set_operation("contents", lambda s: list(s.state["items"]))
    return stream


def byte_read_stream(data: bytes) -> Stream:
    """A stream producing the bytes of *data* as ints."""
    return vector_read_stream(list(data))


def byte_write_stream() -> Stream:
    """A stream consuming byte values; ``call('bytes')`` yields them."""
    stream = vector_write_stream()
    stream.set_operation("bytes", lambda s: bytes(s.state["items"]))
    return stream


def string_read_stream(text: str) -> Stream:
    """A stream producing the characters of *text*."""
    return vector_read_stream(list(text))


def string_write_stream() -> Stream:
    """A stream consuming characters; ``call('contents')`` joins them."""
    stream = vector_write_stream()
    stream.set_operation("string", lambda s: "".join(s.state["items"]))
    return stream


def null_stream() -> Stream:
    """Accepts everything, produces nothing (the /dev/null of streams)."""
    return Stream(
        put=lambda s, item: None,
        get=lambda s: (_ for _ in ()).throw(EndOfStream("null stream")),
        endof=lambda s: True,
        reset=lambda s: None,
    )
