"""The keyboard: an interrupt-fed type-ahead buffer and its stream.

Section 2: "the current version of the system has only two processes, one
of which puts keyboard input characters into a buffer, while the other does
all the interesting work."  Section 5.2: "The keyboard input buffer is
present nearly always, so that any characters typed ahead by the user when
running one program are saved for interpretation by the next."

``KeyboardDevice`` is the hardware+interrupt side: test scripts and
examples call :meth:`type_text` to simulate keystrokes, which land in the
type-ahead buffer immediately (the interrupt handler "has no critical
sections").  ``keyboard_stream`` is the reading side used by programs and
the Executive.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..errors import EndOfStream
from .base import Stream

#: The DEBUG key of section 4 ("when the user strikes a special DEBUG key").
DEBUG_KEY = "\x04"


class KeyboardDevice:
    """The type-ahead buffer, fed by the simulated keyboard interrupt."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._buffer: Deque[str] = deque()
        self.dropped = 0
        self.debug_handler = None

    # -- the interrupt side ------------------------------------------------------

    def key_down(self, ch: str) -> None:
        """One keystroke arrives (interrupt level)."""
        if ch == DEBUG_KEY and self.debug_handler is not None:
            self.debug_handler()
            return
        if len(self._buffer) >= self.capacity:
            self.dropped += 1  # the real hardware beeped; we count
            return
        self._buffer.append(ch)

    def type_text(self, text: str) -> None:
        """Simulate the user typing *text* (possibly ahead of any reader)."""
        for ch in text:
            self.key_down(ch)

    # -- the reading side -----------------------------------------------------------

    def available(self) -> int:
        return len(self._buffer)

    def read_key(self) -> str:
        if not self._buffer:
            raise EndOfStream("keyboard buffer empty")
        return self._buffer.popleft()

    def peek(self) -> Optional[str]:
        return self._buffer[0] if self._buffer else None

    def flush(self) -> None:
        self._buffer.clear()

    def snapshot(self) -> str:
        """The buffered type-ahead, unconsumed (used by world swap: the
        buffer is part of the memory image and survives program changes)."""
        return "".join(self._buffer)

    def restore(self, text: str) -> None:
        self.flush()
        for ch in text:
            self._buffer.append(ch)


def keyboard_stream(device: KeyboardDevice) -> Stream:
    """The standard keyboard stream: Get pops the type-ahead buffer.

    ``endof`` reports buffer-empty (an interactive stream has no true end);
    Get on an empty buffer raises :class:`EndOfStream` rather than blocking,
    since the system is single-threaded apart from the keyboard interrupt.
    """
    stream = Stream(
        get=lambda s: s.state["device"].read_key(),
        endof=lambda s: s.state["device"].available() == 0,
        reset=lambda s: s.state["device"].flush(),
        device=device,
    )
    stream.set_operation("peek", lambda s: s.state["device"].peek())
    stream.set_operation("available", lambda s: s.state["device"].available())
    return stream
