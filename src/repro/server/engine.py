"""The request engine: many client sessions multiplexed onto one FileSystem.

:class:`FileServer` is a deterministic, simulated-time, **event-driven**
server.  ``poll()`` is one cycle of its event loop: drain the wire and
wake the sessions packets arrived for, admit each frame under the
:class:`~repro.server.qos.AdmissionCurve` (rejecting sheds with
``ST_BUSY`` -- backpressure the client's retry/backoff absorbs), run the
**ready queue** -- only sessions with admitted work are visited, in QoS
class rotation with per-class request allowances -- then finish with
**one** write-back flush covering every write the cycle performed and
the timers of the :class:`~repro.server.events.EventQueue` (maintenance
slices, and anything else scheduled against the simulated clock).

Sessions with nothing queued **sleep**: they cost nothing per cycle, so
one server holds ten thousand concurrent sessions and each poll's work
is proportional to the *ready* set, not the session count (benchmark
E17).  The single-flush batching is still where multiplexed serving
beats sequential serving (see ``benchmarks/bench_server.py``), and the
default configuration -- every client ``interactive``, cliff admission
-- services requests in exactly the order the PR-5 round-robin loop did
(:class:`~repro.server.polled.PolledFileServer` keeps that loop alive as
the differential reference; ``tests/server/test_engine_equivalence.py``
proves the equivalence).

Everything is observable: each request runs under a ``server.request``
span, and the engine keeps counters/gauges in the machine's metrics
registry (``server.requests``, ``server.rejected``, ``server.wakeups``,
``server.sessions_evicted``, ``server.queue.depth``,
``server.request_us``, ...; see OBSERVABILITY.md).

>>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
>>> from repro.net import PacketNetwork
>>> from repro.server import FileClient, FileServer
>>> fs = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
>>> net = PacketNetwork(clock=fs.drive.clock)
>>> net.attach("fileserver"); net.attach("ws")
>>> server = FileServer(fs, net)
>>> client = FileClient(net, "ws", pump=server.poll)
>>> client.write_file("memo.txt", b"an afternoon's user code")
24
>>> client.read_file("memo.txt")
b"an afternoon's user code"
"""

from __future__ import annotations

import random
from bisect import bisect_right
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..errors import (
    DirectoryError,
    DiskFull,
    FileNotFound,
    FileSystemError,
    ProtocolError,
    ServerError,
)
from ..fs.file import FULL_PAGE
from ..net.network import Packet, PacketNetwork
from ..words import words_to_string
from .events import EventQueue
from .protocol import (
    FLAG_CREATE,
    FrameAssembler,
    MAX_BATCH_PAGES,
    OP_CLOSE,
    OP_LIST,
    OP_OPEN,
    OP_READ,
    OP_WRITE,
    Request,
    Response,
    ST_BAD_HANDLE,
    ST_BAD_PAGE,
    ST_BAD_REQUEST,
    ST_BUSY,
    ST_ERROR,
    ST_NAMES,
    ST_NOT_FOUND,
    ST_OK,
    encode_response,
)
from .qos import (
    DEFAULT_QOS_WEIGHTS,
    QOS_CLASSES,
    QOS_INTERACTIVE,
    AdmissionCurve,
)

#: Default bound on admitted-but-unserviced requests across all clients.
DEFAULT_MAX_PENDING = 64

#: Simulated CPU cost charged per serviced request (decode + dispatch).
SERVICE_CPU_US = 150

#: Simulated CPU cost charged per ``poll()`` wakeup (queue scan, flush
#: decision) -- the fixed cost that batching amortizes.
POLL_CPU_US = 300


class FileServer:
    """Serves the wire protocol of :mod:`repro.server.protocol` over a
    :class:`~repro.net.network.PacketNetwork` from one
    :class:`~repro.fs.filesystem.FileSystem`.

    The server is passive: it runs only when :meth:`poll` is called, which
    keeps every run deterministic -- the interleaving is exactly the
    caller's schedule.  Scheduling is by QoS class: each visit to a class
    may serve ``weight * quantum`` requests, round-robin over that class's
    ready sessions in first-admission order.  With every client in the
    default ``interactive`` class this degenerates to the PR-5 behaviour
    exactly: ``quantum`` requests per client per turn, strict alternation
    under load.
    """

    def __init__(
        self,
        fs,
        network: PacketNetwork,
        host: str = "fileserver",
        max_pending: int = DEFAULT_MAX_PENDING,
        quantum: int = 1,
        admission: Optional[AdmissionCurve] = None,
        qos_weights: Optional[Dict[str, int]] = None,
        admission_seed: int = 1979,
    ) -> None:
        self.fs = fs
        self.network = network
        self.host = host
        self.max_pending = max_pending
        self.quantum = quantum
        #: The admission policy; defaults to the hard cliff at
        #: ``max_pending`` (byte-identical to the PR-5 engine).
        self.admission = (admission if admission is not None
                          else AdmissionCurve.cliff(max_pending))
        #: Requests allowed per class visit, per unit of ``quantum``.
        self.qos_weights = dict(DEFAULT_QOS_WEIGHTS if qos_weights is None
                                else qos_weights)
        self.clock = fs.drive.clock
        self.obs = self.clock.obs
        self.assembler = FrameAssembler()
        #: Timers keyed by the simulated clock, fired at the end of every
        #: poll cycle (the maintenance slice rides here).
        self.timers = EventQueue(self.clock)
        from .session import Session

        self._session_type = Session
        self.sessions: Dict[str, "Session"] = {}
        #: Per-client FIFOs of admitted work; a client has an entry only
        #: while it has queued requests (otherwise its session sleeps).
        self._queues: Dict[str, Deque[Tuple[Request, int]]] = {}
        #: First-admission order, the round-robin tie-break: stable for a
        #: client's lifetime so the schedule matches the polled engine.
        self._client_seq: Dict[str, int] = {}
        self._next_client_seq = 0
        #: The ready queue: per-class sets of clients with queued work.
        self._ready: Dict[str, Set[str]] = {cls: set() for cls in QOS_CLASSES}
        #: Per-class scan cursor (last served client's seq; -1 = start).
        self._cursor: Dict[str, int] = {cls: -1 for cls in QOS_CLASSES}
        self._class_cursor = 0
        self._qos: Dict[str, str] = {}
        self._pending = 0
        self._in_cycle = False
        self._rng = random.Random(f"admission:{admission_seed}:{host}")
        self._maintenance = None
        self._maint_event = None
        registry = self.obs.registry
        self._c_requests = registry.counter("server.requests")
        self._c_rejected = registry.counter("server.rejected")
        self._c_shaped = registry.counter("server.shaped")
        self._c_replayed = registry.counter("server.replayed")
        self._c_errors = registry.counter("server.errors")
        self._c_flushes = registry.counter("server.flushes")
        self._c_polls = registry.counter("server.polls")
        self._c_wakeups = registry.counter("server.wakeups")
        self._c_evicted = registry.counter("server.sessions_evicted")
        self._c_timer_events = registry.counter("server.timer_events")
        self._c_pages_read = registry.counter("server.pages_read")
        self._c_pages_written = registry.counter("server.pages_written")
        self._c_sessions = registry.counter("server.sessions")
        self._g_depth = registry.gauge("server.queue.depth")
        # The latency decomposition: request = queue wait + service, all in
        # simulated microseconds, observed at the same clock read so the
        # identity holds exactly per request.
        self._h_request_us = registry.histogram("server.request_us")
        self._h_queue_us = registry.histogram("server.queue_us")
        self._h_service_us = registry.histogram("server.service_us")

    # ------------------------------------------------------------------------
    # QoS and maintenance wiring
    # ------------------------------------------------------------------------

    def set_qos(self, client: str, qos: str) -> None:
        """Assign *client* to a QoS class (default ``interactive``).

        Takes effect immediately: queued work moves to the new class's
        ready set, and the next admission decision uses the new class's
        watermarks.

        >>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
        >>> from repro.net import PacketNetwork
        >>> fs = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
        >>> net = PacketNetwork(clock=fs.drive.clock)
        >>> net.attach("fileserver")
        >>> server = FileServer(fs, net)
        >>> server.set_qos("ws000", "bulk")
        >>> server.qos_of("ws000")
        'bulk'
        """
        if qos not in QOS_CLASSES:
            raise ServerError(f"unknown QoS class {qos!r}")
        old = self._qos.get(client, QOS_INTERACTIVE)
        self._qos[client] = qos
        if old != qos and client in self._ready[old]:
            self._ready[old].discard(client)
            self._ready[qos].add(client)
        session = self.sessions.get(client)
        if session is not None:
            session.qos = qos

    def qos_of(self, client: str) -> str:
        """The QoS class *client* is admitted and scheduled under."""
        return self._qos.get(client, QOS_INTERACTIVE)

    @property
    def maintenance(self):
        """Optional :class:`repro.fs.online.OnlineMaintenance`: when set,
        one bounded maintenance slice runs as a self-re-arming timer at
        the end of every poll cycle, interleaving scavenge/compaction
        with request service."""
        return self._maintenance

    @maintenance.setter
    def maintenance(self, maint) -> None:
        self._maintenance = maint
        if maint is not None and self._maint_event is None:
            self._maint_event = self.timers.at(
                self.clock.now_us, self._maintenance_tick, label="maintenance")

    def _maintenance_tick(self) -> None:
        """One maintenance slice, re-armed for the next cycle."""
        self._maint_event = None
        if self._maintenance is None:
            return
        self._maintenance.step()
        self._maint_event = self.timers.at(
            self.clock.now_us, self._maintenance_tick, label="maintenance")

    # ------------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------------

    def poll(self, budget: Optional[int] = None) -> int:
        """Run one event-loop cycle; returns the number of requests served.

        Ingest (wake sessions packets arrived for) -> admit under the
        curve -> run the ready queue (up to *budget* requests) -> one
        batched flush -> fire due timers.  Requests left unserviced by a
        budget stay queued for the next cycle, and the class/session
        cursors persist so a budgeted backlog drains fairly.
        """
        self._c_polls.inc()
        self._before_cycle()
        self.clock.advance_us(POLL_CPU_US, "server.cpu")
        self._ingest()
        self._in_cycle = True
        try:
            served, wrote = self._run_scheduler(budget)
        finally:
            self._in_cycle = False
        if wrote:
            with self.obs.span("server.flush", "server"):
                drained = self.fs.flush()
            self._c_flushes.inc()
            for session in self.sessions.values():
                for handle in session.handles.values():
                    handle.wrote = False
            del drained
        fired = self.timers.fire_due()
        if fired:
            self._c_timer_events.inc(fired)
        self._after_cycle()
        return served

    def _before_cycle(self) -> None:
        """Subclass hook run first thing in :meth:`poll` (replication
        pumps standby acknowledgements here)."""

    def _after_cycle(self) -> None:
        """Subclass hook run at the very end of a successful :meth:`poll`
        (replication ships the cycle's journal and sets the barrier
        here).  Not reached when the cycle raises -- a crashed primary
        must not ship a journal tail for work it never acknowledged."""

    def has_work(self) -> bool:
        """True when a poll cycle would do something: packets waiting,
        admitted work queued, or timers armed (a maintenance patrol keeps
        its shard polling).  The router skips idle shards on this."""
        return bool(self._pending
                    or self.network.pending(self.host)
                    or len(self.timers))

    def _ingest(self) -> None:
        """Drain the receive queue; admit complete frames or shed busy."""
        while True:
            packet = self.network.receive(self.host)
            if packet is None:
                return
            try:
                completed = self.assembler.feed(packet)
            except ProtocolError:
                self._c_errors.inc()
                continue
            if completed is None:
                continue
            source, frame = completed
            if not isinstance(frame, Request):
                self._c_errors.inc()
                continue
            if not self.network.attached(source):
                # The sender unplugged while its frame was on the wire:
                # nothing to answer, and whatever it held is reaped.
                self._evict(source)
                continue
            qos = self._qos.get(source, QOS_INTERACTIVE)
            if not self.admission.admit(self._pending, qos, self._rng):
                self._c_rejected.inc()
                low, high = self.admission.watermarks.get(
                    qos, self.admission.watermarks[QOS_INTERACTIVE])
                if self._pending < high:
                    self._c_shaped.inc()
                self._respond(source, Response(ST_BUSY, frame.request_id))
                continue
            self._enqueue(source, frame, qos)

    def _enqueue(self, client: str, request: Request, qos: str) -> None:
        """Admit one request; wakes the client's session if it slept."""
        queue = self._queues.get(client)
        if queue is None:
            queue = self._queues[client] = deque()
            if client not in self._client_seq:
                self._client_seq[client] = self._next_client_seq
                self._next_client_seq += 1
            self._ready[qos].add(client)
        queue.append((request, self.clock.now_us))
        self._pending += 1
        self._g_depth.set(self._pending)

    def _evict(self, client: str) -> None:
        """Reap a disconnected client: queued work, ready entry, session.

        Called when a wakeup (or an in-flight frame) finds the client's
        host detached from the network -- without it, a dead client's
        admitted requests would pin admission slots forever.
        """
        queue = self._queues.pop(client, None)
        had_state = self.sessions.pop(client, None) is not None
        if queue:
            self._pending -= len(queue)
            self._g_depth.set(self._pending)
            had_state = True
        for cls in QOS_CLASSES:
            ready = self._ready[cls]
            ready.discard(client)
            if not ready:
                self._cursor[cls] = -1
        if had_state:
            self._c_evicted.inc()

    # ------------------------------------------------------------------------
    # The ready-queue scheduler
    # ------------------------------------------------------------------------

    def _run_scheduler(self, budget: Optional[int]) -> Tuple[int, bool]:
        """Serve the ready queue: class rotation, weighted allowances.

        Visits QoS classes round-robin (cursor persists across polls);
        each visit serves up to ``weight * quantum`` requests from that
        class's ready sessions in first-admission order, ``quantum`` per
        session wakeup.  Cursors reset when a class drains, so a poll
        that empties the backlog leaves the schedule exactly where the
        polled engine's fixed scan would start it.
        """
        served = 0
        wrote = False
        # The cycle's scan order per class: admissions happen only in
        # ingest, so the ready sets can shrink but never grow mid-cycle.
        order: Dict[str, List[str]] = {}
        position: Dict[str, int] = {}
        for cls in QOS_CLASSES:
            if not self._ready[cls]:
                continue
            ranked = sorted(self._ready[cls],
                            key=self._client_seq.__getitem__)
            order[cls] = ranked
            seqs = [self._client_seq[c] for c in ranked]
            position[cls] = bisect_right(seqs, self._cursor[cls]) % len(ranked)
        classes = QOS_CLASSES
        while self._pending and (budget is None or served < budget):
            progressed = False
            for _ in range(len(classes)):
                cls = classes[self._class_cursor]
                self._class_cursor = (self._class_cursor + 1) % len(classes)
                if not self._ready[cls] or cls not in order:
                    continue
                count, class_wrote = self._serve_class(
                    cls, order[cls], position, budget, served)
                served += count
                wrote |= class_wrote
                progressed |= count > 0
                if not self._pending or (budget is not None
                                         and served >= budget):
                    break
            if not progressed:
                # A full rotation served nothing: whatever remained was
                # reaped by eviction (which already dropped the pending
                # count), so there is nothing left to schedule.
                break
        return served, wrote

    def _serve_class(self, cls: str, ranked: List[str],
                     position: Dict[str, int], budget: Optional[int],
                     served_so_far: int) -> Tuple[int, bool]:
        """One class visit: up to ``weight * quantum`` requests."""
        allowance = max(1, self.qos_weights.get(cls, 1)) * self.quantum
        ready = self._ready[cls]
        served = 0
        wrote = False
        scanned = 0
        total = len(ranked)
        while ready and served < allowance and scanned < 2 * total:
            if budget is not None and served_so_far + served >= budget:
                break
            index = position[cls] % total
            position[cls] = index + 1
            client = ranked[index]
            scanned += 1
            if client not in ready:
                continue
            scanned = 0
            if not self.network.attached(client):
                self._evict(client)
                continue
            self._c_wakeups.inc()
            queue = self._queues[client]
            turns = min(self.quantum, len(queue), allowance - served)
            if budget is not None:
                turns = min(turns, budget - served_so_far - served)
            for _ in range(turns):
                request, admitted_us = self._take(client, cls, queue)
                wrote |= self._service(client, request, admitted_us)
                served += 1
            self._cursor[cls] = self._client_seq[client]
            if not ready:
                self._cursor[cls] = -1
        return served, wrote

    def _take(self, client: str, cls: str,
              queue: Deque[Tuple[Request, int]]) -> Tuple[Request, int]:
        """Pop one admitted request; puts a drained session back to sleep."""
        request, admitted_us = queue.popleft()
        self._pending -= 1
        self._g_depth.set(self._pending)
        if not queue:
            del self._queues[client]
            self._ready[cls].discard(client)
        return request, admitted_us

    # ------------------------------------------------------------------------
    # Request service
    # ------------------------------------------------------------------------

    def _service(self, client: str, request: Request, admitted_us: int) -> bool:
        """Execute one admitted request; returns True when it wrote."""
        session = self.sessions.get(client)
        if session is None:
            session = self.sessions[client] = self._session_type(
                client, qos=self._qos.get(client, QOS_INTERACTIVE))
            self._c_sessions.inc()
        session.last_wake_us = self.clock.now_us
        cached = session.replay(request.request_id)
        if cached is not None:
            self._c_replayed.inc()
            self._resend(client, request.request_id, cached)
            return False
        start_us = self.clock.now_us
        trace_id = f"{client}#{request.request_id}"
        tracer = self.obs.tracer
        if tracer.enabled:
            # The time this request sat admitted-but-unserviced.  Queue
            # waits overlap (every queued request waits at once), so they
            # are async intervals, not nested spans.
            tracer.complete("server.queue", admitted_us, start_us,
                            category="server", kind="async",
                            args={"trace_id": trace_id, "client": client})
        self.clock.advance_us(SERVICE_CPU_US, "server.cpu")
        with self.obs.span("server.request", "server", op=request.op_name,
                           client=client, rid=request.request_id,
                           trace_id=trace_id) as span:
            wrote = False
            try:
                response, wrote = self._dispatch(session, request)
            except (DiskFull, FileSystemError) as exc:
                self._c_errors.inc()
                response = Response(ST_ERROR, request.request_id)
                span.annotate(error=type(exc).__name__)
            if response.status != ST_OK:
                span.annotate(status=ST_NAMES[response.status])
            self._c_requests.inc()
            session.requests_served += 1
            packets = self._respond(client, response)
            session.remember(request.request_id, packets)
            end_us = self.clock.now_us
            self._h_queue_us.observe(start_us - admitted_us)
            self._h_service_us.observe(end_us - start_us)
            self._h_request_us.observe(end_us - admitted_us)
            return wrote

    def _respond(self, client: str, response: Response) -> List[Packet]:
        packets = encode_response(response, self.host, client)
        for packet in packets:
            self.network.send(packet)
        return packets

    def _resend(self, client: str, request_id: int, packets: List[Packet]) -> None:
        """Re-send a replay-cached response (a retry of a served request).

        A replicating subclass overrides this to withhold replays whose
        original response is still gated on standby acknowledgement."""
        for packet in packets:
            self.network.send(packet)

    def _dispatch(self, session, request: Request) -> Tuple[Response, bool]:
        if request.op == OP_OPEN:
            return self._do_open(session, request), False
        if request.op == OP_READ:
            return self._do_read(session, request), False
        if request.op == OP_WRITE:
            return self._do_write(session, request)
        if request.op == OP_CLOSE:
            return self._do_close(session, request), False
        if request.op == OP_LIST:
            return self._do_list(request), False
        return Response(ST_BAD_REQUEST, request.request_id), False

    # -- the five operations --------------------------------------------------

    def _do_open(self, session, request: Request) -> Response:
        try:
            name = words_to_string(list(request.payload))
        except Exception:
            return Response(ST_BAD_REQUEST, request.request_id)
        if not name:
            return Response(ST_BAD_REQUEST, request.request_id)
        try:
            file = self.fs.open_file(name)
        except (FileNotFound, DirectoryError):
            if not request.arg0 & FLAG_CREATE:
                return Response(ST_NOT_FOUND, request.request_id)
            file = self.fs.create_file(name)
        handle = session.grant(file, name, now_us=self.clock.now_us)
        size = file.byte_length
        return Response(ST_OK, request.request_id, handle=handle,
                        result0=size >> 16, result1=size & 0xFFFF)

    def _do_read(self, session, request: Request) -> Response:
        handle = session.resolve(request.handle)
        if handle is None:
            return Response(ST_BAD_HANDLE, request.request_id)
        first, count = request.arg0, request.arg1
        if first < 1 or not 1 <= count <= MAX_BATCH_PAGES:
            return Response(ST_BAD_REQUEST, request.request_id)
        last = handle.file.last_page_number
        if first > last:
            return Response(ST_OK, request.request_id, handle=request.handle)
        pages = min(count, last - first + 1)
        payload: List[int] = []
        tail_bytes = 0
        for page in range(first, first + pages):
            contents = handle.file.read_page(page)
            payload.extend(contents.value)
            tail_bytes = contents.label.length
        handle.pages_read += pages
        self._c_pages_read.inc(pages)
        session.read_cursor = (request.handle, first + pages)
        return Response(ST_OK, request.request_id, handle=request.handle,
                        result0=pages, result1=tail_bytes,
                        payload=tuple(payload))

    def _do_write(self, session, request: Request) -> Tuple[Response, bool]:
        handle = session.resolve(request.handle)
        if handle is None:
            return Response(ST_BAD_HANDLE, request.request_id), False
        page, nbytes = request.arg0, request.arg1
        words = list(request.payload)
        if page < 1 or nbytes > FULL_PAGE or len(words) * 2 < nbytes:
            return Response(ST_BAD_REQUEST, request.request_id), False
        file = handle.file
        last = file.last_page_number
        try:
            if nbytes == FULL_PAGE:
                # A full page is staged with L=0 when it is (still) the
                # tail; the next append promotes it to an interior L=512
                # page.  Uploads therefore always end with a short page
                # (possibly empty), exactly like AltoFile.write_data.
                if page == last:
                    file.write_last_page(words, 0)
                elif page == last + 1:
                    file.append_page(words, 0)
                elif page < last:
                    file.write_full_page(page, words)
                else:
                    return Response(ST_BAD_PAGE, request.request_id), False
            else:
                if page == last + 1:
                    file.append_page(words, nbytes)
                elif 1 <= page <= last:
                    # A short page is a tail by definition: drop any pages
                    # beyond it (the protocol's only way to shrink a file),
                    # then the change-length write sets L.
                    while file.last_page_number > page:
                        file.truncate_last_page()
                    file.write_last_page(words, nbytes)
                else:
                    return Response(ST_BAD_PAGE, request.request_id), False
        except ValueError:
            return Response(ST_BAD_REQUEST, request.request_id), False
        handle.pages_written += 1
        handle.wrote = True
        self._c_pages_written.inc()
        return Response(ST_OK, request.request_id, handle=request.handle,
                        result0=file.last_page_number), True

    def _do_close(self, session, request: Request) -> Response:
        if not session.release(request.handle):
            return Response(ST_BAD_HANDLE, request.request_id)
        return Response(ST_OK, request.request_id)

    def _do_list(self, request: Request) -> Response:
        from ..words import string_to_words

        names = self.fs.list_files()
        payload: List[int] = []
        for name in names:
            words = string_to_words(name)
            payload.append(len(words))
            payload.extend(words)
        return Response(ST_OK, request.request_id, result0=len(names),
                        payload=tuple(payload))

    # ------------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Admitted-but-unserviced requests (the router's window input)."""
        return self._pending

    @property
    def ready_sessions(self) -> int:
        """Sessions with queued work -- what one poll cycle's cost scales
        with (sleeping sessions are free)."""
        return len(self._queues)

    def stats(self) -> Dict[str, int]:
        """The server's own counters out of the unified snapshot."""
        return {name: value for name, value in self.obs.stats().items()
                if name.startswith("server.")}

    def __repr__(self) -> str:
        return (f"FileServer({self.host!r}, sessions={len(self.sessions)}, "
                f"pending={self._pending})")
