"""The request engine: many client sessions multiplexed onto one FileSystem.

:class:`FileServer` is a deterministic, simulated-time, event-driven
server.  ``poll()`` is the whole event loop: ingest packets into frames,
admit frames under a bounded queue (rejecting the overflow with
``ST_BUSY`` -- backpressure the client's retry/backoff absorbs), service
the admitted requests in per-client round-robin order (fairness), and
finish with **one** write-back flush covering every write the cycle
performed -- so the dirty sectors of many requests drain through the
elevator scheduler in a single sweep instead of one small drain per
request.  That single-flush batching is where multiplexed serving beats
sequential serving (see ``benchmarks/bench_server.py``).

Everything is observable: each request runs under a ``server.request``
span, and the engine keeps counters/gauges in the machine's metrics
registry (``server.requests``, ``server.rejected``, ``server.queue.depth``,
``server.request_us``, ...; see OBSERVABILITY.md).

>>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
>>> from repro.net import PacketNetwork
>>> from repro.server import FileClient, FileServer
>>> fs = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
>>> net = PacketNetwork(clock=fs.drive.clock)
>>> net.attach("fileserver"); net.attach("ws")
>>> server = FileServer(fs, net)
>>> client = FileClient(net, "ws", pump=server.poll)
>>> client.write_file("memo.txt", b"an afternoon's user code")
24
>>> client.read_file("memo.txt")
b"an afternoon's user code"
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import (
    DirectoryError,
    DiskFull,
    FileNotFound,
    FileSystemError,
    ProtocolError,
)
from ..fs.file import FULL_PAGE
from ..net.network import Packet, PacketNetwork
from ..words import words_to_string
from .protocol import (
    FLAG_CREATE,
    FrameAssembler,
    MAX_BATCH_PAGES,
    OP_CLOSE,
    OP_LIST,
    OP_OPEN,
    OP_READ,
    OP_WRITE,
    Request,
    Response,
    ST_BAD_HANDLE,
    ST_BAD_PAGE,
    ST_BAD_REQUEST,
    ST_BUSY,
    ST_ERROR,
    ST_NAMES,
    ST_NOT_FOUND,
    ST_OK,
    encode_response,
)

#: Default bound on admitted-but-unserviced requests across all clients.
DEFAULT_MAX_PENDING = 64

#: Simulated CPU cost charged per serviced request (decode + dispatch).
SERVICE_CPU_US = 150

#: Simulated CPU cost charged per ``poll()`` wakeup (queue scan, flush
#: decision) -- the fixed cost that batching amortizes.
POLL_CPU_US = 300


class FileServer:
    """Serves the wire protocol of :mod:`repro.server.protocol` over a
    :class:`~repro.net.network.PacketNetwork` from one
    :class:`~repro.fs.filesystem.FileSystem`.

    The server is passive: it runs only when :meth:`poll` is called, which
    keeps every run deterministic -- the interleaving is exactly the
    caller's schedule.  ``quantum`` requests are serviced per client per
    round-robin turn (default 1: strict alternation under load).
    """

    def __init__(
        self,
        fs,
        network: PacketNetwork,
        host: str = "fileserver",
        max_pending: int = DEFAULT_MAX_PENDING,
        quantum: int = 1,
    ) -> None:
        self.fs = fs
        self.network = network
        self.host = host
        self.max_pending = max_pending
        self.quantum = quantum
        self.clock = fs.drive.clock
        self.obs = self.clock.obs
        self.assembler = FrameAssembler()
        from .session import Session

        self._session_type = Session
        self.sessions: Dict[str, "Session"] = {}
        #: Per-client admission queues, serviced round-robin.
        self._queues: "OrderedDict[str, Deque[Tuple[Request, int]]]" = OrderedDict()
        self._pending = 0
        #: Optional :class:`repro.fs.online.OnlineMaintenance`: when set, one
        #: bounded maintenance slice runs at the end of every poll cycle,
        #: interleaving scavenge/compaction with request service.
        self.maintenance = None
        registry = self.obs.registry
        self._c_requests = registry.counter("server.requests")
        self._c_rejected = registry.counter("server.rejected")
        self._c_replayed = registry.counter("server.replayed")
        self._c_errors = registry.counter("server.errors")
        self._c_flushes = registry.counter("server.flushes")
        self._c_polls = registry.counter("server.polls")
        self._c_pages_read = registry.counter("server.pages_read")
        self._c_pages_written = registry.counter("server.pages_written")
        self._c_sessions = registry.counter("server.sessions")
        self._g_depth = registry.gauge("server.queue.depth")
        # The latency decomposition: request = queue wait + service, all in
        # simulated microseconds, observed at the same clock read so the
        # identity holds exactly per request.
        self._h_request_us = registry.histogram("server.request_us")
        self._h_queue_us = registry.histogram("server.queue_us")
        self._h_service_us = registry.histogram("server.service_us")

    # ------------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------------

    def poll(self, budget: Optional[int] = None) -> int:
        """Run one event-loop cycle; returns the number of requests served.

        Ingest -> admit -> service round-robin (up to *budget* requests)
        -> one batched flush.  Requests left unserviced by a budget stay
        queued for the next cycle.
        """
        self._c_polls.inc()
        self.clock.advance_us(POLL_CPU_US, "server.cpu")
        self._ingest()
        served = 0
        wrote = False
        while self._pending and (budget is None or served < budget):
            for client in list(self._queues):
                queue = self._queues.get(client)
                if not queue:
                    continue
                for _ in range(min(self.quantum, len(queue))):
                    if budget is not None and served >= budget:
                        break
                    request, admitted_us = queue.popleft()
                    self._pending -= 1
                    self._g_depth.set(self._pending)
                    wrote |= self._service(client, request, admitted_us)
                    served += 1
            if budget is not None and served >= budget:
                break
        if wrote:
            with self.obs.span("server.flush", "server"):
                drained = self.fs.flush()
            self._c_flushes.inc()
            for session in self.sessions.values():
                for handle in session.handles.values():
                    handle.wrote = False
            del drained
        if self.maintenance is not None:
            self.maintenance.step()
        return served

    def _ingest(self) -> None:
        """Drain the receive queue; admit complete frames or reject busy."""
        while True:
            packet = self.network.receive(self.host)
            if packet is None:
                return
            try:
                completed = self.assembler.feed(packet)
            except ProtocolError:
                self._c_errors.inc()
                continue
            if completed is None:
                continue
            source, frame = completed
            if not isinstance(frame, Request):
                self._c_errors.inc()
                continue
            if self._pending >= self.max_pending:
                self._c_rejected.inc()
                self._respond(source, Response(ST_BUSY, frame.request_id))
                continue
            self._queues.setdefault(source, deque()).append(
                (frame, self.clock.now_us))
            self._pending += 1
            self._g_depth.set(self._pending)

    # ------------------------------------------------------------------------
    # Request service
    # ------------------------------------------------------------------------

    def _service(self, client: str, request: Request, admitted_us: int) -> bool:
        """Execute one admitted request; returns True when it wrote."""
        session = self.sessions.get(client)
        if session is None:
            session = self.sessions[client] = self._session_type(client)
            self._c_sessions.inc()
        cached = session.replay(request.request_id)
        if cached is not None:
            self._c_replayed.inc()
            self._resend(client, request.request_id, cached)
            return False
        start_us = self.clock.now_us
        trace_id = f"{client}#{request.request_id}"
        tracer = self.obs.tracer
        if tracer.enabled:
            # The time this request sat admitted-but-unserviced.  Queue
            # waits overlap (every queued request waits at once), so they
            # are async intervals, not nested spans.
            tracer.complete("server.queue", admitted_us, start_us,
                            category="server", kind="async",
                            args={"trace_id": trace_id, "client": client})
        self.clock.advance_us(SERVICE_CPU_US, "server.cpu")
        with self.obs.span("server.request", "server", op=request.op_name,
                           client=client, rid=request.request_id,
                           trace_id=trace_id) as span:
            wrote = False
            try:
                response, wrote = self._dispatch(session, request)
            except (DiskFull, FileSystemError) as exc:
                self._c_errors.inc()
                response = Response(ST_ERROR, request.request_id)
                span.annotate(error=type(exc).__name__)
            if response.status != ST_OK:
                span.annotate(status=ST_NAMES[response.status])
            self._c_requests.inc()
            session.requests_served += 1
            packets = self._respond(client, response)
            session.remember(request.request_id, packets)
            end_us = self.clock.now_us
            self._h_queue_us.observe(start_us - admitted_us)
            self._h_service_us.observe(end_us - start_us)
            self._h_request_us.observe(end_us - admitted_us)
            return wrote

    def _respond(self, client: str, response: Response) -> List[Packet]:
        packets = encode_response(response, self.host, client)
        for packet in packets:
            self.network.send(packet)
        return packets

    def _resend(self, client: str, request_id: int, packets: List[Packet]) -> None:
        """Re-send a replay-cached response (a retry of a served request).

        A replicating subclass overrides this to withhold replays whose
        original response is still gated on standby acknowledgement."""
        for packet in packets:
            self.network.send(packet)

    def _dispatch(self, session, request: Request) -> Tuple[Response, bool]:
        if request.op == OP_OPEN:
            return self._do_open(session, request), False
        if request.op == OP_READ:
            return self._do_read(session, request), False
        if request.op == OP_WRITE:
            return self._do_write(session, request)
        if request.op == OP_CLOSE:
            return self._do_close(session, request), False
        if request.op == OP_LIST:
            return self._do_list(request), False
        return Response(ST_BAD_REQUEST, request.request_id), False

    # -- the five operations --------------------------------------------------

    def _do_open(self, session, request: Request) -> Response:
        try:
            name = words_to_string(list(request.payload))
        except Exception:
            return Response(ST_BAD_REQUEST, request.request_id)
        if not name:
            return Response(ST_BAD_REQUEST, request.request_id)
        try:
            file = self.fs.open_file(name)
        except (FileNotFound, DirectoryError):
            if not request.arg0 & FLAG_CREATE:
                return Response(ST_NOT_FOUND, request.request_id)
            file = self.fs.create_file(name)
        handle = session.grant(file, name, now_us=self.clock.now_us)
        size = file.byte_length
        return Response(ST_OK, request.request_id, handle=handle,
                        result0=size >> 16, result1=size & 0xFFFF)

    def _do_read(self, session, request: Request) -> Response:
        handle = session.resolve(request.handle)
        if handle is None:
            return Response(ST_BAD_HANDLE, request.request_id)
        first, count = request.arg0, request.arg1
        if first < 1 or not 1 <= count <= MAX_BATCH_PAGES:
            return Response(ST_BAD_REQUEST, request.request_id)
        last = handle.file.last_page_number
        if first > last:
            return Response(ST_OK, request.request_id, handle=request.handle)
        pages = min(count, last - first + 1)
        payload: List[int] = []
        tail_bytes = 0
        for page in range(first, first + pages):
            contents = handle.file.read_page(page)
            payload.extend(contents.value)
            tail_bytes = contents.label.length
        handle.pages_read += pages
        self._c_pages_read.inc(pages)
        session.read_cursor = (request.handle, first + pages)
        return Response(ST_OK, request.request_id, handle=request.handle,
                        result0=pages, result1=tail_bytes,
                        payload=tuple(payload))

    def _do_write(self, session, request: Request) -> Tuple[Response, bool]:
        handle = session.resolve(request.handle)
        if handle is None:
            return Response(ST_BAD_HANDLE, request.request_id), False
        page, nbytes = request.arg0, request.arg1
        words = list(request.payload)
        if page < 1 or nbytes > FULL_PAGE or len(words) * 2 < nbytes:
            return Response(ST_BAD_REQUEST, request.request_id), False
        file = handle.file
        last = file.last_page_number
        try:
            if nbytes == FULL_PAGE:
                # A full page is staged with L=0 when it is (still) the
                # tail; the next append promotes it to an interior L=512
                # page.  Uploads therefore always end with a short page
                # (possibly empty), exactly like AltoFile.write_data.
                if page == last:
                    file.write_last_page(words, 0)
                elif page == last + 1:
                    file.append_page(words, 0)
                elif page < last:
                    file.write_full_page(page, words)
                else:
                    return Response(ST_BAD_PAGE, request.request_id), False
            else:
                if page == last + 1:
                    file.append_page(words, nbytes)
                elif 1 <= page <= last:
                    # A short page is a tail by definition: drop any pages
                    # beyond it (the protocol's only way to shrink a file),
                    # then the change-length write sets L.
                    while file.last_page_number > page:
                        file.truncate_last_page()
                    file.write_last_page(words, nbytes)
                else:
                    return Response(ST_BAD_PAGE, request.request_id), False
        except ValueError:
            return Response(ST_BAD_REQUEST, request.request_id), False
        handle.pages_written += 1
        handle.wrote = True
        self._c_pages_written.inc()
        return Response(ST_OK, request.request_id, handle=request.handle,
                        result0=file.last_page_number), True

    def _do_close(self, session, request: Request) -> Response:
        if not session.release(request.handle):
            return Response(ST_BAD_HANDLE, request.request_id)
        return Response(ST_OK, request.request_id)

    def _do_list(self, request: Request) -> Response:
        from ..words import string_to_words

        names = self.fs.list_files()
        payload: List[int] = []
        for name in names:
            words = string_to_words(name)
            payload.append(len(words))
            payload.extend(words)
        return Response(ST_OK, request.request_id, result0=len(names),
                        payload=tuple(payload))

    # ------------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Admitted-but-unserviced requests (the router's window input)."""
        return self._pending

    def stats(self) -> Dict[str, int]:
        """The server's own counters out of the unified snapshot."""
        return {name: value for name, value in self.obs.stats().items()
                if name.startswith("server.")}

    def __repr__(self) -> str:
        return (f"FileServer({self.host!r}, sessions={len(self.sessions)}, "
                f"pending={self._pending})")
