"""The load generator: a deterministic multi-client request schedule.

Builds N clients, gives each a seeded script (upload a private file, read
it back in batched sequential READs, list the directory), and drives all
of them **concurrently**: each driver round lets every idle client issue
its next request, runs one ``server.poll()`` (which services the whole
admitted batch and flushes once), then collects responses and latencies.
:meth:`LoadGenerator.run_sequential` replays the identical scripts one
client at a time -- the baseline that shows what multiplexing buys.

Everything derives from one seed, so two runs with the same seed and
schedule produce byte-identical disk images and identical metrics
snapshots (``tests/server/test_determinism.py`` proves it).

>>> from repro.server.loadgen import build_system, LoadGenerator
>>> system = build_system(clients=2, seed=7)
>>> result = LoadGenerator(system, file_bytes=600, read_rounds=1).run()
>>> result.clients, result.requests > 0, result.errors
(2, True, 0)
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from ..disk.cache import CachedDrive
from ..disk.drive import DiskDrive
from ..disk.geometry import diablo31, tiny_test_disk
from ..disk.image import DiskImage
from ..fs.filesystem import FileSystem
from ..net.network import PacketNetwork
from ..obs.metrics import SUB_BUCKET_BITS
from ..words import random_bytes
from .client import FileClient, PendingRequest
from .engine import FileServer
from .protocol import Request, Response, ST_OK

#: Maximum driver rounds with zero progress before declaring livelock.
STALL_LIMIT = 10_000


@dataclass
class ServedSystem:
    """One simulated machine room: server FS, wire, server, clients."""

    fs: FileSystem
    network: PacketNetwork
    server: FileServer
    clients: List[FileClient]

    @property
    def clock(self):
        return self.fs.drive.clock

    def stats(self) -> Dict:
        """The unified flat stats snapshot (one machine, one clock)."""
        return self.clock.obs.stats()


def build_system(
    clients: int,
    seed: int = 1979,
    cached: bool = True,
    cache_sectors: int = 512,
    big_disk: bool = False,
    max_pending: int = 128,
    tiny: bool = False,
) -> ServedSystem:
    """Format a pack and attach a server plus *clients* workstations.

    ``cached=True`` (the default) serves from the write-back
    :class:`~repro.disk.cache.CachedDrive`, which is what gives the
    engine's one-flush-per-poll batching its bite; ``tiny=True`` uses the
    small test geometry for fast unit tests.
    """
    if tiny:
        shape = tiny_test_disk(cylinders=40)
    else:
        shape = diablo31()
    image = DiskImage(shape)
    drive = (CachedDrive(image, cache_sectors=cache_sectors)
             if cached else DiskDrive(image))
    fs = FileSystem.format(drive)
    network = PacketNetwork(clock=drive.clock)
    network.attach("fileserver", queue_limit=4096)
    server = FileServer(fs, network, max_pending=max_pending)
    stations = []
    for index in range(clients):
        host = f"ws{index:03d}"
        network.attach(host)
        stations.append(FileClient(network, host))
    del seed  # reserved for future topology randomization; kept for API stability
    return ServedSystem(fs, network, server, stations)


@dataclass
class ClusterSystem:
    """One simulated machine room with N shard machines behind a router.

    Quacks like :class:`ServedSystem` where the load generator cares
    (``server`` polls, ``clock`` is elapsed time, ``clients`` drive), so
    the same :class:`LoadGenerator` runs against both.
    """

    shards: List[FileServer]
    network: PacketNetwork
    router: "ShardRouter"
    clients: List[FileClient]

    @property
    def server(self):
        """The router fronts the cluster: it is what the driver polls."""
        return self.router

    @property
    def clock(self):
        """Cluster elapsed time: the router (network) clock."""
        return self.network.clock

    def stats(self) -> Dict:
        """Counters merged across the router and every shard machine.

        Per-machine clocks mean per-machine registries; the merge sums
        counters (``server.requests`` becomes the cluster total) and
        takes the max of clock positions and high-water gauges.
        """
        from ..obs import merge_stats

        snapshots = [self.clock.obs.stats(), self.router.front_clock.obs.stats()]
        snapshots.extend(shard.clock.obs.stats() for shard in self.shards)
        return merge_stats(snapshots)


def build_cluster(
    clients: int,
    shards: int = 2,
    seed: int = 1979,
    cached: bool = True,
    cache_sectors: int = 512,
    big_disk: bool = False,
    max_pending: int = 128,
    per_shard_window: int = 32,
    tiny: bool = False,
) -> ClusterSystem:
    """Format *shards* packs, each behind its own :class:`FileServer` on
    its own simulated machine (own clock), fronted by a
    :class:`~repro.server.router.ShardRouter` on the ``"fileserver"``
    host -- clients are built exactly as :func:`build_system` builds them
    and cannot tell the difference.

    >>> from repro.server.loadgen import build_cluster
    >>> system = build_cluster(clients=2, shards=2, tiny=True)
    >>> len(system.shards), system.server is system.router
    (2, True)
    """
    from .router import ShardRouter

    network = PacketNetwork()
    servers = []
    for index in range(shards):
        if tiny:
            shape = tiny_test_disk(cylinders=40)
        else:
            shape = diablo31()
        image = DiskImage(shape)
        drive = (CachedDrive(image, cache_sectors=cache_sectors)
                 if cached else DiskDrive(image))
        fs = FileSystem.format(drive)
        host = f"shard{index:02d}"
        network.attach(host, queue_limit=4096, clock=drive.clock)
        servers.append(FileServer(fs, network, host=host,
                                  max_pending=max_pending))
    router = ShardRouter(servers, network, seed=seed,
                         max_pending=max_pending,
                         per_shard_window=per_shard_window)
    stations = []
    for index in range(clients):
        host = f"ws{index:03d}"
        network.attach(host)
        stations.append(FileClient(network, host))
    return ClusterSystem(servers, network, router, stations)


@dataclass
class LoadResult:
    """Aggregate outcome of one load run (all times simulated)."""

    mode: str
    clients: int
    requests: int
    elapsed_s: float
    requests_per_sec: float
    p50_ms: float
    p99_ms: float
    retries: int
    busy_retries: int
    rejected: int
    flushes: int
    errors: int
    bytes_written: int
    bytes_read: int
    #: The same percentiles re-derived from the ``loadgen.request_us``
    #: registry histogram -- reported alongside the raw-list values so a
    #: silent divergence between the two latency paths cannot hide.
    p50_hist_ms: float = 0.0
    p99_hist_ms: float = 0.0
    latencies_ms: List[float] = field(default_factory=list, repr=False)

    def to_json(self) -> dict:
        out = {k: v for k, v in self.__dict__.items() if k != "latencies_ms"}
        return out


@dataclass
class OpenLoopResult:
    """Outcome of one open-loop (offered-load) run; times simulated."""

    offered_rps: float      #: the arrival rate the schedule was drawn at
    duration_s: float       #: length of the offered window
    offered: int            #: arrivals scheduled in the window
    completed: int          #: requests that got a response
    errors: int
    elapsed_s: float        #: simulated time to drain everything
    achieved_rps: float     #: completed / elapsed -- caps at capacity
    p50_ms: float           #: latency from *scheduled* arrival, raw list
    p99_ms: float
    p50_hist_ms: float      #: same, from the loadgen.request_us histogram
    p99_hist_ms: float

    def to_json(self) -> dict:
        return dict(self.__dict__)


@dataclass
class SessionStormResult:
    """Outcome of one session storm (all times simulated).

    ``sessions`` is the live server session count after every station's
    OPEN completed -- the number the ten-thousand-client smoke pins.
    """

    clients: int
    sessions: int       #: live server sessions once every OPEN completed
    requests: int
    errors: int
    rejected: int       #: ``server.rejected`` after the run
    evicted: int        #: ``server.sessions_evicted`` after the run
    wakeups: int        #: ``server.wakeups`` -- only woken sessions cost
    elapsed_s: float

    def to_json(self) -> dict:
        return dict(self.__dict__)


def run_session_storm(
    clients: int = 10_000,
    shared_files: int = 32,
    seed: int = 1979,
    max_pending: int = 128,
    read_wave: bool = True,
    system: Optional[ServedSystem] = None,
) -> SessionStormResult:
    """Hold *clients* concurrent sessions open against one server.

    The Diablo 31 pack has nowhere near ten thousand files' worth of
    sectors, so the storm shares ``shared_files`` read-only files among
    all stations: every station OPENs one (creating its server session
    and holding the handle for the rest of the run), then -- unless
    ``read_wave=False`` -- READs one page through it.  Stations arrive in
    waves smaller than the admission window, so the storm exercises
    session-table and ready-queue scale, not rejection; with the
    event-driven engine the nine-thousand-odd sessions that are *not* in
    a wave sleep and cost each poll nothing (watch ``server.wakeups``
    against ``clients * polls``).

    Pass a prebuilt *system* to reuse a topology (its station count then
    wins over *clients*):

    >>> from repro.server.loadgen import build_system, run_session_storm
    >>> storm = run_session_storm(clients=8, shared_files=2,
    ...                           system=build_system(8, tiny=True))
    >>> storm.sessions, storm.errors, storm.evicted
    (8, 0, 0)
    """
    if system is None:
        system = build_system(clients=clients, seed=seed,
                              max_pending=max_pending)
    server = system.server
    stations = system.clients
    rng = random.Random(seed)

    # Seed the shared read-only files before the measured window opens.
    uploader = stations[0]
    uploader.pump = server.poll
    names = []
    for index in range(shared_files):
        name = f"shared{index:03d}.dat"
        uploader.write_file(name, random_bytes(rng, 256))
        names.append(name)
    uploader.pump = None

    started_us = system.clock.now_us
    wave = max(1, max_pending // 2)
    requests = errors = 0

    def drive(pendings: Dict[FileClient, PendingRequest]) -> Dict[FileClient, Response]:
        nonlocal requests, errors
        stalls = 0
        results: Dict[FileClient, Response] = {}
        while pendings:
            server.poll()
            progressed = False
            for station in list(pendings):
                response = station.step(pendings[station])
                if response is None:
                    continue
                progressed = True
                del pendings[station]
                requests += 1
                if response.status != ST_OK:
                    errors += 1
                results[station] = response
            if progressed:
                stalls = 0
            else:
                stalls += 1
                if stalls > STALL_LIMIT:
                    raise RuntimeError("session storm stalled: no station "
                                       "progressed for too many rounds")
                system.clock.advance_us(1_000, "server.client.wait")
        return results

    # OPEN wave: every station joins, holding its handle open.
    handles: Dict[FileClient, int] = {}
    for base in range(0, len(stations), wave):
        group = stations[base:base + wave]
        pendings = {}
        for index, station in enumerate(group):
            name = names[(base + index) % len(names)]
            pendings[station] = station.submit(station.build_open(name))
        for station, response in drive(pendings).items():
            handles[station] = response.handle

    sessions = len(server.sessions)

    # READ wave: every held handle proves it still serves.
    if read_wave:
        for base in range(0, len(stations), wave):
            group = stations[base:base + wave]
            drive({station: station.submit(
                       station.build_read(handles[station], 1, 1))
                   for station in group})

    stats = system.stats()
    elapsed_us = system.clock.now_us - started_us
    return SessionStormResult(
        clients=len(stations),
        sessions=sessions,
        requests=requests,
        errors=errors,
        rejected=int(stats.get("server.rejected", 0)),
        evicted=int(stats.get("server.sessions_evicted", 0)),
        wakeups=int(stats.get("server.wakeups", 0)),
        elapsed_s=round(elapsed_us / 1_000_000.0, 6),
    )


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 for empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def check_quantile_agreement(sorted_us: List[int], hist, fraction: float) -> float:
    """Cross-check the histogram's quantile against the raw sample list.

    Returns the histogram estimate after asserting it brackets the true
    ceil-rank sample within the log-bucket relative-error bound (the
    :data:`~repro.obs.metrics.SUB_BUCKET_BITS` contract).  Loadgen keeps
    both latency paths -- raw list and registry histogram -- and this is
    what stops them drifting apart silently.
    """
    estimate = hist.quantile(fraction)
    if not sorted_us:
        assert estimate == 0.0
        return estimate
    rank = min(len(sorted_us), max(1, math.ceil(fraction * len(sorted_us))))
    true_value = sorted_us[rank - 1]
    assert true_value <= estimate <= true_value * (1 + 2 ** -SUB_BUCKET_BITS), (
        f"histogram q{fraction} = {estimate} does not bracket "
        f"rank-{rank} sample {true_value}")
    return estimate


def client_script(client: FileClient, name: str, data: bytes,
                  read_rounds: int, with_list: bool
                  ) -> Generator[Request, Response, None]:
    """The per-client workload as a request generator.

    Yields requests, receives responses -- the driver decides when each
    request actually runs, so the same script serves both the concurrent
    and the sequential mode.
    """
    from ..fs.file import FULL_PAGE

    response = yield client.build_open(name, create=True)
    handle = response.handle
    n_full = len(data) // FULL_PAGE
    for page in range(1, n_full + 1):
        yield client.build_write(handle, page,
                                 data[(page - 1) * FULL_PAGE: page * FULL_PAGE])
    yield client.build_write(handle, n_full + 1, data[n_full * FULL_PAGE:])
    yield client.build_close(handle)

    for _ in range(read_rounds):
        response = yield client.build_open(name)
        handle = response.handle
        size = (response.result0 << 16) | response.result1
        pages = max(1, (size + FULL_PAGE - 1) // FULL_PAGE)
        page = 1
        while page <= pages:
            want = min(client.read_batch_pages, pages - page + 1)
            response = yield client.build_read(handle, page, want)
            page += max(1, response.result0)
        yield client.build_close(handle)
    if with_list:
        yield client.build_list()


class LoadGenerator:
    """Drives every client's script against one server, two ways."""

    def __init__(
        self,
        system: ServedSystem,
        seed: int = 1979,
        file_bytes: int = 2048,
        read_rounds: int = 2,
        with_list: bool = True,
    ) -> None:
        self.system = system
        self.seed = seed
        self.file_bytes = file_bytes
        self.read_rounds = read_rounds
        self.with_list = with_list
        #: Client-observed latency, also kept as a registry histogram so
        #: the list-based percentiles and the bucketed quantiles report
        #: side by side (and are cross-checked in :meth:`_result`).
        self._h_latency = system.clock.obs.registry.histogram(
            "loadgen.request_us")

    def _scripts(self):
        rng = random.Random(self.seed)
        scripts = []
        for index, client in enumerate(self.system.clients):
            size = self.file_bytes + rng.randrange(0, 256)
            data = random_bytes(rng, size)
            scripts.append((client,
                            client_script(client, f"load{index:03d}.dat", data,
                                          self.read_rounds, self.with_list),
                            size))
        return scripts

    def _result(self, mode: str, requests: int, errors: int,
                latencies_us: List[int], elapsed_us: int,
                bytes_written: int) -> LoadResult:
        stats = self.system.stats()
        latencies_ms = sorted(us / 1000.0 for us in latencies_us)
        elapsed_s = elapsed_us / 1_000_000.0
        sorted_us = sorted(latencies_us)
        if self._h_latency.count == len(sorted_us):
            # A fresh run: the histogram holds exactly these samples, so
            # its quantiles must bracket the true nearest-rank values.
            p50_hist = check_quantile_agreement(sorted_us, self._h_latency, 0.50)
            p99_hist = check_quantile_agreement(sorted_us, self._h_latency, 0.99)
        else:
            p50_hist = self._h_latency.quantile(0.50)
            p99_hist = self._h_latency.quantile(0.99)
        return LoadResult(
            mode=mode,
            clients=len(self.system.clients),
            requests=requests,
            elapsed_s=round(elapsed_s, 6),
            requests_per_sec=round(requests / elapsed_s, 3) if elapsed_us else 0.0,
            p50_ms=round(percentile(latencies_ms, 0.50), 3),
            p99_ms=round(percentile(latencies_ms, 0.99), 3),
            retries=int(stats.get("server.client.retries", 0)),
            busy_retries=int(stats.get("server.client.busy_retries", 0)),
            rejected=int(stats.get("server.rejected", 0)),
            flushes=int(stats.get("server.flushes", 0)),
            errors=errors,
            bytes_written=bytes_written,
            bytes_read=int(stats.get("server.pages_read", 0)) * 512,
            p50_hist_ms=round(p50_hist / 1000.0, 3),
            p99_hist_ms=round(p99_hist / 1000.0, 3),
            latencies_ms=latencies_ms,
        )

    def run(self, progress: Optional[Callable[[int], None]] = None) -> LoadResult:
        """Concurrent mode: all clients in flight, one poll per round.

        *progress*, when given, is called with the running completed-request
        count after every round that completed at least one request -- the
        hook ``python -m repro top`` uses to refresh its dashboard while
        the run is in flight.
        """
        system = self.system
        scripts = self._scripts()
        started_us = system.clock.now_us
        active: Dict[FileClient, Generator] = {c: g for c, g, _ in scripts}
        bytes_written = sum(size for _, _, size in scripts)
        pendings: Dict[FileClient, PendingRequest] = {}
        responses: Dict[FileClient, Optional[Response]] = {c: None for c in active}
        latencies: List[int] = []
        requests = errors = 0
        stalls = 0
        while active or pendings:
            for client in list(active):
                if client in pendings:
                    continue
                try:
                    request = active[client].send(responses[client])
                except StopIteration:
                    del active[client]
                    continue
                pendings[client] = client.submit(request)
            system.server.poll()
            progressed = False
            for client in list(pendings):
                pending = pendings[client]
                response = client.step(pending)
                if response is None:
                    continue
                progressed = True
                del pendings[client]
                latency_us = system.clock.now_us - pending.first_sent_us
                latencies.append(latency_us)
                self._h_latency.observe(latency_us)
                requests += 1
                if response.status != ST_OK:
                    errors += 1
                responses[client] = response
            if progressed:
                stalls = 0
                if progress is not None:
                    progress(requests)
            else:
                stalls += 1
                if stalls > STALL_LIMIT:
                    raise RuntimeError("load generator stalled: no client "
                                       "progressed for too many rounds")
                system.clock.advance_us(1_000, "server.client.wait")
        return self._result("concurrent", requests, errors, latencies,
                            system.clock.now_us - started_us, bytes_written)

    def run_open_loop(self, rate_rps: float, duration_s: float,
                      progress: Optional[Callable[[int], None]] = None
                      ) -> "OpenLoopResult":
        """Open-loop mode: Poisson arrivals at *rate_rps*, independent of
        completions, for *duration_s* simulated seconds of offered load.

        The closed-loop modes cannot see saturation: each client waits for
        its response before issuing again, so offered load falls exactly
        as the server slows (coordinated omission).  Here the arrival
        schedule is drawn up front from a seeded exponential process and
        **latency is measured from the scheduled arrival time** -- if a
        station is still busy when its next request falls due, the time
        the request spends waiting to even be sent counts.  Past the
        capacity knee that backlog grows without bound and p99 explodes,
        which is precisely the curve benchmark E15 pins.

        Arrivals round-robin over the stations; each is a 1-page READ of a
        small per-station file uploaded (closed-loop) before the measured
        window opens.
        """
        system = self.system
        stations = system.clients
        rng = random.Random(self.seed)

        # Setup phase, unmeasured: each station uploads one small file and
        # re-opens it, so the measured window is pure READ traffic.
        handles: Dict[FileClient, int] = {}
        for index, client in enumerate(stations):
            client.pump = system.server.poll
            name = f"open{index:03d}.dat"
            client.write_file(name, random_bytes(rng, 256))
            handle, _ = client.open(name)
            handles[client] = handle
            client.pump = None

        # The offered schedule: exponential gaps, one station per arrival.
        started_us = system.clock.now_us
        horizon_us = started_us + int(duration_s * 1_000_000)
        arrivals: List[int] = []
        at_us = float(started_us)
        while True:
            at_us += rng.expovariate(rate_rps) * 1_000_000
            if at_us >= horizon_us:
                break
            arrivals.append(int(at_us))

        backlog: Dict[FileClient, List[int]] = {c: [] for c in stations}
        pendings: Dict[FileClient, "tuple[PendingRequest, int]"] = {}
        latencies: List[int] = []
        next_arrival = 0
        completed = errors = 0
        stalls = 0
        while next_arrival < len(arrivals) or pendings \
                or any(backlog.values()):
            now = system.clock.now_us
            while next_arrival < len(arrivals) and arrivals[next_arrival] <= now:
                station = stations[next_arrival % len(stations)]
                backlog[station].append(arrivals[next_arrival])
                next_arrival += 1
            for station in stations:
                if station in pendings or not backlog[station]:
                    continue
                scheduled_us = backlog[station].pop(0)
                request = station.build_read(handles[station], 1, 1)
                pendings[station] = (station.submit(request), scheduled_us)
            system.server.poll()
            progressed = False
            for station in list(pendings):
                pending, scheduled_us = pendings[station]
                response = station.step(pending)
                if response is None:
                    continue
                progressed = True
                del pendings[station]
                latency_us = system.clock.now_us - scheduled_us
                latencies.append(latency_us)
                self._h_latency.observe(latency_us)
                completed += 1
                if response.status != ST_OK:
                    errors += 1
            if progressed:
                stalls = 0
                if progress is not None:
                    progress(completed)
            else:
                stalls += 1
                if stalls > STALL_LIMIT:
                    raise RuntimeError("open-loop generator stalled")
                step_us = 1_000
                if next_arrival < len(arrivals) and not pendings \
                        and not any(backlog.values()):
                    # Idle until the next scheduled arrival: jump there.
                    step_us = max(step_us,
                                  arrivals[next_arrival] - system.clock.now_us)
                system.clock.advance_us(step_us, "server.client.wait")
        elapsed_us = system.clock.now_us - started_us
        elapsed_s = elapsed_us / 1_000_000.0
        sorted_us = sorted(latencies)
        if self._h_latency.count == len(sorted_us):
            p50_us = check_quantile_agreement(sorted_us, self._h_latency, 0.50)
            p99_us = check_quantile_agreement(sorted_us, self._h_latency, 0.99)
        else:
            p50_us = self._h_latency.quantile(0.50)
            p99_us = self._h_latency.quantile(0.99)
        return OpenLoopResult(
            offered_rps=rate_rps,
            duration_s=duration_s,
            offered=len(arrivals),
            completed=completed,
            errors=errors,
            elapsed_s=round(elapsed_s, 6),
            achieved_rps=round(completed / elapsed_s, 3) if elapsed_us else 0.0,
            p50_ms=round(percentile(sorted(us / 1000.0 for us in latencies),
                                    0.50), 3),
            p99_ms=round(percentile(sorted(us / 1000.0 for us in latencies),
                                    0.99), 3),
            p50_hist_ms=round(p50_us / 1000.0, 3),
            p99_hist_ms=round(p99_us / 1000.0, 3),
        )

    def run_sequential(self) -> LoadResult:
        """Baseline mode: the same scripts, one client finishing at a time."""
        system = self.system
        scripts = self._scripts()
        started_us = system.clock.now_us
        latencies: List[int] = []
        requests = errors = 0
        bytes_written = sum(size for _, _, size in scripts)
        for client, script, _ in scripts:
            client.pump = system.server.poll
            response = None
            while True:
                try:
                    request = script.send(response)
                except StopIteration:
                    break
                pending = client.submit(request)
                while True:
                    system.server.poll()
                    response = client.step(pending)
                    if response is not None:
                        break
                    system.clock.advance_us(client.poll_interval_us,
                                            "server.client.wait")
                latency_us = system.clock.now_us - pending.first_sent_us
                latencies.append(latency_us)
                self._h_latency.observe(latency_us)
                requests += 1
                if response.status != ST_OK:
                    errors += 1
        return self._result("sequential", requests, errors, latencies,
                            system.clock.now_us - started_us, bytes_written)
