"""``repro.server`` -- the concurrent multi-client file-server subsystem.

Section 5.2's file-server configuration, promoted from an example into a
first-class package: a deterministic, simulated-time, **event-driven**
request engine (:class:`~repro.server.engine.FileServer`) multiplexing
many client sessions over a :class:`~repro.net.network.PacketNetwork`
onto one :class:`~repro.fs.filesystem.FileSystem` -- sessions sleep until
a packet, timer, or flush wakes them, are scheduled under weighted QoS
classes (:mod:`~repro.server.qos`), and are admitted through a graduated
curve (:class:`~repro.server.qos.AdmissionCurve`) rather than a single
cliff.  Around the engine: a framed wire protocol with error codes
(:mod:`~repro.server.protocol`), per-session state with at-most-once
retry semantics (:mod:`~repro.server.session`), a client with timeout and
exponential backoff (:class:`~repro.server.client.FileClient`), and a
seeded load generator (:mod:`~repro.server.loadgen`) that can hold ten
thousand concurrent sessions open (:func:`~repro.server.loadgen.run_session_storm`).

See ``SERVER.md`` for the wire-protocol specification and
``ARCHITECTURE.md`` for where the subsystem sits in the layer map.  The
CLI entry point is ``python -m repro serve``.

>>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
>>> from repro.net import PacketNetwork
>>> from repro.server import FileClient, FileServer
>>> fs = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
>>> net = PacketNetwork(clock=fs.drive.clock)
>>> net.attach("fileserver"); net.attach("ws")
>>> client = FileClient(net, "ws", pump=FileServer(fs, net).poll)
>>> _ = client.write_file("hello.txt", b"served!")
>>> client.read_file("hello.txt")
b'served!'
"""

from .client import FileClient, PendingRequest
from .engine import DEFAULT_MAX_PENDING, FileServer
from .events import Event, EventQueue
from .loadgen import (
    ClusterSystem,
    LoadGenerator,
    LoadResult,
    ServedSystem,
    SessionStormResult,
    build_cluster,
    build_system,
    run_session_storm,
)
from .polled import PolledFileServer
from .qos import (
    DEFAULT_QOS_WEIGHTS,
    QOS_BULK,
    QOS_CLASSES,
    QOS_INTERACTIVE,
    QOS_MAINTENANCE,
    AdmissionCurve,
)
from .protocol import (
    FLAG_CREATE,
    FrameAssembler,
    MAX_BATCH_PAGES,
    OP_CLOSE,
    OP_LIST,
    OP_OPEN,
    OP_READ,
    OP_WRITE,
    Request,
    Response,
    ST_BAD_HANDLE,
    ST_BAD_PAGE,
    ST_BAD_REQUEST,
    ST_BUSY,
    ST_ERROR,
    ST_NOT_FOUND,
    ST_OK,
    ST_TOO_LARGE,
    encode_request,
    encode_response,
)
from .failover import (
    FailoverReport,
    FailoverSweepResult,
    failover_crash_sweep,
    failover_drill,
)
from .rebalance import Shipment, recover_shipment, ship_names
from .replica import (
    PromotionReport,
    ReplicaStandby,
    ReplicatedFileServer,
    ReplicationPrimary,
    promote,
)
from .router import ShardRouter, merge_names
from .session import OpenHandle, Session
from .shardmap import RebalancePlan, ShardMap, hash_name

__all__ = [
    "AdmissionCurve",
    "ClusterSystem",
    "DEFAULT_MAX_PENDING",
    "DEFAULT_QOS_WEIGHTS",
    "Event",
    "EventQueue",
    "FLAG_CREATE",
    "FailoverReport",
    "FailoverSweepResult",
    "FileClient",
    "FileServer",
    "FrameAssembler",
    "LoadGenerator",
    "LoadResult",
    "MAX_BATCH_PAGES",
    "OP_CLOSE",
    "OP_LIST",
    "OP_OPEN",
    "OP_READ",
    "OP_WRITE",
    "OpenHandle",
    "PendingRequest",
    "PolledFileServer",
    "PromotionReport",
    "QOS_BULK",
    "QOS_CLASSES",
    "QOS_INTERACTIVE",
    "QOS_MAINTENANCE",
    "RebalancePlan",
    "ReplicaStandby",
    "ReplicatedFileServer",
    "ReplicationPrimary",
    "Request",
    "Response",
    "ST_BAD_HANDLE",
    "ST_BAD_PAGE",
    "ST_BAD_REQUEST",
    "ST_BUSY",
    "ST_ERROR",
    "ST_NOT_FOUND",
    "ST_OK",
    "ST_TOO_LARGE",
    "ServedSystem",
    "Session",
    "SessionStormResult",
    "ShardMap",
    "ShardRouter",
    "Shipment",
    "build_cluster",
    "build_system",
    "encode_request",
    "encode_response",
    "failover_crash_sweep",
    "failover_drill",
    "hash_name",
    "merge_names",
    "promote",
    "recover_shipment",
    "run_session_storm",
    "ship_names",
]
