"""A deterministic timer wheel keyed by the simulated clock.

The event-driven engine sleeps sessions that have nothing queued and
wakes them on three signals: a packet (handled by the engine's ingest
path), a **timer** (this module), and a flush completion (the engine's
cycle hooks).  :class:`EventQueue` is the timer half: callbacks
scheduled at absolute simulated microseconds, fired in ``(due, seq)``
order by :meth:`EventQueue.fire_due` -- the sequence number breaks ties
by scheduling order, so two runs with the same schedule fire the same
callbacks in the same order, which is what keeps the engine's
byte-identical-per-seed proof alive.

Recurring work re-arms itself from its own callback: a callback that
schedules a new event (even one already due) runs on the *next*
``fire_due``, never the current one -- ``fire_due`` snapshots the due
set before running anything, so a self-re-arming maintenance slice runs
exactly once per poll cycle.

>>> from repro.clock import SimClock
>>> clock = SimClock()
>>> timers = EventQueue(clock)
>>> fired = []
>>> _ = timers.after(100, lambda: fired.append("tick"), label="demo")
>>> timers.fire_due()                       # not due yet
0
>>> clock.advance_us(100, "test")
>>> timers.fire_due()
1
>>> fired
['tick']
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional


class Event:
    """One scheduled callback; cancel it via :meth:`EventQueue.cancel`.

    >>> from repro.clock import SimClock
    >>> queue = EventQueue(SimClock())
    >>> event = queue.at(50, lambda: None, label="lease-expiry")
    >>> event.due_us, event.label, event.cancelled
    (50, 'lease-expiry', False)
    """

    __slots__ = ("due_us", "seq", "callback", "label", "cancelled")

    def __init__(self, due_us: int, seq: int,
                 callback: Callable[[], None], label: str) -> None:
        self.due_us = due_us
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.due_us, self.seq) < (other.due_us, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else f"due={self.due_us}"
        return f"Event({self.label!r}, {state})"


class EventQueue:
    """Timers for one simulated machine, fired inside its poll cycle.

    The queue never advances the clock itself -- the engine owns time;
    ``fire_due`` simply runs everything whose deadline the clock has
    already passed.  Cancelled events stay in the heap until they
    surface (lazy deletion) and are skipped.

    >>> from repro.clock import SimClock
    >>> clock = SimClock()
    >>> queue = EventQueue(clock)
    >>> event = queue.at(10, lambda: None)
    >>> queue.next_due_us
    10
    >>> queue.cancel(event)
    >>> clock.advance_us(10, "test")
    >>> queue.fire_due(), len(queue)
    (0, 0)
    """

    def __init__(self, clock) -> None:
        self.clock = clock
        self._heap: List[Event] = []
        self._next_seq = 0
        self._live = 0

    def at(self, due_us: int, callback: Callable[[], None],
           label: str = "timer") -> Event:
        """Schedule *callback* at absolute simulated time *due_us*."""
        event = Event(due_us, self._next_seq, callback, label)
        self._next_seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def after(self, delay_us: int, callback: Callable[[], None],
              label: str = "timer") -> Event:
        """Schedule *callback* *delay_us* simulated microseconds from now.

        >>> from repro.clock import SimClock
        >>> queue = EventQueue(SimClock())
        >>> queue.after(25, lambda: None).due_us
        25
        """
        return self.at(self.clock.now_us + delay_us, callback, label)

    def cancel(self, event: Event) -> None:
        """Unschedule *event*; firing a cancelled event is a no-op."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    @property
    def next_due_us(self) -> Optional[int]:
        """The earliest live deadline, or None when nothing is scheduled."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].due_us if self._heap else None

    def fire_due(self) -> int:
        """Run every live callback due at or before the clock's now.

        The due set is snapshotted first: a callback that re-arms itself
        (or schedules anything else already due) fires on the next call,
        not this one.  Returns the number of callbacks run.
        """
        now = self.clock.now_us
        due: List[Event] = []
        while self._heap and self._heap[0].due_us <= now:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            due.append(event)
        for event in due:
            event.callback()
        return len(due)

    def __len__(self) -> int:
        return self._live

    def __repr__(self) -> str:
        return f"EventQueue(live={self._live}, next={self.next_due_us})"
