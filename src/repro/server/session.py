"""Per-client session state: open handles and the at-most-once replay cache.

The server keeps one :class:`Session` per client host.  A session owns the
client's open-file handles, remembers where its last sequential read ended
(so the engine can spot batchable runs), and caches the encoded response
of recent requests keyed by request id -- a retried request id is answered
from the cache without re-executing, which is what makes client retries
safe for non-idempotent operations like page appends.

Under the event-driven engine a session also carries its QoS class (the
scheduling and admission bucket -- see :mod:`repro.server.qos`) and the
simulated time of its last wakeup; a session with nothing queued sleeps
and costs the engine nothing per poll cycle.

>>> from repro.server.session import Session
>>> session = Session("workstation")
>>> session.qos
'interactive'
>>> handle = session.grant(object(), "memo.txt")
>>> handle, session.resolve(handle) is None
(1, False)
>>> _ = session.release(handle)
>>> session.resolve(handle) is None
True
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional

#: Cached replies kept per session; a retry storm deeper than this falls
#: back to re-execution, so the cache is sized above the client's retry cap.
REPLAY_CACHE_SIZE = 16

#: Handles cycle within a 16-bit word (the frame's handle field).
MAX_HANDLE = 0xFFFF


@dataclass
class OpenHandle:
    """One open file within a session."""

    file: object                 #: the :class:`~repro.fs.file.AltoFile`
    name: str
    opened_at_us: int = 0
    pages_read: int = 0
    pages_written: int = 0
    wrote: bool = False          #: dirtied the disk since the last flush


class Session:
    """One client's server-side state machine.

    A session is created on the client's first admitted request and lives
    for the server's lifetime.  Its states per handle are simply
    *open* (present in ``handles``) and *closed* (absent); the protocol
    has no half-open states because every request is a complete frame.
    """

    def __init__(self, client: str, qos: str = "interactive") -> None:
        self.client = client
        #: The QoS class this session is scheduled and admitted under.
        self.qos = qos
        #: Simulated time the engine last woke this session for service.
        self.last_wake_us = 0
        self.handles: "OrderedDict[int, OpenHandle]" = OrderedDict()
        self._next_handle = 1
        self._replies: "OrderedDict[int, List]" = OrderedDict()
        self.requests_served = 0
        #: (handle, next page) of the last sequential read, for batching.
        self.read_cursor: Optional[tuple] = None

    # -- handles --------------------------------------------------------------

    def grant(self, file, name: str, now_us: int = 0) -> int:
        """Allocate a handle for *file*; handles are session-scoped."""
        handle = self._next_handle
        self._next_handle = handle % MAX_HANDLE + 1
        self.handles[handle] = OpenHandle(file, name, opened_at_us=now_us)
        return handle

    def resolve(self, handle: int) -> Optional[OpenHandle]:
        """The open handle, or None (the ``ST_BAD_HANDLE`` path)."""
        return self.handles.get(handle)

    def release(self, handle: int) -> bool:
        """Close a handle; returns False when it was not open."""
        return self.handles.pop(handle, None) is not None

    # -- the replay cache -----------------------------------------------------

    def replay(self, request_id: int) -> Optional[List]:
        """The cached response packets for a request id, or None."""
        return self._replies.get(request_id)

    def remember(self, request_id: int, packets: List) -> None:
        """Cache the encoded response for *request_id* (bounded FIFO)."""
        self._replies[request_id] = packets
        while len(self._replies) > REPLAY_CACHE_SIZE:
            self._replies.popitem(last=False)

    # -- bookkeeping ----------------------------------------------------------

    def dirty_handles(self) -> List[OpenHandle]:
        return [h for h in self.handles.values() if h.wrote]

    def open_names(self) -> List[str]:
        """The file names this session currently holds open."""
        return [h.name for h in self.handles.values()]

    def __repr__(self) -> str:
        return (f"Session({self.client!r}, handles={len(self.handles)}, "
                f"served={self.requests_served})")
