"""Quality-of-service classes and the graduated admission curve.

The event-driven engine (:mod:`repro.server.engine`) schedules admitted
requests by **class**, not by strict alternation: every client belongs to
one of three QoS classes -- ``interactive`` (the default: short
request/response traffic that wants latency), ``bulk`` (uploads and
scans that want throughput), and ``maintenance`` (background tooling
that should only soak up leftover capacity).  The scheduler visits the
classes round-robin and gives each visit a request allowance
proportional to the class weight (:data:`DEFAULT_QOS_WEIGHTS`), so a
backlogged bulk client can no longer double an interactive client's
queueing delay by keeping the old strict-alternation loop busy.

Admission is a **curve**, not a cliff.  The PR-5 engine rejected with
``ST_BUSY`` the instant the admitted-but-unserviced count reached
``max_pending``; under a 10k-client storm that is a step function --
everything is admitted, then suddenly nothing is.
:class:`AdmissionCurve` grades the transition: below the class's low
watermark everything is admitted, above the high watermark nothing is,
and in between requests are shed probabilistically (seeded, so runs stay
reproducible) with lower-priority classes shedding first because their
watermarks sit lower.  :meth:`AdmissionCurve.cliff` reproduces the old
step function exactly and is the engine's default, which is what keeps
every pre-existing byte-identical-per-seed proof green.

>>> curve = AdmissionCurve.cliff(4)
>>> [curve.admit(depth, QOS_INTERACTIVE, None) for depth in (0, 3, 4, 5)]
[True, True, False, False]
>>> curve.is_cliff
True
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional, Tuple

from ..errors import ServerError

#: The latency class: short request/response traffic, served first.
QOS_INTERACTIVE = "interactive"

#: The throughput class: uploads, scans, anything that queues deep.
QOS_BULK = "bulk"

#: The background class: tooling that should only soak up leftovers.
QOS_MAINTENANCE = "maintenance"

#: Scheduler visiting order; also the priority order admission sheds in
#: reverse (maintenance sheds first, interactive last).
QOS_CLASSES = (QOS_INTERACTIVE, QOS_BULK, QOS_MAINTENANCE)

#: Requests granted per scheduler visit, per unit of engine ``quantum``.
#: With every client in one class (the default) the weights are inert:
#: the schedule degenerates to the old round-robin order exactly.
DEFAULT_QOS_WEIGHTS: Dict[str, int] = {
    QOS_INTERACTIVE: 4,
    QOS_BULK: 2,
    QOS_MAINTENANCE: 1,
}

#: Fraction of the high watermark where each class's shedding begins
#: when :meth:`AdmissionCurve.graduated` derives per-class watermarks.
_GRADUATED_LOW_FRACTION = {
    QOS_INTERACTIVE: 0.75,
    QOS_BULK: 0.50,
    QOS_MAINTENANCE: 0.25,
}


class AdmissionCurve:
    """Per-class admission probability as a function of queue depth.

    Each class has a ``(low, high)`` watermark pair: depths below *low*
    always admit, depths at or above *high* always reject, and the band
    between sheds linearly -- at depth ``d`` the admit probability is
    ``(high - d) / (high - low)``.  The probabilistic band draws from
    the RNG the engine passes in (seeded per server), so two runs with
    the same seed shed the same requests.

    >>> curve = AdmissionCurve({QOS_INTERACTIVE: (2, 4)})
    >>> curve.admit(1, QOS_INTERACTIVE, None)      # below low: no draw
    True
    >>> curve.admit(4, QOS_INTERACTIVE, None)      # at high: no draw
    False
    >>> rng = random.Random(7)
    >>> isinstance(curve.admit(3, QOS_INTERACTIVE, rng), bool)
    True
    """

    def __init__(self, watermarks: Mapping[str, Tuple[int, int]]) -> None:
        self.watermarks: Dict[str, Tuple[int, int]] = {}
        for qos, (low, high) in watermarks.items():
            if qos not in QOS_CLASSES:
                raise ServerError(f"unknown QoS class {qos!r}")
            if not 0 <= low <= high:
                raise ServerError(
                    f"bad watermarks for {qos!r}: low={low} high={high}")
            self.watermarks[qos] = (low, high)

    @classmethod
    def cliff(cls, max_pending: int) -> "AdmissionCurve":
        """The PR-5 step function: admit below *max_pending*, reject at it.

        Every class gets the same watermarks and ``low == high``, so no
        probabilistic draw ever happens -- the engine's default, byte-
        identical to the old ``self._pending >= self.max_pending`` test.

        >>> AdmissionCurve.cliff(8).watermarks[QOS_BULK]
        (8, 8)
        """
        return cls({qos: (max_pending, max_pending) for qos in QOS_CLASSES})

    @classmethod
    def graduated(cls, max_pending: int) -> "AdmissionCurve":
        """A shaped curve: lower classes shed earlier on the way to full.

        Interactive sheds from 75% of *max_pending*, bulk from 50%,
        maintenance from 25%; all classes hard-stop at *max_pending*.

        >>> curve = AdmissionCurve.graduated(100)
        >>> curve.watermarks[QOS_INTERACTIVE]
        (75, 100)
        >>> curve.watermarks[QOS_MAINTENANCE]
        (25, 100)
        """
        marks = {}
        for qos in QOS_CLASSES:
            low = int(max_pending * _GRADUATED_LOW_FRACTION[qos])
            marks[qos] = (low, max_pending)
        return cls(marks)

    @property
    def is_cliff(self) -> bool:
        """True when no depth can trigger a probabilistic draw.

        >>> AdmissionCurve.graduated(64).is_cliff
        False
        """
        return all(low == high for low, high in self.watermarks.values())

    def admit(self, depth: int, qos: str,
              rng: Optional[random.Random]) -> bool:
        """Decide one admission at queue *depth* for class *qos*.

        *rng* is only consulted inside the shedding band; a cliff curve
        never touches it (pass None to prove a path draw-free).

        >>> AdmissionCurve.cliff(2).admit(1, QOS_BULK, None)
        True
        """
        low, high = self.watermarks.get(qos,
                                        self.watermarks[QOS_INTERACTIVE])
        if depth < low:
            return True
        if depth >= high:
            return False
        probability = (high - depth) / (high - low)
        if rng is None:
            raise ServerError("graduated admission needs the engine's RNG")
        return rng.random() < probability

    def __repr__(self) -> str:
        marks = ", ".join(f"{qos}={self.watermarks[qos]}"
                          for qos in QOS_CLASSES if qos in self.watermarks)
        return f"AdmissionCurve({marks})"
