"""The shard router: one front door over N single-pack file servers.

"Folding a Tree into a Map" motivates the front door's shape: instead of
walking one big directory, the router hashes each file name through a
:class:`~repro.server.shardmap.ShardMap` and forwards the frame to the
one :class:`~repro.server.engine.FileServer` shard that owns the name's
slot.  Clients keep speaking the unmodified PR-5 wire protocol to the
unmodified ``"fileserver"`` host name; sharding is invisible except as
throughput.

**Frame rewriting.**  The router forwards a client's frame from a
per-client *proxy* host (``fileserver.ws000`` for client ``ws000``), so
every shard sees one session -- with its own at-most-once replay cache --
per real client.  Handles are virtualized: the client holds router-issued
handles, the router maps them to ``(shard, shard handle)`` pairs and
rewrites the handle word in both directions, so a client's handle
sequence is identical whether the cluster has one shard or eight.

**Parallel simulated time.**  Each shard machine owns its own
:class:`~repro.clock.SimClock` (bound to its host via
``PacketNetwork.attach(clock=...)``, so forwarded frames and shard
responses charge shard link time in parallel).  Every :meth:`ShardRouter.poll`
is one bulk-synchronous cycle: shard clocks are first synced up to the
router's, each shard polls on its own clock, and the router's clock then
advances to the *maximum* shard clock -- elapsed time per cycle is the
slowest shard, not the sum of shards, which is where near-linear
throughput scaling comes from (benchmark E13).

**Backpressure.**  The router aggregates admission control: a bounded
total in-flight window plus a per-shard window, both answered with
``ST_BUSY`` the client's retry/backoff already absorbs; a shard's own
``ST_BUSY`` is relayed and the request forgotten (the shard never
executed it, so the retry may be re-routed freshly).

**LIST** scatter-gathers: the frame fans out to every shard and the
name sets merge case-insensitively sorted and deduplicated -- the same
deterministic order at every shard count.

**Rebalancing** moves one slot at a time (:meth:`ShardRouter.start_rebalance`):
the router pauses only that slot's names (new OPENs get ``ST_BUSY``),
waits until the slot is drained (no open handles, nothing in flight),
ships the slot's files with the crash-safe protocol of
:mod:`repro.server.rebalance`, then flips the map.  Acknowledged writes
are never lost: a write is only acknowledged after it executed on its
shard, every serving poll flushes, and the slot cannot ship while any
write to it is outstanding.  Retries of *completed* requests keep hitting
the router's own per-client replay cache even after the name moved
shards -- requests are pinned at admission epoch, not re-hashed.

>>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
>>> from repro.net import PacketNetwork
>>> from repro.server import FileClient, FileServer
>>> net = PacketNetwork()
>>> shards = []
>>> for index in range(2):
...     fs = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
...     net.attach(f"shard{index:02d}", clock=fs.drive.clock)
...     shards.append(FileServer(fs, net, host=f"shard{index:02d}"))
>>> router = ShardRouter(shards, net)
>>> net.attach("ws")
>>> client = FileClient(net, "ws", pump=router.poll)
>>> _ = client.write_file("memo.txt", b"routed!")
>>> client.read_file("memo.txt")
b'routed!'
>>> "memo.txt" in client.listdir()
True
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..clock import SimClock
from ..errors import ProtocolError, ReproError, ServerError
from ..net.network import Packet, PacketNetwork
from ..obs import CounterAttr
from ..words import string_to_words, words_to_string
from .engine import FileServer
from .protocol import (
    OP_CLOSE,
    OP_LIST,
    OP_OPEN,
    OP_READ,
    OP_WRITE,
    FrameAssembler,
    Request,
    Response,
    ST_BAD_HANDLE,
    ST_BAD_REQUEST,
    ST_BUSY,
    ST_OK,
    encode_request,
    encode_response,
)
from .rebalance import MANIFEST_NAME, Shipment, recover_shipment, ship_names
from .session import MAX_HANDLE, REPLAY_CACHE_SIZE
from .shardmap import RebalancePlan, ShardMap

#: Default bound on requests in flight through the router, all shards.
DEFAULT_ROUTER_PENDING = 128

#: Default bound on requests in flight to any one shard.
DEFAULT_SHARD_WINDOW = 32

#: Router CPU charged per poll cycle and per routed request (the serial
#: switching cost every request pays at the front door).
ROUTER_POLL_CPU_US = 100
ROUTE_CPU_US = 40

#: Per-pack bookkeeping names that exist on every shard and never move.
_SYSTEM_NAMES = frozenset({"diskdescriptor", "sysdir"})


@dataclass
class _VirtualHandle:
    """One client-visible handle: which shard holds the real one."""

    shard: int
    handle: int
    name: str


@dataclass
class _InFlight:
    """One forwarded request awaiting its shard response(s)."""

    request: Request                 #: the client's original frame
    shard: Optional[int]             #: pinned shard; None for a scatter
    epoch: int                       #: map epoch at admission (the pin's why)
    name: Optional[str] = None       #: file name, when the op has one
    sent_us: int = 0                 #: router clock when first forwarded
    packets: List[Packet] = field(default_factory=list)
    scatter_packets: Dict[int, List[Packet]] = field(default_factory=dict)
    pending_shards: Set[int] = field(default_factory=set)
    names: Set[str] = field(default_factory=set)


class RouterStats:
    """The router's rebalance/rewrite tallies as a CounterAttr view.

    Same idiom as ``DriveStats``: attribute reads and ``+=`` writes go
    straight to counters in the router clock's registry, so the numbers
    show up in ``obs.stats()`` / ``python -m repro stats`` without any
    as-dict plumbing here.
    """

    _FIELDS = ("rewrites", "rebalances", "shipped_names")

    rewrites = CounterAttr("router.rewrites")
    rebalances = CounterAttr("router.rebalances")
    shipped_names = CounterAttr("router.shipped_names")

    def __init__(self, registry) -> None:
        self.registry = registry

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self._FIELDS}


class _ClientState:
    """The router's per-client half: proxy identity, handles, replay cache."""

    def __init__(self, client: str, proxy: str) -> None:
        self.client = client
        self.proxy = proxy
        self.assembler = FrameAssembler()
        self.vhandles: Dict[int, _VirtualHandle] = {}
        self._next_vhandle = 1
        self.replay: "OrderedDict[int, List[Packet]]" = OrderedDict()
        self.inflight: "OrderedDict[int, _InFlight]" = OrderedDict()

    def grant(self, shard: int, handle: int, name: str) -> int:
        vhandle = self._next_vhandle
        self._next_vhandle = vhandle % MAX_HANDLE + 1
        self.vhandles[vhandle] = _VirtualHandle(shard, handle, name)
        return vhandle

    def remember(self, request_id: int, packets: List[Packet]) -> None:
        self.replay[request_id] = packets
        while len(self.replay) > REPLAY_CACHE_SIZE:
            self.replay.popitem(last=False)


def merge_names(name_sets) -> List[str]:
    """The scatter-gather merge: union, case-insensitive sort, dedupe.

    Per-pack bookkeeping files appear on every shard; the set union
    collapses them, and the sort gives the same order at any shard count.

    >>> merge_names([{"b.txt", "SysDir"}, {"A.txt", "SysDir"}])
    ['A.txt', 'b.txt', 'SysDir']
    """
    merged: Set[str] = set()
    for names in name_sets:
        merged.update(names)
    return sorted(merged, key=lambda name: (name.lower(), name))


class ShardRouter:
    """Routes the PR-5 wire protocol across N single-pack file servers.

    The router is passive like the engines behind it: it runs only inside
    :meth:`poll`, so every cluster run is deterministic -- the
    interleaving is exactly the caller's schedule, and the same seed
    yields byte-identical shard packs and identical metric snapshots.

    >>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
    >>> from repro.net import PacketNetwork
    >>> from repro.server import FileServer
    >>> net = PacketNetwork()
    >>> fs = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
    >>> net.attach("shard00", clock=fs.drive.clock)
    >>> router = ShardRouter([FileServer(fs, net, host="shard00")], net)
    >>> router.shard_map.shards
    1
    """

    def __init__(
        self,
        shards: Sequence[FileServer],
        network: PacketNetwork,
        host: str = "fileserver",
        shard_map: Optional[ShardMap] = None,
        seed: int = 1979,
        max_pending: int = DEFAULT_ROUTER_PENDING,
        per_shard_window: int = DEFAULT_SHARD_WINDOW,
    ) -> None:
        if not shards:
            raise ServerError("a cluster needs at least one shard")
        self.shards: List[FileServer] = list(shards)
        self.network = network
        self.host = host
        self.shard_map = (shard_map if shard_map is not None
                          else ShardMap(len(self.shards), seed=seed))
        if self.shard_map.shards != len(self.shards):
            raise ServerError(
                f"map covers {self.shard_map.shards} shards, "
                f"cluster has {len(self.shards)}")
        self.max_pending = max_pending
        self.per_shard_window = per_shard_window
        #: The router machine's clock is the network clock: the cluster's
        #: elapsed time, advanced to the slowest shard every poll.
        self.clock = network.clock
        self.obs = self.clock.obs
        #: Client stations transmit on their own links, concurrently with
        #: service; their uplink wire time is accounting, not elapsed
        #: time, so the front door binds a clock that is never merged
        #: back.  The payload's wire cost lands on the owning shard's
        #: link when the frame is forwarded (cut-through switching), and
        #: the response's client-facing relay lands back on this front
        #: clock -- each side of the switch pays its own wire.
        self.front_clock = SimClock()
        network.attach(self.host, queue_limit=4096, clock=self.front_clock)
        self.assembler = FrameAssembler()
        self._states: "OrderedDict[str, _ClientState]" = OrderedDict()
        self._host_to_shard = {shard.host: index
                               for index, shard in enumerate(self.shards)}
        self._outstanding = [0] * len(self.shards)
        self._pending = 0
        self._rebalance: Optional[RebalancePlan] = None
        registry = self.obs.registry
        self._c_polls = registry.counter("router.polls")
        self._c_requests = registry.counter("router.requests")
        self._c_forwarded = registry.counter("router.forwarded")
        self._c_relayed = registry.counter("router.relayed")
        self._c_replayed = registry.counter("router.replayed")
        self._c_retransmits = registry.counter("router.retransmits")
        self._c_rejected = registry.counter("router.rejected")
        self._c_shard_busy = registry.counter("router.shard_busy")
        self._c_scatters = registry.counter("router.scatters")
        self._c_paused = registry.counter("router.paused")
        self._c_stale = registry.counter("router.stale")
        self._c_errors = registry.counter("router.errors")
        self._c_shards_skipped = registry.counter("router.shards_skipped")
        self._g_pending = registry.gauge("router.pending")
        self.router_stats = RouterStats(registry)
        #: Scatter-gather fan-out sizes and per-request shard round trips
        #: (forward to final shard response, timestamped on the producing
        #: shard's link clock; the client-facing relay itself is charged
        #: to the front clock -- see :meth:`_relay`).
        self._h_scatter_fanout = registry.histogram("router.scatter_fanout")
        self._h_hop_us = registry.histogram("router.hop_us")

    # ------------------------------------------------------------------------
    # The event loop: one bulk-synchronous cluster cycle
    # ------------------------------------------------------------------------

    def poll(self, budget: Optional[int] = None) -> int:
        """Run one cluster cycle; returns requests served across shards.

        Sync shard clocks up to the router's, ingest and route client
        frames, poll every shard on its own clock, collect and relay the
        responses, take a rebalance step if one is pending, and advance
        the router clock to the slowest shard.
        """
        self._c_polls.inc()
        self.clock.advance_us(ROUTER_POLL_CPU_US, "router.cpu")
        for shard in self.shards:
            if shard.clock.now_us < self.clock.now_us:
                shard.clock.advance_us(self.clock.now_us - shard.clock.now_us,
                                       "router.sync")
        self._ingest()
        served = 0
        for shard in self.shards:
            # Event dispatch, not a blind scan: a shard with no packets
            # waiting, no admitted backlog, and no armed timers is asleep
            # and costs the cycle nothing.
            if shard.has_work():
                served += shard.poll(budget)
            else:
                self._c_shards_skipped.inc()
        self._collect()
        self._rebalance_step()
        horizon = max(shard.clock.now_us for shard in self.shards)
        if horizon > self.clock.now_us:
            self.clock.advance_us(horizon - self.clock.now_us, "router.sync")
        return served

    @property
    def pending(self) -> int:
        """Requests currently in flight through the router."""
        return self._pending

    def set_qos(self, client: str, qos: str) -> None:
        """Assign *client* to a QoS class on every shard.

        Shards see the router's per-client proxy host, so the class is
        registered under the proxy name -- the client itself never
        learns the cluster is sharded, QoS included.

        >>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
        >>> from repro.net import PacketNetwork
        >>> from repro.server import FileServer
        >>> net = PacketNetwork()
        >>> fs = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
        >>> net.attach("shard00", clock=fs.drive.clock)
        >>> router = ShardRouter([FileServer(fs, net, host="shard00")], net)
        >>> router.set_qos("ws000", "bulk")
        >>> router.shards[0].qos_of("fileserver.ws000")
        'bulk'
        """
        proxy = f"{self.host}.{client}"
        for shard in self.shards:
            shard.set_qos(proxy, qos)

    # -- inbound: client frames ------------------------------------------------

    def _ingest(self) -> None:
        while True:
            packet = self.network.receive(self.host)
            if packet is None:
                return
            try:
                completed = self.assembler.feed(packet)
            except ProtocolError:
                self._c_errors.inc()
                continue
            if completed is None:
                continue
            client, frame = completed
            if not isinstance(frame, Request):
                self._c_errors.inc()
                continue
            self._route(client, frame)

    def _state(self, client: str) -> _ClientState:
        state = self._states.get(client)
        if state is None:
            proxy = f"{self.host}.{client}"
            self.network.attach(proxy, queue_limit=4096)
            state = self._states[client] = _ClientState(client, proxy)
        return state

    def _route(self, client: str, request: Request) -> None:
        state = self._state(client)
        request_id = request.request_id
        cached = state.replay.get(request_id)
        if cached is not None:
            # The at-most-once answer survives rebalancing: the cache is
            # the router's own, keyed by client and id, not by shard.
            self._c_replayed.inc()
            for packet in cached:
                self.network.send(packet)
            return
        ctx = state.inflight.get(request_id)
        if ctx is not None:
            # A retry of an unanswered request: re-forward to the shard
            # pinned at admission epoch -- never re-hash, the name may
            # have moved since and the pinned shard holds the replay.
            self._c_retransmits.inc()
            self._retransmit(ctx)
            return
        self.clock.advance_us(ROUTE_CPU_US, "router.cpu")
        self._c_requests.inc()
        if self._pending >= self.max_pending:
            self._c_rejected.inc()
            self._respond_local(state, Response(ST_BUSY, request_id),
                                remember=False)
            return
        with self.obs.span("router.route", "router", op=request.op_name,
                           client=client, rid=request_id,
                           trace_id=f"{client}#{request_id}"):
            if request.op == OP_LIST:
                self._route_scatter(state, request)
            elif request.op == OP_OPEN:
                self._route_open(state, request)
            else:
                self._route_handle_op(state, request)

    def _route_open(self, state: _ClientState, request: Request) -> None:
        try:
            name = words_to_string(list(request.payload))
        except Exception:
            name = ""
        if not name:
            self._respond_local(state, Response(ST_BAD_REQUEST,
                                                request.request_id))
            return
        if self._paused(name):
            self._c_paused.inc()
            self._respond_local(state, Response(ST_BUSY, request.request_id),
                                remember=False)
            return
        self._admit(state, request, self.shard_map.shard_of(name), name=name)

    def _route_handle_op(self, state: _ClientState, request: Request) -> None:
        vhandle = state.vhandles.get(request.handle)
        if vhandle is None:
            self._respond_local(state, Response(ST_BAD_HANDLE,
                                                request.request_id))
            return
        forward = Request(request.op, request.request_id,
                          handle=vhandle.handle, arg0=request.arg0,
                          arg1=request.arg1, payload=request.payload)
        self._admit(state, request, vhandle.shard, name=vhandle.name,
                    forward=forward)

    def _admit(self, state: _ClientState, request: Request, shard: int,
               name: Optional[str] = None,
               forward: Optional[Request] = None) -> None:
        if self._outstanding[shard] >= self.per_shard_window:
            self._c_rejected.inc()
            self._respond_local(state, Response(ST_BUSY, request.request_id),
                                remember=False)
            return
        packets = encode_request(forward if forward is not None else request,
                                 state.proxy, self.shards[shard].host)
        ctx = _InFlight(request=request, shard=shard,
                        epoch=self.shard_map.epoch, name=name,
                        sent_us=self.clock.now_us, packets=packets)
        state.inflight[request.request_id] = ctx
        self._pending += 1
        self._outstanding[shard] += 1
        self._g_pending.set(self._pending)
        for packet in packets:
            self.network.send(packet)
        self._c_forwarded.inc()

    def _route_scatter(self, state: _ClientState, request: Request) -> None:
        if any(count >= self.per_shard_window for count in self._outstanding):
            self._c_rejected.inc()
            self._respond_local(state, Response(ST_BUSY, request.request_id),
                                remember=False)
            return
        with self.obs.span("router.scatter", "router", shards=len(self.shards)):
            ctx = _InFlight(request=request, shard=None,
                            epoch=self.shard_map.epoch,
                            sent_us=self.clock.now_us)
            self._h_scatter_fanout.observe(len(self.shards))
            ctx.pending_shards = set(range(len(self.shards)))
            for index, shard in enumerate(self.shards):
                packets = encode_request(request, state.proxy, shard.host)
                ctx.scatter_packets[index] = packets
                self._outstanding[index] += 1
                for packet in packets:
                    self.network.send(packet)
            state.inflight[request.request_id] = ctx
            self._pending += 1
            self._g_pending.set(self._pending)
            self._c_scatters.inc()

    def _retransmit(self, ctx: _InFlight) -> None:
        if ctx.shard is not None:
            for packet in ctx.packets:
                self.network.send(packet)
            return
        for index in sorted(ctx.pending_shards):
            for packet in ctx.scatter_packets[index]:
                self.network.send(packet)

    # -- outbound: shard responses ---------------------------------------------

    def _collect(self) -> None:
        for state in list(self._states.values()):
            if not self.network.pending(state.proxy):
                continue        # a sleeping client costs the cycle nothing
            while True:
                packet = self.network.receive(state.proxy)
                if packet is None:
                    break
                try:
                    completed = state.assembler.feed(packet)
                except ProtocolError:
                    self._c_errors.inc()
                    continue
                if completed is None:
                    continue
                source, frame = completed
                if not isinstance(frame, Response):
                    self._c_errors.inc()
                    continue
                self._deliver(state, source, frame)

    def _deliver(self, state: _ClientState, source: str,
                 response: Response) -> None:
        ctx = state.inflight.get(response.request_id)
        shard = self._host_to_shard.get(source)
        if ctx is None or shard is None:
            self._c_stale.inc()
            return
        if ctx.shard is not None:
            if shard != ctx.shard:
                self._c_stale.inc()
                return
            self._finish(state, ctx, shard, response)
        else:
            self._gather(state, ctx, shard, response)

    def _drop(self, state: _ClientState, ctx: _InFlight) -> None:
        state.inflight.pop(ctx.request.request_id, None)
        self._pending -= 1
        self._g_pending.set(self._pending)
        if ctx.shard is not None:
            self._outstanding[ctx.shard] -= 1
        else:
            for index in ctx.pending_shards:
                self._outstanding[index] -= 1
            ctx.pending_shards = set()

    def _finish(self, state: _ClientState, ctx: _InFlight, shard: int,
                response: Response) -> None:
        request_id = ctx.request.request_id
        self._drop(state, ctx)
        link = self.shards[shard].clock
        if response.status == ST_BUSY:
            # The shard never executed it: relay, forget, let the retry
            # be admitted (and routed) fresh.
            self._c_shard_busy.inc()
            self._relay(state, Response(ST_BUSY, request_id), link,
                        remember=False)
            return
        # The round trip through the shard, on the producing shard's link
        # clock (the router's own clock has not yet advanced to this
        # cycle's horizon when responses are collected).
        self._h_hop_us.observe(max(0, link.now_us - ctx.sent_us))
        self._relay(state, self._rewrite(state, ctx, shard, response), link)
        self._c_relayed.inc()

    def _rewrite(self, state: _ClientState, ctx: _InFlight, shard: int,
                 response: Response) -> Response:
        """Translate a shard response into the client's handle space."""
        op = ctx.request.op
        if op in (OP_OPEN, OP_READ, OP_WRITE) and response.ok:
            self.router_stats.rewrites += 1
        if op == OP_OPEN and response.ok:
            vhandle = state.grant(shard, response.handle, ctx.name)
            return Response(ST_OK, response.request_id, handle=vhandle,
                            result0=response.result0,
                            result1=response.result1,
                            payload=response.payload)
        if op in (OP_READ, OP_WRITE) and response.ok:
            return Response(ST_OK, response.request_id,
                            handle=ctx.request.handle,
                            result0=response.result0,
                            result1=response.result1,
                            payload=response.payload)
        if op == OP_CLOSE and response.ok:
            state.vhandles.pop(ctx.request.handle, None)
        return response

    def _gather(self, state: _ClientState, ctx: _InFlight, shard: int,
                response: Response) -> None:
        request_id = ctx.request.request_id
        link = self.shards[shard].clock
        if response.status == ST_BUSY:
            self._c_shard_busy.inc()
            self._drop(state, ctx)
            self._relay(state, Response(ST_BUSY, request_id), link,
                        remember=False)
            return
        if shard not in ctx.pending_shards:
            self._c_stale.inc()
            return
        ctx.pending_shards.discard(shard)
        self._outstanding[shard] -= 1
        ctx.names.update(self._parse_names(response.payload))
        if ctx.pending_shards:
            return
        state.inflight.pop(request_id, None)
        self._pending -= 1
        self._g_pending.set(self._pending)
        self._h_hop_us.observe(max(0, link.now_us - ctx.sent_us))
        names = merge_names([ctx.names])
        payload: List[int] = []
        for name in names:
            words = string_to_words(name)
            payload.append(len(words))
            payload.extend(words)
        merged = Response(ST_OK, request_id, result0=len(names),
                          payload=tuple(payload))
        self._relay(state, merged, link)
        self._c_relayed.inc()

    @staticmethod
    def _parse_names(payload) -> List[str]:
        names, words, index = [], list(payload), 0
        while index < len(words):
            count = words[index]
            names.append(words_to_string(words[index + 1: index + 1 + count]))
            index += 1 + count
        return names

    def _relay(self, state: _ClientState, response: Response, link: SimClock,
               remember: bool = True) -> None:
        """Send a response to the client on the switch's **downlink**
        (the front clock), and cache it for retries.

        The shard's link already carried this response once, shard to
        proxy, on the shard's own clock; relaying it proxy-to-client is
        the client-facing half of the switch, which -- like the client
        uplink -- is accounting, not cluster elapsed time.  Charging it
        to the shard again (as the PR-6 relay did) serialized every
        response's wire time twice on the shard clock and was the single
        largest term in the E15 capacity knee; moving it to the front
        clock is what benchmark E17 measures.  *link* still timestamps
        the hop histogram: the round trip is the shard's story.
        """
        del link  # the hop was observed by the caller; wire goes up front
        packets = encode_response(response, self.host, state.client)
        for packet in packets:
            self.network.send(packet, clock=self.front_clock)
        if remember:
            state.remember(response.request_id, packets)

    def _respond_local(self, state: _ClientState, response: Response,
                       remember: bool = True) -> None:
        """A router-generated response (bad handle, bad request, busy)."""
        packets = encode_response(response, self.host, state.client)
        for packet in packets:
            self.network.send(packet)
        if remember:
            state.remember(response.request_id, packets)

    # ------------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------------

    def start_rebalance(self, slot: int, target: int) -> RebalancePlan:
        """Begin moving *slot* to shard *target*.

        The slot's names pause immediately (new OPENs answer ``ST_BUSY``);
        the actual shipment happens inside a later :meth:`poll`, once
        nothing holds the slot open.  One rebalance at a time.

        >>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
        >>> from repro.net import PacketNetwork
        >>> from repro.server import FileServer
        >>> net = PacketNetwork(); shards = []
        >>> for index in range(2):
        ...     fs = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
        ...     net.attach(f"shard{index:02d}", clock=fs.drive.clock)
        ...     shards.append(FileServer(fs, net, host=f"shard{index:02d}"))
        >>> router = ShardRouter(shards, net)
        >>> plan = router.start_rebalance(router.shard_map.shard_slots(0)[0], 1)
        >>> router.rebalancing
        True
        >>> _ = router.poll()        # drained immediately: ships and applies
        >>> router.rebalancing
        False
        """
        if self._rebalance is not None:
            raise ServerError("a rebalance is already in progress")
        plan = self.shard_map.plan_move(slot, target)
        self._rebalance = plan
        return plan

    @property
    def rebalancing(self) -> bool:
        """True while a started rebalance has not yet shipped."""
        return self._rebalance is not None

    def _paused(self, name: str) -> bool:
        return (self._rebalance is not None
                and self.shard_map.slot_of(name) == self._rebalance.slot)

    def _slot_drained(self, slot: int) -> bool:
        for state in self._states.values():
            for vhandle in state.vhandles.values():
                if self.shard_map.slot_of(vhandle.name) == slot:
                    return False
            for ctx in state.inflight.values():
                if (ctx.name is not None
                        and self.shard_map.slot_of(ctx.name) == slot):
                    return False
        return True

    def _rebalance_step(self) -> None:
        plan = self._rebalance
        if plan is None or not self._slot_drained(plan.slot):
            return
        source_fs = self.shards[plan.source].fs
        target_fs = self.shards[plan.target].fs
        names = [name for name in source_fs.list_files()
                 if name.lower() not in _SYSTEM_NAMES
                 and self.shard_map.slot_of(name) == plan.slot]
        if names:
            ship_names(source_fs, target_fs, names, plan.slot,
                       plan.source, plan.target)
        self.shard_map.apply(plan)
        self.router_stats.rebalances += 1
        self.router_stats.shipped_names += len(names)
        self._rebalance = None

    # ------------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------------

    def promote_shard(self, index: int, server: FileServer) -> None:
        """Swap shard *index* for its promoted standby (see
        :func:`repro.server.replica.promote`).

        The replacement serves the same files, possibly at a new host, so
        the shard map is untouched -- names keep hashing to the same
        index.  What did die with the old machine is dropped here: requests
        in flight to it are forgotten (the clients' retries are admitted
        fresh and forwarded to the replacement), and virtual handles into
        it are revoked (the shard's sessions are gone, so the next use
        answers ``ST_BAD_HANDLE`` and the client re-opens).  The router's
        own per-client replay caches survive untouched: a retry of a
        request that completed *before* the crash still gets the cached
        response, never a re-execution -- at-most-once holds across the
        failover.
        """
        self.shards[index] = server
        self._host_to_shard = {shard.host: i
                               for i, shard in enumerate(self.shards)}
        for state in self._states.values():
            doomed = [rid for rid, ctx in state.inflight.items()
                      if (ctx.shard == index
                          or (ctx.shard is None
                              and index in ctx.pending_shards))]
            for rid in doomed:
                self._drop(state, state.inflight[rid])
            revoked = [vh for vh, vhandle in state.vhandles.items()
                       if vhandle.shard == index]
            for vh in revoked:
                del state.vhandles[vh]
        self._outstanding[index] = 0
        self.obs.registry.counter("router.promotions").inc()

    # ------------------------------------------------------------------------
    # Restart and recovery
    # ------------------------------------------------------------------------

    def recover(self) -> List[Shipment]:
        """Converge any crashed shipment, then adopt placement from packs.

        Call once after (re)mounting the shard packs.  Every pack is
        checked for a surviving shipment manifest: a committed one rolls
        the move forward, wreckage without one rolls back.  The map then
        re-learns slot placement from where files actually live
        (:meth:`adopt_placement`) -- the packs are the source of truth,
        so no separate placement store can disagree with them.
        """
        shipments: List[Shipment] = []
        for index, shard in enumerate(self.shards):
            source = index
            try:
                data = shard.fs.open_file(MANIFEST_NAME).read_data()
                source = Shipment.decode(data).source
            except (ReproError, ValueError, IndexError, UnicodeDecodeError):
                pass
            source = min(max(source, 0), len(self.shards) - 1)
            shipment = recover_shipment(self.shards[source].fs, shard.fs)
            if shipment is not None:
                shipments.append(shipment)
        self.adopt_placement()
        return shipments

    def adopt_placement(self) -> None:
        """Point every populated slot at the shard that holds its files.

        Raises :class:`~repro.errors.ServerError` if two packs hold names
        of the same slot -- the invariant :func:`recover_shipment`
        guarantees can only break through outside interference.
        """
        owners: Dict[int, int] = {}
        for index, shard in enumerate(self.shards):
            for name in shard.fs.list_files():
                if name.lower() in _SYSTEM_NAMES:
                    continue
                slot = self.shard_map.slot_of(name)
                previous = owners.setdefault(slot, index)
                if previous != index:
                    raise ServerError(
                        f"slot {slot} has files on shards {previous} and "
                        f"{index}: packs disagree on placement")
        for slot, owner in sorted(owners.items()):
            if self.shard_map.assignment[slot] != owner:
                self.shard_map.assignment[slot] = owner
                self.shard_map.epoch += 1

    # ------------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """The router's own counters out of the unified snapshot."""
        return {name: value for name, value in self.obs.stats().items()
                if name.startswith("router.")}

    def __repr__(self) -> str:
        return (f"ShardRouter({self.host!r}, shards={len(self.shards)}, "
                f"pending={self._pending}, epoch={self.shard_map.epoch})")
